//! Property tests for the information-flow analysis: the online tracker
//! must agree with a brute-force oracle that implements Definition 1
//! directly over the raw event log.
//!
//! The workspace builds offline with no external dependencies, so these
//! are deterministic randomized property tests driven by the local
//! [`ruo_sim::SplitMix64`] generator rather than `proptest`: each test
//! runs a fixed number of seeded cases, and a failure message always
//! includes the case number so the exact input can be regenerated.

use ruo_lowerbound::flow::visible_mutations;
use ruo_lowerbound::lemma1::lemma1_round;
use ruo_lowerbound::turan::greedy_independent_set;
use ruo_lowerbound::FlowTracker;
use ruo_sim::{cas, done, read, write, Machine, Memory, Prim, ProcessId, SplitMix64, Word};

/// One random primitive applied by a random process to a random object;
/// operands in -2..3.
fn arb_step(rng: &mut SplitMix64, n_procs: usize, n_objs: usize) -> (usize, usize, u8, Word, Word) {
    (
        rng.gen_index(n_procs),
        rng.gen_index(n_objs),
        rng.gen_below(3) as u8,
        rng.gen_below(5) as Word - 2,
        rng.gen_below(5) as Word - 2,
    )
}

/// The tracker's per-object contribution sets equal the oracle's
/// visible-mutation sets on arbitrary executions.
#[test]
fn tracker_visibility_matches_definition_1() {
    let mut rng = SplitMix64::new(0xf100d);
    for case in 0..256 {
        let mut mem = Memory::new();
        let objs = mem.alloc_n(3, 0);
        let steps = 1 + rng.gen_index(59);
        for _ in 0..steps {
            let (p, o, kind, a, b) = arb_step(&mut rng, 4, 3);
            let prim = match kind {
                0 => Prim::Read(objs[o]),
                1 => Prim::Write(objs[o], a),
                _ => Prim::Cas {
                    obj: objs[o],
                    expected: a,
                    new: b,
                },
            };
            mem.apply(ProcessId(p), prim);
        }
        let mut tracker = FlowTracker::new(4);
        tracker.observe_log_suffix(mem.log());
        for &o in &objs {
            let mut got = tracker.contribution_seqs(o);
            got.sort_unstable();
            let expected = visible_mutations(mem.log().events(), o);
            assert_eq!(got, expected, "case {case}: object {o}");
        }
    }
}

/// Awareness sets only ever grow as more events are observed, and
/// every process is always aware of itself.
#[test]
fn awareness_is_monotone() {
    let mut rng = SplitMix64::new(0xa3a3);
    for case in 0..256 {
        let mut mem = Memory::new();
        let objs = mem.alloc_n(3, 0);
        let mut tracker = FlowTracker::new(4);
        let mut sizes = [0usize; 4];
        let steps = 1 + rng.gen_index(39);
        for _ in 0..steps {
            let (p, o, kind, a, b) = arb_step(&mut rng, 4, 3);
            let prim = match kind {
                0 => Prim::Read(objs[o]),
                1 => Prim::Write(objs[o], a),
                _ => Prim::Cas {
                    obj: objs[o],
                    expected: a,
                    new: b,
                },
            };
            mem.apply(ProcessId(p), prim);
            tracker.observe_log_suffix(mem.log());
            for (q, size) in sizes.iter_mut().enumerate() {
                let aw = tracker.awareness(ProcessId(q));
                assert!(aw.contains(ProcessId(q)), "case {case}");
                assert!(aw.len() >= *size, "case {case}: awareness shrank for p{q}");
                *size = aw.len();
            }
        }
    }
}

/// Lemma 1's knowledge bound holds for arbitrary mixes of one-shot
/// read/write/CAS machines scheduled by the three-phase adversary.
#[test]
fn lemma1_bound_holds_for_random_machines() {
    let mut rng = SplitMix64::new(0x1e111a1);
    for case in 0..256 {
        let n = 2 + rng.gen_index(10);
        let rounds = 1 + rng.gen_index(3);
        let mut mem = Memory::new();
        let objs = mem.alloc_n(3, 0);
        let mut machines: Vec<Machine> = (0..n)
            .map(|_| {
                let kind = rng.gen_below(3) as u8;
                let obj = objs[rng.gen_index(3)];
                let v = rng.gen_below(5) as Word - 1;
                match kind {
                    0 => Machine::new(read(obj, done)),
                    1 => Machine::new(write(obj, v, move || done(0))),
                    _ => Machine::new(cas(obj, 0, v, done)),
                }
            })
            .collect();
        let mut tracker = FlowTracker::new(n);
        let mut bound = 1usize;
        for _ in 0..rounds {
            let mut procs: Vec<(ProcessId, &mut Machine)> = machines
                .iter_mut()
                .enumerate()
                .filter(|(_, m)| !m.is_done())
                .map(|(i, m)| (ProcessId(i), m))
                .collect();
            if procs.is_empty() {
                break;
            }
            lemma1_round(&mut mem, &mut procs);
            tracker.observe_log_suffix(mem.log());
            bound *= 3;
            assert!(
                tracker.max_knowledge() <= bound,
                "case {case}: M(E) = {} > {}",
                tracker.max_knowledge(),
                bound
            );
        }
    }
}

/// Turán: the greedy independent set is independent and meets the
/// n/(d̄+1) size guarantee on arbitrary graphs.
#[test]
fn greedy_independent_set_meets_turan_bound() {
    let mut rng = SplitMix64::new(0x7a9a4);
    for case in 0..256 {
        let n = 1 + rng.gen_index(39);
        let n_edges = rng.gen_index(120);
        let edges: Vec<(usize, usize)> = (0..n_edges)
            .map(|_| (rng.gen_index(40), rng.gen_index(40)))
            .filter(|&(a, b)| a < n && b < n)
            .collect();
        let set = greedy_independent_set(n, &edges);
        for &(a, b) in &edges {
            if a != b {
                assert!(
                    !(set.contains(&a) && set.contains(&b)),
                    "case {case}: edge ({a},{b}) inside set"
                );
            }
        }
        let real_edges = edges.iter().filter(|(a, b)| a != b).count();
        let avg = 2.0 * real_edges as f64 / n as f64;
        let bound = (n as f64 / (avg + 1.0)).floor() as usize;
        assert!(
            set.len() >= bound,
            "case {case}: |I| = {} < {}",
            set.len(),
            bound
        );
    }
}
