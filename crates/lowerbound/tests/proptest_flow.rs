//! Property tests for the information-flow analysis: the online tracker
//! must agree with a brute-force oracle that implements Definition 1
//! directly over the raw event log.

use proptest::prelude::*;
use ruo_lowerbound::flow::visible_mutations;
use ruo_lowerbound::lemma1::lemma1_round;
use ruo_lowerbound::turan::greedy_independent_set;
use ruo_lowerbound::FlowTracker;
use ruo_sim::{cas, done, read, write, Machine, Memory, Prim, ProcessId, Word};

/// One random primitive applied by a random process to a random object.
fn arb_step(
    n_procs: usize,
    n_objs: usize,
) -> impl Strategy<Value = (usize, usize, u8, Word, Word)> {
    (0..n_procs, 0..n_objs, 0u8..3, -2i64..3, -2i64..3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The tracker's per-object contribution sets equal the oracle's
    /// visible-mutation sets on arbitrary executions.
    #[test]
    fn tracker_visibility_matches_definition_1(
        steps in proptest::collection::vec(arb_step(4, 3), 1..60)
    ) {
        let mut mem = Memory::new();
        let objs = mem.alloc_n(3, 0);
        for (p, o, kind, a, b) in steps {
            let prim = match kind {
                0 => Prim::Read(objs[o]),
                1 => Prim::Write(objs[o], a),
                _ => Prim::Cas { obj: objs[o], expected: a, new: b },
            };
            mem.apply(ProcessId(p), prim);
        }
        let mut tracker = FlowTracker::new(4);
        tracker.observe_log_suffix(mem.log());
        for &o in &objs {
            let mut got = tracker.contribution_seqs(o);
            got.sort_unstable();
            let expected = visible_mutations(mem.log().events(), o);
            prop_assert_eq!(got, expected, "object {}", o);
        }
    }

    /// Awareness sets only ever grow as more events are observed, and
    /// every process is always aware of itself.
    #[test]
    fn awareness_is_monotone(
        steps in proptest::collection::vec(arb_step(4, 3), 1..40)
    ) {
        let mut mem = Memory::new();
        let objs = mem.alloc_n(3, 0);
        let mut tracker = FlowTracker::new(4);
        let mut sizes = [0usize; 4];
        for (p, o, kind, a, b) in steps {
            let prim = match kind {
                0 => Prim::Read(objs[o]),
                1 => Prim::Write(objs[o], a),
                _ => Prim::Cas { obj: objs[o], expected: a, new: b },
            };
            mem.apply(ProcessId(p), prim);
            tracker.observe_log_suffix(mem.log());
            for (q, size) in sizes.iter_mut().enumerate() {
                let aw = tracker.awareness(ProcessId(q));
                prop_assert!(aw.contains(ProcessId(q)));
                prop_assert!(aw.len() >= *size, "awareness shrank for p{q}");
                *size = aw.len();
            }
        }
    }

    /// Lemma 1's knowledge bound holds for arbitrary mixes of one-shot
    /// read/write/CAS machines scheduled by the three-phase adversary.
    #[test]
    fn lemma1_bound_holds_for_random_machines(
        specs in proptest::collection::vec((0u8..3, 0usize..3, -1i64..4), 2..12),
        rounds in 1usize..4,
    ) {
        let n = specs.len();
        let mut mem = Memory::new();
        let objs = mem.alloc_n(3, 0);
        let mut machines: Vec<Machine> = specs
            .iter()
            .map(|&(kind, o, v)| {
                let obj = objs[o];
                match kind {
                    0 => Machine::new(read(obj, done)),
                    1 => Machine::new(write(obj, v, move || done(0))),
                    _ => Machine::new(cas(obj, 0, v, done)),
                }
            })
            .collect();
        let mut tracker = FlowTracker::new(n);
        let mut bound = 1usize;
        for _ in 0..rounds {
            let mut procs: Vec<(ProcessId, &mut Machine)> = machines
                .iter_mut()
                .enumerate()
                .filter(|(_, m)| !m.is_done())
                .map(|(i, m)| (ProcessId(i), m))
                .collect();
            if procs.is_empty() {
                break;
            }
            lemma1_round(&mut mem, &mut procs);
            tracker.observe_log_suffix(mem.log());
            bound *= 3;
            prop_assert!(
                tracker.max_knowledge() <= bound,
                "M(E) = {} > {}",
                tracker.max_knowledge(),
                bound
            );
        }
    }

    /// Turán: the greedy independent set is independent and meets the
    /// n/(d̄+1) size guarantee on arbitrary graphs.
    #[test]
    fn greedy_independent_set_meets_turan_bound(
        n in 1usize..40,
        edges in proptest::collection::vec((0usize..40, 0usize..40), 0..120)
    ) {
        let edges: Vec<(usize, usize)> =
            edges.into_iter().filter(|&(a, b)| a < n && b < n).collect();
        let set = greedy_independent_set(n, &edges);
        for &(a, b) in &edges {
            if a != b {
                prop_assert!(!(set.contains(&a) && set.contains(&b)), "edge ({a},{b}) inside set");
            }
        }
        let real_edges = edges.iter().filter(|(a, b)| a != b).count();
        let avg = 2.0 * real_edges as f64 / n as f64;
        let bound = (n as f64 / (avg + 1.0)).floor() as usize;
        prop_assert!(set.len() >= bound, "|I| = {} < {}", set.len(), bound);
    }
}
