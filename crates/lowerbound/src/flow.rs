//! Information-flow analysis: visibility, awareness and familiarity
//! (Definitions 1–4 of the paper).
//!
//! The paper quantifies "how fast processes learn about each other":
//!
//! * An event is **invisible** (Def. 1) if it does not change its
//!   object's value, or if it is overwritten by the very next access to
//!   the object — a *write* — before its issuer takes another step.
//! * A process becomes **aware** (Defs. 2–3) of the processes whose
//!   visible mutations it reads (directly or through chains of such
//!   reads and same-process program order).
//! * An object is **familiar** (Def. 4) with every process its visible
//!   writers were aware of when they wrote.
//!
//! [`FlowTracker`] computes all three online, one event at a time, which
//! is how the adversaries of [`crate::theorem1`] and [`crate::essential`]
//! steer executions to keep knowledge scarce, and how the test suite
//! verifies the knowledge-growth invariants (`M(E_j) ≤ 3^j`, hidden
//! sets) that the paper's proofs rely on.

use std::fmt;

use ruo_sim::{Event, EventLog, ObjId, Prim, ProcessId};

/// A set of processes, as a bitset.
#[derive(Clone, PartialEq, Eq)]
pub struct ProcSet {
    bits: Vec<u64>,
    n: usize,
}

impl ProcSet {
    /// The empty set over a universe of `n` processes.
    pub fn empty(n: usize) -> Self {
        ProcSet {
            bits: vec![0; n.div_ceil(64)],
            n,
        }
    }

    /// The singleton `{p}`.
    pub fn singleton(n: usize, p: ProcessId) -> Self {
        let mut s = Self::empty(n);
        s.insert(p);
        s
    }

    /// Adds a process. Returns `true` if it was newly added.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside the universe.
    pub fn insert(&mut self, p: ProcessId) -> bool {
        assert!(
            p.index() < self.n,
            "process {p} outside universe {}",
            self.n
        );
        let (w, b) = (p.index() / 64, p.index() % 64);
        let was = self.bits[w] & (1 << b) != 0;
        self.bits[w] |= 1 << b;
        !was
    }

    /// Whether `p` is in the set.
    pub fn contains(&self, p: ProcessId) -> bool {
        if p.index() >= self.n {
            return false;
        }
        let (w, b) = (p.index() / 64, p.index() % 64);
        self.bits[w] & (1 << b) != 0
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &ProcSet) {
        debug_assert_eq!(self.n, other.n);
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
    }

    /// Number of processes in the set.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Iterates over members in increasing id order.
    pub fn iter(&self) -> impl Iterator<Item = ProcessId> + '_ {
        (0..self.n)
            .map(ProcessId)
            .filter(move |&p| self.contains(p))
    }

    /// Size of the intersection with `other`.
    pub fn intersection_len(&self, other: &ProcSet) -> usize {
        self.bits
            .iter()
            .zip(&other.bits)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }
}

impl fmt::Debug for ProcSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// A visible mutation's contribution to its object's familiarity set.
#[derive(Clone, Debug)]
struct Contribution {
    /// Sequence number of the contributing event.
    seq: usize,
    /// The issuer's awareness set at the time of the event.
    aware: ProcSet,
}

#[derive(Clone, Debug, Default)]
struct ObjState {
    contributions: Vec<Contribution>,
    /// `(seq, issuer)` of the most recent access to this object.
    last_access: Option<(usize, ProcessId)>,
}

/// Online tracker of awareness and familiarity sets.
///
/// Feed it every event of an execution in order
/// ([`observe`](FlowTracker::observe) or
/// [`observe_log_suffix`](FlowTracker::observe_log_suffix)); query
/// per-process awareness,
/// per-object familiarity, and the global knowledge measure `M(E)` of
/// Lemma 1 at any point.
#[derive(Clone, Debug)]
pub struct FlowTracker {
    aw: Vec<ProcSet>,
    objs: Vec<ObjState>,
    /// Sequence number of each process's most recent event.
    last_step: Vec<Option<usize>>,
    /// Number of events observed so far.
    observed: usize,
    n: usize,
}

impl FlowTracker {
    /// A tracker for `n` processes in the initial configuration: every
    /// process aware only of itself, every familiarity set empty.
    pub fn new(n: usize) -> Self {
        FlowTracker {
            aw: (0..n)
                .map(|p| ProcSet::singleton(n, ProcessId(p)))
                .collect(),
            objs: Vec::new(),
            last_step: vec![None; n],
            observed: 0,
            n,
        }
    }

    /// Number of processes in the universe.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of events observed.
    pub fn observed(&self) -> usize {
        self.observed
    }

    fn obj_mut(&mut self, o: ObjId) -> &mut ObjState {
        if o.index() >= self.objs.len() {
            self.objs.resize_with(o.index() + 1, ObjState::default);
        }
        &mut self.objs[o.index()]
    }

    /// Feeds one event. Events must arrive in execution order.
    ///
    /// # Panics
    ///
    /// Panics if events arrive out of order or the issuer is outside the
    /// universe.
    pub fn observe(&mut self, ev: &Event) {
        assert_eq!(ev.seq, self.observed, "events must be fed in order");
        self.observed += 1;
        let p = ev.pid;
        assert!(p.index() < self.n, "process {p} outside universe");
        let o = ev.obj();
        let n = self.n;
        let _ = n;

        // Reads and CASes observe the object: the issuer learns the
        // object's familiarity set (Def. 2 clause 1 + program order).
        if matches!(ev.prim, Prim::Read(_) | Prim::Cas { .. }) {
            let fam = self.familiarity(o);
            self.aw[p.index()].union_with(&fam);
        }

        // A write kills the previous access's contribution if that access
        // was the last event on the object and its issuer has not stepped
        // since (Def. 1's overwriting clause).
        if matches!(ev.prim, Prim::Write(..)) {
            let last = self.objs.get(o.index()).and_then(|s| s.last_access);
            if let Some((seq, issuer)) = last {
                let issuer_quiet = self.last_step[issuer.index()] == Some(seq);
                if issuer_quiet {
                    let st = self.obj_mut(o);
                    if let Some(pos) = st.contributions.iter().position(|c| c.seq == seq) {
                        st.contributions.remove(pos);
                    }
                }
            }
        }

        // A value-changing mutation contributes the issuer's (updated)
        // awareness to the object's familiarity (Def. 4).
        if ev.is_mutation_kind() && !ev.is_trivial() {
            let aware = self.aw[p.index()].clone();
            let seq = ev.seq;
            let st = self.obj_mut(o);
            st.contributions.push(Contribution { seq, aware });
        }

        let seq = ev.seq;
        self.obj_mut(o).last_access = Some((seq, p));
        self.last_step[p.index()] = Some(seq);
    }

    /// Feeds every not-yet-observed event of `log`.
    pub fn observe_log_suffix(&mut self, log: &EventLog) {
        for ev in &log.events()[self.observed..] {
            self.observe(ev);
        }
    }

    /// The awareness set `AW(p, E)` after the observed prefix.
    pub fn awareness(&self, p: ProcessId) -> &ProcSet {
        &self.aw[p.index()]
    }

    /// The familiarity set `F(o, E)` after the observed prefix.
    pub fn familiarity(&self, o: ObjId) -> ProcSet {
        let mut fam = ProcSet::empty(self.n);
        if let Some(st) = self.objs.get(o.index()) {
            for c in &st.contributions {
                fam.union_with(&c.aware);
            }
        }
        fam
    }

    /// Lemma 1's knowledge measure `M(E)`: the largest awareness or
    /// familiarity set.
    pub fn max_knowledge(&self) -> usize {
        let aw_max = self.aw.iter().map(ProcSet::len).max().unwrap_or(0);
        let fam_max = (0..self.objs.len())
            .map(|i| self.familiarity(ObjId::from_index(i)).len())
            .max()
            .unwrap_or(0);
        aw_max.max(fam_max)
    }

    /// Whether `p` is *hidden* (Def. 5): no other process is aware of it.
    pub fn is_hidden(&self, p: ProcessId) -> bool {
        self.aw
            .iter()
            .enumerate()
            .all(|(q, set)| q == p.index() || !set.contains(p))
    }

    /// How many processes of `set` object `o` is familiar with — the
    /// hidden-set condition requires this to be ≤ 1 for every object.
    pub fn familiar_members(&self, o: ObjId, set: &ProcSet) -> usize {
        self.familiarity(o).intersection_len(set)
    }

    /// Number of distinct objects with a nonempty familiarity set.
    pub fn tracked_objects(&self) -> usize {
        self.objs.len()
    }

    /// Sequence numbers of the events currently contributing to `o`'s
    /// familiarity set — i.e. the value-changing mutations of `o` that
    /// are *visible* (Def. 1) in the observed prefix. Exposed so tests
    /// can cross-check the online visibility bookkeeping against a
    /// brute-force oracle over the raw log.
    pub fn contribution_seqs(&self, o: ObjId) -> Vec<usize> {
        self.objs
            .get(o.index())
            .map(|st| st.contributions.iter().map(|c| c.seq).collect())
            .unwrap_or_default()
    }
}

/// Reference implementation of Definition 1 over a complete log: the
/// sequence numbers of `obj`'s *visible* value-changing mutations.
///
/// An event is visible iff it changed the object's value and it is not
/// "covered": covered means the next access to the object is a write
/// issued while the event's issuer stayed quiet. This is the brute-force
/// oracle the online [`FlowTracker`] is property-tested against
/// (`tests/proptest_flow.rs`); prefer the tracker for anything
/// performance-sensitive.
pub fn visible_mutations(events: &[Event], obj: ObjId) -> Vec<usize> {
    let mut out = Vec::new();
    for (i, e) in events.iter().enumerate() {
        if e.obj() != obj || !e.is_mutation_kind() || e.is_trivial() {
            continue;
        }
        let next = events[i + 1..].iter().find(|f| f.obj() == obj);
        let covered = match next {
            Some(f) if matches!(f.prim, Prim::Write(..)) => {
                !events[i + 1..f.seq].iter().any(|g| g.pid == e.pid)
            }
            _ => false,
        };
        if !covered {
            out.push(e.seq);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruo_sim::{Memory, Prim, ProcessId};

    #[test]
    fn visible_mutations_oracle_matches_simple_cases() {
        let mut mem = Memory::new();
        let o = mem.alloc(0);
        mem.apply(ProcessId(0), Prim::Write(o, 1)); // seq 0: covered below
        mem.apply(ProcessId(1), Prim::Write(o, 2)); // seq 1: visible
        mem.apply(ProcessId(2), Prim::Read(o)); // seq 2: protects seq 1
        mem.apply(ProcessId(0), Prim::Write(o, 3)); // seq 3: visible (last)
        assert_eq!(visible_mutations(mem.log().events(), o), vec![1, 3]);
    }

    fn mk(n_objs: usize) -> (Memory, Vec<ObjId>) {
        let mut mem = Memory::new();
        let objs = mem.alloc_n(n_objs, 0);
        (mem, objs)
    }

    fn feed(tracker: &mut FlowTracker, mem: &Memory) {
        tracker.observe_log_suffix(mem.log());
    }

    #[test]
    fn initially_everyone_knows_only_themselves() {
        let t = FlowTracker::new(3);
        for p in 0..3 {
            assert_eq!(t.awareness(ProcessId(p)).len(), 1);
            assert!(t.awareness(ProcessId(p)).contains(ProcessId(p)));
            assert!(t.is_hidden(ProcessId(p)));
        }
        assert_eq!(t.max_knowledge(), 1);
    }

    #[test]
    fn reading_a_written_object_creates_awareness() {
        let (mut mem, objs) = mk(1);
        let mut t = FlowTracker::new(2);
        mem.apply(ProcessId(0), Prim::Write(objs[0], 5));
        mem.apply(ProcessId(1), Prim::Read(objs[0]));
        feed(&mut t, &mem);
        assert!(t.awareness(ProcessId(1)).contains(ProcessId(0)));
        assert!(
            !t.awareness(ProcessId(0)).contains(ProcessId(1)),
            "writes leak nothing back"
        );
        assert!(!t.is_hidden(ProcessId(0)));
        assert!(t.is_hidden(ProcessId(1)));
    }

    #[test]
    fn familiarity_carries_transitive_knowledge() {
        // p0 writes o0; p1 reads o0 (aware of p0) then writes o1;
        // p2 reads o1 and must become aware of BOTH p1 and p0.
        let (mut mem, objs) = mk(2);
        let mut t = FlowTracker::new(3);
        mem.apply(ProcessId(0), Prim::Write(objs[0], 5));
        mem.apply(ProcessId(1), Prim::Read(objs[0]));
        mem.apply(ProcessId(1), Prim::Write(objs[1], 9));
        mem.apply(ProcessId(2), Prim::Read(objs[1]));
        feed(&mut t, &mem);
        let aw2 = t.awareness(ProcessId(2));
        assert!(aw2.contains(ProcessId(1)));
        assert!(
            aw2.contains(ProcessId(0)),
            "transitive awareness via familiarity"
        );
        assert_eq!(aw2.len(), 3);
    }

    #[test]
    fn trivial_events_are_invisible() {
        let (mut mem, objs) = mk(1);
        let mut t = FlowTracker::new(2);
        // A write of the current value (0) changes nothing.
        mem.apply(ProcessId(0), Prim::Write(objs[0], 0));
        mem.apply(ProcessId(1), Prim::Read(objs[0]));
        feed(&mut t, &mem);
        assert!(!t.awareness(ProcessId(1)).contains(ProcessId(0)));
    }

    #[test]
    fn failed_cas_is_invisible() {
        let (mut mem, objs) = mk(1);
        let mut t = FlowTracker::new(2);
        mem.apply(
            ProcessId(0),
            Prim::Cas {
                obj: objs[0],
                expected: 7,
                new: 9,
            },
        );
        mem.apply(ProcessId(1), Prim::Read(objs[0]));
        feed(&mut t, &mem);
        assert!(!t.awareness(ProcessId(1)).contains(ProcessId(0)));
    }

    #[test]
    fn successful_cas_is_visible_and_observes() {
        let (mut mem, objs) = mk(1);
        let mut t = FlowTracker::new(3);
        mem.apply(ProcessId(0), Prim::Write(objs[0], 5));
        // p1's CAS both reads (learns p0) and mutates (contributes).
        mem.apply(
            ProcessId(1),
            Prim::Cas {
                obj: objs[0],
                expected: 5,
                new: 6,
            },
        );
        mem.apply(ProcessId(2), Prim::Read(objs[0]));
        feed(&mut t, &mem);
        assert!(t.awareness(ProcessId(1)).contains(ProcessId(0)));
        let aw2 = t.awareness(ProcessId(2));
        assert!(aw2.contains(ProcessId(0)));
        assert!(aw2.contains(ProcessId(1)));
    }

    #[test]
    fn immediate_overwrite_hides_a_write() {
        // p0 writes, then p1 overwrites before anyone (including p0)
        // touches the object: p0's write is invisible (Def. 1), so a
        // later reader learns only about p1.
        let (mut mem, objs) = mk(1);
        let mut t = FlowTracker::new(3);
        mem.apply(ProcessId(0), Prim::Write(objs[0], 5));
        mem.apply(ProcessId(1), Prim::Write(objs[0], 6));
        mem.apply(ProcessId(2), Prim::Read(objs[0]));
        feed(&mut t, &mem);
        let aw2 = t.awareness(ProcessId(2));
        assert!(
            !aw2.contains(ProcessId(0)),
            "overwritten write must be invisible"
        );
        assert!(aw2.contains(ProcessId(1)));
    }

    #[test]
    fn intervening_read_protects_a_write() {
        // Same as above, but p2 reads BETWEEN the writes: p0's write was
        // visible when read.
        let (mut mem, objs) = mk(1);
        let mut t = FlowTracker::new(3);
        mem.apply(ProcessId(0), Prim::Write(objs[0], 5));
        mem.apply(ProcessId(2), Prim::Read(objs[0]));
        mem.apply(ProcessId(1), Prim::Write(objs[0], 6));
        feed(&mut t, &mem);
        assert!(t.awareness(ProcessId(2)).contains(ProcessId(0)));
    }

    #[test]
    fn issuer_step_protects_its_write() {
        // p0 writes o0 and then takes another step elsewhere before p1
        // overwrites: Def. 1 requires the issuer quiet, so the write
        // stays visible (contributed to familiarity while it was there).
        let (mut mem, objs) = mk(2);
        let mut t = FlowTracker::new(3);
        mem.apply(ProcessId(0), Prim::Write(objs[0], 5));
        mem.apply(ProcessId(0), Prim::Read(objs[1]));
        mem.apply(ProcessId(1), Prim::Write(objs[0], 6));
        mem.apply(ProcessId(2), Prim::Read(objs[0]));
        feed(&mut t, &mem);
        assert!(t.awareness(ProcessId(2)).contains(ProcessId(0)));
    }

    #[test]
    fn familiarity_reflects_writer_awareness_at_write_time() {
        let (mut mem, objs) = mk(2);
        let mut t = FlowTracker::new(3);
        // p1 becomes aware of p0, then writes o1: F(o1) ⊇ {p0, p1}.
        mem.apply(ProcessId(0), Prim::Write(objs[0], 1));
        mem.apply(ProcessId(1), Prim::Read(objs[0]));
        mem.apply(ProcessId(1), Prim::Write(objs[1], 2));
        feed(&mut t, &mem);
        let fam = t.familiarity(objs[1]);
        assert!(fam.contains(ProcessId(0)));
        assert!(fam.contains(ProcessId(1)));
        assert_eq!(fam.len(), 2);
    }

    #[test]
    fn max_knowledge_counts_largest_set() {
        let (mut mem, objs) = mk(1);
        let mut t = FlowTracker::new(4);
        mem.apply(ProcessId(0), Prim::Write(objs[0], 1));
        mem.apply(ProcessId(1), Prim::Read(objs[0]));
        mem.apply(ProcessId(2), Prim::Read(objs[0]));
        feed(&mut t, &mem);
        // AW(p1) = {p0,p1}; AW(p2) = {p0,p2}; F(o0) = {p0}.
        assert_eq!(t.max_knowledge(), 2);
    }

    #[test]
    fn procset_basics() {
        let mut s = ProcSet::empty(130);
        assert!(s.is_empty());
        assert!(s.insert(ProcessId(0)));
        assert!(s.insert(ProcessId(129)));
        assert!(!s.insert(ProcessId(0)), "double insert reports false");
        assert_eq!(s.len(), 2);
        assert!(s.contains(ProcessId(129)));
        assert!(!s.contains(ProcessId(64)));
        let members: Vec<_> = s.iter().collect();
        assert_eq!(members, vec![ProcessId(0), ProcessId(129)]);
        let mut t = ProcSet::singleton(130, ProcessId(64));
        t.union_with(&s);
        assert_eq!(t.len(), 3);
        assert_eq!(t.intersection_len(&s), 2);
    }
}
