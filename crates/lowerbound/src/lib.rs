//! # ruo-lowerbound — mechanized lower-bound constructions
//!
//! The lower bounds of *"Complexity Tradeoffs for Read and Update
//! Operations"* (Hendler & Khait, PODC 2014) are proved by explicit
//! adversarial constructions. This crate turns those constructions into
//! executable code and runs them against the real algorithm
//! implementations of `ruo-core`:
//!
//! * [`flow`] — information-flow analysis: *visibility* of events
//!   (Definition 1), *awareness* sets of processes (Definitions 2–3) and
//!   *familiarity* sets of base objects (Definition 4), computed
//!   event-by-event over a simulator execution.
//! * [`lemma1`] — the three-phase schedule of Lemma 1 (reads and trivial
//!   events, then writes, then CAS), which bounds knowledge growth to a
//!   factor of 3 per round.
//! * [`theorem1`] — the iterative counter construction of Theorem 1:
//!   drive `N − 1` concurrent `CounterIncrement`s with the Lemma 1
//!   schedule, count the rounds until completion, verify
//!   `M(E_j) ≤ 3^j`, then replay Lemma 3's reader argument.
//! * [`essential`] — the essential-set construction of Theorem 3 against
//!   max registers: hidden and supreme sets, the low-contention
//!   (independent set) and high-contention (CAS/write/read sub-case)
//!   rounds, erasure by replay (a mechanized Lemma 2), and the
//!   per-iteration traces that regenerate Figures 1–3.
//!
//! The point is not to re-prove the theorems — a finite run proves
//! nothing asymptotic — but to *execute* the proofs: every counting
//! invariant the paper claims along the construction (knowledge growth,
//! hidden-set preservation, essential-set decay) is checked on real
//! executions of real algorithms, and the measured iteration counts are
//! the quantities the theorems bound.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod essential;
pub mod flow;
pub mod lemma1;
pub mod theorem1;
pub mod turan;

pub use flow::{FlowTracker, ProcSet};
