//! The Lemma 1 adversary: a schedule of one enabled event per active
//! process that at most triples the knowledge measure `M(E)`.
//!
//! Given the set of enabled events, the adversary orders them in three
//! phases:
//!
//! 1. **reads and trivial events** — invisible, so familiarity sets do
//!    not grow; each reader gains at most one familiarity set.
//! 2. **value-changing writes** — on each object only the *last* write
//!    stays visible (the earlier ones are overwritten before anyone
//!    moves, Def. 1), contributing a single awareness set.
//! 3. **value-changing CASes** — on each object the first CAS either
//!    fails (a phase-2 write changed the value) or succeeds and makes
//!    all the others fail; either way one awareness set at most.
//!
//! `ruo-lowerbound`'s Theorem 1 experiment iterates this round and
//! checks `M(E_j) ≤ 3^j` on the real event log.

use ruo_sim::{Machine, Memory, ProcessId};

/// Which phase of the Lemma 1 schedule an event was placed in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Reads, trivial writes, trivial CASes.
    ReadsAndTrivial,
    /// Value-changing writes.
    Writes,
    /// (Potentially) value-changing CASes.
    Cases,
}

/// One process's event placement in a round.
#[derive(Clone, Copy, Debug)]
pub struct Placement {
    /// The process that stepped.
    pub pid: ProcessId,
    /// The phase its event was scheduled in.
    pub phase: Phase,
}

/// Runs one Lemma 1 round: every machine in `procs` that has an enabled
/// event takes exactly one step, in the three-phase order. Returns the
/// placements in schedule order.
///
/// Processes whose machines are already done are skipped.
pub fn lemma1_round(mem: &mut Memory, procs: &mut [(ProcessId, &mut Machine)]) -> Vec<Placement> {
    // Classify against the values at the start of the round. Phase-1
    // events are all trivial, so classifications stay valid through
    // phase 1; phase 2/3 interactions are exactly the cases analyzed in
    // the lemma.
    let mut phase1 = Vec::new();
    let mut phase2 = Vec::new();
    let mut phase3 = Vec::new();
    for (idx, (pid, machine)) in procs.iter().enumerate() {
        let Some(prim) = machine.enabled() else {
            continue;
        };
        let current = mem.peek(prim.obj());
        let phase = if prim.is_trivial_against(current) {
            Phase::ReadsAndTrivial
        } else if prim.is_write() {
            Phase::Writes
        } else {
            debug_assert!(prim.is_cas());
            Phase::Cases
        };
        let entry = (idx, *pid, phase);
        match phase {
            Phase::ReadsAndTrivial => phase1.push(entry),
            Phase::Writes => phase2.push(entry),
            Phase::Cases => phase3.push(entry),
        }
    }

    let mut placements = Vec::new();
    for (idx, pid, phase) in phase1.into_iter().chain(phase2).chain(phase3) {
        let machine = &mut *procs[idx].1;
        let prim = machine.enabled().expect("classified event still enabled");
        let resp = mem.apply(pid, prim);
        machine.feed(resp);
        placements.push(Placement { pid, phase });
    }
    placements
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlowTracker;
    use ruo_sim::{cas, done, read, write, Machine, ObjId, Word};

    fn writer(o: ObjId, v: Word) -> Machine {
        Machine::new(write(o, v, move || done(0)))
    }

    fn reader(o: ObjId) -> Machine {
        Machine::new(read(o, done))
    }

    fn casser(o: ObjId, expected: Word, new: Word) -> Machine {
        Machine::new(cas(o, expected, new, done))
    }

    #[test]
    fn phases_are_ordered_reads_then_writes_then_cas() {
        let mut mem = Memory::new();
        let o = mem.alloc(0);
        let mut m0 = casser(o, 0, 7); // nontrivial CAS
        let mut m1 = writer(o, 5); // nontrivial write
        let mut m2 = reader(o); // read
        let mut procs = vec![
            (ProcessId(0), &mut m0),
            (ProcessId(1), &mut m1),
            (ProcessId(2), &mut m2),
        ];
        let placements = lemma1_round(&mut mem, &mut procs);
        let phases: Vec<Phase> = placements.iter().map(|p| p.phase).collect();
        assert_eq!(
            phases,
            vec![Phase::ReadsAndTrivial, Phase::Writes, Phase::Cases]
        );
        // The CAS ran after the write changed the value: it must fail.
        assert_eq!(m0.result(), Some(0));
        // The reader ran first and saw the initial value.
        assert_eq!(m2.result(), Some(0));
        assert_eq!(mem.peek(o), 5);
    }

    #[test]
    fn trivial_write_is_scheduled_in_phase_one() {
        let mut mem = Memory::new();
        let o = mem.alloc(5);
        let mut m0 = writer(o, 5); // writes the current value: trivial
        let mut m1 = writer(o, 6);
        let mut procs = vec![(ProcessId(0), &mut m0), (ProcessId(1), &mut m1)];
        let placements = lemma1_round(&mut mem, &mut procs);
        assert_eq!(placements[0].phase, Phase::ReadsAndTrivial);
        assert_eq!(placements[0].pid, ProcessId(0));
        assert_eq!(placements[1].phase, Phase::Writes);
    }

    #[test]
    fn completed_machines_are_skipped() {
        let mut mem = Memory::new();
        let o = mem.alloc(0);
        let mut m0 = Machine::completed(0);
        let mut m1 = reader(o);
        let mut procs = vec![(ProcessId(0), &mut m0), (ProcessId(1), &mut m1)];
        let placements = lemma1_round(&mut mem, &mut procs);
        assert_eq!(placements.len(), 1);
        assert_eq!(placements[0].pid, ProcessId(1));
    }

    #[test]
    fn knowledge_triples_at_most_per_round() {
        // The lemma's claim, checked mechanically: M(Eσ) ≤ 3·M(E) for a
        // round of mixed writers/CASers/readers on overlapping objects.
        let n = 12;
        let mut mem = Memory::new();
        let objs = mem.alloc_n(3, 0);
        let mut machines: Vec<Machine> = (0..n)
            .map(|i| match i % 3 {
                0 => writer(objs[i % 3], i as Word + 10),
                1 => casser(objs[i % 3], 0, i as Word + 50),
                _ => reader(objs[i % 3]),
            })
            .collect();
        let mut tracker = FlowTracker::new(n);
        let mut bound = 1usize;
        for _ in 0..2 {
            let mut procs: Vec<(ProcessId, &mut Machine)> = machines
                .iter_mut()
                .enumerate()
                .map(|(i, m)| (ProcessId(i), m))
                .collect();
            lemma1_round(&mut mem, &mut procs);
            tracker.observe_log_suffix(mem.log());
            bound *= 3;
            assert!(
                tracker.max_knowledge() <= bound,
                "M(E) = {} exceeds 3^rounds = {}",
                tracker.max_knowledge(),
                bound
            );
        }
    }

    #[test]
    fn concurrent_writers_to_one_object_leak_one_awareness_set() {
        // All writes to the same object in one round: only the last is
        // visible, so F(o) gains exactly one contributor.
        let mut mem = Memory::new();
        let o = mem.alloc(0);
        let mut machines: Vec<Machine> = (0..5).map(|i| writer(o, i as Word + 1)).collect();
        let mut procs: Vec<(ProcessId, &mut Machine)> = machines
            .iter_mut()
            .enumerate()
            .map(|(i, m)| (ProcessId(i), m))
            .collect();
        lemma1_round(&mut mem, &mut procs);
        let mut tracker = FlowTracker::new(5);
        tracker.observe_log_suffix(mem.log());
        assert_eq!(tracker.familiarity(o).len(), 1);
    }

    #[test]
    fn first_cas_wins_rest_fail_silently() {
        let mut mem = Memory::new();
        let o = mem.alloc(0);
        let mut machines: Vec<Machine> = (0..4).map(|i| casser(o, 0, 100 + i as Word)).collect();
        let mut procs: Vec<(ProcessId, &mut Machine)> = machines
            .iter_mut()
            .enumerate()
            .map(|(i, m)| (ProcessId(i), m))
            .collect();
        lemma1_round(&mut mem, &mut procs);
        let succeeded: Vec<usize> = machines
            .iter()
            .enumerate()
            .filter(|(_, m)| m.result() == Some(1))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(succeeded.len(), 1, "exactly one CAS may succeed");
        let mut tracker = FlowTracker::new(4);
        tracker.observe_log_suffix(mem.log());
        assert!(tracker.familiarity(o).len() <= 2);
    }
}
