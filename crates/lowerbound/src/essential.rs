//! The Theorem 3 construction: essential sets against max registers.
//!
//! The proof builds an execution `E_i` per iteration, each with an
//! *i-step essential set* `E_i`: a set of processes that (1) have taken
//! exactly `i` steps, (2) are *hidden* (nobody is aware of them), (3)
//! leave every base object familiar with at most one of them, and (4)
//! have the highest ids among all processes still in the execution.
//! Each iteration extends the execution by one step of each surviving
//! essential process, shrinking the set from `m` to about `√m / 3` via
//! two cases (Lemma 4):
//!
//! * **Low contention** (Figure 1) — the enabled events touch at least
//!   `√m` distinct objects: keep one process per object, thin them to an
//!   independent set of the familiarity-conflict graph (Turán), erase
//!   the rest.
//! * **High contention** (Figure 2) — at least `√m` processes aim at one
//!   object `o`: split by primitive. If CASes dominate, let the
//!   smallest-id one, `p_l`, succeed (then *halt* it) and schedule the
//!   rest after it — they all fail invisibly. If writes dominate,
//!   schedule everyone and let `p_l`'s write land last, covering the
//!   others. If reads/trivial CASes dominate, just schedule them.
//!
//! *Erasing* a process (Lemma 2) is implemented by **replay**: the
//! surviving schedule is re-executed from the initial configuration and
//! every response is asserted identical to the original run — the
//! machine-checked form of "removing events of processes nobody is
//! aware of yields an indistinguishable execution".
//!
//! The construction stops when half the essential processes complete,
//! or the set would drop below the register's measured read cost
//! `f(K)` (Lemma 6's threshold), or it degenerates below a minimum
//! size. The number of completed iterations `i*` is the quantity
//! Theorem 3 bounds from below by `Ω(log log K / log f(K))`.

use std::collections::BTreeSet;

use ruo_core::maxreg::sim::SimMaxRegister;
use ruo_sim::{Machine, Memory, ObjId, Prim, ProcessId, Word};

use crate::flow::FlowTracker;
use crate::turan::greedy_independent_set;

/// Which case of Lemma 4 an iteration took.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CaseKind {
    /// ≥ √m distinct objects: independent-set thinning (Figure 1).
    LowContention,
    /// One hot object, CAS majority: one winner halted, rest fail
    /// invisibly (Figure 2).
    HighContentionCas,
    /// One hot object, write majority: last writer halted, covers the
    /// rest.
    HighContentionWrite,
    /// One hot object, read/trivial majority: all scheduled, invisible.
    HighContentionRead,
}

/// Why the construction stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// At least half of the essential processes completed their
    /// `WriteMax` (Lemma 6 then caps the essential set at `2·f(K)`).
    HalfCompleted,
    /// The next essential set would fall below the `f(K)` threshold.
    EssentialBelowThreshold,
    /// The essential set became too small to split soundly (the paper
    /// requires `m ≥ 81`; small `K` runs hit this earlier).
    EssentialTooSmall,
    /// Safety valve.
    MaxIterations,
}

/// One iteration's bookkeeping — the rows behind Figures 1–3.
#[derive(Clone, Debug)]
pub struct RoundTrace {
    /// Iteration number (1-based; iteration `i` builds `E_i`).
    pub iteration: usize,
    /// Which Lemma 4 case fired.
    pub case: CaseKind,
    /// Active essential processes at the start (the `m` of Lemma 4).
    pub active_before: usize,
    /// Essential-set size after the iteration.
    pub essential_after: usize,
    /// Processes erased this iteration.
    pub erased: usize,
    /// The process halted this iteration, if any.
    pub halted: Option<ProcessId>,
    /// Number of distinct objects the enabled events targeted.
    pub distinct_objects: usize,
    /// Essential processes that had already completed their operation
    /// before this iteration.
    pub completed_before: usize,
}

/// The outcome of running the construction.
#[derive(Clone, Debug)]
pub struct EssentialOutcome {
    /// `K`: writers `p_0 .. p_{K-2}` plus the reader `p_{K-1}`.
    pub k: usize,
    /// Completed iterations `i*` — every process of the final essential
    /// set took exactly this many steps.
    pub iterations: usize,
    /// Why the construction stopped.
    pub stop: StopReason,
    /// Per-iteration traces (Figures 1–3).
    pub trace: Vec<RoundTrace>,
    /// The final essential set.
    pub final_essential: Vec<ProcessId>,
    /// Whether the hidden-set invariant (Def. 5) held after every
    /// iteration.
    pub hidden_invariant_held: bool,
    /// Whether every replay reproduced the original responses exactly
    /// (the mechanized Lemma 2). Always expected `true`.
    pub replays_faithful: bool,
    /// Number of replays performed.
    pub replays: usize,
    /// Steps of the final solo `ReadMax` by the reader `p_{K-1}`.
    pub reader_steps: usize,
    /// Distinct base objects the reader accessed — Lemma 6's accounting
    /// says a reader must touch one object per hidden completed writer
    /// it must not miss.
    pub reader_distinct_objects: usize,
    /// Value the reader returned.
    pub reader_value: u64,
    /// Largest operand of a *completed, non-erased* `WriteMax` — the
    /// reader must return at least this (Lemma 5's obligation).
    pub max_completed_value: u64,
}

/// Tunables for the construction.
#[derive(Clone, Copy, Debug)]
pub struct EssentialConfig {
    /// Stop when the essential set would fall below this (the paper's
    /// `f(K)`; pass the register's measured read step count).
    pub f_k: usize,
    /// Minimum active set the splitter accepts (the paper's `m ≥ 81`;
    /// smaller values let small-`K` experiments run more iterations at
    /// the cost of the constant-factor guarantees).
    pub min_active: usize,
    /// Safety valve on iterations.
    pub max_iterations: usize,
    /// Verify the hidden-set invariant with the flow tracker after every
    /// iteration (costs `O(objects · K)` per iteration).
    pub verify_hidden: bool,
}

impl Default for EssentialConfig {
    fn default() -> Self {
        EssentialConfig {
            f_k: 1,
            min_active: 4,
            max_iterations: 64,
            verify_hidden: true,
        }
    }
}

struct Writer {
    machine: Machine,
    /// `(prim, response)` of every step taken, for replay verification.
    history: Vec<(Prim, Word)>,
    erased: bool,
    halted: bool,
}

/// Runs the essential-set construction against `reg` with `K = k` (one
/// reader plus `k − 1` writers; writer `p_i` performs `WriteMax(i + 1)`).
///
/// `mem` must be the memory the register's cells were allocated in, with
/// no events applied yet.
///
/// # Panics
///
/// Panics if `k < 3` or `mem` already has events.
pub fn run_essential(
    reg: &dyn SimMaxRegister,
    mem: &mut Memory,
    k: usize,
    config: EssentialConfig,
) -> EssentialOutcome {
    assert!(k >= 3, "need at least two writers and a reader");
    assert_eq!(mem.steps(), 0, "memory must be fresh");
    let initial = mem.snapshot();
    let writers = k - 1;

    let mut state: Vec<Writer> = (0..writers)
        .map(|i| Writer {
            machine: reg.write_max(ProcessId(i), i as u64 + 1),
            history: Vec::new(),
            erased: false,
            halted: false,
        })
        .collect();
    let mut schedule: Vec<ProcessId> = Vec::new();
    let mut essential: BTreeSet<usize> = (0..writers).collect();
    let mut tracker = FlowTracker::new(k);
    let mut trace = Vec::new();
    let mut hidden_ok = true;
    let mut replays_faithful = true;
    let mut replays = 0usize;
    let mut iterations = 0usize;

    let stop = loop {
        if iterations >= config.max_iterations {
            break StopReason::MaxIterations;
        }
        let completed: Vec<usize> = essential
            .iter()
            .copied()
            .filter(|&p| state[p].machine.is_done())
            .collect();
        if 2 * completed.len() >= essential.len() && iterations > 0 {
            break StopReason::HalfCompleted;
        }
        let active: Vec<usize> = essential
            .iter()
            .copied()
            .filter(|&p| !state[p].machine.is_done())
            .collect();
        let m = active.len();
        if m < config.min_active {
            break StopReason::EssentialTooSmall;
        }

        // Group enabled events by target object.
        let mut groups: Vec<(ObjId, Vec<usize>)> = Vec::new();
        for &p in &active {
            let prim = state[p].machine.enabled().expect("active has event");
            let obj = prim.obj();
            match groups.iter_mut().find(|(o, _)| *o == obj) {
                Some((_, v)) => v.push(p),
                None => groups.push((obj, vec![p])),
            }
        }
        let distinct = groups.len();
        let sqrt_m = (m as f64).sqrt().ceil() as usize;

        // Decide next essential set + schedule for this iteration.
        let (case, chosen, halted_now, to_erase): (
            CaseKind,
            Vec<usize>,
            Option<usize>,
            BTreeSet<usize>,
        ) = if distinct >= sqrt_m {
            // ---- Low contention (Figure 1) ----
            // One process per object (the largest id, arbitrary per the
            // proof), thinned to an independent set of the conflict
            // graph: edge (v_o, v_o') when p^{o'} ∈ F(o).
            let reps: Vec<(ObjId, usize)> = groups
                .iter()
                .map(|(o, ps)| (*o, *ps.iter().max().expect("nonempty group")))
                .collect();
            let mut edges = Vec::new();
            for (a, &(o, _)) in reps.iter().enumerate() {
                let fam = tracker.familiarity(o);
                for (b, &(_, q)) in reps.iter().enumerate() {
                    if a != b && fam.contains(ProcessId(q)) {
                        edges.push((a, b));
                    }
                }
            }
            let indep = greedy_independent_set(reps.len(), &edges);
            let chosen: Vec<usize> = indep.into_iter().map(|i| reps[i].1).collect();
            let erase: BTreeSet<usize> = essential
                .iter()
                .copied()
                .filter(|p| !chosen.contains(p))
                .collect();
            (CaseKind::LowContention, chosen, None, erase)
        } else {
            // ---- High contention (Figure 2) ----
            let (obj, group) = groups
                .iter()
                .max_by_key(|(_, ps)| ps.len())
                .expect("groups nonempty")
                .clone();
            let cur = mem.peek(obj);
            let mut p_cas = Vec::new();
            let mut p_write = Vec::new();
            let mut p_trivial = Vec::new();
            for &p in &group {
                let prim = state[p].machine.enabled().expect("active");
                match prim {
                    Prim::Write(..) => p_write.push(p),
                    Prim::Cas { expected, new, .. } => {
                        if expected == cur && new != cur {
                            p_cas.push(p);
                        } else {
                            p_trivial.push(p);
                        }
                    }
                    Prim::Read(_) => p_trivial.push(p),
                }
            }
            // S = F(o) ∩ active essential processes.
            let fam = tracker.familiarity(obj);
            let s: BTreeSet<usize> = active
                .iter()
                .copied()
                .filter(|&p| fam.contains(ProcessId(p)))
                .collect();

            let largest = p_cas.len().max(p_write.len()).max(p_trivial.len());
            if largest == p_cas.len() && !p_cas.is_empty() {
                // pl = smallest id whose erasure S does not claim.
                let pl = *p_cas
                    .iter()
                    .filter(|p| !s.contains(p))
                    .min()
                    .expect("CAS group larger than |S| ≤ 1");
                let chosen: Vec<usize> = p_cas
                    .iter()
                    .copied()
                    .filter(|&p| p != pl && !s.contains(&p))
                    .collect();
                let mut erase: BTreeSet<usize> = essential
                    .iter()
                    .copied()
                    .filter(|p| !p_cas.contains(p))
                    .collect();
                erase.extend(s.iter().copied().filter(|&p| p != pl));
                (CaseKind::HighContentionCas, chosen, Some(pl), erase)
            } else if largest == p_write.len() && !p_write.is_empty() {
                let pl = *p_write.iter().min().expect("nonempty");
                let chosen: Vec<usize> = p_write.iter().copied().filter(|&p| p != pl).collect();
                let erase: BTreeSet<usize> = essential
                    .iter()
                    .copied()
                    .filter(|p| !p_write.contains(p))
                    .collect();
                (CaseKind::HighContentionWrite, chosen, Some(pl), erase)
            } else {
                let chosen: Vec<usize> = p_trivial
                    .iter()
                    .copied()
                    .filter(|p| !s.contains(p))
                    .collect();
                let mut erase: BTreeSet<usize> = essential
                    .iter()
                    .copied()
                    .filter(|p| !p_trivial.contains(p))
                    .collect();
                erase.extend(s.iter().copied());
                (CaseKind::HighContentionRead, chosen, None, erase)
            }
        };

        if chosen.len() < config.f_k.max(1) {
            break StopReason::EssentialBelowThreshold;
        }

        // ---- Erase by replay (mechanized Lemma 2) ----
        if !to_erase.is_empty() {
            for &p in &to_erase {
                state[p].erased = true;
            }
            schedule.retain(|pid| !state[pid.index()].erased);
            mem.reset_to(&initial);
            // Fresh machines for every surviving writer.
            for (i, w) in state.iter_mut().enumerate() {
                if !w.erased {
                    w.machine = reg.write_max(ProcessId(i), i as u64 + 1);
                }
            }
            let mut replay_pos = vec![0usize; writers];
            for &pid in &schedule {
                let p = pid.index();
                let prim = state[p].machine.enabled().expect("replay step exists");
                let resp = mem.apply(pid, prim);
                let (orig_prim, orig_resp) = state[p].history[replay_pos[p]];
                if prim != orig_prim || resp != orig_resp {
                    replays_faithful = false;
                }
                replay_pos[p] += 1;
                state[p].machine.feed(resp);
            }
            replays += 1;
            tracker = FlowTracker::new(k);
            tracker.observe_log_suffix(mem.log());
        }

        // ---- Schedule this iteration's events ----
        let mut order: Vec<usize> = Vec::new();
        match case {
            CaseKind::HighContentionCas => {
                order.push(halted_now.expect("CAS case halts"));
                let mut rest = chosen.clone();
                rest.sort_unstable();
                order.extend(rest);
            }
            CaseKind::HighContentionWrite => {
                let mut rest = chosen.clone();
                rest.sort_unstable();
                order.extend(rest);
                order.push(halted_now.expect("write case halts"));
            }
            _ => {
                let mut rest = chosen.clone();
                rest.sort_unstable();
                order.extend(rest);
            }
        }
        for p in order {
            let pid = ProcessId(p);
            let prim = state[p].machine.enabled().expect("scheduled step exists");
            let resp = mem.apply(pid, prim);
            state[p].history.push((prim, resp));
            state[p].machine.feed(resp);
            schedule.push(pid);
        }
        if let Some(pl) = halted_now {
            state[pl].halted = true;
        }
        tracker.observe_log_suffix(mem.log());

        essential = chosen.iter().copied().collect();
        iterations += 1;

        // ---- Verify the hidden-set invariant (Def. 5) ----
        if config.verify_hidden {
            let mut ess_set = crate::flow::ProcSet::empty(k);
            for &p in &essential {
                ess_set.insert(ProcessId(p));
            }
            for &p in &essential {
                if !tracker.is_hidden(ProcessId(p)) {
                    hidden_ok = false;
                }
            }
            for i in 0..tracker.tracked_objects() {
                if tracker.familiar_members(ObjId::from_index(i), &ess_set) > 1 {
                    hidden_ok = false;
                }
            }
        }

        trace.push(RoundTrace {
            iteration: iterations,
            case,
            active_before: m,
            essential_after: essential.len(),
            erased: to_erase.len(),
            halted: halted_now.map(ProcessId),
            distinct_objects: distinct,
            completed_before: completed.len(),
        });
    };

    // ---- Lemma 5/6 epilogue: a fresh reader must see the maximum
    // completed value. ----
    let max_completed_value = state
        .iter()
        .enumerate()
        .filter(|(_, w)| !w.erased && w.machine.is_done())
        .map(|(i, _)| i as u64 + 1)
        .max()
        .unwrap_or(0);
    let reader = ProcessId(k - 1);
    let mut read_machine = reg.read_max(reader);
    let mut reader_objects = BTreeSet::new();
    while let Some(prim) = read_machine.enabled() {
        reader_objects.insert(prim.obj());
        let resp = mem.apply(reader, prim);
        read_machine.feed(resp);
    }
    let reader_value = read_machine.result().expect("read completes") as u64;

    EssentialOutcome {
        k,
        iterations,
        stop,
        trace,
        final_essential: essential.iter().map(|&p| ProcessId(p)).collect(),
        hidden_invariant_held: hidden_ok,
        replays_faithful,
        replays,
        reader_steps: read_machine.steps(),
        reader_distinct_objects: reader_objects.len(),
        reader_value,
        max_completed_value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruo_core::maxreg::sim::{SimCasRetryMaxRegister, SimTreeMaxRegister};

    fn run_tree(k: usize) -> EssentialOutcome {
        let mut mem = Memory::new();
        let reg = SimTreeMaxRegister::new(&mut mem, k);
        run_essential(&reg, &mut mem, k, EssentialConfig::default())
    }

    #[test]
    fn construction_runs_on_algorithm_a() {
        let out = run_tree(64);
        assert!(out.iterations >= 1, "at least one iteration must succeed");
        assert!(out.replays_faithful, "Lemma 2 replay diverged");
        assert!(out.hidden_invariant_held, "hidden-set invariant broken");
    }

    #[test]
    fn essential_set_decays_no_faster_than_sqrt_over_3() {
        let out = run_tree(256);
        for t in &out.trace {
            let floor = ((t.active_before as f64).sqrt() / 3.0).floor() as usize;
            assert!(
                t.essential_after + 2 >= floor,
                "iteration {}: |E| = {} fell below √m/3 − 2 = {}",
                t.iteration,
                t.essential_after,
                floor.saturating_sub(2)
            );
        }
    }

    #[test]
    fn reader_sees_the_maximum_completed_write() {
        let out = run_tree(64);
        assert!(
            out.reader_value >= out.max_completed_value,
            "reader missed a completed write: {} < {}",
            out.reader_value,
            out.max_completed_value
        );
        // And never invents values: all operands are ≤ k-1.
        assert!(out.reader_value < out.k as u64);
    }

    #[test]
    fn iterations_grow_slowly_with_k() {
        // Theorem 3: i* = Ω(log log K) for O(1)-read registers — i.e.
        // doubly logarithmic growth. Mechanically we check monotonicity
        // in the adversary's favor: more processes never hurt.
        let small = run_tree(32).iterations;
        let large = run_tree(512).iterations;
        assert!(large >= small, "i*({large}) < i*({small})");
        assert!(large >= 2, "512 processes should survive ≥ 2 iterations");
    }

    #[test]
    fn cas_retry_register_hits_the_high_contention_case() {
        // Every writer targets the single cell: iteration 1 must be a
        // high-contention round.
        let mut mem = Memory::new();
        let k = 64;
        let reg = SimCasRetryMaxRegister::new(&mut mem, k);
        let out = run_essential(&reg, &mut mem, k, EssentialConfig::default());
        assert!(!out.trace.is_empty());
        assert_eq!(out.trace[0].distinct_objects, 1);
        assert!(matches!(
            out.trace[0].case,
            CaseKind::HighContentionCas | CaseKind::HighContentionRead
        ));
        assert!(out.replays_faithful);
        assert!(out.hidden_invariant_held);
    }

    #[test]
    fn trace_is_consistent() {
        let out = run_tree(128);
        for (i, t) in out.trace.iter().enumerate() {
            assert_eq!(t.iteration, i + 1);
            assert!(t.essential_after <= t.active_before);
            if matches!(
                t.case,
                CaseKind::HighContentionCas | CaseKind::HighContentionWrite
            ) {
                assert!(t.halted.is_some());
            } else {
                assert!(t.halted.is_none());
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least two writers")]
    fn tiny_k_is_rejected() {
        let mut mem = Memory::new();
        let reg = SimTreeMaxRegister::new(&mut mem, 2);
        let _ = run_essential(&reg, &mut mem, 2, EssentialConfig::default());
    }
}
