//! The Theorem 1 construction: an adversarial execution of `N − 1`
//! concurrent `CounterIncrement`s under the Lemma 1 schedule, followed
//! by Lemma 3's reader argument.
//!
//! The proof iterates the Lemma 1 round until all increments complete,
//! maintaining `M(E_j) ≤ 3^j`; if completion happened in
//! `r = o(log₃(N / f(N)))` rounds, every familiarity set would have
//! `o(N / f(N))` members, so a `CounterRead` by the fresh process `p_N` —
//! which must end up aware of **all** `N` processes (Lemma 3) while
//! gaining at most one familiarity set per step — could not finish in
//! `O(f(N))` steps. Hence some increment takes `Ω(log(N / f(N)))`
//! steps.
//!
//! [`run_theorem1`] executes exactly that experiment against any
//! [`SimCounter`] and reports every quantity the argument relies on.

use ruo_core::counter::sim::SimCounter;
use ruo_sim::{Machine, Memory, ProcessId};

use crate::flow::FlowTracker;
use crate::lemma1::lemma1_round;

/// Everything the Theorem 1 experiment measures.
#[derive(Clone, Debug)]
pub struct Theorem1Outcome {
    /// Number of processes `N` (including the reader `p_N`).
    pub n: usize,
    /// Rounds of the Lemma 1 schedule until all `N − 1` increments
    /// completed — a lower bound on the worst-case increment step
    /// complexity under this adversary.
    pub rounds: usize,
    /// `M(E_j)` after each round `j` (the knowledge measure).
    pub knowledge_per_round: Vec<usize>,
    /// Whether `M(E_j) ≤ 3^j` held for every round (Lemma 1's
    /// invariant).
    pub knowledge_bound_held: bool,
    /// Steps the reader's `CounterRead` took after the construction.
    pub reader_steps: usize,
    /// The count the reader returned (must be `N − 1`).
    pub reader_value: i64,
    /// `|AW(p_N)|` after the read — Lemma 3 says it must equal `N`.
    pub reader_awareness: usize,
    /// `|AW(p_N)|` after each of the reader's steps: the growth curve
    /// that powers the tradeoff. Each step reads one base object and
    /// can add at most that object's familiarity set, which the
    /// construction bounded by `3^rounds` — so few steps cannot reach
    /// awareness `N` unless `rounds` was large.
    pub reader_awareness_curve: Vec<usize>,
    /// Maximum increment step count among the `N − 1` writers.
    pub max_increment_steps: usize,
}

impl Theorem1Outcome {
    /// The theorem's predicted lower bound for this `N` and the measured
    /// read cost: `log₃(N / f(N))`, rounded down (0 if `f(N) ≥ N`).
    pub fn predicted_rounds(&self) -> usize {
        let f = self.reader_steps.max(1) as f64;
        let ratio = self.n as f64 / f;
        if ratio <= 1.0 {
            0
        } else {
            ratio.log(3.0).floor() as usize
        }
    }
}

/// Runs the Theorem 1 experiment: processes `p_0 .. p_{N-2}` each
/// perform one `CounterIncrement` under the Lemma 1 adversary; then
/// `p_{N-1}` performs a solo `CounterRead`.
///
/// `mem` must be the memory the counter's cells were allocated in, with
/// no events applied yet.
///
/// # Panics
///
/// Panics if the counter supports fewer than 2 processes, if events were
/// already applied to `mem`, or if the construction exceeds
/// `max_rounds` (a safety valve — wait-free counters finish in their
/// step bound).
pub fn run_theorem1(
    counter: &dyn SimCounter,
    mem: &mut Memory,
    max_rounds: usize,
) -> Theorem1Outcome {
    let n = counter.n();
    assert!(n >= 2, "need at least one incrementer and one reader");
    assert_eq!(mem.steps(), 0, "memory must be fresh");

    let mut machines: Vec<(ProcessId, Machine)> = (0..n - 1)
        .map(|i| (ProcessId(i), counter.increment(ProcessId(i))))
        .collect();
    let mut tracker = FlowTracker::new(n);
    let mut knowledge_per_round = Vec::new();
    let mut knowledge_bound_held = true;
    let mut rounds = 0usize;
    let mut bound = 1usize;

    while machines.iter().any(|(_, m)| !m.is_done()) {
        assert!(
            rounds < max_rounds,
            "construction exceeded {max_rounds} rounds — counter not wait-free under this schedule?"
        );
        let mut procs: Vec<(ProcessId, &mut Machine)> = machines
            .iter_mut()
            .filter(|(_, m)| !m.is_done())
            .map(|(p, m)| (*p, m))
            .collect();
        lemma1_round(mem, &mut procs);
        rounds += 1;
        bound = bound.saturating_mul(3);
        tracker.observe_log_suffix(mem.log());
        let m_e = tracker.max_knowledge();
        knowledge_per_round.push(m_e);
        if m_e > bound {
            knowledge_bound_held = false;
        }
    }

    let max_increment_steps = machines.iter().map(|(_, m)| m.steps()).max().unwrap_or(0);

    // Lemma 3: the reader must become aware of every process. Track the
    // awareness growth per step — each read can contribute at most one
    // familiarity set.
    let reader = ProcessId(n - 1);
    let mut read_machine = counter.read(reader);
    let mut reader_awareness_curve = Vec::new();
    while let Some(prim) = read_machine.enabled() {
        let resp = mem.apply(reader, prim);
        read_machine.feed(resp);
        tracker.observe_log_suffix(mem.log());
        reader_awareness_curve.push(tracker.awareness(reader).len());
    }

    Theorem1Outcome {
        n,
        rounds,
        knowledge_per_round,
        knowledge_bound_held,
        reader_steps: read_machine.steps(),
        reader_value: read_machine.result().expect("read completed"),
        reader_awareness: tracker.awareness(reader).len(),
        reader_awareness_curve,
        max_increment_steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruo_core::counter::sim::{SimAacCounter, SimCasLoopCounter, SimFArrayCounter};

    #[test]
    fn farray_counter_satisfies_lemma_3() {
        let mut mem = Memory::new();
        let n = 16;
        let c = SimFArrayCounter::new(&mut mem, n);
        let out = run_theorem1(&c, &mut mem, 10_000);
        assert_eq!(out.reader_value, n as i64 - 1, "read must return N-1");
        assert!(out.knowledge_bound_held, "M(E_j) ≤ 3^j violated");
        assert_eq!(
            out.reader_awareness, n,
            "Lemma 3: reader must be aware of all N processes"
        );
        assert_eq!(out.reader_steps, 1, "f-array read is one step");
    }

    #[test]
    fn farray_rounds_exceed_theorem_prediction() {
        for n in [8usize, 32, 128] {
            let mut mem = Memory::new();
            let c = SimFArrayCounter::new(&mut mem, n);
            let out = run_theorem1(&c, &mut mem, 100_000);
            assert!(
                out.rounds >= out.predicted_rounds(),
                "n={n}: measured {} rounds < predicted {}",
                out.rounds,
                out.predicted_rounds()
            );
            // The f-array increment is O(log N): rounds should be within
            // a constant of 8·log2(N).
            let log2n = (n as f64).log2().ceil() as usize;
            assert!(out.rounds <= 3 + 8 * log2n, "n={n}: rounds {}", out.rounds);
        }
    }

    #[test]
    fn cas_loop_counter_is_starved_into_linear_rounds() {
        // All N-1 CAS-loop increments target one cell; the adversary lets
        // one succeed per round, so completion takes ~N-1 rounds — far
        // above the logarithmic lower bound, consistent with Theorem 1.
        let n = 32;
        let mut mem = Memory::new();
        let c = SimCasLoopCounter::new(&mut mem, n);
        let out = run_theorem1(&c, &mut mem, 100_000);
        assert_eq!(out.reader_value, n as i64 - 1);
        assert!(out.knowledge_bound_held);
        assert!(
            out.rounds >= n - 2,
            "expected ~N-1 rounds of CAS starvation, got {}",
            out.rounds
        );
    }

    #[test]
    fn aac_counter_completes_and_counts() {
        let n = 8;
        let mut mem = Memory::new();
        let c = SimAacCounter::new(&mut mem, n, n as u64);
        let out = run_theorem1(&c, &mut mem, 100_000);
        assert_eq!(out.reader_value, n as i64 - 1);
        assert!(out.knowledge_bound_held);
        // NOTE: unlike the f-array case, the strict Def. 2 awareness of
        // the reader can be tiny here. The AAC counter's switch cells
        // receive repeated *trivial* writes of `1`, and per Definition 1
        // a write — trivial or not — renders the previous (uncovered)
        // write invisible, cutting the formal awareness chain even
        // though the value itself survives. The paper's Lemma 3
        // argument routes around this via the erasure construction
        // (erasing a process also erases the covering writers' suffixes,
        // because they became aware of it when reading the leaves); the
        // tracker implements the literal definitions, so we only assert
        // semantic correctness and the Lemma 1 bound here.
        assert!(out.reader_awareness >= 1);
    }

    #[test]
    fn reader_awareness_grows_by_at_most_one_familiarity_set_per_step() {
        // Lemma 3's accounting: each read step can add at most the read
        // object's familiarity set, itself bounded by M(E) ≤ 3^rounds.
        let n = 64;
        let mut mem = Memory::new();
        let c = SimFArrayCounter::new(&mut mem, n);
        let out = run_theorem1(&c, &mut mem, 100_000);
        let cap = 3usize.saturating_pow(out.rounds as u32).min(n);
        let mut prev = 1usize; // the reader starts aware of itself
        for (step, &aw) in out.reader_awareness_curve.iter().enumerate() {
            assert!(
                aw <= prev + cap,
                "step {step}: awareness jumped {prev} -> {aw} (cap {cap})"
            );
            assert!(aw >= prev, "awareness shrank");
            prev = aw;
        }
        assert_eq!(prev, n, "the reader must end aware of everyone");
    }

    #[test]
    fn rejects_used_memory() {
        let mut mem = Memory::new();
        let c = SimFArrayCounter::new(&mut mem, 4);
        let o = mem.alloc(0);
        mem.apply(ProcessId(0), ruo_sim::Prim::Read(o));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_theorem1(&c, &mut mem, 100)
        }));
        assert!(result.is_err());
    }
}
