//! Greedy independent sets with the Turán guarantee.
//!
//! The low-contention case of Lemma 4 builds a conflict graph over the
//! chosen processes (an edge when one process is about to access an
//! object familiar with another) and needs an independent set of size
//! `≥ k / (d̄ + 1)` where `d̄` is the average degree — Turán's theorem.
//! The classical greedy proof is constructive: repeatedly take a
//! minimum-degree vertex and delete its neighborhood.

/// Computes an independent set of `n` vertices given an edge list, with
/// the Turán guarantee `|I| ≥ n / (d̄ + 1)`.
///
/// Vertices are `0..n`; self-loops and duplicate edges are tolerated
/// (duplicates only make the guarantee easier). Returns vertex indices
/// in increasing order.
pub fn greedy_independent_set(n: usize, edges: &[(usize, usize)]) -> Vec<usize> {
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in edges {
        if a == b || a >= n || b >= n {
            continue;
        }
        adj[a].push(b);
        adj[b].push(a);
    }
    let mut alive = vec![true; n];
    let mut degree: Vec<usize> = adj.iter().map(Vec::len).collect();
    let mut result = Vec::new();
    // Repeatedly take a min-degree alive vertex and delete its
    // neighborhood.
    while let Some(v) = (0..n).filter(|&v| alive[v]).min_by_key(|&v| degree[v]) {
        result.push(v);
        alive[v] = false;
        for &u in &adj[v] {
            if alive[u] {
                alive[u] = false;
                for &w in &adj[u] {
                    if alive[w] {
                        degree[w] = degree[w].saturating_sub(1);
                    }
                }
            }
        }
    }
    result.sort_unstable();
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_independent(edges: &[(usize, usize)], set: &[usize]) -> bool {
        edges
            .iter()
            .all(|&(a, b)| a == b || !(set.contains(&a) && set.contains(&b)))
    }

    #[test]
    fn empty_graph_returns_everything() {
        assert_eq!(greedy_independent_set(4, &[]), vec![0, 1, 2, 3]);
    }

    #[test]
    fn triangle_yields_one_vertex() {
        let edges = [(0, 1), (1, 2), (0, 2)];
        let set = greedy_independent_set(3, &edges);
        assert_eq!(set.len(), 1);
        assert!(is_independent(&edges, &set));
    }

    #[test]
    fn path_graph_picks_alternating_vertices() {
        let edges = [(0, 1), (1, 2), (2, 3), (3, 4)];
        let set = greedy_independent_set(5, &edges);
        assert!(is_independent(&edges, &set));
        assert!(set.len() >= 3, "path of 5 has an independent set of 3");
    }

    #[test]
    fn turan_bound_holds_on_random_graphs() {
        // Deterministic pseudo-random graphs; check |I| ≥ n/(d̄+1).
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for n in [10usize, 25, 60] {
            let m = n * 2;
            let edges: Vec<(usize, usize)> = (0..m)
                .map(|_| ((next() % n as u64) as usize, (next() % n as u64) as usize))
                .collect();
            let set = greedy_independent_set(n, &edges);
            assert!(is_independent(&edges, &set), "n={n}");
            let real_edges = edges.iter().filter(|(a, b)| a != b).count();
            let avg_deg = 2.0 * real_edges as f64 / n as f64;
            let bound = (n as f64 / (avg_deg + 1.0)).floor() as usize;
            assert!(
                set.len() >= bound,
                "n={n}: |I| = {} < Turán bound {bound}",
                set.len()
            );
        }
    }

    #[test]
    fn self_loops_and_out_of_range_edges_are_ignored() {
        let set = greedy_independent_set(3, &[(0, 0), (7, 1), (1, 2)]);
        assert!(set.len() >= 2);
        assert!(is_independent(&[(1, 2)], &set));
    }
}
