//! Experiment W3 — wall-clock throughput of the snapshots.
//!
//! The scan/update tradeoff in the wild: double-collect pays on scans
//! under update pressure (obstruction-free retries), the path-copying
//! snapshot pays O(log N) per update but scans from a single pointer
//! load, and the Afek snapshot pays O(N²) everywhere for wait-freedom.

use std::sync::atomic::{AtomicU64, Ordering};

use ruo_bench::timing::{bench_batch, BenchConfig};
use ruo_core::snapshot::{AfekSnapshot, DoubleCollectSnapshot, PathCopySnapshot};
use ruo_core::Snapshot;
use ruo_sim::ProcessId;

const OPS: u64 = 1_000;

fn run_batch<S: Snapshot>(snap: &S, threads: usize, scan_pct: u64, sink: &AtomicU64) {
    std::thread::scope(|s| {
        for t in 0..threads {
            s.spawn(move || {
                let mut acc = 0u64;
                let mut state = (t as u64 + 1) * 0x9E37_79B9;
                for i in 0..OPS {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    if state % 100 < scan_pct {
                        acc ^= snap.scan().iter().sum::<u64>();
                    } else {
                        snap.update(ProcessId(t), i + 1);
                    }
                }
                sink.fetch_xor(acc, Ordering::Relaxed);
            });
        }
    });
}

fn main() {
    let cfg = BenchConfig::from_args();
    let sink = AtomicU64::new(0);
    for &threads in &[1usize, 2, 4] {
        for &scan_pct in &[50u64, 90] {
            let prefix = format!("snapshot/t{threads}/s{scan_pct}");
            let elements = OPS * threads as u64;
            bench_batch(&cfg, &format!("{prefix}/double_collect"), elements, || {
                let snap = DoubleCollectSnapshot::new(threads);
                run_batch(&snap, threads, scan_pct, &sink);
            });
            bench_batch(&cfg, &format!("{prefix}/path_copy"), elements, || {
                let snap = PathCopySnapshot::new(threads, OPS * threads as u64 + 1);
                run_batch(&snap, threads, scan_pct, &sink);
            });
            bench_batch(&cfg, &format!("{prefix}/afek"), elements, || {
                let snap = AfekSnapshot::new(threads);
                run_batch(&snap, threads, scan_pct, &sink);
            });
        }
    }
    eprintln!("# sink {}", sink.load(Ordering::Relaxed));
}
