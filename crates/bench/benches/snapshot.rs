//! Experiment W3 — wall-clock throughput of the snapshots.
//!
//! The scan/update tradeoff in the wild: double-collect pays on scans
//! under update pressure (obstruction-free retries), the path-copying
//! snapshot pays O(log N) per update but scans from a single pointer
//! load, and the Afek snapshot pays O(N²) everywhere for wait-freedom.

use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ruo_core::snapshot::{AfekSnapshot, DoubleCollectSnapshot, PathCopySnapshot};
use ruo_core::Snapshot;
use ruo_sim::ProcessId;

const OPS: u64 = 1_000;

fn run_batch<S: Snapshot>(snap: &S, threads: usize, scan_pct: u64, sink: &AtomicU64) {
    crossbeam_utils::thread::scope(|s| {
        for t in 0..threads {
            s.spawn(move |_| {
                let mut acc = 0u64;
                let mut state = (t as u64 + 1) * 0x9E37_79B9;
                for i in 0..OPS {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    if state % 100 < scan_pct {
                        acc ^= snap.scan().iter().sum::<u64>();
                    } else {
                        snap.update(ProcessId(t), i + 1);
                    }
                }
                sink.fetch_xor(acc, Ordering::Relaxed);
            });
        }
    })
    .expect("worker panicked");
}

fn bench_snapshot(c: &mut Criterion) {
    let sink = AtomicU64::new(0);
    for &threads in &[1usize, 2, 4] {
        for &scan_pct in &[50u64, 90] {
            let mut group = c.benchmark_group(format!("snapshot/t{threads}/s{scan_pct}"));
            group.throughput(Throughput::Elements(OPS * threads as u64));
            group.sample_size(10);
            group.measurement_time(std::time::Duration::from_secs(2));
            group.warm_up_time(std::time::Duration::from_millis(500));
            group.bench_function(BenchmarkId::from_parameter("double_collect"), |b| {
                b.iter(|| {
                    let snap = DoubleCollectSnapshot::new(threads);
                    run_batch(&snap, threads, scan_pct, &sink);
                })
            });
            group.bench_function(BenchmarkId::from_parameter("path_copy"), |b| {
                b.iter(|| {
                    let snap = PathCopySnapshot::new(threads, OPS * threads as u64 + 1);
                    run_batch(&snap, threads, scan_pct, &sink);
                })
            });
            group.bench_function(BenchmarkId::from_parameter("afek"), |b| {
                b.iter(|| {
                    let snap = AfekSnapshot::new(threads);
                    run_batch(&snap, threads, scan_pct, &sink);
                })
            });
            group.finish();
        }
    }
}

criterion_group!(benches, bench_snapshot);
criterion_main!(benches);
