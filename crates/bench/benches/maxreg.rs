//! Experiment W1 — wall-clock throughput of the max registers.
//!
//! The paper predicts the *shape*: Algorithm A (O(1) reads) should beat
//! the AAC register (O(log M) reads) on read-heavy mixes, with the gap
//! growing as reads dominate. The single-CAS-cell and mutex baselines
//! anchor the scale.
//!
//! Each measured batch constructs a fresh register and runs `THREADS`
//! threads, each performing `OPS` operations with the given read
//! percentage (deterministic per-thread value streams).

use std::sync::atomic::{AtomicU64, Ordering};

use ruo_bench::timing::{bench_batch, BenchConfig};
use ruo_core::maxreg::{
    AacMaxRegister, CasRetryMaxRegister, FArrayMaxRegister, LockMaxRegister, TreeMaxRegister,
};
use ruo_core::MaxRegister;
use ruo_sim::ProcessId;

const OPS: u64 = 2_000;
// Kept small enough that building the AAC switch arena (2·M nodes) is
// negligible next to the measured operations — each batch constructs a
// fresh register.
const AAC_CAPACITY: u64 = 1 << 12;

fn run_batch<R: MaxRegister>(reg: &R, threads: usize, read_pct: u64, sink: &AtomicU64) {
    std::thread::scope(|s| {
        for t in 0..threads {
            s.spawn(move || {
                let mut acc = 0u64;
                let mut state = (t as u64 + 1) * 0x9E37_79B9;
                for i in 0..OPS {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    if state % 100 < read_pct {
                        acc ^= reg.read_max();
                    } else {
                        // Values stay within the AAC bound and grow so
                        // writes keep doing real propagation work.
                        let v = (i * threads as u64 + t as u64) % AAC_CAPACITY;
                        reg.write_max(ProcessId(t), v);
                    }
                }
                sink.fetch_xor(acc, Ordering::Relaxed);
            });
        }
    });
}

fn main() {
    let cfg = BenchConfig::from_args();
    let sink = AtomicU64::new(0);
    for &threads in &[1usize, 2, 4] {
        for &read_pct in &[50u64, 90, 99] {
            let prefix = format!("maxreg/t{threads}/r{read_pct}");
            let elements = OPS * threads as u64;
            bench_batch(&cfg, &format!("{prefix}/algorithm_a"), elements, || {
                let reg = TreeMaxRegister::new(threads);
                run_batch(&reg, threads, read_pct, &sink);
            });
            bench_batch(&cfg, &format!("{prefix}/aac"), elements, || {
                let reg = AacMaxRegister::new(AAC_CAPACITY);
                run_batch(&reg, threads, read_pct, &sink);
            });
            bench_batch(&cfg, &format!("{prefix}/aac_unbalanced"), elements, || {
                let reg = AacMaxRegister::new_unbalanced(AAC_CAPACITY);
                run_batch(&reg, threads, read_pct, &sink);
            });
            bench_batch(&cfg, &format!("{prefix}/farray"), elements, || {
                let reg = FArrayMaxRegister::new(threads);
                run_batch(&reg, threads, read_pct, &sink);
            });
            bench_batch(&cfg, &format!("{prefix}/cas_cell"), elements, || {
                let reg = CasRetryMaxRegister::new();
                run_batch(&reg, threads, read_pct, &sink);
            });
            bench_batch(&cfg, &format!("{prefix}/mutex"), elements, || {
                let reg = LockMaxRegister::new();
                run_batch(&reg, threads, read_pct, &sink);
            });
        }
    }
    // Keep the accumulated reads observable so nothing is optimized out.
    eprintln!("# sink {}", sink.load(Ordering::Relaxed));
}
