//! Experiment W1 — wall-clock throughput of the max registers.
//!
//! The paper predicts the *shape*: Algorithm A (O(1) reads) should beat
//! the AAC register (O(log M) reads) on read-heavy mixes, with the gap
//! growing as reads dominate. The single-CAS-cell and mutex baselines
//! anchor the scale.
//!
//! Each measured batch constructs a fresh register and runs `THREADS`
//! threads, each performing `OPS` operations with the given read
//! percentage (deterministic per-thread value streams).

use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ruo_core::maxreg::{
    AacMaxRegister, CasRetryMaxRegister, FArrayMaxRegister, LockMaxRegister, TreeMaxRegister,
};
use ruo_core::MaxRegister;
use ruo_sim::ProcessId;

const OPS: u64 = 2_000;
// Kept small enough that building the AAC switch arena (2·M nodes) is
// negligible next to the measured operations — each batch constructs a
// fresh register.
const AAC_CAPACITY: u64 = 1 << 12;

fn run_batch<R: MaxRegister>(reg: &R, threads: usize, read_pct: u64, sink: &AtomicU64) {
    crossbeam_utils::thread::scope(|s| {
        for t in 0..threads {
            s.spawn(move |_| {
                let mut acc = 0u64;
                let mut state = (t as u64 + 1) * 0x9E37_79B9;
                for i in 0..OPS {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    if state % 100 < read_pct {
                        acc ^= reg.read_max();
                    } else {
                        // Values stay within the AAC bound and grow so
                        // writes keep doing real propagation work.
                        let v = (i * threads as u64 + t as u64) % AAC_CAPACITY;
                        reg.write_max(ProcessId(t), v);
                    }
                }
                sink.fetch_xor(acc, Ordering::Relaxed);
            });
        }
    })
    .expect("worker panicked");
}

fn bench_maxreg(c: &mut Criterion) {
    let sink = AtomicU64::new(0);
    for &threads in &[1usize, 2, 4] {
        for &read_pct in &[50u64, 90, 99] {
            let mut group = c.benchmark_group(format!("maxreg/t{threads}/r{read_pct}"));
            group.throughput(Throughput::Elements(OPS * threads as u64));
            group.sample_size(10);
            group.measurement_time(std::time::Duration::from_secs(2));
            group.warm_up_time(std::time::Duration::from_millis(500));
            group.bench_function(BenchmarkId::from_parameter("algorithm_a"), |b| {
                b.iter(|| {
                    let reg = TreeMaxRegister::new(threads);
                    run_batch(&reg, threads, read_pct, &sink);
                })
            });
            group.bench_function(BenchmarkId::from_parameter("aac"), |b| {
                b.iter(|| {
                    let reg = AacMaxRegister::new(AAC_CAPACITY);
                    run_batch(&reg, threads, read_pct, &sink);
                })
            });
            group.bench_function(BenchmarkId::from_parameter("aac_unbalanced"), |b| {
                b.iter(|| {
                    let reg = AacMaxRegister::new_unbalanced(AAC_CAPACITY);
                    run_batch(&reg, threads, read_pct, &sink);
                })
            });
            group.bench_function(BenchmarkId::from_parameter("farray"), |b| {
                b.iter(|| {
                    let reg = FArrayMaxRegister::new(threads);
                    run_batch(&reg, threads, read_pct, &sink);
                })
            });
            group.bench_function(BenchmarkId::from_parameter("cas_cell"), |b| {
                b.iter(|| {
                    let reg = CasRetryMaxRegister::new();
                    run_batch(&reg, threads, read_pct, &sink);
                })
            });
            group.bench_function(BenchmarkId::from_parameter("mutex"), |b| {
                b.iter(|| {
                    let reg = LockMaxRegister::new();
                    run_batch(&reg, threads, read_pct, &sink);
                })
            });
            group.finish();
        }
    }
}

criterion_group!(benches, bench_maxreg);
criterion_main!(benches);
