//! Experiment W2 — wall-clock throughput of the counters.
//!
//! Shapes predicted by the theory: the f-array (O(1) read, O(log N)
//! increment) wins read-heavy mixes against the AAC counter (O(log N)
//! read, O(log² N) increment); hardware fetch-add — outside the paper's
//! primitive set — bounds what any of them can achieve.

use std::sync::atomic::{AtomicU64, Ordering};

use ruo_bench::timing::{bench_batch, BenchConfig};
use ruo_core::counter::{AacCounter, FArrayCounter, FetchAddCounter};
use ruo_core::Counter;
use ruo_sim::ProcessId;

const OPS: u64 = 2_000;

fn run_batch<C: Counter>(counter: &C, threads: usize, read_pct: u64, sink: &AtomicU64) {
    std::thread::scope(|s| {
        for t in 0..threads {
            s.spawn(move || {
                let mut acc = 0u64;
                let mut state = (t as u64 + 1) * 0x9E37_79B9;
                for _ in 0..OPS {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    if state % 100 < read_pct {
                        acc ^= counter.read();
                    } else {
                        counter.increment(ProcessId(t));
                    }
                }
                sink.fetch_xor(acc, Ordering::Relaxed);
            });
        }
    });
}

fn main() {
    let cfg = BenchConfig::from_args();
    let sink = AtomicU64::new(0);
    for &threads in &[1usize, 2, 4] {
        for &read_pct in &[50u64, 90, 99] {
            let prefix = format!("counter/t{threads}/r{read_pct}");
            let elements = OPS * threads as u64;
            bench_batch(&cfg, &format!("{prefix}/farray"), elements, || {
                let counter = FArrayCounter::new(threads);
                run_batch(&counter, threads, read_pct, &sink);
            });
            bench_batch(&cfg, &format!("{prefix}/aac"), elements, || {
                // Bound: every op could be an increment.
                let counter = AacCounter::new(threads, OPS * threads as u64 + 1);
                run_batch(&counter, threads, read_pct, &sink);
            });
            bench_batch(&cfg, &format!("{prefix}/fetch_add"), elements, || {
                let counter = FetchAddCounter::new();
                run_batch(&counter, threads, read_pct, &sink);
            });
        }
    }
    eprintln!("# sink {}", sink.load(Ordering::Relaxed));
}
