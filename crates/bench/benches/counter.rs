//! Experiment W2 — wall-clock throughput of the counters.
//!
//! Shapes predicted by the theory: the f-array (O(1) read, O(log N)
//! increment) wins read-heavy mixes against the AAC counter (O(log N)
//! read, O(log² N) increment); hardware fetch-add — outside the paper's
//! primitive set — bounds what any of them can achieve.

use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ruo_core::counter::{AacCounter, FArrayCounter, FetchAddCounter};
use ruo_core::Counter;
use ruo_sim::ProcessId;

const OPS: u64 = 2_000;

fn run_batch<C: Counter>(counter: &C, threads: usize, read_pct: u64, sink: &AtomicU64) {
    crossbeam_utils::thread::scope(|s| {
        for t in 0..threads {
            s.spawn(move |_| {
                let mut acc = 0u64;
                let mut state = (t as u64 + 1) * 0x9E37_79B9;
                for _ in 0..OPS {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    if state % 100 < read_pct {
                        acc ^= counter.read();
                    } else {
                        counter.increment(ProcessId(t));
                    }
                }
                sink.fetch_xor(acc, Ordering::Relaxed);
            });
        }
    })
    .expect("worker panicked");
}

fn bench_counter(c: &mut Criterion) {
    let sink = AtomicU64::new(0);
    for &threads in &[1usize, 2, 4] {
        for &read_pct in &[50u64, 90, 99] {
            let mut group = c.benchmark_group(format!("counter/t{threads}/r{read_pct}"));
            group.throughput(Throughput::Elements(OPS * threads as u64));
            group.sample_size(10);
            group.measurement_time(std::time::Duration::from_secs(2));
            group.warm_up_time(std::time::Duration::from_millis(500));
            group.bench_function(BenchmarkId::from_parameter("farray"), |b| {
                b.iter(|| {
                    let counter = FArrayCounter::new(threads);
                    run_batch(&counter, threads, read_pct, &sink);
                })
            });
            group.bench_function(BenchmarkId::from_parameter("aac"), |b| {
                b.iter(|| {
                    // Bound: every op could be an increment.
                    let counter = AacCounter::new(threads, OPS * threads as u64 + 1);
                    run_batch(&counter, threads, read_pct, &sink);
                })
            });
            group.bench_function(BenchmarkId::from_parameter("fetch_add"), |b| {
                b.iter(|| {
                    let counter = FetchAddCounter::new();
                    run_batch(&counter, threads, read_pct, &sink);
                })
            });
            group.finish();
        }
    }
}

criterion_group!(benches, bench_counter);
criterion_main!(benches);
