//! Shared helpers for the benchmark harness.
//!
//! The binaries in `src/bin/` regenerate the paper's tables and figures
//! (see `EXPERIMENTS.md` at the repository root for the index); the
//! plain-timing benches in `benches/` (`harness = false`) measure
//! wall-clock throughput of the real-atomics implementations.

pub mod compare;
pub mod complexity;
pub mod timing;

/// The shared solo driver, re-exported from [`ruo_sim`] (its canonical
/// home since the scenario-engine refactor) so existing
/// `ruo_bench::run_solo` callers keep working.
pub use ruo_sim::run_solo;

/// A minimal markdown table builder for the experiment binaries.
#[derive(Clone, Debug)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table as markdown.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let cols: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |\n", cols.join(" | "))
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("|-{}-|\n", sep.join("-|-")));
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// `⌈log₂ x⌉` for display columns (`0` for `x ≤ 1`).
pub fn log2_ceil(x: u64) -> u32 {
    if x <= 1 {
        0
    } else {
        64 - (x - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("| a | long-header |"));
        assert!(s.contains("| 1 | 2           |"));
        assert!(s.lines().count() == 3);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        Table::new(&["a"]).row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn log2_ceil_matches_expectations() {
        assert_eq!(log2_ceil(0), 0);
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(1024), 10);
        assert_eq!(log2_ceil(1025), 11);
    }

    #[test]
    fn run_solo_counts_steps() {
        use ruo_sim::{done, read, Machine, Memory, ProcessId};
        let mut mem = Memory::new();
        let o = mem.alloc(7);
        let (v, steps) = run_solo(&mut mem, ProcessId(0), Machine::new(read(o, done)));
        assert_eq!(v, 7);
        assert_eq!(steps, 1);
    }
}
