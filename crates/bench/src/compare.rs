//! Schema-aware diffing of two `BENCH_*.json` documents — the
//! perf-regression sentry behind the `bench_compare` binary.
//!
//! The bench emitters all write one top-level JSON object with a
//! `"schema"` tag and arrays of row objects keyed by identity fields
//! (`family`, `impl`, `workload`, `threads`, …). [`compare`] flattens
//! both documents into `path -> value` maps (rows are matched by their
//! identity fields, not array position), pairs every shared numeric
//! leaf, and judges each delta against a per-metric [`Rule`]:
//!
//! * **correctness counters** (`violations`, `acked_lost`, …) — lower
//!   is better with zero tolerance: any increase is a regression;
//! * **time metrics** (`*_ns`, `*_us`, `*_ms`, `seconds`) — lower is
//!   better within a wide band (shared CI runners are noisy);
//! * **throughput metrics** (`mops_per_s`, `*_per_s`) — higher is
//!   better within a band;
//! * **step/load counts** (`*_steps`, `loads_*`) — lower is better
//!   within a narrow band (the simulator is nearly deterministic);
//! * everything else is informational: reported, never gating.
//!
//! Environment fields (`quick`, `available_parallelism`, `contended`)
//! are skipped — a laptop baseline and a CI run legitimately differ
//! there. Metrics present on only one side are reported but never gate:
//! schema growth is how the bench suite evolves.

use std::collections::BTreeMap;

use ruo_scenario::Json;

/// Which way a metric is allowed to move.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Growth beyond tolerance is a regression (time, steps, errors).
    LowerIsBetter,
    /// Shrinkage beyond tolerance is a regression (throughput).
    HigherIsBetter,
    /// Reported only; never a regression.
    Informational,
}

/// The judgement band for one metric.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Rule {
    /// Which way the metric may move freely.
    pub direction: Direction,
    /// Allowed relative drift in the bad direction (`0.5` = 50%).
    pub tolerance: f64,
}

/// The per-metric direction and tolerance, decided from the leaf key
/// name (the last path segment).
pub fn rule_for(metric: &str) -> Rule {
    let lower = |tolerance| Rule {
        direction: Direction::LowerIsBetter,
        tolerance,
    };
    let higher = |tolerance| Rule {
        direction: Direction::HigherIsBetter,
        tolerance,
    };
    // Correctness counters: any increase at all is a regression.
    if metric == "violations"
        || metric.ends_with("_violations")
        || metric == "violations_total"
        || metric.ends_with("_lost")
        || metric == "truncated"
        || metric.ends_with("_failures")
    {
        return lower(0.0);
    }
    // Wall-clock time: wide band, shared runners are noisy.
    if metric.ends_with("_ns")
        || metric.ends_with("_us")
        || metric.ends_with("_ms")
        || metric == "seconds"
        || metric == "ns_per_op"
    {
        return lower(0.5);
    }
    // Throughput: a sustained drop past the band is the regression
    // bench_compare exists to catch.
    if metric.contains("mops") || metric.ends_with("_per_s") {
        return higher(0.35);
    }
    // Simulator step/load counts are nearly deterministic: narrow band.
    if metric.ends_with("_steps") || metric.contains("loads") {
        return lower(0.25);
    }
    Rule {
        direction: Direction::Informational,
        tolerance: 0.0,
    }
}

/// One paired metric with its verdict inputs.
#[derive(Clone, Debug)]
pub struct Delta {
    /// Flattened path, rows keyed by identity fields.
    pub path: String,
    /// The leaf metric name (decides the rule).
    pub metric: String,
    /// Value in the baseline document.
    pub baseline: f64,
    /// Value in the current document.
    pub current: f64,
    /// The judgement band applied.
    pub rule: Rule,
}

impl Delta {
    /// Whether the move violates the rule's band.
    pub fn regressed(&self) -> bool {
        match self.rule.direction {
            Direction::Informational => false,
            Direction::LowerIsBetter => {
                self.current > self.baseline * (1.0 + self.rule.tolerance) + 1e-9
            }
            Direction::HigherIsBetter => {
                self.current < self.baseline * (1.0 - self.rule.tolerance) - 1e-9
            }
        }
    }

    /// Relative change, `current` vs `baseline` (`0.1` = +10%).
    pub fn ratio(&self) -> f64 {
        if self.baseline == 0.0 {
            if self.current == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.current / self.baseline - 1.0
        }
    }
}

/// The full judgement of one baseline/current pair.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// The shared schema tag.
    pub schema: String,
    /// Every paired numeric leaf.
    pub deltas: Vec<Delta>,
    /// Paths only the baseline has (informational).
    pub only_baseline: Vec<String>,
    /// Paths only the current document has (informational).
    pub only_current: Vec<String>,
}

impl Comparison {
    /// The deltas that violate their band.
    pub fn regressions(&self) -> Vec<&Delta> {
        self.deltas.iter().filter(|d| d.regressed()).collect()
    }

    /// Human-readable report: every regression in detail, then a
    /// summary of what was compared.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let regressions = self.regressions();
        out.push_str(&format!(
            "# bench_compare — schema {} — {} metrics paired, {} regression(s)\n",
            self.schema,
            self.deltas.len(),
            regressions.len()
        ));
        for d in &regressions {
            out.push_str(&format!(
                "REGRESSION {}: {} -> {} ({:+.1}%, allowed {:.0}% {})\n",
                d.path,
                d.baseline,
                d.current,
                d.ratio() * 100.0,
                d.rule.tolerance * 100.0,
                match d.rule.direction {
                    Direction::LowerIsBetter => "growth",
                    Direction::HigherIsBetter => "drop",
                    Direction::Informational => unreachable!("informational never regresses"),
                },
            ));
        }
        let moved: Vec<&Delta> = self
            .deltas
            .iter()
            .filter(|d| !d.regressed() && d.baseline != d.current)
            .collect();
        out.push_str(&format!(
            "{} metric(s) moved within tolerance, {} unchanged\n",
            moved.len(),
            self.deltas.len() - moved.len() - regressions.len()
        ));
        for p in &self.only_baseline {
            out.push_str(&format!("only in baseline: {p}\n"));
        }
        for p in &self.only_current {
            out.push_str(&format!("only in current: {p}\n"));
        }
        out
    }
}

/// Environment fields a baseline and a fresh run legitimately disagree
/// on.
const SKIP_KEYS: &[&str] = &["schema", "quick", "available_parallelism", "contended"];

/// Row fields that identify a row rather than measure it; they become
/// the row's path label so reordered arrays still pair up.
const IDENTITY_KEYS: &[&str] = &[
    "family", "impl", "workload", "kind", "name", "mode", "phase", "label", "threads", "n", "k",
    "workers", "stripes",
];

fn leaf_value(v: &Json) -> Option<f64> {
    match v {
        Json::Num(n) => Some(*n as f64),
        Json::Int(n) => Some(*n as f64),
        Json::Float(f) => Some(*f),
        Json::Bool(b) => Some(u64::from(*b) as f64),
        _ => None,
    }
}

/// The identity label of a row object, from whichever identity fields
/// it carries, in `IDENTITY_KEYS` order.
fn row_label(pairs: &[(String, Json)]) -> Option<String> {
    let mut parts = Vec::new();
    for key in IDENTITY_KEYS {
        if let Some((_, v)) = pairs.iter().find(|(k, _)| k == key) {
            match v {
                Json::Str(s) => parts.push(format!("{key}={s}")),
                Json::Num(n) => parts.push(format!("{key}={n}")),
                Json::Int(n) => parts.push(format!("{key}={n}")),
                _ => {}
            }
        }
    }
    (!parts.is_empty()).then(|| parts.join(","))
}

fn flatten_into(prefix: &str, v: &Json, out: &mut BTreeMap<String, f64>) {
    match v {
        Json::Obj(pairs) => {
            for (k, child) in pairs {
                if prefix.is_empty() && SKIP_KEYS.contains(&k.as_str()) {
                    continue;
                }
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten_into(&path, child, out);
            }
        }
        Json::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                let label = match item {
                    Json::Obj(pairs) => row_label(pairs).unwrap_or_else(|| i.to_string()),
                    _ => i.to_string(),
                };
                flatten_into(&format!("{prefix}[{label}]"), item, out);
            }
        }
        _ => {
            if let Some(x) = leaf_value(v) {
                // Identity fields already label the path; don't also
                // pair them as metrics.
                let metric = prefix.rsplit('.').next().unwrap_or(prefix);
                if !IDENTITY_KEYS.contains(&metric) {
                    out.insert(prefix.to_string(), x);
                }
            }
        }
    }
}

fn parse_doc(what: &str, text: &str) -> Result<(String, BTreeMap<String, f64>), String> {
    let doc = Json::parse(text).map_err(|e| format!("{what}: {e}"))?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{what}: no top-level \"schema\" tag"))?
        .to_string();
    let mut flat = BTreeMap::new();
    flatten_into("", &doc, &mut flat);
    Ok((schema, flat))
}

/// Diffs two bench documents (JSON text). Errors on malformed JSON, a
/// missing schema tag, or mismatched schemas — comparing a throughput
/// file against a soak file is a usage error, not a pass.
pub fn compare(baseline: &str, current: &str) -> Result<Comparison, String> {
    let (schema_b, flat_b) = parse_doc("baseline", baseline)?;
    let (schema_c, flat_c) = parse_doc("current", current)?;
    if schema_b != schema_c {
        return Err(format!(
            "schema mismatch: baseline {schema_b:?} vs current {schema_c:?}"
        ));
    }
    let mut deltas = Vec::new();
    let mut only_baseline = Vec::new();
    for (path, b) in &flat_b {
        match flat_c.get(path) {
            Some(c) => {
                let metric = path
                    .rsplit(['.', ']'])
                    .find(|s| !s.is_empty())
                    .unwrap_or(path)
                    .to_string();
                deltas.push(Delta {
                    path: path.clone(),
                    rule: rule_for(&metric),
                    metric,
                    baseline: *b,
                    current: *c,
                });
            }
            None => only_baseline.push(path.clone()),
        }
    }
    let only_current = flat_c
        .keys()
        .filter(|p| !flat_b.contains_key(*p))
        .cloned()
        .collect();
    Ok(Comparison {
        schema: schema_b,
        deltas,
        only_baseline,
        only_current,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"{
        "schema": "ruo-test-v1",
        "quick": true,
        "results": [
            {"family": "counter", "impl": "farray", "threads": 2,
             "median_ns": 1000, "mops_per_s": 50.0, "violations": 0},
            {"family": "maxreg", "impl": "tree", "threads": 2,
             "median_ns": 2000, "mops_per_s": 25.0, "violations": 0}
        ],
        "note_rows": 2
    }"#;

    fn tweak(field: &str, from: &str, to: &str) -> String {
        let needle = format!("\"{field}\": {from}");
        let swapped = BASE.replacen(&needle, &format!("\"{field}\": {to}"), 1);
        assert_ne!(swapped, BASE, "tweak {field} {from} matched nothing");
        swapped
    }

    #[test]
    fn identical_documents_have_no_regressions() {
        let c = compare(BASE, BASE).unwrap();
        assert_eq!(c.schema, "ruo-test-v1");
        assert!(c.regressions().is_empty(), "{}", c.report());
        assert!(c.only_baseline.is_empty() && c.only_current.is_empty());
        // quick is environment metadata, never paired.
        assert!(c.deltas.iter().all(|d| d.path != "quick"));
    }

    #[test]
    fn seeded_synthetic_regressions_are_caught() {
        // Latency past the 50% band.
        let c = compare(BASE, &tweak("median_ns", "1000", "1600")).unwrap();
        let r = c.regressions();
        assert_eq!(r.len(), 1, "{}", c.report());
        assert!(r[0].path.contains("impl=farray"), "{}", r[0].path);
        // Throughput past the 35% band.
        let c = compare(BASE, &tweak("mops_per_s", "25.0", "10.0")).unwrap();
        assert_eq!(c.regressions().len(), 1, "{}", c.report());
        // A single new violation: zero tolerance.
        let c = compare(BASE, &tweak("violations", "0", "1")).unwrap();
        let r = c.regressions();
        assert_eq!(r.len(), 1, "{}", c.report());
        assert_eq!(r[0].rule.tolerance, 0.0);
        assert!(c.report().contains("REGRESSION"));
    }

    #[test]
    fn drift_within_tolerance_passes() {
        // +40% latency: inside the 50% band.
        let c = compare(BASE, &tweak("median_ns", "1000", "1400")).unwrap();
        assert!(c.regressions().is_empty(), "{}", c.report());
        // -20% throughput: inside the 35% band.
        let c = compare(BASE, &tweak("mops_per_s", "50.0", "40.0")).unwrap();
        assert!(c.regressions().is_empty(), "{}", c.report());
        // Improvements never regress.
        let c = compare(BASE, &tweak("median_ns", "2000", "100")).unwrap();
        assert!(c.regressions().is_empty(), "{}", c.report());
    }

    #[test]
    fn rows_pair_by_identity_not_position() {
        // Reverse the rows; the farray regression must still pin to the
        // farray row.
        let reordered = BASE.replace(
            r#"{"family": "counter", "impl": "farray", "threads": 2,
             "median_ns": 1000, "mops_per_s": 50.0, "violations": 0},
            {"family": "maxreg", "impl": "tree", "threads": 2,
             "median_ns": 2000, "mops_per_s": 25.0, "violations": 0}"#,
            r#"{"family": "maxreg", "impl": "tree", "threads": 2,
             "median_ns": 2000, "mops_per_s": 25.0, "violations": 0},
            {"family": "counter", "impl": "farray", "threads": 2,
             "median_ns": 9000, "mops_per_s": 50.0, "violations": 0}"#,
        );
        assert_ne!(reordered, BASE);
        let c = compare(BASE, &reordered).unwrap();
        let r = c.regressions();
        assert_eq!(r.len(), 1, "{}", c.report());
        assert!(r[0].path.contains("family=counter,impl=farray,threads=2"));
    }

    #[test]
    fn informational_metrics_never_gate() {
        let c = compare(BASE, &tweak("note_rows", "2", "9000")).unwrap();
        assert!(c.regressions().is_empty(), "{}", c.report());
    }

    #[test]
    fn schema_mismatch_and_malformed_inputs_error() {
        let other = BASE.replace("ruo-test-v1", "ruo-other-v1");
        assert!(compare(BASE, &other).unwrap_err().contains("mismatch"));
        assert!(compare("{nope", BASE).is_err());
        assert!(compare("{}", BASE).unwrap_err().contains("schema"));
    }

    #[test]
    fn missing_and_added_metrics_are_reported_not_gated() {
        let grown = BASE.replacen("\"note_rows\": 2", "\"new_rows\": 2", 1);
        let c = compare(BASE, &grown).unwrap();
        assert!(c.regressions().is_empty());
        assert_eq!(c.only_baseline, vec!["note_rows".to_string()]);
        assert_eq!(c.only_current, vec!["new_rows".to_string()]);
        let rep = c.report();
        assert!(rep.contains("only in baseline: note_rows"));
        assert!(rep.contains("only in current: new_rows"));
    }

    #[test]
    fn rules_cover_the_bench_schemas() {
        assert_eq!(rule_for("p99_us").direction, Direction::LowerIsBetter);
        assert_eq!(rule_for("duration_ms").direction, Direction::LowerIsBetter);
        assert_eq!(rule_for("mops_per_s").direction, Direction::HigherIsBetter);
        assert_eq!(rule_for("violations_total").tolerance, 0.0);
        assert_eq!(rule_for("acked_lost").tolerance, 0.0);
        assert_eq!(
            rule_for("mean_update_steps").direction,
            Direction::LowerIsBetter
        );
        assert_eq!(
            rule_for("loads_per_scalar").direction,
            Direction::LowerIsBetter
        );
        assert_eq!(rule_for("schedules").direction, Direction::Informational);
    }
}
