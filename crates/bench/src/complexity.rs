//! Experiment W7 — the step-complexity profiler.
//!
//! Sweeps solo step counts of the paper's objects across `N` (number of
//! processes) and `v` (written value) and fits the measured curves
//! against the bound shapes the paper proves:
//!
//! * `ReadMax` on Algorithm A — **constant** (1 step), independent of
//!   `N`: the register is read-optimized, so the whole tradeoff lands on
//!   writers.
//! * `WriteMax(v)` — **`O(min(log N, log v))`**: grows logarithmically
//!   in `N` (for large values) and in `v` (for fixed `N`), flattening at
//!   the tree-depth bound once `v` clears the leaf span.
//! * f-array `CounterIncrement` — **`Θ(log N)`**: the update side of the
//!   counter tradeoff; `CounterRead` stays 1 step.
//!
//! [`profile`] measures, [`fit_log2`] does the least-squares fit against
//! `a + b·log₂(x)`, and [`check_shapes`] turns the curves into hard
//! assertions (constant read, monotone + sublinear updates, flattening
//! `v`-curve) — the CI gate behind `complexity --quick`.

use ruo_core::counter::sim::{SimCounter, SimFArrayCounter};
use ruo_core::maxreg::sim::{SimMaxRegister, SimTreeMaxRegister};
use ruo_sim::{run_solo, Memory, ProcessId};

/// One measured point of a complexity curve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CurvePoint {
    /// The swept parameter (`N` or `v`).
    pub x: u64,
    /// Solo steps of the operation at that parameter.
    pub steps: u64,
}

/// Least-squares fit of a curve against `steps ≈ a + b·log₂(x)`.
#[derive(Clone, Copy, Debug)]
pub struct Fit {
    /// Constant term.
    pub a: f64,
    /// Coefficient of `log₂(x)` — near `0` for constant curves.
    pub b_log2: f64,
    /// Largest absolute residual of the fit over the points.
    pub max_resid: f64,
}

/// One swept curve with its fitted shape.
#[derive(Clone, Debug)]
pub struct Curve {
    /// Stable curve name (`read_max`, `write_max_n`, `write_max_v`,
    /// `counter_update`, `counter_read`).
    pub name: &'static str,
    /// What `x` is: `"N"` or `"v"`.
    pub x_label: &'static str,
    /// The paper's bound for this curve, as display text.
    pub bound: &'static str,
    /// Measured points, in increasing `x`.
    pub points: Vec<CurvePoint>,
    /// The `a + b·log₂(x)` fit.
    pub fit: Fit,
}

impl Curve {
    fn new(
        name: &'static str,
        x_label: &'static str,
        bound: &'static str,
        points: Vec<CurvePoint>,
    ) -> Self {
        let fit = fit_log2(&points);
        Curve {
            name,
            x_label,
            bound,
            points,
            fit,
        }
    }

    /// The measured steps at the largest swept `x`.
    pub fn last_steps(&self) -> u64 {
        self.points.last().expect("curves are non-empty").steps
    }
}

/// The full profile: every curve of the W7 sweep.
#[derive(Clone, Debug)]
pub struct ComplexityProfile {
    /// Whether the sweep was scaled down (`--quick`).
    pub quick: bool,
    /// The measured curves.
    pub curves: Vec<Curve>,
}

impl ComplexityProfile {
    /// Looks a curve up by name.
    pub fn curve(&self, name: &str) -> Option<&Curve> {
        self.curves.iter().find(|c| c.name == name)
    }
}

/// Fits `steps ≈ a + b·log₂(x)` by least squares.
pub fn fit_log2(points: &[CurvePoint]) -> Fit {
    let n = points.len() as f64;
    let lx = |p: &CurvePoint| (p.x as f64).log2();
    let sum_x: f64 = points.iter().map(lx).sum();
    let sum_y: f64 = points.iter().map(|p| p.steps as f64).sum();
    let sum_xx: f64 = points.iter().map(|p| lx(p) * lx(p)).sum();
    let sum_xy: f64 = points.iter().map(|p| lx(p) * p.steps as f64).sum();
    let det = n * sum_xx - sum_x * sum_x;
    let (a, b) = if det.abs() < 1e-12 {
        // All x equal (degenerate sweep): fall back to the mean.
        (sum_y / n, 0.0)
    } else {
        let b = (n * sum_xy - sum_x * sum_y) / det;
        let a = (sum_y - b * sum_x) / n;
        (a, b)
    };
    let max_resid = points
        .iter()
        .map(|p| (p.steps as f64 - (a + b * lx(p))).abs())
        .fold(0.0_f64, f64::max);
    Fit {
        a,
        b_log2: b,
        max_resid,
    }
}

/// A large written value — far beyond every swept `N`, so `N`-sweeps
/// measure the `log N` arm of the `min(log N, log v)` bound.
const BIG_VALUE: u64 = 1 << 40;

/// The `N` the `v`-sweep fixes; its tree depth is where the `v`-curve
/// must flatten.
const V_SWEEP_N: usize = 64;

fn n_sweep(quick: bool) -> &'static [usize] {
    if quick {
        &[2, 4, 16, 64]
    } else {
        &[2, 4, 8, 16, 32, 64]
    }
}

fn v_sweep(quick: bool) -> &'static [u64] {
    if quick {
        &[1, 4, 64, 1 << 20]
    } else {
        &[1, 2, 4, 16, 64, 256, 4096, 1 << 20]
    }
}

fn tree_write_steps(n: usize, v: u64) -> u64 {
    let mut mem = Memory::new();
    let reg = SimTreeMaxRegister::new(&mut mem, n);
    let (_, steps) = run_solo(&mut mem, ProcessId(0), reg.write_max(ProcessId(0), v));
    steps as u64
}

fn tree_read_steps(n: usize) -> u64 {
    let mut mem = Memory::new();
    let reg = SimTreeMaxRegister::new(&mut mem, n);
    // Populate first so the read returns a real maximum, not `-∞`.
    run_solo(&mut mem, ProcessId(0), reg.write_max(ProcessId(0), 7));
    let (_, steps) = run_solo(&mut mem, ProcessId(1), reg.read_max(ProcessId(1)));
    steps as u64
}

fn farray_steps(n: usize) -> (u64, u64) {
    let mut mem = Memory::new();
    let c = SimFArrayCounter::new(&mut mem, n);
    let (_, inc) = run_solo(&mut mem, ProcessId(0), c.increment(ProcessId(0)));
    let (_, read) = run_solo(&mut mem, ProcessId(0), c.read(ProcessId(0)));
    (inc as u64, read as u64)
}

/// Measures every W7 curve.
pub fn profile(quick: bool) -> ComplexityProfile {
    let ns = n_sweep(quick);
    let read_max = ns
        .iter()
        .map(|&n| CurvePoint {
            x: n as u64,
            steps: tree_read_steps(n),
        })
        .collect();
    let write_max_n = ns
        .iter()
        .map(|&n| CurvePoint {
            x: n as u64,
            steps: tree_write_steps(n, BIG_VALUE),
        })
        .collect();
    let write_max_v = v_sweep(quick)
        .iter()
        .map(|&v| CurvePoint {
            x: v,
            steps: tree_write_steps(V_SWEEP_N, v),
        })
        .collect();
    let (update, read): (Vec<_>, Vec<_>) = ns
        .iter()
        .map(|&n| {
            let (inc, rd) = farray_steps(n);
            (
                CurvePoint {
                    x: n as u64,
                    steps: inc,
                },
                CurvePoint {
                    x: n as u64,
                    steps: rd,
                },
            )
        })
        .unzip();
    ComplexityProfile {
        quick,
        curves: vec![
            Curve::new("read_max", "N", "O(1)", read_max),
            Curve::new("write_max_n", "N", "O(log N)  (v large)", write_max_n),
            Curve::new(
                "write_max_v",
                "v",
                "O(min(log N, log v))  (N = 64)",
                write_max_v,
            ),
            Curve::new("counter_update", "N", "Θ(log N)", update),
            Curve::new("counter_read", "N", "O(1)", read),
        ],
    }
}

fn constant(c: &Curve, failures: &mut Vec<String>) {
    let first = c.points[0].steps;
    if c.points.iter().any(|p| p.steps != first) {
        failures.push(format!(
            "{}: expected constant steps, got {:?}",
            c.name, c.points
        ));
    }
}

fn monotone_nondecreasing(c: &Curve, failures: &mut Vec<String>) {
    if c.points.windows(2).any(|w| w[1].steps < w[0].steps) {
        failures.push(format!(
            "{}: steps must be nondecreasing: {:?}",
            c.name, c.points
        ));
    }
}

fn sublinear(c: &Curve, failures: &mut Vec<String>) {
    // Logarithmic growth: going from x_min to x_max multiplies steps by
    // far less than x does. (Linear growth would track the x-ratio.)
    let (lo, hi) = (c.points[0], *c.points.last().expect("non-empty"));
    if hi.steps * lo.x * 2 >= lo.steps * hi.x {
        failures.push(format!(
            "{}: growth {}→{} over x {}→{} is not sublinear",
            c.name, lo.steps, hi.steps, lo.x, hi.x
        ));
    }
}

fn logarithmic_slope(c: &Curve, failures: &mut Vec<String>) {
    if c.fit.b_log2 <= 0.0 {
        failures.push(format!(
            "{}: expected positive log2 slope, fitted {:.3}",
            c.name, c.fit.b_log2
        ));
    }
}

/// Checks every curve against the paper's bound shapes; returns the
/// failures (empty = profile matches the theory).
pub fn check_shapes(p: &ComplexityProfile) -> Vec<String> {
    let mut failures = Vec::new();
    let curve = |name: &str| p.curve(name).expect("profile emits all five curves");

    // ReadMax and CounterRead: O(1), independent of N.
    constant(curve("read_max"), &mut failures);
    constant(curve("counter_read"), &mut failures);

    // WriteMax over N (v large): monotone, sublinear, log-shaped.
    let wn = curve("write_max_n");
    monotone_nondecreasing(wn, &mut failures);
    sublinear(wn, &mut failures);
    logarithmic_slope(wn, &mut failures);

    // WriteMax over v (N fixed): the min(log N, log v) bound has two
    // arms with different constants. Below the crossover (v < N) the
    // cost climbs the value spine — monotone in v; at and past it, the
    // curve must flatten to exactly the value the N-sweep measured for
    // this N. (The two arms' constants differ, so the measured curve is
    // *not* globally monotone — the spine overshoots the plateau just
    // before the crossover. That bump is the tradeoff, not a bug.)
    let wv = curve("write_max_v");
    let (spine, plateau): (Vec<&CurvePoint>, Vec<&CurvePoint>) =
        wv.points.iter().partition(|pt| pt.x < V_SWEEP_N as u64);
    if spine.windows(2).any(|w| w[1].steps < w[0].steps) {
        failures.push(format!(
            "write_max_v: the v < N spine must be nondecreasing: {spine:?}"
        ));
    }
    let at_n = wn
        .points
        .iter()
        .find(|pt| pt.x == V_SWEEP_N as u64)
        .map(|pt| pt.steps);
    if plateau.is_empty() || plateau.iter().any(|pt| Some(pt.steps) != at_n) {
        failures.push(format!(
            "write_max_v must flatten at the log N arm for v ≥ N \
             (write_max_n at N={V_SWEEP_N} is {at_n:?}): {plateau:?}"
        ));
    }

    // f-array counter update: Θ(log N).
    let cu = curve("counter_update");
    monotone_nondecreasing(cu, &mut failures);
    sublinear(cu, &mut failures);
    logarithmic_slope(cu, &mut failures);

    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_an_exact_log_curve() {
        let points: Vec<CurvePoint> = [2u64, 4, 8, 16, 64]
            .iter()
            .map(|&x| CurvePoint {
                x,
                steps: 2 + 8 * (x as f64).log2() as u64,
            })
            .collect();
        let fit = fit_log2(&points);
        assert!((fit.a - 2.0).abs() < 1e-9, "a = {}", fit.a);
        assert!((fit.b_log2 - 8.0).abs() < 1e-9, "b = {}", fit.b_log2);
        assert!(fit.max_resid < 1e-9);
    }

    #[test]
    fn fit_flags_a_constant_curve_with_zero_slope() {
        let points: Vec<CurvePoint> = [2u64, 8, 64]
            .iter()
            .map(|&x| CurvePoint { x, steps: 1 })
            .collect();
        let fit = fit_log2(&points);
        assert!(fit.b_log2.abs() < 1e-9);
        assert!((fit.a - 1.0).abs() < 1e-9);
    }

    #[test]
    fn shape_checks_reject_a_linear_curve() {
        let linear: Vec<CurvePoint> = [2u64, 4, 8, 16, 64]
            .iter()
            .map(|&x| CurvePoint { x, steps: 3 * x })
            .collect();
        let mut p = profile(true);
        p.curves
            .iter_mut()
            .find(|c| c.name == "counter_update")
            .unwrap()
            .points = linear;
        assert!(check_shapes(&p).iter().any(|f| f.contains("not sublinear")));
    }
}
