//! A minimal wall-clock benchmark runner.
//!
//! The workspace builds offline with no external dependencies, so the
//! `benches/` targets (`harness = false`) use this instead of Criterion:
//! each benchmark runs a warm-up, then a fixed number of timed samples,
//! and reports the median — robust against one-off scheduler noise.
//!
//! CLI, matching how CI drove the Criterion benches:
//!
//! * any positional argument filters benchmark ids by substring
//!   (`cargo bench -p ruo-bench -- maxreg/t1/r50`);
//! * `--quick` cuts warm-up and sample counts for smoke runs.

use std::time::Instant;

/// Run configuration parsed from the process arguments.
#[derive(Clone, Debug)]
pub struct BenchConfig {
    /// Substring filters; a benchmark runs if any filter matches (or no
    /// filter was given).
    pub filters: Vec<String>,
    /// Fewer samples/iterations for smoke-testing.
    pub quick: bool,
}

impl BenchConfig {
    /// Parses `std::env::args`, ignoring flags Criterion used to accept
    /// (`--bench`, `--quick`) so existing invocations keep working.
    pub fn from_args() -> Self {
        let mut filters = Vec::new();
        let mut quick = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--quick" => quick = true,
                "--bench" => {}
                a if a.starts_with("--") => {}
                a => filters.push(a.to_string()),
            }
        }
        BenchConfig { filters, quick }
    }

    /// Whether `id` passes the filter set.
    pub fn matches(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f))
    }

    /// Number of timed samples per benchmark.
    pub fn samples(&self) -> usize {
        if self.quick {
            3
        } else {
            10
        }
    }

    /// Number of warm-up (untimed) batches per benchmark.
    pub fn warmup(&self) -> usize {
        if self.quick {
            1
        } else {
            3
        }
    }
}

/// Times `f` (one call = one batch of `elements` operations) and prints
/// `id`, the median time per operation, and throughput. Skips silently
/// when `id` does not match the config's filters.
pub fn bench_batch<F: FnMut()>(cfg: &BenchConfig, id: &str, elements: u64, mut f: F) {
    if !cfg.matches(id) {
        return;
    }
    for _ in 0..cfg.warmup() {
        f();
    }
    let mut samples_ns: Vec<f64> = (0..cfg.samples())
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos() as f64
        })
        .collect();
    samples_ns.sort_by(|a, b| a.total_cmp(b));
    let median = samples_ns[samples_ns.len() / 2];
    let ns_per_op = median / elements as f64;
    let mops = elements as f64 / median * 1e3;
    println!("{id:<44} {ns_per_op:>10.1} ns/op {mops:>9.2} Mops/s");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filters_match_substrings() {
        let cfg = BenchConfig {
            filters: vec!["maxreg/t1".into()],
            quick: true,
        };
        assert!(cfg.matches("maxreg/t1/r50/algorithm_a"));
        assert!(!cfg.matches("counter/t1/r50"));
        let open = BenchConfig {
            filters: vec![],
            quick: false,
        };
        assert!(open.matches("anything"));
    }

    #[test]
    fn quick_reduces_work() {
        let quick = BenchConfig {
            filters: vec![],
            quick: true,
        };
        let full = BenchConfig {
            filters: vec![],
            quick: false,
        };
        assert!(quick.samples() < full.samples());
        assert!(quick.warmup() < full.warmup());
    }

    #[test]
    fn bench_batch_runs_the_closure() {
        let cfg = BenchConfig {
            filters: vec![],
            quick: true,
        };
        let mut calls = 0;
        bench_batch(&cfg, "smoke", 1, || calls += 1);
        assert_eq!(calls, cfg.warmup() + cfg.samples());
        let mut skipped = 0;
        let cfg2 = BenchConfig {
            filters: vec!["other".into()],
            quick: true,
        };
        bench_batch(&cfg2, "smoke", 1, || skipped += 1);
        assert_eq!(skipped, 0);
    }
}
