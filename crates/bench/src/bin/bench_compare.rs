//! Perf-regression sentry CLI: diffs two `BENCH_*.json` documents with
//! the schema-aware rules in [`ruo_bench::compare`].
//!
//! ```text
//! bench_compare <baseline.json> <current.json>
//! ```
//!
//! Prints the comparison report and exits `1` if any metric moved past
//! its tolerance band in the bad direction, `2` on malformed inputs or
//! mismatched schemas, `0` otherwise. Typical use: diff a fresh CI run
//! against the checked-in baselines under `docs/results/baselines/`.

use std::process::exit;

use ruo_bench::compare::compare;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, current_path] = args.as_slice() else {
        eprintln!("usage: bench_compare <baseline.json> <current.json>");
        exit(2);
    };
    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: {path}: {e}");
            exit(2);
        })
    };
    let baseline = read(baseline_path);
    let current = read(current_path);
    match compare(&baseline, &current) {
        Ok(cmp) => {
            print!("{}", cmp.report());
            if cmp.regressions().is_empty() {
                println!("PASS: {current_path} vs {baseline_path}");
            } else {
                println!("FAIL: {current_path} regressed vs {baseline_path}");
                exit(1);
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            exit(2);
        }
    }
}
