//! Experiment C-AAC — step complexities of the prior-work baselines the
//! paper's introduction quotes: the AAC max register (`O(log M)` reads
//! and writes from read/write only) and the AAC counter (`O(log N)`
//! reads, `O(log² N)` increments for polynomially many increments),
//! plus the f-array counter (`O(1)` read, `O(log N)` increment).
//!
//! Run with `cargo run -p ruo-bench --bin aac_complexity`.

use ruo_bench::{log2_ceil, run_solo, Table};
use ruo_core::counter::sim::{SimAacCounter, SimCounter, SimFArrayCounter};
use ruo_core::maxreg::sim::{SimAacMaxRegister, SimMaxRegister};
use ruo_sim::{Memory, ProcessId};

fn main() {
    println!("# C-AAC — prior-work step complexities (measured)\n");

    // ---- AAC max register: both ops O(log M). ----
    println!("## AAC max register vs bound M (expected: both ops ~ log2 M)\n");
    let mut t = Table::new(&["M", "log2(M)", "WriteMax(M-1) steps", "ReadMax steps"]);
    for log_m in [2u32, 4, 6, 8, 10, 12, 14] {
        let m = 1u64 << log_m;
        let mut mem = Memory::new();
        let reg = SimAacMaxRegister::new(&mut mem, 2, m);
        let (_, w) = run_solo(&mut mem, ProcessId(0), reg.write_max(ProcessId(0), m - 1));
        let (_, r) = run_solo(&mut mem, ProcessId(1), reg.read_max(ProcessId(1)));
        t.row(vec![
            m.to_string(),
            log_m.to_string(),
            w.to_string(),
            r.to_string(),
        ]);
    }
    t.print();

    // ---- Unbalanced (Bentley–Yao-skewed) AAC register. ----
    println!("\n## Unbalanced AAC register, M = 2^20 (expected: cost ~ log v, not log M)\n");
    let mut t = Table::new(&[
        "v",
        "log2(v)",
        "WriteMax(v) steps",
        "ReadMax steps (max = v)",
    ]);
    let m = 1u64 << 20;
    for v in [0u64, 1, 3, 15, 255, 65_535, m - 1] {
        let mut mem = Memory::new();
        let reg = SimAacMaxRegister::new_unbalanced(&mut mem, 2, m);
        let (_, w) = run_solo(&mut mem, ProcessId(0), reg.write_max(ProcessId(0), v));
        let (_, r) = run_solo(&mut mem, ProcessId(1), reg.read_max(ProcessId(1)));
        t.row(vec![
            v.to_string(),
            log2_ceil(v + 1).to_string(),
            w.to_string(),
            r.to_string(),
        ]);
    }
    t.print();

    // ---- AAC counter: read O(log M), increment O(log N log M). ----
    println!("\n## AAC counter vs N (M = N², i.e. polynomially many increments)\n");
    let mut t = Table::new(&[
        "N",
        "log2(N)",
        "CounterRead steps",
        "CounterIncrement steps",
        "inc / (log N · log M)",
    ]);
    for n in [4usize, 8, 16, 32, 64, 128] {
        let m = (n * n) as u64;
        let mut mem = Memory::new();
        let c = SimAacCounter::new(&mut mem, n, m);
        let (_, inc) = run_solo(&mut mem, ProcessId(0), c.increment(ProcessId(0)));
        let (_, rd) = run_solo(&mut mem, ProcessId(1), c.read(ProcessId(1)));
        let ln = log2_ceil(n as u64).max(1) as f64;
        let lm = log2_ceil(m + 1).max(1) as f64;
        t.row(vec![
            n.to_string(),
            log2_ceil(n as u64).to_string(),
            rd.to_string(),
            inc.to_string(),
            format!("{:.2}", inc as f64 / (ln * lm)),
        ]);
    }
    t.print();

    // ---- f-array counter: read O(1), increment O(log N). ----
    println!("\n## f-array counter vs N (expected: read = 1, increment ~ 8·log2 N)\n");
    let mut t = Table::new(&[
        "N",
        "log2(N)",
        "CounterRead steps",
        "CounterIncrement steps",
    ]);
    for n in [4usize, 16, 64, 256, 1024] {
        let mut mem = Memory::new();
        let c = SimFArrayCounter::new(&mut mem, n);
        let (_, inc) = run_solo(&mut mem, ProcessId(0), c.increment(ProcessId(0)));
        let (_, rd) = run_solo(&mut mem, ProcessId(1), c.read(ProcessId(1)));
        t.row(vec![
            n.to_string(),
            log2_ceil(n as u64).to_string(),
            rd.to_string(),
            inc.to_string(),
        ]);
    }
    t.print();

    println!("\nReading the tables: the AAC register pays log M on *both* sides;");
    println!("Algorithm A (see t6_algorithm_a) moves all of it to the write side;");
    println!("Theorem 1 says the f-array's O(1)/O(log N) split is optimal for");
    println!("read-optimal counters from read/write/CAS.");
}
