//! Experiment T3 — Theorem 3 / Theorem 4: the max-register tradeoff,
//! measured by running the essential-set construction against real max
//! registers.
//!
//! For each register and each `K`, the adversary maintains a hidden
//! essential set of writers; every surviving iteration forces each of
//! them to take another step inside a single `WriteMax`. Theorem 3 says
//! the construction survives `Ω(log log K / log f(K))` iterations when
//! `ReadMax` costs `O(f(K))`. The run also verifies the hidden-set
//! invariant (Def. 5) and the Lemma 2 erasure-by-replay faithfulness.
//!
//! Run with `cargo run -p ruo-bench --bin t3_maxreg_tradeoff`.

use ruo_bench::{run_solo, Table};
use ruo_core::maxreg::sim::{
    SimAacMaxRegister, SimCasRetryMaxRegister, SimFArrayMaxRegister, SimMaxRegister,
    SimTreeMaxRegister,
};
use ruo_lowerbound::essential::{run_essential, EssentialConfig};
use ruo_sim::{Memory, ProcessId};

fn predicted(k: usize, f_k: usize) -> f64 {
    let loglog = (k as f64).log2().log2().max(0.0);
    let logf = (f_k as f64).log2().max(1.0);
    loglog / logf
}

fn run_for(
    name: &str,
    table: &mut Table,
    make: impl Fn(&mut Memory, usize) -> Box<dyn SimMaxRegister>,
) {
    for k in [16usize, 64, 256, 1024, 4096] {
        // Measure f(K): solo read steps on a fresh instance.
        let f_k = {
            let mut mem = Memory::new();
            let reg = make(&mut mem, k);
            let (_, steps) = run_solo(&mut mem, ProcessId(0), reg.read_max(ProcessId(0)));
            steps
        };
        let mut mem = Memory::new();
        let reg = make(&mut mem, k);
        let out = run_essential(
            reg.as_ref(),
            &mut mem,
            k,
            EssentialConfig {
                f_k,
                max_iterations: 400,
                // The tracker-based invariant check is O(objects·K) per
                // iteration; keep it for the smaller configurations.
                verify_hidden: k <= 256,
                ..EssentialConfig::default()
            },
        );
        table.row(vec![
            name.to_string(),
            k.to_string(),
            f_k.to_string(),
            out.iterations.to_string(),
            format!("{:.2}", predicted(k, f_k)),
            format!("{:?}", out.stop),
            if k <= 256 {
                if out.hidden_invariant_held {
                    "yes"
                } else {
                    "NO"
                }
                .to_string()
            } else {
                "(skipped)".to_string()
            },
            if out.replays_faithful { "yes" } else { "NO" }.to_string(),
        ]);
    }
}

fn main() {
    println!("# T3 — max-register tradeoff under the essential-set adversary\n");
    println!("Theorem 3: ReadMax in O(f(K)) steps forces Ω(f(K)) processes to take");
    println!("Ω(log log K / log f(K)) steps each in one WriteMax. `i*` below is the number");
    println!("of iterations the construction survives (each essential process takes one");
    println!("step per iteration).\n");

    let mut t = Table::new(&[
        "register",
        "K",
        "f(K) = read steps",
        "i* (iterations)",
        "loglogK/logf(K)",
        "stop reason",
        "hidden held",
        "replay faithful",
    ]);
    run_for("Algorithm A (O(1) read)", &mut t, |mem, k| {
        Box::new(SimTreeMaxRegister::new(mem, k))
    });
    run_for("CAS cell (O(1) read)", &mut t, |mem, k| {
        Box::new(SimCasRetryMaxRegister::new(mem, k))
    });
    run_for("f-array (O(1) read)", &mut t, |mem, k| {
        Box::new(SimFArrayMaxRegister::new(mem, k))
    });
    run_for("AAC (O(log K) read)", &mut t, |mem, k| {
        Box::new(SimAacMaxRegister::new(mem, k, k as u64))
    });
    run_for("AAC unbalanced", &mut t, |mem, k| {
        Box::new(SimAacMaxRegister::new_unbalanced(mem, k, k as u64))
    });
    t.print();

    println!("\nReading the table:");
    println!("- Algorithm A / f(K)=1: the adversary keeps a large hidden set stepping for");
    println!("  as long as their WriteMax lasts — far above the log log K floor.");
    println!("- CAS cell: lock-free but NOT wait-free — the construction starves writers");
    println!("  forever (it only stops at the iteration cap). Theorem 3 assumes");
    println!("  obstruction-freedom, which the cell has, so unbounded i* is consistent.");
    println!("- AAC: the larger f(K) both raises the stopping threshold and shrinks the");
    println!("  predicted floor, exactly as the tradeoff says.");

    // ---- Per-iteration decay trace for one configuration (Figure 3). ----
    let k = 4096usize;
    println!("\n## Essential-set decay, Algorithm A, K = {k}, first 40 iterations (cf. Figure 3; Lemma 4 guarantees |E_(i+1)| ≥ √m/3 − 2)\n");
    let mut mem = Memory::new();
    let reg = SimTreeMaxRegister::new(&mut mem, k);
    let out = run_essential(
        &reg,
        &mut mem,
        k,
        EssentialConfig {
            verify_hidden: false,
            max_iterations: 40,
            ..EssentialConfig::default()
        },
    );
    let mut t = Table::new(&[
        "iteration",
        "case",
        "m (active)",
        "|E_i| after",
        "erased",
        "halted",
        "distinct objects",
    ]);
    for tr in &out.trace {
        t.row(vec![
            tr.iteration.to_string(),
            format!("{:?}", tr.case),
            tr.active_before.to_string(),
            tr.essential_after.to_string(),
            tr.erased.to_string(),
            tr.halted
                .map(|p| p.to_string())
                .unwrap_or_else(|| "-".into()),
            tr.distinct_objects.to_string(),
        ]);
    }
    t.print();
    println!(
        "\nFinal: i* = {}, stop = {:?}, reader returned {} in {} steps (max completed write = {}).",
        out.iterations, out.stop, out.reader_value, out.reader_steps, out.max_completed_value
    );
}
