//! Experiment W12 — what does observability cost?
//!
//! The paper's reading of a metrics plane: telemetry is the
//! read-dominated regime taken to its extreme, so the observers must
//! ride the cheap-read side of the tradeoff. This harness measures the
//! three observation paths added by the telemetry plane and writes
//! `BENCH_telemetry.json` (schema `ruo-telemetry-v1`):
//!
//! * **registry** — wall-clock cost of a full [`MetricsRegistry`]
//!   snapshot over every gauge family in `ruo-metrics` plus core-backed
//!   scalars (an `FArrayCounter`, a `TreeMaxRegister`, and a
//!   `ShardedCounter` behind [`ShardGauges`]). The core-backed scalars
//!   live in [`CountingMem`]-instrumented cells, so the harness also
//!   counts the shared-memory loads one snapshot performs — and gates
//!   on the paper's claim: the load count is *invariant* in how much
//!   data the gauges have recorded (reads are `O(1)` per scalar, with
//!   the sharded total's documented `O(stripes)` exception).
//! * **sampler** — cost of one [`SeriesSampler`] tick over that
//!   registry (a snapshot plus a ring push).
//! * **serve** — client-observed request latency of the TCP service
//!   with request spans off (twice, for a same-binary noise floor) and
//!   on (once). Structural gates are hard: spans-off summaries carry no
//!   spans, the spans-on summary carries one span per request and the
//!   shutdown audit stays clean. The wall-clock gate is generous (the
//!   CI box is one noisy core): spans-on median must stay within
//!   `3 × off + 50 µs` of the cheaper spans-off run.
//!
//! Side artifacts: the spans-on run's trace is exported next to the
//! JSON as `w12_spans.jsonl` and `w12_spans.chrome.json`.
//!
//! Any gate failure exits nonzero — the bench doubles as the CI
//! regression sentry's data source (see `bench_compare`).
//!
//! CLI: `--quick` (smaller sweeps — the CI target), `--out <path>`
//! (default `BENCH_telemetry.json`).

use std::sync::Arc;
use std::time::Instant;

use ruo_core::counter::{FArrayCounter, ShardedCounter};
use ruo_core::maxreg::TreeMaxRegister;
use ruo_core::{Counter as _, MaxRegister as _};
use ruo_metrics::{
    CheckerGauges, HealthEvent, HealthGauges, Histogram, LatencyTracker, LowWatermark, MetricDesc,
    MetricKind, MetricsRegistry, ProgressCertifier, ProgressGauge, SeriesSampler, ShardGauges,
    Watermark,
};
use ruo_serve::{Client, ClientConfig, ObjectDef, ServeConfig, ServeSummary, Server};
use ruo_sim::stepcount::CountingMem;
use ruo_sim::{ProcessId, SplitMix64};

/// Writer identities feeding the gauge families (and stripe count of
/// the sharded counter, so the documented `O(stripes)` total read is
/// visible in the load tally).
const WRITERS: usize = 8;

#[derive(Clone, Debug)]
struct Config {
    quick: bool,
    out: String,
}

impl Config {
    fn from_args() -> Self {
        let mut cfg = Config {
            quick: false,
            out: "BENCH_telemetry.json".to_string(),
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => cfg.quick = true,
                "--out" => {
                    cfg.out = args.next().expect("--out requires a path");
                }
                _ => {}
            }
        }
        cfg
    }
}

// ---------------------------------------------------------------- registry

/// Every gauge family the scenario engines and the serve layer expose,
/// plus the core-backed scalars whose reads [`CountingMem`] can tally.
struct Families {
    health: Arc<HealthGauges>,
    checker: Arc<CheckerGauges>,
    certifier: Arc<ProgressCertifier>,
    progress: Arc<ProgressGauge>,
    peak: Arc<Watermark>,
    best: Arc<LowWatermark>,
    hist: Arc<Histogram>,
    latency: Arc<LatencyTracker>,
    sharded: Arc<ShardedCounter>,
    core_counter: Arc<FArrayCounter>,
    core_maxreg: Arc<TreeMaxRegister>,
}

fn build() -> (Families, Arc<MetricsRegistry>) {
    let fam = Families {
        health: Arc::new(HealthGauges::new(WRITERS)),
        checker: Arc::new(CheckerGauges::new(WRITERS)),
        certifier: Arc::new(ProgressCertifier::new(WRITERS, u64::MAX)),
        progress: Arc::new(ProgressGauge::new(WRITERS, u64::MAX)),
        peak: Arc::new(Watermark::new(WRITERS)),
        best: Arc::new(LowWatermark::new(WRITERS)),
        hist: Arc::new(Histogram::new(WRITERS, &[10, 100, 1_000])),
        latency: Arc::new(LatencyTracker::new(WRITERS, &[50, 500])),
        sharded: Arc::new(ShardedCounter::new(WRITERS)),
        core_counter: Arc::new(FArrayCounter::new(WRITERS)),
        core_maxreg: Arc::new(TreeMaxRegister::new(WRITERS)),
    };
    let mut reg = MetricsRegistry::new();
    fam.health.register_telemetry(&mut reg, "health_");
    fam.checker.register_telemetry(&mut reg, "checker_");
    fam.certifier.register_telemetry(&mut reg, "cert_");
    fam.progress.register_telemetry(&mut reg, "work_");
    fam.peak
        .register_into(&mut reg, "peak", "ns", "bench peak value");
    fam.best
        .register_into(&mut reg, "best", "ns", "bench best value");
    fam.hist
        .register_telemetry(&mut reg, "lat", "samples", "bench latency");
    fam.latency.register_telemetry(&mut reg, "rt_", "samples");
    ShardGauges::new(Arc::clone(&fam.sharded)).register_telemetry(&mut reg, "shard_");
    let c = Arc::clone(&fam.core_counter);
    reg.register(
        MetricDesc::new(
            "core_counter",
            MetricKind::Counter,
            "incrs",
            "f-array counter root (O(1) read)",
        ),
        move || c.read(),
    );
    let m = Arc::clone(&fam.core_maxreg);
    reg.register(
        MetricDesc::new(
            "core_maxreg",
            MetricKind::Watermark,
            "value",
            "tree max register root (O(1) read)",
        ),
        move || m.read_max(),
    );
    (fam, Arc::new(reg))
}

/// Pours `events` recording calls into every family, round-robin over
/// the writer identities — single-threaded; this is a data-volume dial,
/// not a contention experiment.
fn feed(fam: &Families, events: u64, rng: &mut SplitMix64) {
    for i in 0..events {
        let pid = ProcessId((i % WRITERS as u64) as usize);
        let v = 1 + rng.gen_below(5_000);
        match i % 5 {
            0 => {
                fam.health.bump(pid, HealthEvent::Served);
                fam.health.record_queue_depth(pid, v % 64);
            }
            1 => fam.checker.record(pid, v as usize, v.is_multiple_of(97)),
            2 => fam.certifier.record_completion(pid, v % 200),
            3 => {
                fam.peak.record(pid, v);
                fam.best.record(pid, v);
                fam.hist.record(pid, v % 2_000);
            }
            _ => {
                fam.latency.observe(pid, v % 1_000);
                fam.sharded.increment(pid);
                fam.core_counter.increment(pid);
                fam.core_maxreg.write_max(pid, v);
            }
        }
        fam.progress.complete(pid);
    }
}

/// Shared-memory loads performed by one full snapshot, as seen by the
/// [`CountingMem`] instrumentation (only the core-backed scalars live
/// in counting cells; the plain-atomic gauge families tally zero).
fn snapshot_loads(reg: &MetricsRegistry) -> u64 {
    CountingMem::enable();
    CountingMem::begin_op();
    let snap = reg.snapshot();
    let counts = CountingMem::take_op_counts();
    CountingMem::disable();
    std::hint::black_box(snap);
    assert_eq!(counts.steps(), counts.reads, "snapshots only load");
    counts.reads
}

/// Median of `reps` timings of `per_rep` iterations of `f`, in
/// nanoseconds per iteration.
fn time_ns(reps: usize, per_rep: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..per_rep {
                f();
            }
            start.elapsed().as_nanos() as f64 / per_rep as f64
        })
        .collect();
    median(&mut samples)
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn percentile(samples: &mut [f64], p: f64) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let at = ((samples.len() - 1) as f64 * p).round() as usize;
    samples[at]
}

struct RegistryResult {
    scalars: usize,
    snapshot_ns: f64,
    loads_per_snapshot: u64,
    loads_at_10x: u64,
    exposition_bytes: usize,
}

fn run_registry(cfg: &Config) -> RegistryResult {
    let (fam, reg) = build();
    let mut rng = SplitMix64::new(0x12_57ee1);
    let base_events: u64 = if cfg.quick { 1_000 } else { 10_000 };

    feed(&fam, base_events, &mut rng);
    let loads_1x = snapshot_loads(&reg);
    // Ten times the recorded data must not change what a snapshot
    // loads: reads are O(1) per scalar regardless of history volume.
    feed(&fam, base_events * 9, &mut rng);
    let loads_10x = snapshot_loads(&reg);

    let (reps, per_rep) = if cfg.quick { (5, 200) } else { (9, 2_000) };
    let snapshot_ns = time_ns(reps, per_rep, || {
        std::hint::black_box(reg.snapshot());
    });
    let exposition_bytes = reg.snapshot().to_text().len();

    RegistryResult {
        scalars: reg.len(),
        snapshot_ns,
        loads_per_snapshot: loads_1x,
        loads_at_10x: loads_10x,
        exposition_bytes,
    }
}

struct SamplerResult {
    capacity: usize,
    tick_ns: f64,
}

fn run_sampler(cfg: &Config) -> SamplerResult {
    let (fam, reg) = build();
    let mut rng = SplitMix64::new(0x5a3713);
    feed(&fam, if cfg.quick { 1_000 } else { 10_000 }, &mut rng);
    let capacity = 64;
    let mut sampler = SeriesSampler::new(Arc::clone(&reg), capacity);
    let (reps, per_rep) = if cfg.quick { (5, 200) } else { (9, 2_000) };
    let mut tick = 0u64;
    let tick_ns = time_ns(reps, per_rep, || {
        sampler.sample(tick);
        tick += 1;
    });
    assert_eq!(sampler.taken(), (reps * per_rep) as u64);
    SamplerResult { capacity, tick_ns }
}

// ------------------------------------------------------------------- serve

struct ServeRow {
    mode: &'static str,
    requests: u64,
    median_ns: f64,
    p99_ns: f64,
    spans: usize,
}

/// Drives one client against a fresh server and returns the
/// client-observed per-request latencies plus the shutdown summary.
fn run_serve(mode: &'static str, spans: bool, requests: u64) -> (ServeRow, ServeSummary) {
    let cfg = ServeConfig {
        workers: 2,
        spans,
        ..ServeConfig::default()
    };
    let server = Server::start(cfg, &[ObjectDef::counter("hits", "farray")])
        .expect("serve bench server starts");
    let addr = server.addr();
    let mut client = Client::new(ClientConfig::new(addr), 12);
    let mut lat: Vec<f64> = Vec::with_capacity(requests as usize);
    for i in 0..requests {
        let start = Instant::now();
        // 80/20 read/increment: the metrics plane's regime.
        if i % 5 == 0 {
            client.incr("hits", 1).expect("incr acked");
        } else {
            client.read("hits").expect("read answered");
        }
        lat.push(start.elapsed().as_nanos() as f64);
    }
    drop(client);
    let summary = server.shutdown();
    assert!(
        summary.audit().ok(),
        "{mode}: shutdown audit failed:\n{}",
        summary.audit()
    );
    let row = ServeRow {
        mode,
        requests,
        median_ns: median(&mut lat),
        p99_ns: percentile(&mut lat, 0.99),
        spans: summary.spans.len(),
    };
    (row, summary)
}

// -------------------------------------------------------------------- main

fn write_json(
    cfg: &Config,
    registry: &RegistryResult,
    sampler: &SamplerResult,
    serve: &[ServeRow],
    noise_ratio: f64,
    overhead_ratio: f64,
    overhead_ok: bool,
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"ruo-telemetry-v1\",\n");
    out.push_str(&format!("  \"quick\": {},\n", cfg.quick));
    out.push_str(&format!(
        "  \"registry\": {{\"scalars\": {}, \"snapshot_ns\": {:.1}, \
         \"loads_per_snapshot\": {}, \"loads_at_10x_data\": {}, \
         \"loads_invariant\": {}, \"exposition_bytes\": {}}},\n",
        registry.scalars,
        registry.snapshot_ns,
        registry.loads_per_snapshot,
        registry.loads_at_10x,
        registry.loads_per_snapshot == registry.loads_at_10x,
        registry.exposition_bytes,
    ));
    out.push_str(&format!(
        "  \"sampler\": {{\"capacity\": {}, \"tick_ns\": {:.1}}},\n",
        sampler.capacity, sampler.tick_ns
    ));
    out.push_str("  \"serve\": [\n");
    for (i, r) in serve.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"requests\": {}, \"median_ns\": {:.0}, \
             \"p99_ns\": {:.0}, \"spans\": {}}}{}\n",
            r.mode,
            r.requests,
            r.median_ns,
            r.p99_ns,
            r.spans,
            if i + 1 == serve.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"gates\": {{\"noise_ratio\": {noise_ratio:.3}, \
         \"overhead_ratio\": {overhead_ratio:.3}, \"overhead_ok\": {overhead_ok}}}\n}}\n"
    ));
    std::fs::write(&cfg.out, out)
}

fn main() {
    let cfg = Config::from_args();
    println!("# W12 — observability overhead: registry, sampler, serve spans\n");

    // ---- registry snapshot cost -----------------------------------
    let registry = run_registry(&cfg);
    println!(
        "registry: {} scalars, snapshot {:.0} ns, {} counted loads \
         (at 10x data: {}), exposition {} B",
        registry.scalars,
        registry.snapshot_ns,
        registry.loads_per_snapshot,
        registry.loads_at_10x,
        registry.exposition_bytes
    );
    assert!(
        registry.loads_per_snapshot > 0,
        "core-backed scalars must be visible to the load tally"
    );
    assert_eq!(
        registry.loads_per_snapshot, registry.loads_at_10x,
        "snapshot loads grew with recorded data — reads are no longer O(1)"
    );
    // The counted loads come from: shard stripe gauges (1 each), the
    // shard total (O(stripes), documented), and the two O(1) core
    // roots. An average bound of 4 loads per countable scalar leaves
    // headroom for impl tweaks while still catching an accidental
    // O(history) read path.
    let countable = WRITERS + 1 + 2;
    assert!(
        registry.loads_per_snapshot <= 4 * countable as u64,
        "snapshot performs {} loads over {} countable scalars",
        registry.loads_per_snapshot,
        countable
    );

    // ---- sampler tick cost ----------------------------------------
    let sampler = run_sampler(&cfg);
    println!(
        "sampler:  capacity {}, tick {:.0} ns",
        sampler.capacity, sampler.tick_ns
    );

    // ---- serve spans on vs off ------------------------------------
    let requests: u64 = if cfg.quick { 400 } else { 2_000 };
    let (off_a, sum_a) = run_serve("spans_off_a", false, requests);
    let (off_b, sum_b) = run_serve("spans_off_b", false, requests);
    let (on, sum_on) = run_serve("spans_on", true, requests);
    assert!(
        sum_a.spans.is_empty() && sum_b.spans.is_empty(),
        "spans-off summaries must carry no spans"
    );
    assert!(
        sum_on.spans.len() >= requests as usize,
        "spans-on summary has {} spans for {} requests",
        sum_on.spans.len(),
        requests
    );

    let jsonl = sum_on.spans_to_jsonl();
    let chrome = sum_on.spans_to_chrome_trace();
    std::fs::write("w12_spans.jsonl", &jsonl).expect("write w12_spans.jsonl");
    std::fs::write("w12_spans.chrome.json", &chrome).expect("write w12_spans.chrome.json");

    let off_min = off_a.median_ns.min(off_b.median_ns);
    let off_max = off_a.median_ns.max(off_b.median_ns);
    let noise_ratio = off_max / off_min;
    let overhead_ratio = on.median_ns / off_min;
    // Generous on purpose: CI runs on one noisy core, and the off/off
    // noise floor routinely exceeds any real span cost. The structural
    // gates above are the sharp ones.
    let overhead_ok = on.median_ns <= off_min * 3.0 + 50_000.0;
    let serve = [off_a, off_b, on];
    for r in &serve {
        println!(
            "serve:    {:<12} median {:>9.0} ns  p99 {:>9.0} ns  spans {}",
            r.mode, r.median_ns, r.p99_ns, r.spans
        );
    }
    println!(
        "serve:    off/off noise x{noise_ratio:.2}, spans-on/off x{overhead_ratio:.2} \
         (gate: <= 3x + 50us)"
    );
    assert!(
        overhead_ok,
        "span overhead gate failed: on {:.0} ns vs off {:.0} ns",
        serve[2].median_ns, off_min
    );

    write_json(
        &cfg,
        &registry,
        &sampler,
        &serve,
        noise_ratio,
        overhead_ratio,
        overhead_ok,
    )
    .expect("write telemetry JSON");
    println!(
        "\nwrote registry/sampler/serve rows to {} (+ w12_spans.jsonl, w12_spans.chrome.json)",
        cfg.out
    );
}
