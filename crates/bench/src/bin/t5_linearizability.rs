//! Experiment T5 — Theorem 5: linearizability of Algorithm A (and every
//! other implementation), verified three ways:
//!
//! 1. randomized adversarial schedules through the sound per-object
//!    checkers,
//! 2. exhaustive small-scope exploration (bounded model checking),
//! 3. real-thread histories, tick-stamped and checked.
//!
//! Prints a verdict table; any violation would name the implementation
//! and seed/schedule.
//!
//! Run with `cargo run --release -p ruo-bench --bin t5_linearizability`.

use std::sync::Arc;

use ruo_bench::Table;
use ruo_core::maxreg::sim::{
    SimAacMaxRegister, SimCasRetryMaxRegister, SimFArrayMaxRegister, SimMaxRegister,
    SimTreeMaxRegister,
};
use ruo_core::maxreg::{AacMaxRegister, CasRetryMaxRegister, FArrayMaxRegister, TreeMaxRegister};
use ruo_core::MaxRegister;
use ruo_sim::explore::{enumerate, ExploreOp};
use ruo_sim::lin::check_max_register;
use ruo_sim::recorder::ThreadRecorder;
use ruo_sim::{
    Executor, Memory, OpDesc, OpOutput, OpSpec, ProcessId, RandomScheduler, WorkloadBuilder,
};

/// Randomized-schedule pass: `seeds` executions of a mixed workload.
fn random_pass(
    make: &dyn Fn(&mut Memory, usize) -> Arc<dyn SimMaxRegister>,
    seeds: u64,
) -> (u64, u64) {
    let mut ok = 0;
    for seed in 0..seeds {
        let mut mem = Memory::new();
        let n = 4;
        let reg = make(&mut mem, n);
        let mut w = WorkloadBuilder::new(n);
        for p in 0..n {
            for i in 0..6usize {
                let pid = ProcessId(p);
                if i % 2 == 0 {
                    let v = (i * n + p + 1) as u64;
                    let reg = Arc::clone(&reg);
                    w.op(
                        pid,
                        OpSpec::update(OpDesc::WriteMax(v as i64), move || reg.write_max(pid, v)),
                    );
                } else {
                    let reg = Arc::clone(&reg);
                    w.op(
                        pid,
                        OpSpec::value(OpDesc::ReadMax, move || reg.read_max(pid)),
                    );
                }
            }
        }
        let outcome = Executor::new().run(&mut mem, w, &mut RandomScheduler::new(seed));
        if outcome.all_done && check_max_register(&outcome.history, 0).is_ok() {
            ok += 1;
        }
    }
    (ok, seeds)
}

/// Exhaustive pass: one writer + two readers, all schedules.
fn exhaustive_pass(
    make: &dyn Fn(&mut Memory, usize) -> Arc<dyn SimMaxRegister>,
) -> (usize, &'static str) {
    let setup = || {
        let mut mem = Memory::new();
        let reg = make(&mut mem, 2);
        let machines = vec![
            reg.write_max(ProcessId(0), 1),
            reg.read_max(ProcessId(1)),
            reg.read_max(ProcessId(1)),
        ];
        (mem, machines)
    };
    let ops = vec![
        ExploreOp {
            pid: ProcessId(0),
            desc: OpDesc::WriteMax(1),
            returns_value: false,
        },
        ExploreOp {
            pid: ProcessId(1),
            desc: OpDesc::ReadMax,
            returns_value: true,
        },
        ExploreOp {
            pid: ProcessId(2),
            desc: OpDesc::ReadMax,
            returns_value: true,
        },
    ];
    let summary = enumerate(
        &setup,
        &ops,
        &mut |h| check_max_register(h, 0).is_ok(),
        500_000,
    );
    let verdict = if summary.violation.is_some() {
        "VIOLATION"
    } else if summary.truncated {
        "partial, no violation"
    } else {
        "exhaustive, ok"
    };
    (summary.schedules, verdict)
}

/// Real-thread pass over a real-atomics implementation.
fn thread_pass<R: MaxRegister>(reg: &R) -> bool {
    let rec = ThreadRecorder::new();
    let threads = 4;
    crossbeam_utils_shim(reg, &rec, threads);
    check_max_register(&rec.history(), 0).is_ok()
}

/// Thread driver (std threads keep bench deps lean).
fn crossbeam_utils_shim<R: MaxRegister>(reg: &R, rec: &ThreadRecorder, threads: usize) {
    std::thread::scope(|s| {
        for t in 0..threads {
            s.spawn(move || {
                let pid = ProcessId(t);
                for i in 0..200u64 {
                    if i % 3 == 2 {
                        rec.record(pid, OpDesc::ReadMax, || {
                            OpOutput::Value(reg.read_max() as i64)
                        });
                    } else {
                        let v = i * threads as u64 + t as u64 + 1;
                        rec.record(pid, OpDesc::WriteMax(v as i64), || {
                            reg.write_max(pid, v);
                            OpOutput::Unit
                        });
                    }
                }
            });
        }
    });
}

/// A named simulated-register factory.
type RegFactory = Box<dyn Fn(&mut Memory, usize) -> Arc<dyn SimMaxRegister>>;

fn main() {
    println!("# T5 — Theorem 5: linearizability verdicts\n");
    let mut t = Table::new(&[
        "implementation",
        "random schedules ok",
        "exhaustive schedules",
        "exploration verdict",
        "real threads ok",
    ]);

    let configs: Vec<(&str, RegFactory)> = vec![
        (
            "Algorithm A",
            Box::new(|mem, n| Arc::new(SimTreeMaxRegister::new(mem, n))),
        ),
        (
            "AAC",
            Box::new(|mem, n| Arc::new(SimAacMaxRegister::new(mem, n, 1 << 10))),
        ),
        (
            "AAC unbalanced",
            Box::new(|mem, n| Arc::new(SimAacMaxRegister::new_unbalanced(mem, n, 1 << 10))),
        ),
        (
            "CAS cell",
            Box::new(|mem, n| Arc::new(SimCasRetryMaxRegister::new(mem, n))),
        ),
        (
            "f-array",
            Box::new(|mem, n| Arc::new(SimFArrayMaxRegister::new(mem, n))),
        ),
    ];
    for (name, make) in &configs {
        let (ok, total) = random_pass(make.as_ref(), 60);
        let (schedules, exhaustive_verdict) = exhaustive_pass(make.as_ref());
        let threads_ok = match *name {
            "Algorithm A" => thread_pass(&TreeMaxRegister::new(4)),
            "AAC" => thread_pass(&AacMaxRegister::new(1 << 12)),
            "AAC unbalanced" => thread_pass(&AacMaxRegister::new_unbalanced(1 << 12)),
            "CAS cell" => thread_pass(&CasRetryMaxRegister::new()),
            _ => thread_pass(&FArrayMaxRegister::new(4)),
        };
        t.row(vec![
            name.to_string(),
            format!("{ok}/{total}"),
            schedules.to_string(),
            exhaustive_verdict.to_string(),
            if threads_ok { "yes" } else { "NO" }.to_string(),
        ]);
    }
    t.print();
    println!("\nEvery row must read all-ok; a NO would print the violating seed/schedule");
    println!("through the checker's panic payload in the test-suite versions of these");
    println!("passes (tests/linearizability_*.rs, tests/exhaustive.rs).");
}
