//! Experiment W7 — empirical validation of the paper's step bounds.
//!
//! Sweeps solo step counts of Algorithm A (`ReadMax` / `WriteMax`) and
//! the f-array counter across `N ∈ {2..64}` and written values
//! `v ∈ {1..2^20}`, fits each curve against `a + b·log₂(x)`, and
//! asserts the bound shapes the paper proves: constant reads,
//! `O(min(log N, log v))` writes (flattening at the tree-depth bound),
//! `Θ(log N)` counter updates. Shape violations exit nonzero — this is
//! the CI gate that the repo's implementations keep the complexity
//! classes the paper trades off.
//!
//! CLI: `--quick` (smaller sweeps — the CI target),
//! `--out <path>` (default `BENCH_complexity.json`).

use ruo_bench::complexity::{check_shapes, profile, ComplexityProfile};
use ruo_bench::{log2_ceil, Table};

#[derive(Clone, Debug)]
struct Config {
    quick: bool,
    out: String,
}

impl Config {
    fn from_args() -> Self {
        let mut cfg = Config {
            quick: false,
            out: "BENCH_complexity.json".to_string(),
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => cfg.quick = true,
                "--out" => {
                    cfg.out = args.next().expect("--out requires a path");
                }
                _ => {}
            }
        }
        cfg
    }
}

fn write_json(cfg: &Config, p: &ComplexityProfile, failures: &[String]) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"ruo-complexity-v1\",\n");
    out.push_str(&format!("  \"quick\": {},\n", p.quick));
    out.push_str(&format!("  \"shapes_ok\": {},\n", failures.is_empty()));
    out.push_str("  \"curves\": [\n");
    for (i, c) in p.curves.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"x\": \"{}\", \"bound\": \"{}\",\n",
            c.name, c.x_label, c.bound
        ));
        out.push_str(&format!(
            "     \"fit\": {{\"a\": {:.4}, \"b_log2\": {:.4}, \"max_resid\": {:.4}}},\n",
            c.fit.a, c.fit.b_log2, c.fit.max_resid
        ));
        let pts: Vec<String> = c
            .points
            .iter()
            .map(|pt| format!("{{\"x\": {}, \"steps\": {}}}", pt.x, pt.steps))
            .collect();
        out.push_str(&format!("     \"points\": [{}]}}{}\n", pts.join(", "), {
            if i + 1 == p.curves.len() {
                ""
            } else {
                ","
            }
        }));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(&cfg.out, out)
}

fn main() {
    let cfg = Config::from_args();
    println!("# W7 — step-complexity profile (measured solo steps)\n");
    let p = profile(cfg.quick);

    for c in &p.curves {
        println!("## {} vs {}  (bound: {})\n", c.name, c.x_label, c.bound);
        let mut t = Table::new(&[c.x_label, "log2", "steps"]);
        for pt in &c.points {
            t.row(vec![
                pt.x.to_string(),
                log2_ceil(pt.x).to_string(),
                pt.steps.to_string(),
            ]);
        }
        t.print();
        println!(
            "\nfit: steps ≈ {:.2} + {:.2}·log2({})  (max residual {:.2})\n",
            c.fit.a, c.fit.b_log2, c.x_label, c.fit.max_resid
        );
    }

    let failures = check_shapes(&p);
    write_json(&cfg, &p, &failures).expect("write JSON results");
    println!("wrote {}", cfg.out);

    if failures.is_empty() {
        println!("\nall bound shapes hold: O(1) reads, O(min(log N, log v)) writes, Θ(log N) counter updates");
    } else {
        eprintln!("\nBOUND SHAPE VIOLATIONS:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
}
