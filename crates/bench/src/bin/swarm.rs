//! Experiment W10 — swarm load generator for the serve layer.
//!
//! Stands up an in-process [`ruo_serve::Server`] over four registry
//! objects (exact + sharded counters, a tree max register, a
//! double-collect snapshot) and drives it through four measured
//! phases:
//!
//! 1. **clean** — paced multi-threaded clients, no faults: the latency
//!    baseline (p50/p99 from `ruo_metrics::Histogram`).
//! 2. **chaos** — same workload with every client socket wrapped in the
//!    stock [`NetFaultPlan::chaos`] profile (drops, half-closes,
//!    truncated frames, stalls): retries/backoff/dedup pay the tail.
//! 3. **overload burst** — a connection burst against one slow worker
//!    and a tiny queue walks the whole degradation ladder: exact →
//!    degraded reads → queue-age deadlines → shedding at the gate.
//! 4. **drain** — shutdown mid-burst; every acknowledged increment must
//!    be applied (`acked_lost == 0`).
//!
//! After every phase the server's per-object op log replays through
//! `check_interval` — the run *proves* its retry/chaos semantics, and
//! the CI smoke asserts zero audit violations. Results go to
//! `BENCH_serve.json` (schema `ruo-serve-v1`).
//!
//! CLI: `--quick` (CI smoke sizes), `--seed <n>`, `--out <path>`.

use std::io::{BufRead, BufReader, Write as _};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use ruo_metrics::{Histogram, HistogramSnapshot};
use ruo_scenario::Json;
use ruo_serve::{
    audit, Client, ClientConfig, NetFaultPlan, ObjectDef, ServeConfig, ServeSummary, Server,
};
use ruo_sim::{ProcessId, SplitMix64};

/// Log-spaced latency bucket boundaries, 1 µs … 2 s, in nanoseconds.
fn latency_boundaries() -> Vec<u64> {
    let mut b = Vec::new();
    let mut decade: u64 = 1_000;
    while decade <= 100_000_000 {
        for mult in [10, 15, 22, 33, 47, 68] {
            b.push(decade * mult / 10);
        }
        decade *= 10;
    }
    b.push(1_000_000_000);
    b.push(2_000_000_000);
    b
}

#[derive(Clone, Copy)]
struct Sizes {
    workers: usize,
    clients: usize,
    requests_per_client: u64,
    pace_gap_us: u64,
    burst_conns: usize,
    burst_hold_ms: u64,
    drain_clients: usize,
}

const FULL: Sizes = Sizes {
    workers: 4,
    clients: 8,
    requests_per_client: 300,
    pace_gap_us: 400,
    burst_conns: 24,
    burst_hold_ms: 40,
    drain_clients: 3,
};

const QUICK: Sizes = Sizes {
    workers: 2,
    clients: 4,
    requests_per_client: 60,
    pace_gap_us: 200,
    burst_conns: 12,
    burst_hold_ms: 25,
    drain_clients: 2,
};

fn objects() -> Vec<ObjectDef> {
    vec![
        ObjectDef::counter("hits", "farray"),
        ObjectDef::counter("hits_sharded", "sharded"),
        ObjectDef::maxreg("peak", "tree"),
        ObjectDef::snapshot("segments", "double_collect"),
    ]
}

struct PhaseResult {
    requests: u64,
    ok: u64,
    failed: u64,
    retries: u64,
    reconnects: u64,
    degraded: u64,
    acked_incrs: u64,
    seconds: f64,
    hist: HistogramSnapshot,
    summary: ServeSummary,
}

/// One paced client thread: a fixed request mix with open-loop-style
/// gaps between issues (the gap is paid regardless of how long the
/// previous request took to succeed, so retry storms show up as tail
/// latency, not reduced offered load).
fn client_loop(
    mut client: Client,
    pid: ProcessId,
    hist: &Histogram,
    sizes: Sizes,
    seed: u64,
) -> ruo_serve::ClientStats {
    let mut rng = SplitMix64::new(seed);
    let mut failed_reqs = 0u64;
    for i in 0..sizes.requests_per_client {
        let gap = sizes.pace_gap_us / 2 + rng.gen_below(sizes.pace_gap_us);
        thread::sleep(Duration::from_micros(gap));
        let t0 = Instant::now();
        let outcome = match rng.gen_below(100) {
            0..=39 => client.incr("hits", 1 + rng.gen_below(3)).map(|_| ()),
            40..=49 => client.incr("hits_sharded", 1).map(|_| ()),
            50..=64 => client.write_max("peak", rng.gen_below(1 << 20)).map(|_| ()),
            65..=84 => client.read("hits").map(|_| ()),
            85..=89 => client.read("peak").map(|_| ()),
            90..=94 => client.update("segments", i + 1).map(|_| ()),
            _ => client.scan("segments").map(|_| ()),
        };
        let ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        hist.record(pid, ns);
        if outcome.is_err() {
            failed_reqs += 1;
        }
    }
    let _ = failed_reqs;
    client.stats()
}

fn run_phase(label: &str, sizes: Sizes, seed: u64, chaos: Option<NetFaultPlan>) -> PhaseResult {
    let server = Server::start(
        ServeConfig {
            workers: sizes.workers,
            ..ServeConfig::default()
        },
        &objects(),
    )
    .expect("server starts");
    let addr = server.addr();
    let hist = Arc::new(Histogram::new(sizes.clients, &latency_boundaries()));
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for c in 0..sizes.clients {
        let hist = Arc::clone(&hist);
        let chaos = chaos.clone();
        handles.push(thread::spawn(move || {
            let mut cfg = ClientConfig::new(addr);
            cfg.chaos = chaos;
            cfg.max_attempts = 10;
            let client = Client::new(cfg, c as u64 + 1);
            client_loop(
                client,
                ProcessId(c),
                &hist,
                sizes,
                seed ^ (c as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            )
        }));
    }
    let mut ok = 0;
    let mut failed = 0;
    let mut retries = 0;
    let mut reconnects = 0;
    let mut degraded = 0;
    let mut acked_incrs = 0;
    for h in handles {
        let stats = h.join().expect("client thread");
        ok += stats.ok;
        failed += stats.failed;
        retries += stats.retries;
        reconnects += stats.reconnects;
        degraded += stats.degraded;
        acked_incrs += stats.acked_incrs;
    }
    let seconds = t0.elapsed().as_secs_f64();
    let summary = server.shutdown();
    println!(
        "  {label:<6} {:>6} reqs  ok {ok:>6}  failed {failed:>4}  retries {retries:>5}  \
         degraded {degraded:>4}  {seconds:>6.2}s",
        sizes.clients as u64 * sizes.requests_per_client,
    );
    PhaseResult {
        requests: sizes.clients as u64 * sizes.requests_per_client,
        ok,
        failed,
        retries,
        reconnects,
        degraded,
        acked_incrs,
        seconds,
        hist: hist.snapshot(),
        summary,
    }
}

struct BurstResult {
    connections: usize,
    ok_exact: u64,
    ok_degraded: u64,
    err_overload: u64,
    err_deadline: u64,
    io_failed: u64,
    summary: ServeSummary,
}

/// Walks the degradation ladder: one deliberately slow worker, a
/// 4-deep queue, and a burst of short-lived connections each issuing
/// one `read hits` and then holding the socket open (occupying the
/// worker) for `burst_hold_ms`.
fn run_overload_burst(sizes: Sizes) -> BurstResult {
    let server = Server::start(
        ServeConfig {
            workers: 1,
            queue_cap: 4,
            degrade_depth: 2,
            deadline: Duration::from_millis(150),
            ..ServeConfig::default()
        },
        &objects(),
    )
    .expect("server starts");
    let addr = server.addr();
    // Preload the counter so degraded reads have something to miss.
    {
        let mut c = Client::new(ClientConfig::new(addr), 999);
        for _ in 0..10 {
            c.incr("hits", 10).expect("preload");
        }
    }
    let ok_exact = Arc::new(AtomicU64::new(0));
    let ok_degraded = Arc::new(AtomicU64::new(0));
    let err_overload = Arc::new(AtomicU64::new(0));
    let err_deadline = Arc::new(AtomicU64::new(0));
    let io_failed = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for _ in 0..sizes.burst_conns {
        let (a, b, c, d, e) = (
            Arc::clone(&ok_exact),
            Arc::clone(&ok_degraded),
            Arc::clone(&err_overload),
            Arc::clone(&err_deadline),
            Arc::clone(&io_failed),
        );
        let hold = Duration::from_millis(sizes.burst_hold_ms);
        handles.push(thread::spawn(move || {
            let run = || -> std::io::Result<String> {
                let mut stream = TcpStream::connect(addr)?;
                stream.set_read_timeout(Some(Duration::from_secs(3)))?;
                let mut reader = BufReader::new(stream.try_clone()?);
                stream.write_all(b"read hits\n")?;
                let mut line = String::new();
                loop {
                    match reader.read_line(&mut line) {
                        Ok(0) => {
                            return Err(std::io::Error::new(
                                std::io::ErrorKind::UnexpectedEof,
                                "closed",
                            ))
                        }
                        Ok(_) => break,
                        Err(err)
                            if matches!(
                                err.kind(),
                                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                            ) =>
                        {
                            continue
                        }
                        Err(err) => return Err(err),
                    }
                }
                thread::sleep(hold); // occupy the worker
                Ok(line.trim_end().to_string())
            };
            match run() {
                Ok(line) if line.starts_with("ok degraded") => b.fetch_add(1, Ordering::Relaxed),
                Ok(line) if line.starts_with("ok") => a.fetch_add(1, Ordering::Relaxed),
                Ok(line) if line.starts_with("err overload") => c.fetch_add(1, Ordering::Relaxed),
                Ok(line) if line.starts_with("err deadline") => d.fetch_add(1, Ordering::Relaxed),
                _ => e.fetch_add(1, Ordering::Relaxed),
            };
        }));
    }
    for h in handles {
        h.join().expect("burst thread");
    }
    let summary = server.shutdown();
    let result = BurstResult {
        connections: sizes.burst_conns,
        ok_exact: ok_exact.load(Ordering::Relaxed),
        ok_degraded: ok_degraded.load(Ordering::Relaxed),
        err_overload: err_overload.load(Ordering::Relaxed),
        err_deadline: err_deadline.load(Ordering::Relaxed),
        io_failed: io_failed.load(Ordering::Relaxed),
        summary,
    };
    println!(
        "  burst  {:>6} conns exact {} degraded {} overload {} deadline {} io {}",
        result.connections,
        result.ok_exact,
        result.ok_degraded,
        result.err_overload,
        result.err_deadline,
        result.io_failed
    );
    result
}

struct DrainResult {
    acked: u64,
    applied: u64,
    acked_lost: u64,
    summary: ServeSummary,
}

/// Kill-signal drain: increment clients run flat out, the server shuts
/// down under them, and no acknowledged increment may be lost.
fn run_drain(sizes: Sizes) -> DrainResult {
    let server = Server::start(
        ServeConfig {
            workers: sizes.workers,
            ..ServeConfig::default()
        },
        &objects(),
    )
    .expect("server starts");
    let addr = server.addr();
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for c in 0..sizes.drain_clients {
        let stop = Arc::clone(&stop);
        handles.push(thread::spawn(move || {
            let mut cfg = ClientConfig::new(addr);
            cfg.max_attempts = 2; // once the drain starts, give up fast
            let mut client = Client::new(cfg, 7000 + c as u64);
            while !stop.load(Ordering::Relaxed) {
                let _ = client.incr("hits", 1);
            }
            client.stats()
        }));
    }
    thread::sleep(Duration::from_millis(120));
    // The "kill signal": drain while clients are mid-request.
    let summary = server.shutdown();
    stop.store(true, Ordering::Relaxed);
    let mut acked = 0;
    for h in handles {
        acked += h.join().expect("drain client").acked_incrs;
    }
    let applied = summary.final_value("hits").unwrap_or(0);
    let result = DrainResult {
        acked,
        applied,
        acked_lost: acked.saturating_sub(applied),
        summary,
    };
    println!(
        "  drain  acked {}  applied {}  lost {}",
        result.acked, result.applied, result.acked_lost
    );
    result
}

fn quantile_us(hist: &HistogramSnapshot, q: f64) -> f64 {
    hist.quantile_upper_bound(q)
        .map(|ns| ns as f64 / 1_000.0)
        .unwrap_or(0.0)
}

fn health_json(summary: &ServeSummary) -> Json {
    Json::Obj(
        summary
            .health
            .to_pairs()
            .into_iter()
            .map(|(k, v)| (k.to_string(), Json::Num(v)))
            .collect(),
    )
}

fn phase_json(p: &PhaseResult) -> (Json, usize) {
    let report = p.summary.audit();
    let violations = report.violations();
    (
        Json::Obj(vec![
            ("requests".into(), Json::Num(p.requests)),
            ("ok".into(), Json::Num(p.ok)),
            ("failed".into(), Json::Num(p.failed)),
            ("retries".into(), Json::Num(p.retries)),
            ("reconnects".into(), Json::Num(p.reconnects)),
            ("degraded".into(), Json::Num(p.degraded)),
            ("acked_incrs".into(), Json::Num(p.acked_incrs)),
            ("seconds".into(), Json::Float(p.seconds)),
            ("p50_us".into(), Json::Float(quantile_us(&p.hist, 0.50))),
            ("p99_us".into(), Json::Float(quantile_us(&p.hist, 0.99))),
            ("audit_ops".into(), Json::Num(report.total_ops() as u64)),
            ("audit_violations".into(), Json::Num(violations as u64)),
            ("health".into(), health_json(&p.summary)),
        ]),
        violations,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut seed = 0xB10C5_u64;
    let mut out = "BENCH_serve.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seed <u64>")
            }
            "--out" => out = it.next().expect("--out <path>").clone(),
            _ => {}
        }
    }
    let sizes = if quick { QUICK } else { FULL };
    println!(
        "W10 serve swarm: {} workers, {} clients x {} requests{}",
        sizes.workers,
        sizes.clients,
        sizes.requests_per_client,
        if quick { " (quick)" } else { "" }
    );

    let clean = run_phase("clean", sizes, seed, None);
    // The stock profile is tuned per-connection; paced clients reuse
    // connections until a fault kills one, so crank the per-connection
    // odds to keep the fault rate meaningful at swarm conn counts.
    let plan = NetFaultPlan::chaos(seed)
        .drop_per_mille(450)
        .truncate_per_mille(350)
        .stall_per_mille(350, 3_000);
    let chaos = run_phase("chaos", sizes, seed, Some(plan));
    let burst = run_overload_burst(sizes);
    let drain = run_drain(sizes);

    let (clean_json, clean_viol) = phase_json(&clean);
    let (chaos_json, chaos_viol) = phase_json(&chaos);
    let burst_report = burst.summary.audit();
    let drain_report = drain.summary.audit();
    let violations_total =
        clean_viol + chaos_viol + burst_report.violations() + drain_report.violations();

    for (label, report) in [
        ("clean", clean.summary.audit()),
        ("chaos", chaos.summary.audit()),
        ("burst", burst_report.clone()),
        ("drain", drain_report.clone()),
    ] {
        if !report.ok() {
            println!("AUDIT FAILURE in {label} phase:\n{report}");
        }
    }

    let doc = Json::Obj(vec![
        ("schema".into(), Json::Str("ruo-serve-v1".into())),
        ("experiment".into(), Json::Str("W10".into())),
        ("quick".into(), Json::Bool(quick)),
        ("seed".into(), Json::Num(seed)),
        ("workers".into(), Json::Num(sizes.workers as u64)),
        ("clients".into(), Json::Num(sizes.clients as u64)),
        (
            "requests_per_client".into(),
            Json::Num(sizes.requests_per_client),
        ),
        ("clean".into(), clean_json),
        ("chaos".into(), chaos_json),
        (
            "overload".into(),
            Json::Obj(vec![
                ("connections".into(), Json::Num(burst.connections as u64)),
                ("ok_exact".into(), Json::Num(burst.ok_exact)),
                ("ok_degraded".into(), Json::Num(burst.ok_degraded)),
                ("err_overload".into(), Json::Num(burst.err_overload)),
                ("err_deadline".into(), Json::Num(burst.err_deadline)),
                ("io_failed".into(), Json::Num(burst.io_failed)),
                (
                    "audit_violations".into(),
                    Json::Num(burst_report.violations() as u64),
                ),
                ("health".into(), health_json(&burst.summary)),
            ]),
        ),
        (
            "drain".into(),
            Json::Obj(vec![
                ("acked".into(), Json::Num(drain.acked)),
                ("applied".into(), Json::Num(drain.applied)),
                ("acked_lost".into(), Json::Num(drain.acked_lost)),
                (
                    "audit_violations".into(),
                    Json::Num(drain_report.violations() as u64),
                ),
            ]),
        ),
        (
            "violations_total".into(),
            Json::Num(violations_total as u64),
        ),
    ]);
    std::fs::write(&out, doc.pretty()).expect("write results JSON");
    println!("  wrote {out}");

    // The swarm is also a gate: chaos must not corrupt semantics.
    assert_eq!(violations_total, 0, "linearizability audit failed");
    assert_eq!(drain.acked_lost, 0, "drain lost acknowledged increments");
    let _ = audit(&clean.summary.logs); // keep the re-export exercised
}
