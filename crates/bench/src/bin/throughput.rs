//! Experiment W4 — reproducible contended-throughput harness.
//!
//! Runs every real-atomics implementation of all three object families
//! under multi-threaded contended workloads and writes the results as
//! machine-readable JSON (`BENCH_throughput.json` when run from the
//! repository root), so before/after comparisons across commits are a
//! `diff` rather than a scrollback hunt.
//!
//! Workloads per family:
//!
//! * `read_heavy`  — 90% reads / scans
//! * `mixed`       — 50% reads
//! * `write_heavy` — 10% reads
//!
//! Writer value streams are uniform in `[0, VALUE_BOUND)`, so for max
//! registers the share of *dominated* writes (`v ≤ current max`) grows
//! over the run exactly as it does in watermark-style production use —
//! the regime the paper's Algorithm A targets.
//!
//! Thread counts: 1, 2, 4, and the machine's available parallelism if
//! larger. On few-core machines contention comes from preemption rather
//! than parallel cache-line traffic; both are real contention.
//!
//! CLI: `--quick` (smoke run: fewer ops and samples),
//! `--out <path>` (default `BENCH_throughput.json`),
//! any positional argument = substring filter on the benchmark id.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use ruo_core::counter::{AacCounter, FArrayCounter, FetchAddCounter};
use ruo_core::maxreg::{
    AacMaxRegister, CasRetryMaxRegister, FArrayMaxRegister, LockMaxRegister, TreeMaxRegister,
};
use ruo_core::snapshot::{AfekSnapshot, DoubleCollectSnapshot, PathCopySnapshot};
use ruo_core::{Counter, MaxRegister, Snapshot};
use ruo_sim::{ProcessId, SplitMix64};

/// Operand bound for max-register writes; also the AAC capacity, kept
/// small enough that building the AAC switch arena stays negligible.
const VALUE_BOUND: u64 = 1 << 12;

#[derive(Clone, Debug)]
struct Config {
    quick: bool,
    out: String,
    filters: Vec<String>,
}

impl Config {
    fn from_args() -> Self {
        let mut cfg = Config {
            quick: false,
            out: "BENCH_throughput.json".to_string(),
            filters: Vec::new(),
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => cfg.quick = true,
                "--out" => {
                    cfg.out = args.next().expect("--out requires a path");
                }
                a if a.starts_with("--") => {}
                a => cfg.filters.push(a.to_string()),
            }
        }
        cfg
    }

    fn matches(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f))
    }

    fn ops_per_thread(&self, family: Family) -> u64 {
        let base = match family {
            Family::MaxReg | Family::Counter => 20_000,
            // Scans are O(N)–O(N²); keep batches comparable in duration.
            Family::Snapshot => 2_000,
        };
        if self.quick {
            base / 20
        } else {
            base
        }
    }

    fn samples(&self) -> usize {
        if self.quick {
            3
        } else {
            7
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Family {
    MaxReg,
    Counter,
    Snapshot,
}

impl Family {
    fn name(self) -> &'static str {
        match self {
            Family::MaxReg => "maxreg",
            Family::Counter => "counter",
            Family::Snapshot => "snapshot",
        }
    }
}

/// `(workload name, read/scan percentage)`.
const WORKLOADS: [(&str, u64); 3] = [("read_heavy", 90), ("mixed", 50), ("write_heavy", 10)];

/// One measured configuration.
struct Result {
    family: Family,
    impl_name: String,
    workload: &'static str,
    threads: usize,
    total_ops: u64,
    median_ns: f64,
}

impl Result {
    fn id(&self) -> String {
        format!(
            "{}/{}/{}/t{}",
            self.family.name(),
            self.impl_name,
            self.workload,
            self.threads
        )
    }

    fn ns_per_op(&self) -> f64 {
        self.median_ns / self.total_ops as f64
    }

    fn mops(&self) -> f64 {
        self.total_ops as f64 / self.median_ns * 1e3
    }
}

fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1usize, 2, 4];
    if let Ok(par) = std::thread::available_parallelism() {
        if par.get() > 4 {
            counts.push(par.get());
        }
    }
    counts
}

/// Runs `batch` (a fresh object + full contended workload each call)
/// `samples` times after one warm-up and returns the median elapsed ns.
fn measure<F: FnMut()>(samples: usize, mut batch: F) -> f64 {
    batch(); // warm-up
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            batch();
            start.elapsed().as_nanos() as f64
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

/// Contended max-register batch: each thread mixes reads with writes of
/// uniform values (seeded per thread and per sample via `round`).
fn maxreg_batch<R: MaxRegister + ?Sized>(
    reg: &R,
    threads: usize,
    ops: u64,
    read_pct: u64,
    sink: &AtomicU64,
) {
    std::thread::scope(|s| {
        for t in 0..threads {
            s.spawn(move || {
                let mut rng = SplitMix64::new(0x9e37 + t as u64);
                let mut acc = 0u64;
                for _ in 0..ops {
                    if rng.gen_below(100) < read_pct {
                        acc ^= reg.read_max();
                    } else {
                        reg.write_max(ProcessId(t), rng.gen_below(VALUE_BOUND));
                    }
                }
                sink.fetch_xor(acc, Ordering::Relaxed);
            });
        }
    });
}

fn counter_batch<C: Counter + ?Sized>(
    ctr: &C,
    threads: usize,
    ops: u64,
    read_pct: u64,
    sink: &AtomicU64,
) {
    std::thread::scope(|s| {
        for t in 0..threads {
            s.spawn(move || {
                let mut rng = SplitMix64::new(0x9e37 + t as u64);
                let mut acc = 0u64;
                for _ in 0..ops {
                    if rng.gen_below(100) < read_pct {
                        acc ^= ctr.read();
                    } else {
                        ctr.increment(ProcessId(t));
                    }
                }
                sink.fetch_xor(acc, Ordering::Relaxed);
            });
        }
    });
}

fn snapshot_batch<S: Snapshot + ?Sized>(
    snap: &S,
    threads: usize,
    ops: u64,
    scan_pct: u64,
    sink: &AtomicU64,
) {
    std::thread::scope(|s| {
        for t in 0..threads {
            s.spawn(move || {
                let mut rng = SplitMix64::new(0x9e37 + t as u64);
                let mut acc = 0u64;
                for i in 0..ops {
                    if rng.gen_below(100) < scan_pct {
                        acc ^= snap.scan().iter().sum::<u64>();
                    } else {
                        snap.update(ProcessId(t), i + 1);
                    }
                }
                sink.fetch_xor(acc, Ordering::Relaxed);
            });
        }
    });
}

/// JSON string escaping for the hand-rolled writer (ids are ASCII, but
/// stay correct anyway).
fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn write_json(cfg: &Config, results: &[Result]) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"ruo-throughput-v1\",\n");
    out.push_str(&format!("  \"quick\": {},\n", cfg.quick));
    out.push_str(&format!(
        "  \"available_parallelism\": {},\n",
        std::thread::available_parallelism().map_or(0, |p| p.get())
    ));
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"family\": \"{}\", \"impl\": \"{}\", \"workload\": \"{}\", \
             \"threads\": {}, \"total_ops\": {}, \"median_ns\": {:.0}, \
             \"ns_per_op\": {:.2}, \"mops_per_s\": {:.4}}}{}\n",
            json_escape(r.family.name()),
            json_escape(&r.impl_name),
            json_escape(r.workload),
            r.threads,
            r.total_ops,
            r.median_ns,
            r.ns_per_op(),
            r.mops(),
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(&cfg.out, out)
}

fn main() {
    let cfg = Config::from_args();
    let sink = AtomicU64::new(0);
    let mut results: Vec<Result> = Vec::new();

    // Macro-free generic dispatch: one closure per (impl, constructor).
    // Each batch constructs a fresh object so runs are independent.
    for threads in thread_counts() {
        for &(workload, read_pct) in &WORKLOADS {
            let ops = cfg.ops_per_thread(Family::MaxReg);
            let total = ops * threads as u64;
            let mut run_maxreg = |name: &str, mk: &dyn Fn() -> Box<dyn MaxRegister>| {
                let r = Result {
                    family: Family::MaxReg,
                    impl_name: name.to_string(),
                    workload,
                    threads,
                    total_ops: total,
                    median_ns: 0.0,
                };
                if !cfg.matches(&r.id()) {
                    return;
                }
                let median = measure(cfg.samples(), || {
                    let reg = mk();
                    maxreg_batch(reg.as_ref(), threads, ops, read_pct, &sink);
                });
                let r = Result {
                    median_ns: median,
                    ..r
                };
                println!(
                    "{:<44} {:>10.1} ns/op {:>9.2} Mops/s",
                    r.id(),
                    r.ns_per_op(),
                    r.mops()
                );
                results.push(r);
            };
            run_maxreg("tree", &|| Box::new(TreeMaxRegister::new(threads)));
            run_maxreg("aac", &|| Box::new(AacMaxRegister::new(VALUE_BOUND)));
            run_maxreg("aac_unbalanced", &|| {
                Box::new(AacMaxRegister::new_unbalanced(VALUE_BOUND))
            });
            run_maxreg("farray", &|| Box::new(FArrayMaxRegister::new(threads)));
            run_maxreg("cas_cell", &|| Box::new(CasRetryMaxRegister::new()));
            run_maxreg("mutex", &|| Box::new(LockMaxRegister::new()));

            let ops = cfg.ops_per_thread(Family::Counter);
            let total = ops * threads as u64;
            let max_incs = ops * threads as u64 + 1;
            let mut run_counter = |name: &str, mk: &dyn Fn() -> Box<dyn Counter>| {
                let r = Result {
                    family: Family::Counter,
                    impl_name: name.to_string(),
                    workload,
                    threads,
                    total_ops: total,
                    median_ns: 0.0,
                };
                if !cfg.matches(&r.id()) {
                    return;
                }
                let median = measure(cfg.samples(), || {
                    let ctr = mk();
                    counter_batch(ctr.as_ref(), threads, ops, read_pct, &sink);
                });
                let r = Result {
                    median_ns: median,
                    ..r
                };
                println!(
                    "{:<44} {:>10.1} ns/op {:>9.2} Mops/s",
                    r.id(),
                    r.ns_per_op(),
                    r.mops()
                );
                results.push(r);
            };
            run_counter("farray", &|| Box::new(FArrayCounter::new(threads)));
            run_counter("aac", &|| Box::new(AacCounter::new(threads, max_incs)));
            run_counter("fetch_add", &|| Box::new(FetchAddCounter::new()));

            let ops = cfg.ops_per_thread(Family::Snapshot);
            let total = ops * threads as u64;
            let max_updates = ops * threads as u64 + 1;
            let mut run_snapshot = |name: &str, mk: &dyn Fn() -> Box<dyn Snapshot>| {
                let r = Result {
                    family: Family::Snapshot,
                    impl_name: name.to_string(),
                    workload,
                    threads,
                    total_ops: total,
                    median_ns: 0.0,
                };
                if !cfg.matches(&r.id()) {
                    return;
                }
                let median = measure(cfg.samples(), || {
                    let snap = mk();
                    snapshot_batch(snap.as_ref(), threads, ops, read_pct, &sink);
                });
                let r = Result {
                    median_ns: median,
                    ..r
                };
                println!(
                    "{:<44} {:>10.1} ns/op {:>9.2} Mops/s",
                    r.id(),
                    r.ns_per_op(),
                    r.mops()
                );
                results.push(r);
            };
            run_snapshot("double_collect", &|| {
                Box::new(DoubleCollectSnapshot::new(threads))
            });
            run_snapshot("path_copy", &|| {
                Box::new(PathCopySnapshot::new(threads, max_updates))
            });
            run_snapshot("afek", &|| Box::new(AfekSnapshot::new(threads)));
        }
    }

    write_json(&cfg, &results).expect("write throughput JSON");
    eprintln!("# sink {}", sink.load(Ordering::Relaxed));
    println!("\nwrote {} results to {}", results.len(), cfg.out);
}
