//! Experiment W4 — reproducible contended-throughput harness.
//!
//! Runs every benched real-atomics implementation of all three object
//! families under multi-threaded contended workloads and writes the
//! results as machine-readable JSON (`BENCH_throughput.json` when run
//! from the repository root), so before/after comparisons across
//! commits are a `diff` rather than a scrollback hunt.
//!
//! Since the scenario-engine refactor the binary is a thin layer: it
//! iterates the registry's benched real faces, builds one
//! [`ScenarioSpec`] per (implementation, workload, thread count) cell,
//! and lets [`ruo_scenario::run_real`] run the scoped-thread batches,
//! median timing, latency histogram and progress certificate.
//!
//! Workloads per family:
//!
//! * `read_heavy`  — 90% reads / scans
//! * `mixed`       — 50% reads
//! * `write_heavy` — 10% reads
//!
//! Writer value streams are uniform in `[0, VALUE_BOUND)`, so for max
//! registers the share of *dominated* writes (`v ≤ current max`) grows
//! over the run exactly as it does in watermark-style production use —
//! the regime the paper's Algorithm A targets.
//!
//! Thread counts: 1, 2, 4, and the machine's available parallelism if
//! larger. On few-core machines contention comes from preemption rather
//! than parallel cache-line traffic; both are real contention — but the
//! harness refuses to *label* a run "contended" when
//! `available_parallelism` is 1 (`"contended": false` in the JSON), so
//! single-core results are never mistaken for cache-line-traffic
//! numbers.
//!
//! # Experiment W8 — `--scaling`
//!
//! `--scaling` switches to the multicore scaling sweep: every benched
//! counter and max-register face × the three workloads × thread counts
//! 1..64 (powers of two), each point carrying p50/p99 latency and
//! ops/sec, written to `BENCH_scaling.json`
//! (schema `ruo-scaling-v1`). This is the harness behind the
//! combining/sharded `CounterMode` comparison: the acceptance question
//! is whether `counter/combining` or `counter/sharded` beats
//! `counter/farray` on `write_heavy` at the highest thread count. The
//! file also gets a `stripe_balance` section: a direct
//! `ShardedCounter` + `ShardGauges` demo with deliberately skewed
//! per-thread traffic, showing the per-stripe observability the boxed
//! registry face cannot expose.
//!
//! CLI: `--quick` (smoke run: fewer ops, samples and thread counts),
//! `--scaling` (experiment W8), `--out <path>` (default
//! `BENCH_throughput.json`, or `BENCH_scaling.json` with `--scaling`),
//! any positional argument = substring filter on the benchmark id.

use std::sync::Arc;

use ruo_core::counter::ShardedCounter;
use ruo_core::Counter;
use ruo_metrics::ShardGauges;
use ruo_scenario::{registry, run_real, EngineKind, Family, RealSpec, ScenarioSpec};
use ruo_sim::ProcessId;

/// Operand bound for max-register writes; also the AAC capacity, kept
/// small enough that building the AAC switch arena stays negligible.
const VALUE_BOUND: u64 = 1 << 12;

#[derive(Clone, Debug)]
struct Config {
    quick: bool,
    scaling: bool,
    out: String,
    filters: Vec<String>,
}

impl Config {
    fn from_args() -> Self {
        let mut cfg = Config {
            quick: false,
            scaling: false,
            out: String::new(),
            filters: Vec::new(),
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => cfg.quick = true,
                "--scaling" => cfg.scaling = true,
                "--out" => {
                    cfg.out = args.next().expect("--out requires a path");
                }
                a if a.starts_with("--") => {}
                a => cfg.filters.push(a.to_string()),
            }
        }
        if cfg.out.is_empty() {
            cfg.out = if cfg.scaling {
                "BENCH_scaling.json".to_string()
            } else {
                "BENCH_throughput.json".to_string()
            };
        }
        cfg
    }

    fn matches(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f))
    }
}

fn ops_per_thread(family: Family) -> u64 {
    match family {
        Family::MaxReg | Family::Counter => 20_000,
        // Scans are O(N)–O(N²); keep batches comparable in duration.
        Family::Snapshot => 2_000,
    }
}

/// `(workload name, read/scan percentage)`.
const WORKLOADS: [(&str, u8); 3] = [("read_heavy", 90), ("mixed", 50), ("write_heavy", 10)];

/// One measured configuration, as echoed into the JSON file. The
/// latency quantiles are filled only by the `--scaling` sweep.
struct Row {
    family: Family,
    impl_name: String,
    workload: &'static str,
    threads: usize,
    total_ops: u64,
    median_ns: f64,
    p50_ns: u64,
    p99_ns: u64,
}

impl Row {
    fn id(&self) -> String {
        format!(
            "{}/{}/{}/t{}",
            self.family.name(),
            self.impl_name,
            self.workload,
            self.threads
        )
    }

    fn ns_per_op(&self) -> f64 {
        self.median_ns / self.total_ops as f64
    }

    fn mops(&self) -> f64 {
        self.total_ops as f64 / self.median_ns * 1e3
    }
}

fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1usize, 2, 4];
    if let Ok(par) = std::thread::available_parallelism() {
        if par.get() > 4 {
            counts.push(par.get());
        }
    }
    counts
}

/// The machine's available parallelism (0 when unknowable).
fn parallelism() -> usize {
    std::thread::available_parallelism().map_or(0, |p| p.get())
}

/// Whether the machine can produce genuine parallel cache-line
/// contention at all. A run on one hardware thread interleaves by
/// preemption only; the harness records its rows with
/// `"contended": false` so they are never read as multicore numbers.
fn machine_is_parallel() -> bool {
    parallelism() > 1
}

/// W8 sweep thread counts: powers of two up to 64 regardless of core
/// count — oversubscription is part of the curve (it is where blocking
/// front-ends pay for descheduled combiners). `--quick` keeps the
/// endpoints plus two interior points.
fn scaling_thread_counts(quick: bool) -> Vec<usize> {
    if quick {
        vec![1, 4, 16, 64]
    } else {
        vec![1, 2, 4, 8, 16, 32, 64]
    }
}

/// JSON string escaping for the hand-rolled writer (ids are ASCII, but
/// stay correct anyway).
fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn write_json(cfg: &Config, results: &[Row]) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"ruo-throughput-v1\",\n");
    out.push_str(&format!("  \"quick\": {},\n", cfg.quick));
    out.push_str(&format!(
        "  \"available_parallelism\": {},\n",
        parallelism()
    ));
    out.push_str(&format!("  \"contended\": {},\n", machine_is_parallel()));
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"family\": \"{}\", \"impl\": \"{}\", \"workload\": \"{}\", \
             \"threads\": {}, \"total_ops\": {}, \"median_ns\": {:.0}, \
             \"ns_per_op\": {:.2}, \"mops_per_s\": {:.4}}}{}\n",
            json_escape(r.family.name()),
            json_escape(&r.impl_name),
            json_escape(r.workload),
            r.threads,
            r.total_ops,
            r.median_ns,
            r.ns_per_op(),
            r.mops(),
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(&cfg.out, out)
}

/// Runs one registry cell and fills a [`Row`], XOR-ing the engine's
/// anti-elision sink into `sink`.
fn run_cell(cfg: &Config, row: Row, read_pct: u8, ops: u64, samples: usize, sink: &mut u64) -> Row {
    let mut spec = ScenarioSpec::new(
        row.id(),
        row.family,
        // The registry id is interned; recover the &'static str.
        registry()
            .iter()
            .find(|e| e.family == row.family && e.id == row.impl_name)
            .expect("row built from a registry entry")
            .id,
        EngineKind::Real,
        row.threads,
    );
    spec.read_pct = read_pct;
    spec.value_bound = VALUE_BOUND;
    spec.real = Some(RealSpec {
        threads: row.threads,
        ops_per_thread: ops,
        samples,
    });
    let report =
        run_real(&spec, cfg.quick).unwrap_or_else(|e| panic!("throughput {}: {e}", row.id()));
    *sink ^= report.counter("sink").unwrap_or(0);
    Row {
        total_ops: report.counter("total_ops").unwrap_or(0),
        median_ns: report.metric("median_ns").unwrap_or(0.0),
        p50_ns: report.counter("latency_p50_ns").unwrap_or(0),
        p99_ns: report.counter("latency_p99_ns").unwrap_or(0),
        ..row
    }
}

/// Experiment W4: the classic per-family table at 1/2/4/par threads.
fn run_throughput(cfg: &Config) {
    let mut results: Vec<Row> = Vec::new();
    let mut sink = 0u64;

    // One scenario per (thread count, workload, benched registry entry);
    // the engine constructs a fresh object per batch so runs are
    // independent.
    for threads in thread_counts() {
        for &(workload, read_pct) in &WORKLOADS {
            for family in Family::all() {
                for entry in registry()
                    .iter()
                    .filter(|e| e.family == family && e.has_real() && e.caps.benched)
                {
                    let row = Row {
                        family,
                        impl_name: entry.id.to_string(),
                        workload,
                        threads,
                        total_ops: 0,
                        median_ns: 0.0,
                        p50_ns: 0,
                        p99_ns: 0,
                    };
                    if !cfg.matches(&row.id()) {
                        continue;
                    }
                    let row = run_cell(cfg, row, read_pct, ops_per_thread(family), 7, &mut sink);
                    println!(
                        "{:<44} {:>10.1} ns/op {:>9.2} Mops/s",
                        row.id(),
                        row.ns_per_op(),
                        row.mops()
                    );
                    results.push(row);
                }
            }
        }
    }

    write_json(cfg, &results).expect("write throughput JSON");
    eprintln!("# sink {sink}");
    println!("\nwrote {} results to {}", results.len(), cfg.out);
}

/// Per-thread ops for one W8 cell — smaller than W4's batches because
/// the sweep covers 7 thread counts up to 64-way oversubscription.
const SCALING_OPS_PER_THREAD: u64 = 5_000;
const SCALING_SAMPLES: usize = 5;

/// The `stripe_balance` demo measurements.
struct StripeBalance {
    threads: usize,
    increments: Vec<u64>,
    per_stripe: Vec<u64>,
    total: u64,
    imbalance: f64,
    hottest_stripe: usize,
    hottest_count: u64,
}

/// Drives a [`ShardedCounter`] directly (not through the boxed registry
/// face) with deliberately skewed per-thread traffic — thread `i` does
/// `base >> i` increments — and reads the distribution back through
/// [`ShardGauges`]. The registry engine cannot see stripes through
/// `Box<dyn Counter>`; this section is what the per-stripe gauges are
/// *for*.
fn stripe_balance(quick: bool) -> StripeBalance {
    let threads = 8usize;
    let base: u64 = if quick { 4_000 } else { 100_000 };
    let increments: Vec<u64> = (0..threads).map(|i| base >> i).collect();
    let counter = Arc::new(ShardedCounter::new(threads));
    let gauges = ShardGauges::new(Arc::clone(&counter));
    std::thread::scope(|s| {
        for (i, &per) in increments.iter().enumerate() {
            let counter = Arc::clone(&counter);
            s.spawn(move || {
                for _ in 0..per {
                    counter.increment(ProcessId(i));
                }
            });
        }
    });
    let (hot, hot_count) = gauges.hottest();
    StripeBalance {
        threads,
        increments,
        per_stripe: gauges.per_stripe(),
        total: gauges.total(),
        imbalance: gauges.imbalance(),
        hottest_stripe: hot.index(),
        hottest_count: hot_count,
    }
}

fn json_u64_array(xs: &[u64]) -> String {
    let inner: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
    format!("[{}]", inner.join(", "))
}

fn write_scaling_json(
    cfg: &Config,
    thread_counts: &[usize],
    results: &[Row],
    balance: &StripeBalance,
) -> std::io::Result<()> {
    let contended = machine_is_parallel();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"ruo-scaling-v1\",\n");
    out.push_str(&format!("  \"quick\": {},\n", cfg.quick));
    out.push_str(&format!(
        "  \"available_parallelism\": {},\n",
        parallelism()
    ));
    out.push_str(&format!("  \"contended\": {contended},\n"));
    out.push_str(&format!(
        "  \"thread_counts\": {},\n",
        json_u64_array(&thread_counts.iter().map(|&t| t as u64).collect::<Vec<_>>())
    ));
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"family\": \"{}\", \"impl\": \"{}\", \"workload\": \"{}\", \
             \"threads\": {}, \"contended\": {}, \"total_ops\": {}, \
             \"median_ns\": {:.0}, \"ns_per_op\": {:.2}, \"mops_per_s\": {:.4}, \
             \"latency_p50_ns\": {}, \"latency_p99_ns\": {}}}{}\n",
            json_escape(r.family.name()),
            json_escape(&r.impl_name),
            json_escape(r.workload),
            r.threads,
            contended && r.threads > 1,
            r.total_ops,
            r.median_ns,
            r.ns_per_op(),
            r.mops(),
            r.p50_ns,
            r.p99_ns,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"stripe_balance\": {\n");
    out.push_str(&format!("    \"threads\": {},\n", balance.threads));
    out.push_str(&format!(
        "    \"increments_per_thread\": {},\n",
        json_u64_array(&balance.increments)
    ));
    out.push_str(&format!(
        "    \"per_stripe\": {},\n",
        json_u64_array(&balance.per_stripe)
    ));
    out.push_str(&format!("    \"total\": {},\n", balance.total));
    out.push_str(&format!("    \"imbalance\": {:.4},\n", balance.imbalance));
    out.push_str(&format!(
        "    \"hottest_stripe\": {},\n",
        balance.hottest_stripe
    ));
    out.push_str(&format!(
        "    \"hottest_count\": {}\n",
        balance.hottest_count
    ));
    out.push_str("  }\n}\n");
    std::fs::write(&cfg.out, out)
}

/// Experiment W8: scaling curves 1..64 threads for every benched
/// counter and max-register face.
fn run_scaling(cfg: &Config) {
    if !machine_is_parallel() {
        eprintln!(
            "# WARNING: available_parallelism is 1 — threads interleave by \
             preemption, not parallel cache-line traffic; results are \
             recorded with \"contended\": false"
        );
    }
    let threads_axis = scaling_thread_counts(cfg.quick);
    let mut results: Vec<Row> = Vec::new();
    let mut sink = 0u64;

    for family in [Family::Counter, Family::MaxReg] {
        for entry in registry()
            .iter()
            .filter(|e| e.family == family && e.has_real() && e.caps.benched)
        {
            for &(workload, read_pct) in &WORKLOADS {
                for &threads in &threads_axis {
                    let row = Row {
                        family,
                        impl_name: entry.id.to_string(),
                        workload,
                        threads,
                        total_ops: 0,
                        median_ns: 0.0,
                        p50_ns: 0,
                        p99_ns: 0,
                    };
                    if !cfg.matches(&row.id()) {
                        continue;
                    }
                    let row = run_cell(
                        cfg,
                        row,
                        read_pct,
                        SCALING_OPS_PER_THREAD,
                        SCALING_SAMPLES,
                        &mut sink,
                    );
                    println!(
                        "{:<44} {:>10.1} ns/op {:>9.2} Mops/s  p50 {:>7} ns  p99 {:>9} ns",
                        row.id(),
                        row.ns_per_op(),
                        row.mops(),
                        row.p50_ns,
                        row.p99_ns
                    );
                    results.push(row);
                }
            }
        }
    }

    let balance = stripe_balance(cfg.quick);
    println!(
        "stripe_balance: total {} imbalance {:.2} hottest stripe {} ({})",
        balance.total, balance.imbalance, balance.hottest_stripe, balance.hottest_count
    );
    write_scaling_json(cfg, &threads_axis, &results, &balance).expect("write scaling JSON");
    eprintln!("# sink {sink}");
    println!("\nwrote {} results to {}", results.len(), cfg.out);
}

fn main() {
    let cfg = Config::from_args();
    if cfg.scaling {
        run_scaling(&cfg);
    } else {
        run_throughput(&cfg);
    }
}
