//! Experiment W4 — reproducible contended-throughput harness.
//!
//! Runs every benched real-atomics implementation of all three object
//! families under multi-threaded contended workloads and writes the
//! results as machine-readable JSON (`BENCH_throughput.json` when run
//! from the repository root), so before/after comparisons across
//! commits are a `diff` rather than a scrollback hunt.
//!
//! Since the scenario-engine refactor the binary is a thin layer: it
//! iterates the registry's benched real faces, builds one
//! [`ScenarioSpec`] per (implementation, workload, thread count) cell,
//! and lets [`ruo_scenario::run_real`] run the scoped-thread batches,
//! median timing, latency histogram and progress certificate.
//!
//! Workloads per family:
//!
//! * `read_heavy`  — 90% reads / scans
//! * `mixed`       — 50% reads
//! * `write_heavy` — 10% reads
//!
//! Writer value streams are uniform in `[0, VALUE_BOUND)`, so for max
//! registers the share of *dominated* writes (`v ≤ current max`) grows
//! over the run exactly as it does in watermark-style production use —
//! the regime the paper's Algorithm A targets.
//!
//! Thread counts: 1, 2, 4, and the machine's available parallelism if
//! larger. On few-core machines contention comes from preemption rather
//! than parallel cache-line traffic; both are real contention.
//!
//! CLI: `--quick` (smoke run: fewer ops and samples),
//! `--out <path>` (default `BENCH_throughput.json`),
//! any positional argument = substring filter on the benchmark id.

use ruo_scenario::{registry, run_real, EngineKind, Family, RealSpec, ScenarioSpec};

/// Operand bound for max-register writes; also the AAC capacity, kept
/// small enough that building the AAC switch arena stays negligible.
const VALUE_BOUND: u64 = 1 << 12;

#[derive(Clone, Debug)]
struct Config {
    quick: bool,
    out: String,
    filters: Vec<String>,
}

impl Config {
    fn from_args() -> Self {
        let mut cfg = Config {
            quick: false,
            out: "BENCH_throughput.json".to_string(),
            filters: Vec::new(),
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => cfg.quick = true,
                "--out" => {
                    cfg.out = args.next().expect("--out requires a path");
                }
                a if a.starts_with("--") => {}
                a => cfg.filters.push(a.to_string()),
            }
        }
        cfg
    }

    fn matches(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f))
    }
}

fn ops_per_thread(family: Family) -> u64 {
    match family {
        Family::MaxReg | Family::Counter => 20_000,
        // Scans are O(N)–O(N²); keep batches comparable in duration.
        Family::Snapshot => 2_000,
    }
}

/// `(workload name, read/scan percentage)`.
const WORKLOADS: [(&str, u8); 3] = [("read_heavy", 90), ("mixed", 50), ("write_heavy", 10)];

/// One measured configuration, as echoed into the JSON file.
struct Row {
    family: Family,
    impl_name: String,
    workload: &'static str,
    threads: usize,
    total_ops: u64,
    median_ns: f64,
}

impl Row {
    fn id(&self) -> String {
        format!(
            "{}/{}/{}/t{}",
            self.family.name(),
            self.impl_name,
            self.workload,
            self.threads
        )
    }

    fn ns_per_op(&self) -> f64 {
        self.median_ns / self.total_ops as f64
    }

    fn mops(&self) -> f64 {
        self.total_ops as f64 / self.median_ns * 1e3
    }
}

fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1usize, 2, 4];
    if let Ok(par) = std::thread::available_parallelism() {
        if par.get() > 4 {
            counts.push(par.get());
        }
    }
    counts
}

/// JSON string escaping for the hand-rolled writer (ids are ASCII, but
/// stay correct anyway).
fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn write_json(cfg: &Config, results: &[Row]) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"ruo-throughput-v1\",\n");
    out.push_str(&format!("  \"quick\": {},\n", cfg.quick));
    out.push_str(&format!(
        "  \"available_parallelism\": {},\n",
        std::thread::available_parallelism().map_or(0, |p| p.get())
    ));
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"family\": \"{}\", \"impl\": \"{}\", \"workload\": \"{}\", \
             \"threads\": {}, \"total_ops\": {}, \"median_ns\": {:.0}, \
             \"ns_per_op\": {:.2}, \"mops_per_s\": {:.4}}}{}\n",
            json_escape(r.family.name()),
            json_escape(&r.impl_name),
            json_escape(r.workload),
            r.threads,
            r.total_ops,
            r.median_ns,
            r.ns_per_op(),
            r.mops(),
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(&cfg.out, out)
}

fn main() {
    let cfg = Config::from_args();
    let mut results: Vec<Row> = Vec::new();
    let mut sink = 0u64;

    // One scenario per (thread count, workload, benched registry entry);
    // the engine constructs a fresh object per batch so runs are
    // independent.
    for threads in thread_counts() {
        for &(workload, read_pct) in &WORKLOADS {
            for family in Family::all() {
                for entry in registry()
                    .iter()
                    .filter(|e| e.family == family && e.has_real() && e.caps.benched)
                {
                    let row = Row {
                        family,
                        impl_name: entry.id.to_string(),
                        workload,
                        threads,
                        total_ops: 0,
                        median_ns: 0.0,
                    };
                    if !cfg.matches(&row.id()) {
                        continue;
                    }
                    let mut spec =
                        ScenarioSpec::new(row.id(), family, entry.id, EngineKind::Real, threads);
                    spec.read_pct = read_pct;
                    spec.value_bound = VALUE_BOUND;
                    spec.real = Some(RealSpec {
                        threads,
                        ops_per_thread: ops_per_thread(family),
                        samples: 7,
                    });
                    let report = run_real(&spec, cfg.quick)
                        .unwrap_or_else(|e| panic!("throughput {}: {e}", row.id()));
                    sink ^= report.counter("sink").unwrap_or(0);
                    let row = Row {
                        total_ops: report.counter("total_ops").unwrap_or(0),
                        median_ns: report.metric("median_ns").unwrap_or(0.0),
                        ..row
                    };
                    println!(
                        "{:<44} {:>10.1} ns/op {:>9.2} Mops/s",
                        row.id(),
                        row.ns_per_op(),
                        row.mops()
                    );
                    results.push(row);
                }
            }
        }
    }

    write_json(&cfg, &results).expect("write throughput JSON");
    eprintln!("# sink {sink}");
    println!("\nwrote {} results to {}", results.len(), cfg.out);
}
