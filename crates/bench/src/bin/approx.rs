//! Experiment W11 — what does k-multiplicative accuracy buy?
//!
//! The HKM approximate objects (ISSUE 9) trade read precision for
//! update cheapness: a k-accurate counter may skip the expensive
//! publication on most increments, and a k-accurate max register
//! collapses the value domain to ⌈log_k⌉ buckets behind one CAS cell.
//! This harness measures both sides of that trade and writes
//! `BENCH_approx.json` (schema `ruo-approx-v1`):
//!
//! * **steps** — simulator shared-memory step counts per operation for
//!   the approximate faces across `k ∈ {1, 2, 4, 16}` and process
//!   counts (contention in the sim is the process count), next to the
//!   exact structural twins (`counter/sharded`, `maxreg/cas_cell`).
//!   At `k = 1` the approximate faces must pay the exact price — the
//!   reduction is visible as matching step means.
//! * **throughput** — real-atomics contended throughput for the same
//!   faces across thread counts and read-heavy / write-heavy mixes,
//!   via [`ruo_scenario::run_real`] like the W4 harness.
//!
//! Every simulated history is checked (fast family checkers at the
//! cell's accuracy factor); a violation exits nonzero — the bench
//! doubles as an envelope gate.
//!
//! CLI: `--quick` (smaller sweeps — the CI target), `--out <path>`
//! (default `BENCH_approx.json`).

use ruo_scenario::{
    registry, run_real, AccuracySpec, CheckerKind, EngineKind, Family, ImplEntry, RealSpec,
    ScenarioSpec,
};
use ruo_scenario::{run_sim_seed, SimSeedRun};
use ruo_sim::{FaultPlan, OpDesc};

/// Operand bound for max-register writes (shared with the W4 harness
/// scale so rows are comparable).
const VALUE_BOUND: u64 = 1 << 12;

/// The accuracy factors swept on the approximate faces. `1` is the
/// exactness reduction; the exact twins implicitly run at `k = 1`.
const K_AXIS: [u64; 4] = [1, 2, 4, 16];

#[derive(Clone, Debug)]
struct Config {
    quick: bool,
    out: String,
}

impl Config {
    fn from_args() -> Self {
        let mut cfg = Config {
            quick: false,
            out: "BENCH_approx.json".to_string(),
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => cfg.quick = true,
                "--out" => {
                    cfg.out = args.next().expect("--out requires a path");
                }
                _ => {}
            }
        }
        cfg
    }
}

/// The registry entry for `family/id`, which must exist (the registry
/// completeness tests pin the approximate faces and their twins).
fn face(family: Family, id: &str) -> &'static ImplEntry {
    registry()
        .iter()
        .find(|e| e.family == family && e.id == id)
        .unwrap_or_else(|| panic!("registry has no {family}/{id} face"))
}

/// `(approximate face, exact structural twin)` per relaxable family.
fn family_faces(family: Family) -> (&'static ImplEntry, &'static ImplEntry) {
    match family {
        Family::Counter => (face(family, "approx"), face(family, "sharded")),
        Family::MaxReg => (face(family, "approx"), face(family, "cas_cell")),
        Family::Snapshot => panic!("snapshot has no approximate face"),
    }
}

/// One measured simulator cell.
struct StepRow {
    family: Family,
    impl_name: &'static str,
    k: u64,
    n: usize,
    updates: u64,
    reads: u64,
    update_steps: u64,
    read_steps: u64,
    max_op_steps: u64,
    runs: u64,
}

impl StepRow {
    fn mean_update_steps(&self) -> f64 {
        self.update_steps as f64 / self.updates.max(1) as f64
    }

    fn mean_read_steps(&self) -> f64 {
        self.read_steps as f64 / self.reads.max(1) as f64
    }

    fn id(&self) -> String {
        format!(
            "{}/{}/k{}/n{}",
            self.family.name(),
            self.impl_name,
            self.k,
            self.n
        )
    }
}

/// Builds the shared spec shape for one `(entry, k, n)` cell. The
/// accuracy section is attached only for relaxed runs, so exact twins
/// exercise the spec path scenarios without the section use.
fn cell_spec(entry: &'static ImplEntry, k: u64, n: usize, engine: EngineKind) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(
        format!("w11/{}/{}/k{k}/n{n}", entry.family.name(), entry.id),
        entry.family,
        entry.id,
        engine,
        n,
    );
    spec.read_pct = 50;
    spec.value_bound = VALUE_BOUND;
    spec.checker = CheckerKind::Fast;
    if k > 1 {
        spec.accuracy = Some(AccuracySpec { k });
    }
    spec
}

fn is_update(desc: &OpDesc) -> bool {
    matches!(
        desc,
        OpDesc::CounterIncrement | OpDesc::WriteMax(_) | OpDesc::Update(_)
    )
}

/// Runs `seeds` crash-free simulated schedules of one cell and
/// aggregates per-operation step counts from the histories. Any
/// checker violation is fatal: the bench gates the k-envelope.
fn run_step_cell(
    entry: &'static ImplEntry,
    k: u64,
    n: usize,
    ops_per_process: usize,
    seeds: u64,
) -> StepRow {
    let mut spec = cell_spec(entry, k, n, EngineKind::Sim);
    spec.ops_per_process = ops_per_process;
    let mut row = StepRow {
        family: entry.family,
        impl_name: entry.id,
        k,
        n,
        updates: 0,
        reads: 0,
        update_steps: 0,
        read_steps: 0,
        max_op_steps: 0,
        runs: seeds,
    };
    for seed in 0..seeds {
        let run: SimSeedRun = run_sim_seed(&spec, seed, &FaultPlan::none())
            .unwrap_or_else(|e| panic!("step cell {}: {e}", row.id()));
        if let Some(v) = run.violation {
            eprintln!("ENVELOPE VIOLATION in {} seed {seed}: {v}", row.id());
            std::process::exit(1);
        }
        for op in run.outcome.history.completed() {
            let steps = op.steps as u64;
            row.max_op_steps = row.max_op_steps.max(steps);
            if is_update(&op.desc) {
                row.updates += 1;
                row.update_steps += steps;
            } else {
                row.reads += 1;
                row.read_steps += steps;
            }
        }
    }
    row
}

/// One measured real-atomics cell.
struct ThroughputRow {
    family: Family,
    impl_name: &'static str,
    k: u64,
    workload: &'static str,
    threads: usize,
    total_ops: u64,
    median_ns: f64,
}

impl ThroughputRow {
    fn ns_per_op(&self) -> f64 {
        self.median_ns / self.total_ops.max(1) as f64
    }

    fn mops(&self) -> f64 {
        self.total_ops as f64 / self.median_ns.max(1.0) * 1e3
    }

    fn id(&self) -> String {
        format!(
            "{}/{}/k{}/{}/t{}",
            self.family.name(),
            self.impl_name,
            self.k,
            self.workload,
            self.threads
        )
    }
}

/// Runs one real-atomics cell through the scenario engine.
fn run_throughput_cell(
    cfg: &Config,
    entry: &'static ImplEntry,
    k: u64,
    workload: &'static str,
    read_pct: u8,
    threads: usize,
    sink: &mut u64,
) -> ThroughputRow {
    let mut spec = cell_spec(entry, k, threads, EngineKind::Real);
    spec.read_pct = read_pct;
    spec.real = Some(RealSpec {
        threads,
        ops_per_thread: if cfg.quick { 2_000 } else { 20_000 },
        samples: if cfg.quick { 3 } else { 5 },
    });
    let mut row = ThroughputRow {
        family: entry.family,
        impl_name: entry.id,
        k,
        workload,
        threads,
        total_ops: 0,
        median_ns: 0.0,
    };
    let report =
        run_real(&spec, cfg.quick).unwrap_or_else(|e| panic!("throughput {}: {e}", row.id()));
    *sink ^= report.counter("sink").unwrap_or(0);
    row.total_ops = report.counter("total_ops").unwrap_or(0);
    row.median_ns = report.metric("median_ns").unwrap_or(0.0);
    row
}

fn parallelism() -> usize {
    std::thread::available_parallelism().map_or(0, |p| p.get())
}

fn write_json(
    cfg: &Config,
    steps: &[StepRow],
    throughput: &[ThroughputRow],
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"ruo-approx-v1\",\n");
    out.push_str(&format!("  \"quick\": {},\n", cfg.quick));
    out.push_str(&format!(
        "  \"available_parallelism\": {},\n",
        parallelism()
    ));
    out.push_str(&format!("  \"contended\": {},\n", parallelism() > 1));
    out.push_str("  \"steps\": [\n");
    for (i, r) in steps.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"family\": \"{}\", \"impl\": \"{}\", \"k\": {}, \"n\": {}, \
             \"runs\": {}, \"updates\": {}, \"reads\": {}, \
             \"mean_update_steps\": {:.3}, \"mean_read_steps\": {:.3}, \
             \"max_op_steps\": {}}}{}\n",
            r.family.name(),
            r.impl_name,
            r.k,
            r.n,
            r.runs,
            r.updates,
            r.reads,
            r.mean_update_steps(),
            r.mean_read_steps(),
            r.max_op_steps,
            if i + 1 == steps.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"throughput\": [\n");
    for (i, r) in throughput.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"family\": \"{}\", \"impl\": \"{}\", \"k\": {}, \
             \"workload\": \"{}\", \"threads\": {}, \"total_ops\": {}, \
             \"median_ns\": {:.0}, \"ns_per_op\": {:.2}, \"mops_per_s\": {:.4}}}{}\n",
            r.family.name(),
            r.impl_name,
            r.k,
            r.workload,
            r.threads,
            r.total_ops,
            r.median_ns,
            r.ns_per_op(),
            r.mops(),
            if i + 1 == throughput.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(&cfg.out, out)
}

fn main() {
    let cfg = Config::from_args();
    println!("# W11 — exact vs k-approximate step counts and throughput\n");

    // ---- simulator step counts ------------------------------------
    let n_axis: &[usize] = if cfg.quick { &[2, 8] } else { &[2, 8, 32] };
    let (ops_per_process, seeds) = if cfg.quick { (20, 2) } else { (40, 5) };
    let mut steps: Vec<StepRow> = Vec::new();
    for family in [Family::Counter, Family::MaxReg] {
        let (approx, exact) = family_faces(family);
        for &n in n_axis {
            if exact.has_sim() {
                steps.push(run_step_cell(exact, 1, n, ops_per_process, seeds));
            }
            for k in K_AXIS {
                steps.push(run_step_cell(approx, k, n, ops_per_process, seeds));
            }
        }
    }
    println!("## simulator steps per operation (50/50 mix)\n");
    for r in &steps {
        println!(
            "{:<28} update {:>7.2}  read {:>7.2}  max {:>4}",
            r.id(),
            r.mean_update_steps(),
            r.mean_read_steps(),
            r.max_op_steps
        );
    }

    // ---- real-atomics throughput ----------------------------------
    let thread_axis: &[usize] = if cfg.quick { &[1, 4] } else { &[1, 2, 4] };
    let workloads: [(&str, u8); 2] = [("read_heavy", 90), ("write_heavy", 10)];
    let throughput_k: &[u64] = if cfg.quick { &[1, 16] } else { &[1, 4, 16] };
    let mut throughput: Vec<ThroughputRow> = Vec::new();
    let mut sink = 0u64;
    println!("\n## real-atomics contended throughput\n");
    for family in [Family::Counter, Family::MaxReg] {
        let (approx, exact) = family_faces(family);
        for &(workload, read_pct) in &workloads {
            for &threads in thread_axis {
                if exact.has_real() {
                    let row =
                        run_throughput_cell(&cfg, exact, 1, workload, read_pct, threads, &mut sink);
                    println!(
                        "{:<40} {:>10.1} ns/op {:>9.2} Mops/s",
                        row.id(),
                        row.ns_per_op(),
                        row.mops()
                    );
                    throughput.push(row);
                }
                for &k in throughput_k {
                    let row = run_throughput_cell(
                        &cfg, approx, k, workload, read_pct, threads, &mut sink,
                    );
                    println!(
                        "{:<40} {:>10.1} ns/op {:>9.2} Mops/s",
                        row.id(),
                        row.ns_per_op(),
                        row.mops()
                    );
                    throughput.push(row);
                }
            }
        }
    }

    write_json(&cfg, &steps, &throughput).expect("write approx JSON");
    eprintln!("# sink {sink}");
    println!(
        "\nwrote {} step rows and {} throughput rows to {}",
        steps.len(),
        throughput.len(),
        cfg.out
    );
}
