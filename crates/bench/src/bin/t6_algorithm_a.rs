//! Experiment T6 — Theorem 6: step complexity of Algorithm A.
//!
//! Regenerates the paper's headline complexity claims as measured
//! tables: `ReadMax` is `O(1)` (exactly 1 simulator step) and
//! `WriteMax(v)` is `O(min(log N, log v))`.
//!
//! Run with `cargo run -p ruo-bench --bin t6_algorithm_a`.

use ruo_bench::{log2_ceil, run_solo, Table};
use ruo_core::maxreg::sim::{SimMaxRegister, SimTreeMaxRegister};
use ruo_sim::{Memory, ProcessId};

fn main() {
    println!("# T6 — Algorithm A (TreeMaxRegister) step complexity\n");
    println!("Paper claim (Theorem 6): ReadMax = O(1); WriteMax(v) = O(min(log N, log v)).\n");

    // ---- Part 1: ReadMax steps vs N (must be flat). ----
    println!("## ReadMax steps vs N (expected: constant 1)\n");
    let mut t = Table::new(&["N", "ReadMax steps (fresh)", "ReadMax steps (after writes)"]);
    for n in [4usize, 16, 64, 256, 1024, 4096] {
        let mut mem = Memory::new();
        let reg = SimTreeMaxRegister::new(&mut mem, n);
        let (_, fresh) = run_solo(&mut mem, ProcessId(0), reg.read_max(ProcessId(0)));
        for (i, v) in [(1usize, 3u64), (2, n as u64 * 2), (3, 7)] {
            run_solo(&mut mem, ProcessId(i), reg.write_max(ProcessId(i), v));
        }
        let (_, after) = run_solo(&mut mem, ProcessId(0), reg.read_max(ProcessId(0)));
        t.row(vec![n.to_string(), fresh.to_string(), after.to_string()]);
    }
    t.print();

    // ---- Part 2: WriteMax(v) steps vs v at fixed large N. ----
    let n = 4096usize;
    println!("\n## WriteMax(v) steps vs v (N = {n}; expected: grows with log v, then plateaus at log N)\n");
    let mut t = Table::new(&[
        "v",
        "log2(v)",
        "WriteMax steps (fresh reg)",
        "steps / (log2(v)+1)",
    ]);
    let mut v = 1u64;
    while v <= 1 << 20 {
        let mut mem = Memory::new();
        let reg = SimTreeMaxRegister::new(&mut mem, n);
        let (_, steps) = run_solo(&mut mem, ProcessId(0), reg.write_max(ProcessId(0), v));
        let denom = log2_ceil(v) + 1;
        t.row(vec![
            v.to_string(),
            log2_ceil(v).to_string(),
            steps.to_string(),
            format!("{:.1}", steps as f64 / denom as f64),
        ]);
        v *= 4;
    }
    t.print();

    // ---- Part 3: WriteMax(huge v) steps vs N (the plateau is log N). ----
    println!("\n## WriteMax(2^40) steps vs N (expected: grows with log N)\n");
    let mut t = Table::new(&["N", "log2(N)", "WriteMax(2^40) steps", "steps / log2(N)"]);
    for n in [4usize, 16, 64, 256, 1024, 4096] {
        let mut mem = Memory::new();
        let reg = SimTreeMaxRegister::new(&mut mem, n);
        let (_, steps) = run_solo(&mut mem, ProcessId(0), reg.write_max(ProcessId(0), 1 << 40));
        let l = log2_ceil(n as u64).max(1);
        t.row(vec![
            n.to_string(),
            l.to_string(),
            steps.to_string(),
            format!("{:.1}", steps as f64 / l as f64),
        ]);
    }
    t.print();

    // ---- Part 4: dominated writes. ----
    println!("\n## Dominated writes (WriteMax(v) after WriteMax(v), N = 1024)\n");
    println!("TR leaves (v ≥ N) return after one read — the writer's own completed");
    println!("write already propagated. TL value-leaves (v < N) must HELP propagate");
    println!("(the first writer may be stalled pre-propagation; see DESIGN.md\n\"Deviations\"), so the repeat costs the leaf's depth, not 1.\n");
    let mut t = Table::new(&["v", "leaf kind", "first write steps", "repeat write steps"]);
    for v in [1u64, 100, 1 << 16] {
        let mut mem = Memory::new();
        let reg = SimTreeMaxRegister::new(&mut mem, 1024);
        let (_, first) = run_solo(&mut mem, ProcessId(0), reg.write_max(ProcessId(0), v));
        let (_, second) = run_solo(&mut mem, ProcessId(0), reg.write_max(ProcessId(0), v));
        let kind = if v < 1024 { "TL (shared)" } else { "TR (own)" };
        t.row(vec![
            v.to_string(),
            kind.to_string(),
            first.to_string(),
            second.to_string(),
        ]);
    }
    t.print();
}
