//! Experiment F4 — Figure 4: Algorithm A's data structure.
//!
//! Renders the actual tree built by `TreeMaxRegister` for `N = 4` (the
//! paper's figure) and tabulates leaf depths, which are the write costs.
//!
//! Run with `cargo run -p ruo-bench --bin fig4_layout`.

use ruo_bench::Table;
use ruo_core::shape::AlgorithmATree;

fn main() {
    println!("# F4 — the maxRegister data structure (paper Figure 4, N = 4)\n");
    let tree = AlgorithmATree::new(4);
    println!("{}", tree.render());
    println!("TL is the unbalanced B1 tree with N-1 = 3 value leaves;");
    println!("TR is the complete binary tree with N = 4 per-process leaves.\n");

    println!("## Leaf depths for N = 1024 (write cost is ~8 steps per level)\n");
    let tree = AlgorithmATree::new(1024);
    let mut t = Table::new(&["WriteMax operand v", "leaf", "depth", "2·log2(v)+3 bound"]);
    for v in [1u64, 2, 3, 7, 8, 50, 512, 1023] {
        let depth = tree.write_depth(0, v);
        let bound = 2 * (64 - (v + 1).leading_zeros()) as usize + 3;
        t.row(vec![
            v.to_string(),
            format!("TL.leaf[v={v}]"),
            depth.to_string(),
            bound.to_string(),
        ]);
    }
    for v in [1024u64, 1 << 20, 1 << 40] {
        let depth = tree.write_depth(7, v);
        t.row(vec![
            v.to_string(),
            "TR.leaf[p7]".into(),
            depth.to_string(),
            "log2(N)+2 = 12".into(),
        ]);
    }
    t.print();
    println!("\nSmall operands stop early in TL (cost ~ log v); large operands use the");
    println!("writer's own TR leaf (cost ~ log N) — together, O(min(log N, log v)).");
}
