//! Experiment W5 — exhaustive-explorer smoke harness.
//!
//! Runs the canonical scaled scope (three `WriteMax`es — two dominated —
//! plus a `ReadMax` against the real Algorithm A on `N = 4` with the
//! § 4.5 root fast path) twice over identical inputs: once enumerating
//! every interleaving, once with sleep-set pruning. Both runs must
//! complete un-truncated with no violation; the harness reports schedule
//! counts, the pruning factor, replay-steps saved by incremental
//! execution, and wall-clock, and writes the results as
//! machine-readable JSON (`BENCH_explore.json` when run from the
//! repository root) so before/after comparisons are a `diff`.
//!
//! Since the scenario-engine refactor the scope lives in the checked-in
//! `scenarios/w5_explore_{full,pruned}.json` specs (embedded at compile
//! time), and [`ruo_scenario::run_explore`] drives the search — this
//! harness asserts the specs still describe the canonical scope and
//! formats the results.
//!
//! CLI: `--quick` (1 timing sample instead of 3 — the CI smoke target),
//! `--out <path>` (default `BENCH_explore.json`).

use ruo_metrics::ExploreGauges;
use ruo_scenario::{run_explore, ScenarioReport, ScenarioSpec};
use ruo_sim::explore::ExploreStats;
use ruo_sim::ProcessId;

const FULL_SPEC: &str = include_str!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../scenarios/w5_explore_full.json"
));
const PRUNED_SPEC: &str = include_str!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../scenarios/w5_explore_pruned.json"
));
const N5_SPEC: &str = include_str!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../scenarios/w9_explore_n5_2crash.json"
));

/// Worker count for the partitioned re-run of the pruned scope.
const PARALLEL_WORKERS: usize = 4;

fn load(text: &str) -> ScenarioSpec {
    let spec = ScenarioSpec::parse(text).expect("checked-in W5 spec parses");
    assert_eq!(
        ScenarioSpec::parse(&spec.to_json()).as_ref(),
        Ok(&spec),
        "W5 spec round trip must be identity"
    );
    spec
}

/// The explorer counters a report carries, in `ExploreStats` shape (for
/// the metrics gauges).
fn stats_of(report: &ScenarioReport) -> ExploreStats {
    ExploreStats {
        schedules: report.counter("schedules").unwrap_or(0) as usize,
        pruned_branches: report.counter("pruned_branches").unwrap_or(0) as usize,
        executed_steps: report.counter("executed_steps").unwrap_or(0),
        replay_steps_saved: report.counter("replay_steps_saved").unwrap_or(0),
        peak_depth: report.counter("peak_depth").unwrap_or(0) as usize,
        crash_branches: report.counter("crash_branches").unwrap_or(0) as usize,
        reads: 0,
        writes: 0,
        cas_ok: 0,
        cas_fail: 0,
    }
}

/// One timed run; panics on any violation or truncation — this harness
/// is also the CI gate that the scope stays exhaustively checkable.
fn run(spec: &ScenarioSpec) -> (ScenarioReport, f64) {
    let report = run_explore(spec, false).expect("W5 scope builds");
    assert!(report.ok, "W5 scope failed: {:?}", report.notes);
    let secs = report.metric("seconds").expect("explore reports seconds");
    (report, secs)
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    samples[samples.len() / 2]
}

fn main() {
    let mut quick = false;
    let mut out = "BENCH_explore.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out = args.next().expect("--out requires a path"),
            a => panic!("unknown argument: {a}"),
        }
    }
    let samples = if quick { 1 } else { 3 };
    let full_spec = load(FULL_SPEC);
    let pruned_spec = load(PRUNED_SPEC);
    // The same pruned scope searched by a partitioned root frontier:
    // the merged stats must reproduce the sequential run exactly.
    let mut parallel_spec = pruned_spec.clone();
    parallel_spec
        .explore
        .as_mut()
        .expect("explore section")
        .workers = PARALLEL_WORKERS;
    let n5_spec = load(N5_SPEC);

    let gauges = ExploreGauges::new(3);
    let mut full_secs = Vec::new();
    let mut pruned_secs = Vec::new();
    let mut parallel_secs = Vec::new();
    let mut full = None;
    let mut pruned = None;
    let mut parallel = None;
    for _ in 0..samples {
        let (r, t) = run(&full_spec);
        gauges.record(ProcessId(0), &stats_of(&r));
        full_secs.push(t);
        full = Some(r);
        let (r, t) = run(&pruned_spec);
        gauges.record(ProcessId(1), &stats_of(&r));
        pruned_secs.push(t);
        pruned = Some(r);
        let (r, t) = run(&parallel_spec);
        gauges.record(ProcessId(2), &stats_of(&r));
        parallel_secs.push(t);
        parallel = Some(r);
    }
    let full = stats_of(&full.expect("at least one sample"));
    let pruned = stats_of(&pruned.expect("at least one sample"));
    let parallel = stats_of(&parallel.expect("at least one sample"));
    assert_eq!(
        parallel, pruned,
        "partitioned search must reproduce the sequential counts exactly"
    );
    // The N=5 / 2-crash scope: the headroom run, timed once — large
    // enough to be meaningless to sample, small enough to stay
    // un-truncated (run() panics otherwise).
    let (n5_report, n5_t) = run(&n5_spec);
    let n5 = stats_of(&n5_report);
    let full_t = median(&mut full_secs);
    let pruned_t = median(&mut pruned_secs);
    let parallel_t = median(&mut parallel_secs);
    let factor = full.schedules as f64 / pruned.schedules as f64;
    let replay_factor = pruned.replay_steps_saved as f64 / pruned.executed_steps as f64;

    println!("W5: exhaustive explorer, scaled scope (3 writers + 1 reader, N=4, § 4.5 fast path)");
    println!(
        "  full:   {:>6} schedules  {:>8.1} ms",
        full.schedules,
        full_t * 1e3
    );
    println!(
        "  pruned: {:>6} schedules  {:>8.1} ms  ({} branches cut, {:.1}x fewer schedules)",
        pruned.schedules,
        pruned_t * 1e3,
        pruned.pruned_branches,
        factor
    );
    println!(
        "  incremental replay: {} steps executed, {} replay steps saved ({:.1}x)",
        pruned.executed_steps, pruned.replay_steps_saved, replay_factor
    );
    println!(
        "  parallel ({} workers): {:>6} schedules  {:>8.1} ms  ({:.2}x vs sequential pruned)",
        PARALLEL_WORKERS,
        parallel.schedules,
        parallel_t * 1e3,
        pruned_t / parallel_t
    );
    println!(
        "  N=5 / 2-crash headroom: {} schedules ({} crash branches) in {:.1} ms, un-truncated",
        n5.schedules,
        n5.crash_branches,
        n5_t * 1e3
    );
    println!("  gauges: {gauges:?}");

    let json = format!(
        "{{\n  \"schema\": \"ruo-explore-v1\",\n  \"experiment\": \"W5\",\n  \
         \"quick\": {quick},\n  \"samples\": {samples},\n  \
         \"full\": {{ \"schedules\": {}, \"seconds\": {full_t:.6} }},\n  \
         \"pruned\": {{ \"schedules\": {}, \"seconds\": {pruned_t:.6}, \
         \"pruned_branches\": {}, \"executed_steps\": {}, \"replay_steps_saved\": {} }},\n  \
         \"parallel\": {{ \"workers\": {PARALLEL_WORKERS}, \"schedules\": {}, \
         \"seconds\": {parallel_t:.6}, \"speedup\": {speedup:.3}, \
         \"pruned_branches\": {}, \"executed_steps\": {}, \"replay_steps_saved\": {} }},\n  \
         \"n5_two_crash\": {{ \"workers\": {}, \"schedules\": {}, \"crash_branches\": {}, \
         \"seconds\": {n5_t:.6} }},\n  \
         \"pruning_factor\": {factor:.3},\n  \"replay_savings_factor\": {replay_factor:.3}\n}}\n",
        full.schedules,
        pruned.schedules,
        pruned.pruned_branches,
        pruned.executed_steps,
        pruned.replay_steps_saved,
        parallel.schedules,
        parallel.pruned_branches,
        parallel.executed_steps,
        parallel.replay_steps_saved,
        n5_spec.explore.as_ref().expect("explore section").workers,
        n5.schedules,
        n5.crash_branches,
        speedup = pruned_t / parallel_t,
    );
    std::fs::write(&out, json).expect("write results JSON");
    println!("  wrote {out}");
}
