//! Experiment W5 — exhaustive-explorer smoke harness.
//!
//! Runs the canonical scaled scope (three `WriteMax`es — two dominated —
//! plus a `ReadMax` against the real Algorithm A on `N = 4` with the
//! § 4.5 root fast path) twice over identical inputs: once enumerating
//! every interleaving, once with sleep-set pruning. Both runs must
//! complete un-truncated with no violation; the harness reports schedule
//! counts, the pruning factor, replay-steps saved by incremental
//! execution, and wall-clock, and writes the results as
//! machine-readable JSON (`BENCH_explore.json` when run from the
//! repository root) so before/after comparisons are a `diff`.
//!
//! CLI: `--quick` (1 timing sample instead of 3 — the CI smoke target),
//! `--out <path>` (default `BENCH_explore.json`).

use std::time::Instant;

use ruo_core::maxreg::sim::{SimMaxRegister, SimTreeMaxRegister};
use ruo_metrics::ExploreGauges;
use ruo_sim::explore::{explore, ExploreConfig, ExploreOp, ExploreSummary};
use ruo_sim::lin::check_max_register;
use ruo_sim::{Machine, Memory, OpDesc, ProcessId};

/// The seeded scope's initial max-register value.
const SEEDED_MAX: i64 = 3;

fn setup() -> (Memory, Vec<Machine>) {
    let mut mem = Memory::new();
    let reg = SimTreeMaxRegister::with_root_fast_path(&mut mem, 4);
    // Seed: WriteMax(3) runs solo to completion, so two of the scope's
    // writers hit the dominated-write fast path.
    let mut seed = reg.write_max(ProcessId(0), SEEDED_MAX as u64);
    while let Some(prim) = seed.enabled() {
        let resp = mem.apply(ProcessId(0), prim);
        seed.feed(resp);
    }
    let machines = vec![
        reg.write_max(ProcessId(0), 4),
        reg.write_max(ProcessId(1), 2),
        reg.write_max(ProcessId(2), 3),
        reg.read_max(ProcessId(3)),
    ];
    (mem, machines)
}

fn ops() -> Vec<ExploreOp> {
    vec![
        ExploreOp {
            pid: ProcessId(0),
            desc: OpDesc::WriteMax(4),
            returns_value: false,
        },
        ExploreOp {
            pid: ProcessId(1),
            desc: OpDesc::WriteMax(2),
            returns_value: false,
        },
        ExploreOp {
            pid: ProcessId(2),
            desc: OpDesc::WriteMax(3),
            returns_value: false,
        },
        ExploreOp {
            pid: ProcessId(3),
            desc: OpDesc::ReadMax,
            returns_value: true,
        },
    ]
}

/// One timed run; panics on any violation or truncation — this harness
/// is also the CI gate that the scope stays exhaustively checkable.
fn run(prune: bool) -> (ExploreSummary, f64) {
    let ops = ops();
    let start = Instant::now();
    let summary = explore(
        &setup,
        &ops,
        &mut |h| check_max_register(h, SEEDED_MAX).is_ok(),
        ExploreConfig {
            max_schedules: 100_000,
            prune,
            max_crashes: 0,
        },
    );
    let secs = start.elapsed().as_secs_f64();
    assert!(
        summary.violation.is_none(),
        "W5 scope violated linearizability: {:?}",
        summary.violation
    );
    assert!(!summary.truncated, "W5 scope must complete un-truncated");
    (summary, secs)
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    samples[samples.len() / 2]
}

fn main() {
    let mut quick = false;
    let mut out = "BENCH_explore.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out = args.next().expect("--out requires a path"),
            a => panic!("unknown argument: {a}"),
        }
    }
    let samples = if quick { 1 } else { 3 };

    let gauges = ExploreGauges::new(2);
    let mut full_secs = Vec::new();
    let mut pruned_secs = Vec::new();
    let mut full = None;
    let mut pruned = None;
    for _ in 0..samples {
        let (s, t) = run(false);
        gauges.record(ProcessId(0), &s.stats);
        full_secs.push(t);
        full = Some(s);
        let (s, t) = run(true);
        gauges.record(ProcessId(1), &s.stats);
        pruned_secs.push(t);
        pruned = Some(s);
    }
    let full = full.expect("at least one sample");
    let pruned = pruned.expect("at least one sample");
    let full_t = median(&mut full_secs);
    let pruned_t = median(&mut pruned_secs);
    let factor = full.schedules as f64 / pruned.schedules as f64;
    let replay_factor = pruned.stats.replay_steps_saved as f64 / pruned.stats.executed_steps as f64;

    println!("W5: exhaustive explorer, scaled scope (3 writers + 1 reader, N=4, § 4.5 fast path)");
    println!(
        "  full:   {:>6} schedules  {:>8.1} ms",
        full.schedules,
        full_t * 1e3
    );
    println!(
        "  pruned: {:>6} schedules  {:>8.1} ms  ({} branches cut, {:.1}x fewer schedules)",
        pruned.schedules,
        pruned_t * 1e3,
        pruned.stats.pruned_branches,
        factor
    );
    println!(
        "  incremental replay: {} steps executed, {} replay steps saved ({:.1}x)",
        pruned.stats.executed_steps, pruned.stats.replay_steps_saved, replay_factor
    );
    println!("  gauges: {gauges:?}");

    let json = format!(
        "{{\n  \"experiment\": \"W5\",\n  \"quick\": {quick},\n  \"samples\": {samples},\n  \
         \"full\": {{ \"schedules\": {}, \"seconds\": {full_t:.6} }},\n  \
         \"pruned\": {{ \"schedules\": {}, \"seconds\": {pruned_t:.6}, \
         \"pruned_branches\": {}, \"executed_steps\": {}, \"replay_steps_saved\": {} }},\n  \
         \"pruning_factor\": {factor:.3},\n  \"replay_savings_factor\": {replay_factor:.3}\n}}\n",
        full.schedules,
        pruned.schedules,
        pruned.stats.pruned_branches,
        pruned.stats.executed_steps,
        pruned.stats.replay_steps_saved,
    );
    std::fs::write(&out, json).expect("write results JSON");
    println!("  wrote {out}");
}
