//! Ablation study for Algorithm A's two load-bearing details:
//!
//! 1. **The second CAS per level** (Lemma 9). We run the single-CAS
//!    variant under the exhaustive small-scope explorer and under
//!    random schedules, and count how often linearizability breaks —
//!    versus zero for the real algorithm.
//! 2. **Helping on the dominated TL path** (our deviation from the
//!    paper's listing — see DESIGN.md). We measure what helping costs
//!    (repeat-write steps) and what the literal early return loses
//!    (violations under exploration).
//!
//! Run with `cargo run --release -p ruo-bench --bin ablation`.

use std::sync::Arc;

use ruo_bench::{run_solo, Table};
use ruo_core::maxreg::sim::{SimMaxRegister, SimTreeMaxRegister};
use ruo_core::shape::AlgorithmATree;
use ruo_sim::explore::{enumerate, ExploreOp};
use ruo_sim::lin::check_max_register;
use ruo_sim::{
    cas, done, read, write, Machine, Memory, ObjId, OpDesc, ProcessId, Step, Word, NEG_INF,
};

type Levels = Arc<Vec<(ObjId, Option<ObjId>, Option<ObjId>)>>;

/// A configurable Algorithm A write machine: `cas_attempts` per level,
/// and optional helping on the dominated path.
struct VariantRegister {
    tree: Arc<AlgorithmATree>,
    cells: Arc<Vec<ObjId>>,
    cas_attempts: u8,
    help_dominated: bool,
}

impl VariantRegister {
    fn new(mem: &mut Memory, n: usize, cas_attempts: u8, help_dominated: bool) -> Self {
        let tree = AlgorithmATree::new(n);
        let cells = Arc::new(mem.alloc_n(tree.shape().len(), NEG_INF));
        VariantRegister {
            tree: Arc::new(tree),
            cells,
            cas_attempts,
            help_dominated,
        }
    }

    fn levels(&self, leaf: usize) -> Levels {
        let shape = self.tree.shape();
        Arc::new(
            shape
                .ancestors(leaf)
                .into_iter()
                .map(|a| {
                    let info = shape.node(a);
                    (
                        self.cells[a],
                        info.left.map(|i| self.cells[i]),
                        info.right.map(|i| self.cells[i]),
                    )
                })
                .collect(),
        )
    }

    fn write_max(&self, pid: usize, v: u64) -> Machine {
        let leaf = self.tree.leaf_for(pid, v);
        let levels = self.levels(leaf);
        let leaf_cell = self.cells[leaf];
        let w = v as Word;
        let attempts = self.cas_attempts;
        let help = self.help_dominated && (v as u128) < self.tree.n() as u128;
        let levels2 = Arc::clone(&levels);
        Machine::new(read(leaf_cell, move |old| {
            if w <= old {
                if help {
                    level(levels2, 0, 0, attempts)
                } else {
                    done(0)
                }
            } else {
                write(leaf_cell, w, move || level(levels, 0, 0, attempts))
            }
        }))
    }

    fn read_max(&self) -> Machine {
        let root = self.cells[self.tree.root()];
        Machine::new(read(root, |v| done(v.max(0))))
    }
}

fn level(levels: Levels, i: usize, attempt: u8, attempts: u8) -> Step {
    if i == levels.len() {
        return done(0);
    }
    let (node, l, r) = levels[i];
    let rd = move |o: Option<ObjId>, k: Box<dyn FnOnce(Word) -> Step + Send>| match o {
        Some(o) => read(o, k),
        None => k(NEG_INF),
    };
    read(node, move |old| {
        rd(
            l,
            Box::new(move |lv| {
                rd(
                    r,
                    Box::new(move |rv| {
                        cas(node, old, lv.max(rv), move |_| {
                            if attempt + 1 < attempts {
                                level(levels, i, attempt + 1, attempts)
                            } else {
                                level(levels, i + 1, 0, attempts)
                            }
                        })
                    }),
                )
            }),
        )
    })
}

/// Explores all schedules of two racing writers plus a reader against a
/// variant, returning (schedules explored, violation found?).
fn explore_variant(cas_attempts: u8, budget: usize) -> (usize, bool) {
    let setup = move || {
        let mut mem = Memory::new();
        let reg = VariantRegister::new(&mut mem, 2, cas_attempts, true);
        let machines = vec![reg.write_max(0, 2), reg.write_max(1, 3), reg.read_max()];
        (mem, machines)
    };
    let ops = vec![
        ExploreOp {
            pid: ProcessId(0),
            desc: OpDesc::WriteMax(2),
            returns_value: false,
        },
        ExploreOp {
            pid: ProcessId(1),
            desc: OpDesc::WriteMax(3),
            returns_value: false,
        },
        ExploreOp {
            pid: ProcessId(2),
            desc: OpDesc::ReadMax,
            returns_value: true,
        },
    ];
    let summary = enumerate(
        &setup,
        &ops,
        &mut |h| check_max_register(h, 0).is_ok(),
        budget,
    );
    (summary.schedules, summary.violation.is_some())
}

fn main() {
    println!("# Ablation — what Algorithm A's details buy\n");

    // ---- Part 1: the double CAS. ----
    println!("## CAS attempts per level vs linearizability (exhaustive exploration,");
    println!("## two writers + reader, budget 400k schedules)\n");
    let mut t = Table::new(&[
        "CAS attempts/level",
        "schedules explored",
        "violation found",
    ]);
    for attempts in [1u8, 2, 3] {
        let (schedules, violated) = explore_variant(attempts, 400_000);
        t.row(vec![
            attempts.to_string(),
            schedules.to_string(),
            if violated {
                "YES (not linearizable)"
            } else {
                "no"
            }
            .to_string(),
        ]);
    }
    t.print();
    println!("\nOne attempt loses completed writes (the Lemma 9 race); two suffice —");
    println!("the third buys nothing, matching the paper's choice of exactly two.\n");

    // ---- Part 2: helping on the dominated path. ----
    println!("## Cost of helping on dominated TL writes (N = 1024)\n");
    let mut t = Table::new(&[
        "v",
        "repeat write steps (helping)",
        "repeat write steps (literal)",
    ]);
    for v in [1u64, 100, 1000] {
        let steps_with = {
            let mut mem = Memory::new();
            let reg = SimTreeMaxRegister::new(&mut mem, 1024);
            run_solo(&mut mem, ProcessId(0), reg.write_max(ProcessId(0), v));
            let (_, s) = run_solo(&mut mem, ProcessId(0), reg.write_max(ProcessId(0), v));
            s
        };
        let steps_literal = {
            let mut mem = Memory::new();
            let reg = VariantRegister::new(&mut mem, 1024, 2, false);
            run_solo(&mut mem, ProcessId(0), reg.write_max(0, v));
            let (_, s) = run_solo(&mut mem, ProcessId(0), reg.write_max(0, v));
            s
        };
        t.row(vec![
            v.to_string(),
            steps_with.to_string(),
            steps_literal.to_string(),
        ]);
    }
    t.print();

    // And what the literal variant loses: a violating schedule exists.
    let setup = || {
        let mut mem = Memory::new();
        let reg = VariantRegister::new(&mut mem, 4, 2, false);
        let machines = vec![reg.write_max(0, 2), reg.write_max(1, 2), reg.read_max()];
        (mem, machines)
    };
    let ops = vec![
        ExploreOp {
            pid: ProcessId(0),
            desc: OpDesc::WriteMax(2),
            returns_value: false,
        },
        ExploreOp {
            pid: ProcessId(1),
            desc: OpDesc::WriteMax(2),
            returns_value: false,
        },
        ExploreOp {
            pid: ProcessId(2),
            desc: OpDesc::ReadMax,
            returns_value: true,
        },
    ];
    let summary = enumerate(
        &setup,
        &ops,
        &mut |h| check_max_register(h, 0).is_ok(),
        400_000,
    );
    println!(
        "\nLiteral early return, same-value race: violation found = {} (after {} schedules).",
        summary.violation.is_some(),
        summary.schedules
    );
    println!("Helping costs a leaf-depth propagation on repeats of small values and");
    println!("restores linearizability; TR repeats stay at one step either way.");
}
