//! Soak test: deep randomized linearizability verification across every
//! simulated implementation family. The test suite runs dozens of seeds
//! per implementation; this binary runs *thousands* (tunable), printing
//! a verdict table — the long-haul version of experiment T5 — and, since
//! W6, re-runs every family under randomized **crash injection** (one
//! crashed process per schedule, pending operations checked under the
//! completion rule) plus a progress-certification verdict for the
//! wait-free families.
//!
//! Since the scenario-engine refactor the binary is a thin layer: it
//! iterates the registry's simulator faces, builds one [`ScenarioSpec`]
//! per (implementation, fault plan) row, and lets
//! [`ruo_scenario::run_sim`] drive the executor, checkers and progress
//! certifier. The workload shapes (the `Alternate` mix) and verdicts
//! are unchanged from the hand-rolled harness.
//!
//! Run with `cargo run --release -p ruo-bench --bin soak [seeds]`
//! (default 2000 seeds per implementation), or `soak --quick` for the
//! CI-sized run. Exits non-zero if any `violations` cell is non-zero,
//! so CI can gate on it directly.

use ruo_bench::Table;
use ruo_metrics::CheckerGauges;
use ruo_scenario::{
    registry, run_sim, EngineKind, Family, FaultSpec, ImplEntry, OpMix, ScenarioSpec,
};
use ruo_sim::ProcessId;

/// The spec for one soak row: the legacy workload shape for `entry`'s
/// family, with or without the 1-crash plan.
fn row_spec(entry: &ImplEntry, crashes: bool, seeds: u64) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(
        format!("soak-{}-{}", entry.family.name(), entry.id),
        entry.family,
        entry.id,
        EngineKind::Sim,
        if entry.family == Family::Snapshot {
            3
        } else {
            4
        },
    );
    spec.seed = 0;
    spec.seeds = seeds;
    spec.mix = OpMix::Alternate;
    match entry.family {
        Family::MaxReg => {
            spec.ops_per_process = 8;
            spec.value_bound = 1000;
            // The historical AAC soak capacity.
            spec.capacity = entry.caps.bounded_capacity.then_some(1 << 10);
        }
        Family::Counter => {
            spec.ops_per_process = 8;
            // SimSnapshotCounter reads are obstruction-free: budget
            // generously.
            spec.step_budget = Some(500_000);
            // The historical AAC counter increment budget.
            spec.capacity = entry.caps.bounded_capacity.then_some(64);
        }
        Family::Snapshot => {
            spec.ops_per_process = 4;
            spec.step_budget = Some(500_000);
        }
    }
    if crashes {
        spec.faults = Some(FaultSpec::Random {
            crashes: 1,
            max_after: 40,
        });
        // The watchdog certifies Algorithm A's step bound across the
        // whole crash-injected sweep (its machines are wait-free; the
        // other families include retry loops whose bounds are
        // schedule-dependent).
        spec.certify = entry.family == Family::MaxReg && entry.id == "tree";
    }
    spec
}

fn main() {
    let mut seeds: u64 = 2000;
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            seeds = 100;
        } else if let Ok(v) = arg.parse() {
            seeds = v;
        } else {
            eprintln!("usage: soak [--quick] [seeds]");
            std::process::exit(2);
        }
    }
    println!(
        "# Soak — {seeds} random adversarial schedules per implementation, \
         crash-free and 1-crash-injected\n"
    );

    let mut t = Table::new(&["implementation", "faults", "checker", "ok", "violations"]);
    let mut total_violations: u64 = 0;
    let mut total_ms: f64 = 0.0;
    let mut sweeps: u64 = 0;
    let mut watchdog_line: Option<String> = None;
    // One recorder identity per soak process: the whole binary folds its
    // verdicts into a single gauge set, read in O(1) for the footer.
    let gauges = CheckerGauges::new(1);

    for family in Family::all() {
        for entry in registry()
            .iter()
            .filter(|e| e.family == family && e.has_sim())
        {
            for crashes in [false, true] {
                let spec = row_spec(entry, crashes, seeds);
                let report = run_sim(&spec, false)
                    .unwrap_or_else(|e| panic!("soak {}/{}: {e}", family.name(), entry.id));
                let ok = report.counter("ok_runs").unwrap_or(0);
                total_violations += seeds - ok;
                total_ms += report.metric("duration_ms").unwrap_or(0.0);
                sweeps += 1;
                gauges.record_sweep(
                    ProcessId(0),
                    report.counter("seeds").unwrap_or(0),
                    report.counter("checked_ops").unwrap_or(0),
                    seeds - ok,
                    report.counter("largest_history").unwrap_or(0),
                );
                t.row(vec![
                    format!("{}: {}", family.name(), entry.display),
                    if crashes { "1 crash" } else { "none" }.to_string(),
                    report.checker.clone().unwrap_or_else(|| "-".to_string()),
                    format!("{ok}/{seeds}"),
                    (seeds - ok).to_string(),
                ]);
                if spec.certify {
                    watchdog_line = Some(if report.counter("cert_ok") == Some(1) {
                        format!(
                            "\nProgress watchdog (Algorithm A, 1-crash sweep): certified — \
                             {} ops completed, worst {} steps (bound {}), {} crash-pending.",
                            report.counter("cert_completed").unwrap_or(0),
                            report.counter("cert_worst_steps").unwrap_or(0),
                            report.counter("cert_bound").unwrap_or(0),
                            report.counter("cert_crashed_pending").unwrap_or(0),
                        )
                    } else {
                        total_violations += 1;
                        let detail = report
                            .notes
                            .iter()
                            .find(|n| n.contains("certification"))
                            .cloned()
                            .unwrap_or_default();
                        format!(
                            "\nProgress watchdog (Algorithm A, 1-crash sweep): FAILED — {detail}"
                        )
                    });
                }
            }
        }
    }

    t.print();
    if let Some(line) = watchdog_line {
        println!("{line}");
    }
    println!(
        "\nChecker coverage: {} histories / {} operations decided, \
         {} violations, largest single history {} ops.",
        gauges.histories(),
        gauges.operations(),
        gauges.violations(),
        gauges.largest_history(),
    );
    println!(
        "Engine wall clock: {total_ms:.0} ms across {sweeps} sweeps \
         (per-sweep duration_ms is in each report)."
    );

    println!("\nEvery `violations` cell must be 0.");
    if total_violations > 0 {
        eprintln!("soak: {total_violations} violation(s) detected");
        std::process::exit(1);
    }
}
