//! Soak test: deep randomized linearizability verification across every
//! simulated implementation family. The test suite runs dozens of seeds
//! per implementation; this binary runs *thousands* (tunable), printing
//! a verdict table — the long-haul version of experiment T5 — and, since
//! W6, re-runs every family under randomized **crash injection** (one
//! crashed process per schedule, pending operations checked under the
//! completion rule) plus a progress-certification verdict for the
//! wait-free families.
//!
//! Run with `cargo run --release -p ruo-bench --bin soak [seeds]`
//! (default 2000 seeds per implementation), or `soak --quick` for the
//! CI-sized run. Exits non-zero if any `violations` cell is non-zero,
//! so CI can gate on it directly.

use std::sync::Arc;

use ruo_bench::Table;
use ruo_core::counter::sim::{
    SimAacCounter, SimCasLoopCounter, SimCounter, SimFArrayCounter, SimSnapshotCounter,
};
use ruo_core::maxreg::sim::{
    SimAacMaxRegister, SimCasRetryMaxRegister, SimFArrayMaxRegister, SimMaxRegister,
    SimTreeMaxRegister,
};
use ruo_core::snapshot::sim::{SimDoubleCollectSnapshot, SimSnapshot};
use ruo_metrics::ProgressCertifier;
use ruo_sim::lin::{check_counter, check_max_register, check_snapshot};
use ruo_sim::{
    Executor, FaultPlan, Memory, OpDesc, OpSpec, ProcessId, RandomScheduler, RoundRobin,
    WorkloadBuilder,
};

fn maxreg_workload(reg: &Arc<dyn SimMaxRegister>, n: usize, seed: u64) -> WorkloadBuilder {
    let mut w = WorkloadBuilder::new(n);
    for p in 0..n {
        for i in 0..8usize {
            let pid = ProcessId(p);
            if i % 2 == 0 {
                let v = ((seed as usize * 31 + i * n + p) % 1000 + 1) as u64;
                let reg = Arc::clone(reg);
                w.op(
                    pid,
                    OpSpec::update(OpDesc::WriteMax(v as i64), move || reg.write_max(pid, v)),
                );
            } else {
                let reg = Arc::clone(reg);
                w.op(
                    pid,
                    OpSpec::value(OpDesc::ReadMax, move || reg.read_max(pid)),
                );
            }
        }
    }
    w
}

fn maxreg_seed(
    make: &dyn Fn(&mut Memory, usize) -> Arc<dyn SimMaxRegister>,
    seed: u64,
    plan: &FaultPlan,
    cert: Option<&ProgressCertifier>,
) -> bool {
    let mut mem = Memory::new();
    let n = 4;
    let reg = make(&mut mem, n);
    let w = maxreg_workload(&reg, n, seed);
    let outcome =
        Executor::new().run_with_faults(&mut mem, w, &mut RandomScheduler::new(seed), plan);
    if let Some(cert) = cert {
        cert.record_outcome(&outcome);
    }
    // Crashes legitimately leave work unfinished; the checker-with-
    // completion-rule is the pass criterion. Crash-free runs must also
    // drain completely.
    let drained = outcome.all_done || !outcome.crashed.is_empty();
    drained && check_max_register(&outcome.history, 0).is_ok()
}

fn counter_seed(
    make: &dyn Fn(&mut Memory, usize) -> Arc<dyn SimCounter>,
    seed: u64,
    plan: &FaultPlan,
) -> bool {
    let mut mem = Memory::new();
    let n = 4;
    let c = make(&mut mem, n);
    let mut w = WorkloadBuilder::new(n);
    for p in 0..n {
        for i in 0..8usize {
            let pid = ProcessId(p);
            let c2 = Arc::clone(&c);
            if i % 2 == 0 {
                w.op(
                    pid,
                    OpSpec::update(OpDesc::CounterIncrement, move || c2.increment(pid)),
                );
            } else {
                w.op(
                    pid,
                    OpSpec::value(OpDesc::CounterRead, move || c2.read(pid)),
                );
            }
        }
    }
    // SimSnapshotCounter reads are obstruction-free: budget generously.
    let outcome = Executor::with_step_budget(500_000).run_with_faults(
        &mut mem,
        w,
        &mut RandomScheduler::new(seed),
        plan,
    );
    let drained = outcome.all_done || !outcome.crashed.is_empty();
    drained && check_counter(&outcome.history).is_ok()
}

fn snapshot_seed(seed: u64, plan: &FaultPlan) -> bool {
    let mut mem = Memory::new();
    let n = 3;
    let snap = Arc::new(SimDoubleCollectSnapshot::new(&mut mem, n));
    let mut w = WorkloadBuilder::new(n);
    for p in 0..n {
        let pid = ProcessId(p);
        for i in 0..4u64 {
            if i % 2 == 0 {
                let s = Arc::clone(&snap);
                let v = p as u64 * 1000 + seed % 500 + i + 1;
                w.op(
                    pid,
                    OpSpec::update(OpDesc::Update(v as i64), move || s.update(pid, v)),
                );
            } else {
                let s = Arc::clone(&snap);
                let s2 = Arc::clone(&snap);
                w.op(
                    pid,
                    OpSpec::vector(
                        OpDesc::Scan,
                        move || s.scan(pid),
                        move |token| {
                            s2.take_scan_result(token)
                                .into_iter()
                                .map(|v| v as i64)
                                .collect()
                        },
                    ),
                );
            }
        }
    }
    let outcome = Executor::with_step_budget(500_000).run_with_faults(
        &mut mem,
        w,
        &mut RandomScheduler::new(seed),
        plan,
    );
    let drained = outcome.all_done || !outcome.crashed.is_empty();
    drained && check_snapshot(&outcome.history, n, 0).is_ok()
}

/// The exact wait-free step bound of Algorithm A's operations in this
/// workload shape (its machines have schedule-independent step counts),
/// measured from one crash-free run.
fn algorithm_a_bound() -> u64 {
    let mut mem = Memory::new();
    let reg: Arc<dyn SimMaxRegister> = Arc::new(SimTreeMaxRegister::new(&mut mem, 4));
    let outcome = Executor::new().run(
        &mut mem,
        maxreg_workload(&reg, 4, 0),
        &mut RoundRobin::new(),
    );
    outcome
        .history
        .completed()
        .map(|op| op.steps as u64)
        .max()
        .unwrap_or(0)
}

fn main() {
    let mut seeds: u64 = 2000;
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            seeds = 100;
        } else if let Ok(v) = arg.parse() {
            seeds = v;
        } else {
            eprintln!("usage: soak [--quick] [seeds]");
            std::process::exit(2);
        }
    }
    println!(
        "# Soak — {seeds} random adversarial schedules per implementation, \
         crash-free and 1-crash-injected\n"
    );

    let mut t = Table::new(&["implementation", "faults", "ok", "violations"]);
    let mut total_violations: u64 = 0;
    let crash_plan = |seed: u64, n: usize| FaultPlan::random_crashes(seed, n, 1, 40);

    type MaxRegFactory = Box<dyn Fn(&mut Memory, usize) -> Arc<dyn SimMaxRegister>>;
    let maxregs: Vec<(&str, MaxRegFactory)> = vec![
        (
            "maxreg: Algorithm A",
            Box::new(|m, n| Arc::new(SimTreeMaxRegister::new(m, n))),
        ),
        (
            "maxreg: AAC",
            Box::new(|m, n| Arc::new(SimAacMaxRegister::new(m, n, 1 << 10))),
        ),
        (
            "maxreg: AAC unbalanced",
            Box::new(|m, n| Arc::new(SimAacMaxRegister::new_unbalanced(m, n, 1 << 10))),
        ),
        (
            "maxreg: CAS cell",
            Box::new(|m, n| Arc::new(SimCasRetryMaxRegister::new(m, n))),
        ),
        (
            "maxreg: f-array",
            Box::new(|m, n| Arc::new(SimFArrayMaxRegister::new(m, n))),
        ),
    ];
    // The watchdog certifies Algorithm A's step bound across the whole
    // crash-injected sweep (its machines are wait-free; the other
    // families include retry loops whose bounds are schedule-dependent).
    let watchdog = ProgressCertifier::new(4, algorithm_a_bound());
    for (name, make) in &maxregs {
        for crashes in [false, true] {
            let cert = (crashes && *name == "maxreg: Algorithm A").then_some(&watchdog);
            let ok = (0..seeds)
                .filter(|&s| {
                    let plan = if crashes {
                        crash_plan(s, 4)
                    } else {
                        FaultPlan::none()
                    };
                    maxreg_seed(make.as_ref(), s, &plan, cert)
                })
                .count() as u64;
            total_violations += seeds - ok;
            t.row(vec![
                name.to_string(),
                if crashes { "1 crash" } else { "none" }.to_string(),
                format!("{ok}/{seeds}"),
                (seeds - ok).to_string(),
            ]);
        }
    }

    type CounterFactory = Box<dyn Fn(&mut Memory, usize) -> Arc<dyn SimCounter>>;
    let counters: Vec<(&str, CounterFactory)> = vec![
        (
            "counter: f-array",
            Box::new(|m, n| Arc::new(SimFArrayCounter::new(m, n))),
        ),
        (
            "counter: AAC",
            Box::new(|m, n| Arc::new(SimAacCounter::new(m, n, 64))),
        ),
        (
            "counter: CAS loop",
            Box::new(|m, n| Arc::new(SimCasLoopCounter::new(m, n))),
        ),
        (
            "counter: snapshot",
            Box::new(|m, n| Arc::new(SimSnapshotCounter::new(m, n))),
        ),
    ];
    for (name, make) in &counters {
        for crashes in [false, true] {
            let ok = (0..seeds)
                .filter(|&s| {
                    let plan = if crashes {
                        crash_plan(s, 4)
                    } else {
                        FaultPlan::none()
                    };
                    counter_seed(make.as_ref(), s, &plan)
                })
                .count() as u64;
            total_violations += seeds - ok;
            t.row(vec![
                name.to_string(),
                if crashes { "1 crash" } else { "none" }.to_string(),
                format!("{ok}/{seeds}"),
                (seeds - ok).to_string(),
            ]);
        }
    }

    for crashes in [false, true] {
        let ok = (0..seeds)
            .filter(|&s| {
                let plan = if crashes {
                    crash_plan(s, 3)
                } else {
                    FaultPlan::none()
                };
                snapshot_seed(s, &plan)
            })
            .count() as u64;
        total_violations += seeds - ok;
        t.row(vec![
            "snapshot: double-collect".to_string(),
            if crashes { "1 crash" } else { "none" }.to_string(),
            format!("{ok}/{seeds}"),
            (seeds - ok).to_string(),
        ]);
    }

    t.print();

    match watchdog.certify() {
        Ok(report) => println!(
            "\nProgress watchdog (Algorithm A, 1-crash sweep): certified — \
             {} ops completed, worst {} steps (bound {}), {} crash-pending.",
            report.completed, report.worst_steps, report.bound, report.crashed_pending
        ),
        Err(v) => {
            println!("\nProgress watchdog (Algorithm A, 1-crash sweep): FAILED — {v}");
            total_violations += 1;
        }
    }

    println!("\nEvery `violations` cell must be 0.");
    if total_violations > 0 {
        eprintln!("soak: {total_violations} violation(s) detected");
        std::process::exit(1);
    }
}
