//! Soak test: deep randomized linearizability verification across every
//! simulated implementation family. The test suite runs dozens of seeds
//! per implementation; this binary runs *thousands* (tunable), printing
//! a verdict table — the long-haul version of experiment T5.
//!
//! Run with `cargo run --release -p ruo-bench --bin soak [seeds]`
//! (default 2000 seeds per implementation).

use std::sync::Arc;

use ruo_bench::Table;
use ruo_core::counter::sim::{
    SimAacCounter, SimCasLoopCounter, SimCounter, SimFArrayCounter, SimSnapshotCounter,
};
use ruo_core::maxreg::sim::{
    SimAacMaxRegister, SimCasRetryMaxRegister, SimFArrayMaxRegister, SimMaxRegister,
    SimTreeMaxRegister,
};
use ruo_core::snapshot::sim::{SimDoubleCollectSnapshot, SimSnapshot};
use ruo_sim::lin::{check_counter, check_max_register, check_snapshot};
use ruo_sim::{Executor, Memory, OpDesc, OpSpec, ProcessId, RandomScheduler, WorkloadBuilder};

fn maxreg_seed(make: &dyn Fn(&mut Memory, usize) -> Arc<dyn SimMaxRegister>, seed: u64) -> bool {
    let mut mem = Memory::new();
    let n = 4;
    let reg = make(&mut mem, n);
    let mut w = WorkloadBuilder::new(n);
    for p in 0..n {
        for i in 0..8usize {
            let pid = ProcessId(p);
            if i % 2 == 0 {
                let v = ((seed as usize * 31 + i * n + p) % 1000 + 1) as u64;
                let reg = Arc::clone(&reg);
                w.op(
                    pid,
                    OpSpec::update(OpDesc::WriteMax(v as i64), move || reg.write_max(pid, v)),
                );
            } else {
                let reg = Arc::clone(&reg);
                w.op(
                    pid,
                    OpSpec::value(OpDesc::ReadMax, move || reg.read_max(pid)),
                );
            }
        }
    }
    let outcome = Executor::new().run(&mut mem, w, &mut RandomScheduler::new(seed));
    outcome.all_done && check_max_register(&outcome.history, 0).is_ok()
}

fn counter_seed(make: &dyn Fn(&mut Memory, usize) -> Arc<dyn SimCounter>, seed: u64) -> bool {
    let mut mem = Memory::new();
    let n = 4;
    let c = make(&mut mem, n);
    let mut w = WorkloadBuilder::new(n);
    for p in 0..n {
        for i in 0..8usize {
            let pid = ProcessId(p);
            let c2 = Arc::clone(&c);
            if i % 2 == 0 {
                w.op(
                    pid,
                    OpSpec::update(OpDesc::CounterIncrement, move || c2.increment(pid)),
                );
            } else {
                w.op(
                    pid,
                    OpSpec::value(OpDesc::CounterRead, move || c2.read(pid)),
                );
            }
        }
    }
    // SimSnapshotCounter reads are obstruction-free: budget generously.
    let outcome =
        Executor::with_step_budget(500_000).run(&mut mem, w, &mut RandomScheduler::new(seed));
    outcome.all_done && check_counter(&outcome.history).is_ok()
}

fn snapshot_seed(seed: u64) -> bool {
    let mut mem = Memory::new();
    let n = 3;
    let snap = Arc::new(SimDoubleCollectSnapshot::new(&mut mem, n));
    let mut w = WorkloadBuilder::new(n);
    for p in 0..n {
        let pid = ProcessId(p);
        for i in 0..4u64 {
            if i % 2 == 0 {
                let s = Arc::clone(&snap);
                let v = p as u64 * 1000 + seed % 500 + i + 1;
                w.op(
                    pid,
                    OpSpec::update(OpDesc::Update(v as i64), move || s.update(pid, v)),
                );
            } else {
                let s = Arc::clone(&snap);
                let s2 = Arc::clone(&snap);
                w.op(
                    pid,
                    OpSpec::vector(
                        OpDesc::Scan,
                        move || s.scan(pid),
                        move |token| {
                            s2.take_scan_result(token)
                                .into_iter()
                                .map(|v| v as i64)
                                .collect()
                        },
                    ),
                );
            }
        }
    }
    let outcome =
        Executor::with_step_budget(500_000).run(&mut mem, w, &mut RandomScheduler::new(seed));
    outcome.all_done && check_snapshot(&outcome.history, n, 0).is_ok()
}

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000);
    println!("# Soak — {seeds} random adversarial schedules per implementation\n");

    let mut t = Table::new(&["implementation", "ok", "violations"]);

    type MaxRegFactory = Box<dyn Fn(&mut Memory, usize) -> Arc<dyn SimMaxRegister>>;
    let maxregs: Vec<(&str, MaxRegFactory)> = vec![
        (
            "maxreg: Algorithm A",
            Box::new(|m, n| Arc::new(SimTreeMaxRegister::new(m, n))),
        ),
        (
            "maxreg: AAC",
            Box::new(|m, n| Arc::new(SimAacMaxRegister::new(m, n, 1 << 10))),
        ),
        (
            "maxreg: AAC unbalanced",
            Box::new(|m, n| Arc::new(SimAacMaxRegister::new_unbalanced(m, n, 1 << 10))),
        ),
        (
            "maxreg: CAS cell",
            Box::new(|m, n| Arc::new(SimCasRetryMaxRegister::new(m, n))),
        ),
        (
            "maxreg: f-array",
            Box::new(|m, n| Arc::new(SimFArrayMaxRegister::new(m, n))),
        ),
    ];
    for (name, make) in &maxregs {
        let ok = (0..seeds)
            .filter(|&s| maxreg_seed(make.as_ref(), s))
            .count() as u64;
        t.row(vec![
            name.to_string(),
            format!("{ok}/{seeds}"),
            (seeds - ok).to_string(),
        ]);
    }

    type CounterFactory = Box<dyn Fn(&mut Memory, usize) -> Arc<dyn SimCounter>>;
    let counters: Vec<(&str, CounterFactory)> = vec![
        (
            "counter: f-array",
            Box::new(|m, n| Arc::new(SimFArrayCounter::new(m, n))),
        ),
        (
            "counter: AAC",
            Box::new(|m, n| Arc::new(SimAacCounter::new(m, n, 64))),
        ),
        (
            "counter: CAS loop",
            Box::new(|m, n| Arc::new(SimCasLoopCounter::new(m, n))),
        ),
        (
            "counter: snapshot",
            Box::new(|m, n| Arc::new(SimSnapshotCounter::new(m, n))),
        ),
    ];
    for (name, make) in &counters {
        let ok = (0..seeds)
            .filter(|&s| counter_seed(make.as_ref(), s))
            .count() as u64;
        t.row(vec![
            name.to_string(),
            format!("{ok}/{seeds}"),
            (seeds - ok).to_string(),
        ]);
    }

    let ok = (0..seeds).filter(|&s| snapshot_seed(s)).count() as u64;
    t.row(vec![
        "snapshot: double-collect".to_string(),
        format!("{ok}/{seeds}"),
        (seeds - ok).to_string(),
    ]);

    t.print();
    println!("\nEvery `violations` cell must be 0.");
}
