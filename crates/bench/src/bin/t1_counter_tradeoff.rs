//! Experiment T1 — Theorem 1 / Theorem 2: the counter read/update
//! tradeoff, measured by running the Lemma 1 adversary against real
//! counter implementations.
//!
//! For each counter and each `N`, the adversary drives `N − 1`
//! concurrent increments one Lemma-1 round at a time. The number of
//! rounds is a lower bound on the worst-case increment step complexity
//! under that schedule; the theorem predicts `Ω(log₃(N / f(N)))` where
//! `f(N)` is the read step complexity. Each run also checks Lemma 1's
//! knowledge invariant `M(E_j) ≤ 3^j` and Lemma 3's awareness claim.
//!
//! Run with `cargo run -p ruo-bench --bin t1_counter_tradeoff`.

use ruo_bench::Table;
use ruo_core::counter::sim::{
    SimAacCounter, SimCasLoopCounter, SimCounter, SimFArrayCounter, SimSnapshotCounter,
};
use ruo_lowerbound::theorem1::run_theorem1;
use ruo_sim::Memory;

fn run_for(
    name: &str,
    table: &mut Table,
    make: impl Fn(&mut Memory, usize) -> Box<dyn SimCounter>,
) {
    for n in [8usize, 16, 32, 64, 128, 256, 512] {
        let mut mem = Memory::new();
        let counter = make(&mut mem, n);
        let out = run_theorem1(counter.as_ref(), &mut mem, 2_000_000);
        table.row(vec![
            name.to_string(),
            n.to_string(),
            out.reader_steps.to_string(),
            out.rounds.to_string(),
            out.predicted_rounds().to_string(),
            out.max_increment_steps.to_string(),
            if out.knowledge_bound_held {
                "yes"
            } else {
                "NO"
            }
            .to_string(),
            out.reader_awareness.to_string(),
        ]);
    }
}

fn main() {
    println!("# T1 — counter read/update tradeoff under the Lemma 1 adversary\n");
    println!("Theorem 1: reads in O(f(N)) steps force increments to Ω(log3(N/f(N))) steps.");
    println!("`rounds` = Lemma-1 rounds until all N-1 increments completed (each active");
    println!("process takes one step per round, so the slowest increment took `rounds` steps).\n");

    let mut t = Table::new(&[
        "counter",
        "N",
        "f(N) = read steps",
        "rounds",
        "predicted ≥ log3(N/f)",
        "max inc steps",
        "M(E_j) ≤ 3^j",
        "|AW(reader)|",
    ]);
    run_for("f-array (O(1) read)", &mut t, |mem, n| {
        Box::new(SimFArrayCounter::new(mem, n))
    });
    run_for("CAS-loop (O(1) read)", &mut t, |mem, n| {
        Box::new(SimCasLoopCounter::new(mem, n))
    });
    run_for("AAC (O(log N) read)", &mut t, |mem, n| {
        Box::new(SimAacCounter::new(mem, n, n as u64))
    });
    run_for("snapshot (O(N) read)", &mut t, |mem, n| {
        Box::new(SimSnapshotCounter::new(mem, n))
    });
    t.print();

    println!("\nReading the table:");
    println!("- f-array: rounds ≈ 8·log2(N), comfortably above the log3(N) prediction —");
    println!("  a read-optimal counter cannot dodge logarithmic updates (Theorem 2).");
    println!("- CAS-loop: the adversary serializes the CASes — ~N-1 rounds, the price of");
    println!("  funneling every increment through one cell.");
    println!("- AAC: f(N) = Θ(log N) shrinks the predicted bound; measured rounds stay");
    println!("  well above it (its increments are Θ(log² N)).");
}
