//! W7 regression: the measured step-complexity curves must keep the
//! bound shapes the paper proves, and the pinned constants of the seed
//! step-count tables must show up in the profile.

use ruo_bench::complexity::{check_shapes, profile};

#[test]
fn quick_profile_matches_every_bound_shape() {
    let p = profile(true);
    let failures = check_shapes(&p);
    assert!(failures.is_empty(), "shape violations: {failures:#?}");
}

#[test]
fn full_profile_matches_every_bound_shape() {
    let p = profile(false);
    let failures = check_shapes(&p);
    assert!(failures.is_empty(), "shape violations: {failures:#?}");
}

#[test]
fn profile_reproduces_the_pinned_solo_constants() {
    let p = profile(false);
    // ReadMax is exactly 1 step at every N.
    let read = p.curve("read_max").unwrap();
    assert!(read.points.iter().all(|pt| pt.steps == 1));
    // WriteMax (v large) is 2 + 8·(log2 N + 1): the tree write pattern
    // of the seed step-count tables.
    let wn = p.curve("write_max_n").unwrap();
    for pt in &wn.points {
        let depth = 64 - (pt.x - 1).leading_zeros() as u64 + 1; // log2_ceil + 1
        assert_eq!(pt.steps, 2 + 8 * depth, "write_max_n at N={}", pt.x);
    }
    // f-array increment is 2 + 8·ceil(log2 N); read is 1.
    let cu = p.curve("counter_update").unwrap();
    for pt in &cu.points {
        let l = if pt.x <= 1 {
            0
        } else {
            64 - (pt.x - 1).leading_zeros() as u64
        };
        assert_eq!(pt.steps, 2 + 8 * l, "counter_update at N={}", pt.x);
    }
    let cr = p.curve("counter_read").unwrap();
    assert!(cr.points.iter().all(|pt| pt.steps == 1));
    // The v-sweep plateau equals the N-sweep value at the fixed N: the
    // min(log N, log v) crossover. Below it the value spine costs
    // 2 + 8·(2·log2 v + 2) — logarithmic in v, with its own constant.
    let wv = p.curve("write_max_v").unwrap();
    let at_64 = wn.points.iter().find(|pt| pt.x == 64).unwrap().steps;
    for pt in &wv.points {
        if pt.x >= 64 {
            assert_eq!(pt.steps, at_64, "plateau at v={}", pt.x);
        } else {
            let l = pt.x.ilog2() as u64;
            assert_eq!(pt.steps, 2 + 8 * (2 * l + 2), "spine at v={}", pt.x);
        }
    }
    // And at the bottom of the spine the v-arm is strictly cheaper.
    assert!(wv.points[0].steps < at_64);
}
