//! # ruo-sim — a deterministic asynchronous shared-memory simulator
//!
//! This crate is the substrate on which the PODC 2014 paper
//! *"Complexity Tradeoffs for Read and Update Operations"* (Hendler &
//! Khait) is reproduced. The paper's model is the standard asynchronous
//! shared-memory model: `N` processes communicate by applying `read`,
//! `write` and `CAS` primitives to shared *base objects*; a *step* is one
//! shared-memory event; an adversarial *scheduler* decides which enabled
//! process moves next.
//!
//! The simulator provides exactly that model:
//!
//! * [`Memory`] — a collection of base objects (single-word cells) that
//!   supports the three primitives and records every event in an
//!   [`EventLog`].
//! * [`Machine`] — an operation expressed as a step machine built from
//!   continuation combinators ([`read`], [`write()`], [`cas`], [`done`]),
//!   so algorithms read like straight-line pseudo-code while still
//!   exposing one shared-memory event at a time to the scheduler.
//! * [`Scheduler`] implementations — round-robin, seeded-random, and solo
//!   (obstruction-free) schedules — plus an [`Executor`] that runs whole
//!   workloads and records invocation/response [`History`]s.
//! * Linearizability checking ([`lin`]) — an exact search for small
//!   histories and specialized sound checkers for the paper's three
//!   object families (max registers, counters, single-writer snapshots).
//!
//! Step counts measured here are *exactly* the complexity measure used by
//! the paper, which is the point of simulating instead of timing.
//!
//! ```
//! use ruo_sim::{Memory, Machine, read, write, done, Word};
//!
//! // A two-step operation: read cell, then write incremented value back.
//! let mut mem = Memory::new();
//! let cell = mem.alloc(41);
//! let pid = ruo_sim::ProcessId(0);
//! let mut op = Machine::new(read(cell, move |v| write(cell, v + 1, move || done(v + 1))));
//! while !op.is_done() {
//!     let prim = op.enabled().expect("machine still running");
//!     let resp = mem.apply(pid, prim);
//!     op.feed(resp);
//! }
//! assert_eq!(op.result(), Some(42));
//! assert_eq!(mem.peek(cell), 42);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod event;
mod exec;
mod ids;
mod machine;
mod mem;
mod rng;
mod sched;

pub mod explore;
pub mod fault;
pub mod history;
pub mod lin;
pub mod recorder;
pub mod spec;
pub mod stepcount;

pub use event::{Event, EventLog, Prim};
pub use exec::{ExecOutcome, Executor, OpSpec, WorkloadBuilder};
pub use fault::{Fault, FaultClock, FaultPlan};
pub use history::{History, OpDesc, OpOutput, OpRecord, StripPendingError};
pub use ids::{ObjId, ProcessId};
pub use machine::{cas, done, read, run_solo, write, BoxedStep, Machine, Step};
pub use mem::Memory;
pub use rng::SplitMix64;
pub use sched::{RandomScheduler, RoundRobin, Scheduler, ScriptedScheduler, Solo};

/// The value stored in a base object.
///
/// The paper's model does not bound register width, but every algorithm
/// reproduced here fits its per-object state in one signed 64-bit word.
/// Negative values are reserved for sentinels such as
/// [`NEG_INF`] (the `-∞` initial value of Algorithm A's
/// tree nodes).
pub type Word = i64;

/// The `-∞` sentinel used as the initial value of max-register tree nodes.
pub const NEG_INF: Word = i64::MIN;
