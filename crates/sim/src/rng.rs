//! A small deterministic PRNG (SplitMix64).
//!
//! The repository builds with no external dependencies, so the seeded
//! randomness that schedulers and randomized tests need is provided
//! here instead of by the `rand` crate. SplitMix64 passes BigCrush for
//! this kind of workload, is trivially reproducible from a single `u64`
//! seed, and — unlike a timestamp-seeded generator — keeps every
//! experiment in this repository replayable.

/// Deterministic SplitMix64 pseudo-random number generator.
///
/// ```
/// use ruo_sim::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn gen_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        // Multiply-shift range reduction (Lemire); bias is < 2^-64 per
        // draw, far below anything these tests can observe.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `usize` in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn gen_index(&mut self, bound: usize) -> usize {
        self.gen_below(bound as u64) as usize
    }

    /// Uniform value in `lo..hi` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.gen_below(hi - lo)
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn gen_below_respects_bound() {
        let mut r = SplitMix64::new(3);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(r.gen_below(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_below_reaches_every_small_value() {
        let mut r = SplitMix64::new(4);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.gen_index(4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut r = SplitMix64::new(5);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "p=0.3 gave {hits}/10000");
    }

    #[test]
    fn gen_range_stays_in_range() {
        let mut r = SplitMix64::new(6);
        for _ in 0..500 {
            let v = r.gen_range(10, 20);
            assert!((10..20).contains(&v));
        }
    }
}
