//! Recording histories from *real* threads.
//!
//! The simulator's executor produces histories natively; for the
//! real-atomics implementations, [`ThreadRecorder`] time-stamps each
//! operation's invocation and response with a shared sequentially
//! consistent tick counter. The resulting [`History`] is checkable with
//! [`crate::lin`] exactly like a simulated one: if `a.response <
//! b.invoke` in recorded ticks, `a` really did complete before `b`
//! began, so any violation the checkers report is a genuine
//! linearizability bug in the implementation under test.
//!
//! ```
//! use ruo_sim::recorder::ThreadRecorder;
//! use ruo_sim::{OpDesc, OpOutput, ProcessId};
//! use ruo_sim::lin::check_counter;
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! let rec = ThreadRecorder::new();
//! let counter = AtomicU64::new(0);
//! rec.record(ProcessId(0), OpDesc::CounterIncrement, || {
//!     counter.fetch_add(1, Ordering::SeqCst);
//!     OpOutput::Unit
//! });
//! rec.record(ProcessId(1), OpDesc::CounterRead, || {
//!     OpOutput::Value(counter.load(Ordering::SeqCst) as i64)
//! });
//! assert!(check_counter(&rec.history()).is_ok());
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::history::{History, OpDesc, OpOutput, OpRecord};
use crate::stepcount::CountingMem;
use crate::ProcessId;

/// Tick-stamps operations executed by real threads into a [`History`].
#[derive(Debug, Default)]
pub struct ThreadRecorder {
    tick: AtomicUsize,
    ops: Mutex<Vec<OpRecord>>,
}

impl ThreadRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `op`, recording its interval and output. The tick counter is
    /// bumped with sequentially consistent ordering immediately before
    /// and after `op`, so recorded precedence implies real-time
    /// precedence.
    ///
    /// When the [`CountingMem`] layer is
    /// enabled, the thread-local primitive tally is reset at invocation
    /// and flushed into [`OpRecord::steps`] at response, so recorded
    /// histories carry real step counts; when disabled, `steps` is `0`.
    /// This is the single event-recording path for the threaded world.
    pub fn record(&self, pid: ProcessId, desc: OpDesc, op: impl FnOnce() -> OpOutput) {
        CountingMem::begin_op();
        let invoke = self.tick.fetch_add(1, Ordering::SeqCst);
        let output = op();
        let response = self.tick.fetch_add(1, Ordering::SeqCst);
        let steps = CountingMem::take_op_counts().steps() as usize;
        self.ops.lock().expect("recorder poisoned").push(OpRecord {
            pid,
            desc,
            invoke,
            response: Some(response),
            output: Some(output),
            steps,
        });
    }

    /// Number of operations recorded so far.
    pub fn len(&self) -> usize {
        self.ops.lock().expect("recorder poisoned").len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Extracts the history (records sorted by invocation tick).
    pub fn history(&self) -> History {
        let mut ops = self.ops.lock().expect("recorder poisoned").clone();
        ops.sort_by_key(|o| o.invoke);
        ops.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_intervals_in_order() {
        let rec = ThreadRecorder::new();
        rec.record(ProcessId(0), OpDesc::CounterIncrement, || OpOutput::Unit);
        rec.record(ProcessId(1), OpDesc::CounterRead, || OpOutput::Value(1));
        let h = rec.history();
        assert_eq!(h.len(), 2);
        assert!(h.ops()[0].precedes(&h.ops()[1]));
        assert_eq!(rec.len(), 2);
        assert!(!rec.is_empty());
    }

    #[test]
    fn concurrent_records_get_unique_ticks() {
        let rec = std::sync::Arc::new(ThreadRecorder::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let rec = std::sync::Arc::clone(&rec);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        rec.record(ProcessId(t), OpDesc::CounterIncrement, || OpOutput::Unit);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let h = rec.history();
        assert_eq!(h.len(), 400);
        let mut ticks: Vec<usize> = h
            .ops()
            .iter()
            .flat_map(|o| [o.invoke, o.response.unwrap()])
            .collect();
        ticks.sort_unstable();
        ticks.dedup();
        assert_eq!(ticks.len(), 800, "ticks must be unique");
    }

    #[test]
    fn counting_layer_flushes_steps_into_records() {
        let _g = crate::stepcount::test_lock();
        let rec = ThreadRecorder::new();
        let cell = crate::stepcount::CountingU64::new(0);
        CountingMem::enable();
        rec.record(ProcessId(0), OpDesc::CounterIncrement, || {
            let v = cell.load(Ordering::SeqCst);
            cell.store(v + 1, Ordering::SeqCst);
            OpOutput::Unit
        });
        CountingMem::disable();
        rec.record(ProcessId(0), OpDesc::CounterRead, || {
            OpOutput::Value(cell.load(Ordering::SeqCst) as i64)
        });
        let h = rec.history();
        assert_eq!(h.ops()[0].steps, 2, "load + store while enabled");
        assert_eq!(h.ops()[1].steps, 0, "counting disabled");
    }

    #[test]
    fn sequential_ops_of_one_thread_never_overlap() {
        let rec = ThreadRecorder::new();
        for _ in 0..5 {
            rec.record(ProcessId(0), OpDesc::CounterIncrement, || OpOutput::Unit);
        }
        let h = rec.history();
        for w in h.ops().windows(2) {
            assert!(w[0].precedes(&w[1]));
        }
    }
}
