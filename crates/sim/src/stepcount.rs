//! Step counting for the *real-atomics* world.
//!
//! The simulator counts steps exactly: every [`crate::Memory::apply`]
//! logs one event, and histories carry per-op
//! step counts natively. Real threads have no such seam — so the core
//! implementations store their shared state in [`CountingU64`] /
//! [`CountingI64`] instead of bare `AtomicU64` / `AtomicI64`. Each
//! wrapper method forwards to the underlying atomic with the caller's
//! ordering and, *when counting is enabled*, bumps a thread-local
//! per-operation tally ([`OpCounts`]) classified the same way the sim
//! event log classifies events: read, write, CAS-success, CAS-failure.
//!
//! Cost when disabled (the default): one `Relaxed` load of a process-wide
//! flag and a predictable branch per shared-memory access — no shared
//! writes, no fences. Timed throughput batches run with counting
//! disabled, so the wrapper is invisible to W4-style measurements.
//!
//! Enabling is process-wide ([`CountingMem::enable`]); the tallies are
//! thread-local, so concurrent operations never contend on them. A
//! harness brackets each high-level operation with
//! [`CountingMem::begin_op`] / [`CountingMem::take_op_counts`] on the
//! thread that runs it.
//!
//! Implementations whose shared state is not a plain integer cell (e.g.
//! pointer-swinging snapshots) count their primitive events manually via
//! [`count_read`] / [`count_write`] / [`count_cas`].
//!
//! ```
//! use ruo_sim::stepcount::{CountingMem, CountingU64};
//! use std::sync::atomic::Ordering;
//!
//! let cell = CountingU64::new(0);
//! CountingMem::enable();
//! CountingMem::begin_op();
//! cell.store(7, Ordering::SeqCst);
//! assert_eq!(cell.load(Ordering::SeqCst), 7);
//! let counts = CountingMem::take_op_counts();
//! CountingMem::disable();
//! assert_eq!((counts.reads, counts.writes), (1, 1));
//! assert_eq!(counts.steps(), 2);
//! ```

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};

/// Process-wide switch; `Relaxed` loads on the hot path.
static ENABLED: AtomicBool = AtomicBool::new(false);

thread_local! {
    /// The current operation's tally on this thread.
    static OP_COUNTS: Cell<OpCounts> = const { Cell::new(OpCounts::new()) };
}

/// Per-operation primitive-event tally, classified like the simulator's
/// event log.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Atomic loads.
    pub reads: u64,
    /// Atomic stores.
    pub writes: u64,
    /// Successful CAS events. Hardware read-modify-writes that cannot
    /// fail (`fetch_add`) are counted here too: they are one primitive
    /// event that always mutates.
    pub cas_ok: u64,
    /// Failed CAS events.
    pub cas_fail: u64,
}

impl OpCounts {
    /// The all-zero tally.
    pub const fn new() -> Self {
        OpCounts {
            reads: 0,
            writes: 0,
            cas_ok: 0,
            cas_fail: 0,
        }
    }

    /// Total shared-memory events — the paper's step count.
    pub fn steps(&self) -> u64 {
        self.reads + self.writes + self.cas_ok + self.cas_fail
    }
}

/// Controller for the real-world counting instrumentation.
///
/// A unit struct carrying the global enable switch and the per-thread
/// operation tallies; see the module docs for the protocol.
#[derive(Debug)]
pub struct CountingMem;

impl CountingMem {
    /// Turns counting on, process-wide.
    pub fn enable() {
        ENABLED.store(true, Ordering::SeqCst);
    }

    /// Turns counting off, process-wide.
    pub fn disable() {
        ENABLED.store(false, Ordering::SeqCst);
    }

    /// Whether counting is currently enabled.
    #[inline]
    pub fn is_enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// Resets this thread's tally; call just before an operation.
    pub fn begin_op() {
        OP_COUNTS.with(|c| c.set(OpCounts::new()));
    }

    /// Reads and resets this thread's tally; call just after an
    /// operation.
    pub fn take_op_counts() -> OpCounts {
        OP_COUNTS.with(|c| c.replace(OpCounts::new()))
    }
}

#[inline]
fn bump(f: impl FnOnce(&mut OpCounts)) {
    if ENABLED.load(Ordering::Relaxed) {
        OP_COUNTS.with(|c| {
            let mut counts = c.get();
            f(&mut counts);
            c.set(counts);
        });
    }
}

/// Counts one read event (for manually instrumented implementations).
#[inline]
pub fn count_read() {
    bump(|c| c.reads += 1);
}

/// Counts one write event (for manually instrumented implementations).
#[inline]
pub fn count_write() {
    bump(|c| c.writes += 1);
}

/// Counts one CAS event (for manually instrumented implementations).
#[inline]
pub fn count_cas(ok: bool) {
    bump(|c| {
        if ok {
            c.cas_ok += 1;
        } else {
            c.cas_fail += 1;
        }
    });
}

/// An `AtomicU64` that counts its accesses into the thread-local
/// per-operation tally when [`CountingMem`] is enabled.
///
/// Method-for-method compatible with the `AtomicU64` surface the core
/// implementations use; orderings pass straight through.
#[derive(Debug, Default)]
pub struct CountingU64 {
    inner: AtomicU64,
}

impl CountingU64 {
    /// A new cell holding `v`.
    pub const fn new(v: u64) -> Self {
        CountingU64 {
            inner: AtomicU64::new(v),
        }
    }

    /// Counted [`AtomicU64::load`].
    #[inline]
    pub fn load(&self, order: Ordering) -> u64 {
        count_read();
        self.inner.load(order)
    }

    /// Counted [`AtomicU64::store`].
    #[inline]
    pub fn store(&self, v: u64, order: Ordering) {
        count_write();
        self.inner.store(v, order);
    }

    /// Counted [`AtomicU64::compare_exchange`].
    #[inline]
    pub fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        let r = self.inner.compare_exchange(current, new, success, failure);
        count_cas(r.is_ok());
        r
    }

    /// Counted [`AtomicU64::fetch_add`] (tallied as a successful RMW).
    #[inline]
    pub fn fetch_add(&self, v: u64, order: Ordering) -> u64 {
        count_cas(true);
        self.inner.fetch_add(v, order)
    }
}

/// An `AtomicI64` that counts its accesses into the thread-local
/// per-operation tally when [`CountingMem`] is enabled.
#[derive(Debug, Default)]
pub struct CountingI64 {
    inner: AtomicI64,
}

impl CountingI64 {
    /// A new cell holding `v`.
    pub const fn new(v: i64) -> Self {
        CountingI64 {
            inner: AtomicI64::new(v),
        }
    }

    /// Counted [`AtomicI64::load`].
    #[inline]
    pub fn load(&self, order: Ordering) -> i64 {
        count_read();
        self.inner.load(order)
    }

    /// Counted [`AtomicI64::store`].
    #[inline]
    pub fn store(&self, v: i64, order: Ordering) {
        count_write();
        self.inner.store(v, order);
    }

    /// Counted [`AtomicI64::compare_exchange`].
    #[inline]
    pub fn compare_exchange(
        &self,
        current: i64,
        new: i64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<i64, i64> {
        let r = self.inner.compare_exchange(current, new, success, failure);
        count_cas(r.is_ok());
        r
    }

    /// Counted [`AtomicI64::fetch_add`] (tallied as a successful RMW).
    #[inline]
    pub fn fetch_add(&self, v: i64, order: Ordering) -> i64 {
        count_cas(true);
        self.inner.fetch_add(v, order)
    }
}

/// Serializes tests that touch the process-wide switch (the sim crate's
/// own tests and the recorder's run in one binary, in parallel threads).
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The switch is process-wide, so tests sharing it must serialize.
    fn with_counting<T>(f: impl FnOnce() -> T) -> T {
        let _g = test_lock();
        CountingMem::enable();
        CountingMem::begin_op();
        let out = f();
        CountingMem::disable();
        out
    }

    #[test]
    fn disabled_counting_tallies_nothing() {
        let _g = test_lock();
        let cell = CountingU64::new(0);
        CountingMem::begin_op();
        cell.store(1, Ordering::SeqCst);
        let _ = cell.load(Ordering::SeqCst);
        assert_eq!(CountingMem::take_op_counts(), OpCounts::new());
    }

    #[test]
    fn every_event_kind_is_classified() {
        let counts = with_counting(|| {
            let cell = CountingU64::new(0);
            cell.store(5, Ordering::SeqCst);
            let _ = cell.load(Ordering::Acquire);
            assert!(cell
                .compare_exchange(5, 6, Ordering::AcqRel, Ordering::Acquire)
                .is_ok());
            assert!(cell
                .compare_exchange(5, 7, Ordering::AcqRel, Ordering::Acquire)
                .is_err());
            cell.fetch_add(1, Ordering::Relaxed);
            CountingMem::take_op_counts()
        });
        assert_eq!(counts.reads, 1);
        assert_eq!(counts.writes, 1);
        assert_eq!(counts.cas_ok, 2); // CAS success + fetch_add
        assert_eq!(counts.cas_fail, 1);
        assert_eq!(counts.steps(), 5);
    }

    #[test]
    fn take_resets_the_tally() {
        let counts = with_counting(|| {
            let cell = CountingI64::new(-3);
            let _ = cell.load(Ordering::SeqCst);
            let first = CountingMem::take_op_counts();
            assert_eq!(first.steps(), 1);
            CountingMem::take_op_counts()
        });
        assert_eq!(counts, OpCounts::new());
    }

    #[test]
    fn counts_are_thread_local() {
        let counts = with_counting(|| {
            let cell = std::sync::Arc::new(CountingI64::new(0));
            std::thread::scope(|s| {
                for _ in 0..4 {
                    let cell = std::sync::Arc::clone(&cell);
                    s.spawn(move || {
                        CountingMem::begin_op();
                        for _ in 0..100 {
                            cell.fetch_add(1, Ordering::SeqCst);
                        }
                        assert_eq!(CountingMem::take_op_counts().cas_ok, 100);
                    });
                }
            });
            // The spawning thread saw none of the workers' events.
            CountingMem::take_op_counts()
        });
        assert_eq!(counts, OpCounts::new());
    }
}
