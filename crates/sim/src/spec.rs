//! Sequential specifications of the paper's three object families.
//!
//! A [`SeqSpec`] is an executable form of the object's sequential
//! specification (Section 2 of the paper). The exact linearizability
//! checker ([`crate::lin::check_exact`]) searches for an order of the
//! history's operations that is legal under the spec and consistent with
//! real-time precedence.

use crate::history::{OpDesc, OpOutput};
use crate::{ProcessId, Word};

/// Which object family a history is checked against.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SeqSpec {
    /// A max register with the given initial value (`ReadMax` on a fresh
    /// register returns this; Algorithm A uses `-∞`, modeled here as any
    /// chosen floor value, typically `-1` or `0` at the public API).
    MaxRegister {
        /// Value returned by `ReadMax` before any `WriteMax`.
        initial: Word,
    },
    /// A counter starting at zero.
    Counter,
    /// A single-writer snapshot with `n` segments, all starting at
    /// `initial`.
    Snapshot {
        /// Number of segments (one per process).
        n: usize,
        /// Initial value of every segment.
        initial: Word,
    },
}

/// Sequential object state evolved by [`SeqSpec::apply`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum SpecState {
    /// Current maximum for a max register.
    Max(Word),
    /// Current count for a counter.
    Count(u64),
    /// Current segment vector for a snapshot.
    Snap(Vec<Word>),
}

impl SeqSpec {
    /// The object's initial state.
    pub fn init(&self) -> SpecState {
        match *self {
            SeqSpec::MaxRegister { initial } => SpecState::Max(initial),
            SeqSpec::Counter => SpecState::Count(0),
            SeqSpec::Snapshot { n, initial } => SpecState::Snap(vec![initial; n]),
        }
    }

    /// Applies `desc` (performed by `pid`) to `state`, returning the next
    /// state and the output the operation must produce at this point of a
    /// legal sequential history.
    ///
    /// # Panics
    ///
    /// Panics if the operation does not belong to this object family
    /// (e.g. `CounterRead` against a max-register spec).
    pub fn apply(&self, state: &SpecState, pid: ProcessId, desc: &OpDesc) -> (SpecState, OpOutput) {
        match (self, state, desc) {
            (SeqSpec::MaxRegister { .. }, SpecState::Max(m), OpDesc::WriteMax(v)) => {
                (SpecState::Max((*m).max(*v)), OpOutput::Unit)
            }
            (SeqSpec::MaxRegister { .. }, SpecState::Max(m), OpDesc::ReadMax) => {
                (SpecState::Max(*m), OpOutput::Value(*m))
            }
            (SeqSpec::Counter, SpecState::Count(c), OpDesc::CounterIncrement) => {
                (SpecState::Count(c + 1), OpOutput::Unit)
            }
            (SeqSpec::Counter, SpecState::Count(c), OpDesc::CounterRead) => {
                (SpecState::Count(*c), OpOutput::Value(*c as Word))
            }
            (SeqSpec::Snapshot { .. }, SpecState::Snap(vec), OpDesc::Update(v)) => {
                let mut next = vec.clone();
                next[pid.index()] = *v;
                (SpecState::Snap(next), OpOutput::Unit)
            }
            (SeqSpec::Snapshot { .. }, SpecState::Snap(vec), OpDesc::Scan) => {
                (SpecState::Snap(vec.clone()), OpOutput::Vector(vec.clone()))
            }
            (spec, state, desc) => {
                panic!("operation {desc:?} does not apply to {spec:?} in state {state:?}")
            }
        }
    }

    /// Whether `observed` is an acceptable output for `desc` at `state`.
    /// Update-type operations accept any output (their output is `Unit`).
    pub fn output_matches(
        &self,
        state: &SpecState,
        pid: ProcessId,
        desc: &OpDesc,
        observed: &OpOutput,
    ) -> bool {
        let (_, expected) = self.apply(state, pid, desc);
        match expected {
            OpOutput::Unit => true,
            other => *observed == other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_register_returns_running_maximum() {
        let spec = SeqSpec::MaxRegister { initial: -1 };
        let s0 = spec.init();
        let (s1, _) = spec.apply(&s0, ProcessId(0), &OpDesc::WriteMax(5));
        let (s2, _) = spec.apply(&s1, ProcessId(1), &OpDesc::WriteMax(3));
        let (_, out) = spec.apply(&s2, ProcessId(2), &OpDesc::ReadMax);
        assert_eq!(out, OpOutput::Value(5));
    }

    #[test]
    fn fresh_max_register_reads_initial() {
        let spec = SeqSpec::MaxRegister { initial: -1 };
        let (_, out) = spec.apply(&spec.init(), ProcessId(0), &OpDesc::ReadMax);
        assert_eq!(out, OpOutput::Value(-1));
    }

    #[test]
    fn counter_counts_increments() {
        let spec = SeqSpec::Counter;
        let mut st = spec.init();
        for _ in 0..3 {
            st = spec.apply(&st, ProcessId(0), &OpDesc::CounterIncrement).0;
        }
        let (_, out) = spec.apply(&st, ProcessId(1), &OpDesc::CounterRead);
        assert_eq!(out, OpOutput::Value(3));
    }

    #[test]
    fn snapshot_scan_reflects_updates() {
        let spec = SeqSpec::Snapshot { n: 3, initial: 0 };
        let mut st = spec.init();
        st = spec.apply(&st, ProcessId(1), &OpDesc::Update(9)).0;
        let (_, out) = spec.apply(&st, ProcessId(0), &OpDesc::Scan);
        assert_eq!(out, OpOutput::Vector(vec![0, 9, 0]));
    }

    #[test]
    fn output_matches_accepts_unit_for_updates() {
        let spec = SeqSpec::Counter;
        let st = spec.init();
        assert!(spec.output_matches(
            &st,
            ProcessId(0),
            &OpDesc::CounterIncrement,
            &OpOutput::Unit
        ));
        assert!(spec.output_matches(&st, ProcessId(0), &OpDesc::CounterRead, &OpOutput::Value(0)));
        assert!(!spec.output_matches(&st, ProcessId(0), &OpDesc::CounterRead, &OpOutput::Value(1)));
    }

    #[test]
    #[should_panic(expected = "does not apply")]
    fn mismatched_operation_panics() {
        let spec = SeqSpec::Counter;
        let st = spec.init();
        let _ = spec.apply(&st, ProcessId(0), &OpDesc::ReadMax);
    }
}
