//! The executor: runs workloads of operations under a scheduler.

use std::collections::VecDeque;
use std::fmt;

use crate::history::{History, OpDesc, OpOutput, OpRecord};
use crate::{Machine, Memory, ProcessId, Scheduler, Word};

type StartFn = Box<dyn FnOnce() -> Machine + Send>;
type FinishFn = Box<dyn FnOnce(Word) -> OpOutput + Send>;

/// One operation a process will perform: a description (for the history)
/// plus a constructor for its step machine.
pub struct OpSpec {
    desc: OpDesc,
    start: StartFn,
    finish: FinishFn,
}

impl fmt::Debug for OpSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OpSpec").field("desc", &self.desc).finish()
    }
}

impl OpSpec {
    /// An update-type operation (output is [`OpOutput::Unit`]).
    pub fn update(desc: OpDesc, start: impl FnOnce() -> Machine + Send + 'static) -> Self {
        OpSpec {
            desc,
            start: Box::new(start),
            finish: Box::new(|_| OpOutput::Unit),
        }
    }

    /// A read-type operation whose machine result is the returned value.
    pub fn value(desc: OpDesc, start: impl FnOnce() -> Machine + Send + 'static) -> Self {
        OpSpec {
            desc,
            start: Box::new(start),
            finish: Box::new(OpOutput::Value),
        }
    }

    /// A scan-type operation; `finish` maps the machine's word result
    /// (typically an index into a side table owned by the object) to the
    /// scanned vector.
    pub fn vector(
        desc: OpDesc,
        start: impl FnOnce() -> Machine + Send + 'static,
        finish: impl FnOnce(Word) -> Vec<Word> + Send + 'static,
    ) -> Self {
        OpSpec {
            desc,
            start: Box::new(start),
            finish: Box::new(move |w| OpOutput::Vector(finish(w))),
        }
    }

    /// The operation's description.
    pub fn desc(&self) -> &OpDesc {
        &self.desc
    }
}

/// Assigns each process the sequence of operations it will perform.
#[derive(Debug)]
pub struct WorkloadBuilder {
    queues: Vec<VecDeque<OpSpec>>,
}

impl WorkloadBuilder {
    /// A workload for `n` processes (ids `0..n`), all initially idle.
    pub fn new(n: usize) -> Self {
        WorkloadBuilder {
            queues: (0..n).map(|_| VecDeque::new()).collect(),
        }
    }

    /// Appends an operation to `pid`'s queue.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range.
    pub fn op(&mut self, pid: ProcessId, spec: OpSpec) -> &mut Self {
        self.queues[pid.index()].push_back(spec);
        self
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.queues.len()
    }
}

/// What happened when an executor ran a workload.
#[derive(Clone, Debug)]
pub struct ExecOutcome {
    /// The invocation/response history of every operation that was
    /// invoked.
    pub history: History,
    /// Whether every queued operation completed. `false` means the step
    /// budget ran out first — expected for obstruction-free algorithms
    /// under adversarial schedules.
    pub all_done: bool,
}

struct Running {
    machine: Machine,
    hist_idx: usize,
    finish: Option<FinishFn>,
}

struct ProcState {
    queue: VecDeque<OpSpec>,
    current: Option<Running>,
}

/// Runs workloads step by step under a scheduler.
#[derive(Debug, Default)]
pub struct Executor {
    max_steps: Option<usize>,
}

impl Executor {
    /// An executor with no step budget (suitable for wait-free
    /// algorithms, which always terminate).
    pub fn new() -> Self {
        Executor { max_steps: None }
    }

    /// Limits the total number of shared-memory steps. Use for
    /// obstruction-free algorithms (e.g. double-collect scans), whose
    /// operations an adversarial schedule can starve forever.
    pub fn with_step_budget(max_steps: usize) -> Self {
        Executor {
            max_steps: Some(max_steps),
        }
    }

    /// Runs the workload on `mem` under `sched` until every operation
    /// completes or the step budget is exhausted.
    pub fn run(
        &self,
        mem: &mut Memory,
        workload: WorkloadBuilder,
        sched: &mut dyn Scheduler,
    ) -> ExecOutcome {
        let mut history = History::new();
        let mut procs: Vec<ProcState> = workload
            .queues
            .into_iter()
            .map(|queue| ProcState {
                queue,
                current: None,
            })
            .collect();

        loop {
            let runnable: Vec<ProcessId> = procs
                .iter()
                .enumerate()
                .filter(|(_, st)| st.current.is_some() || !st.queue.is_empty())
                .map(|(i, _)| ProcessId(i))
                .collect();
            if runnable.is_empty() {
                return ExecOutcome {
                    history,
                    all_done: true,
                };
            }
            if let Some(budget) = self.max_steps {
                if mem.steps() >= budget {
                    return ExecOutcome {
                        history,
                        all_done: false,
                    };
                }
            }
            let choice = sched.pick(&runnable);
            let pid = runnable[choice];
            let st = &mut procs[pid.index()];

            if st.current.is_none() {
                let spec = st.queue.pop_front().expect("runnable implies work");
                let machine = (spec.start)();
                let invoke = mem.steps();
                history.push(OpRecord {
                    pid,
                    desc: spec.desc,
                    invoke,
                    response: None,
                    output: None,
                    steps: 0,
                });
                let hist_idx = history.len() - 1;
                if machine.is_done() {
                    let result = machine.result().expect("done machine has result");
                    let rec = &mut history.ops_mut()[hist_idx];
                    // Completion consumes a tick: a zero-step operation
                    // occupies [invoke, invoke + 1], never a zero-width
                    // interval (response == invoke would make two
                    // same-tick operations mutually precede each other
                    // and poison the checkers' precedence relation).
                    rec.response = Some(invoke + 1);
                    rec.output = Some((spec.finish)(result));
                    continue;
                }
                st.current = Some(Running {
                    machine,
                    hist_idx,
                    finish: Some(spec.finish),
                });
            }

            let running = st.current.as_mut().expect("current op present");
            let prim = running.machine.enabled().expect("running op has event");
            let resp = mem.apply(pid, prim);
            let finished = running.machine.feed(resp);
            history.ops_mut()[running.hist_idx].steps = running.machine.steps();
            if finished {
                let result = running.machine.result().expect("finished machine");
                let finish = running.finish.take().expect("finish not yet used");
                let rec = &mut history.ops_mut()[running.hist_idx];
                rec.response = Some(mem.steps());
                rec.output = Some(finish(result));
                st.current = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::OpDesc;
    use crate::{cas, done, read, RandomScheduler, RoundRobin, Solo};

    /// A CAS-loop counter increment on a single cell.
    fn incr(o: crate::ObjId) -> crate::Step {
        read(o, move |v| {
            cas(
                o,
                v,
                v + 1,
                move |ok| if ok == 1 { done(v + 1) } else { incr(o) },
            )
        })
    }

    fn workload(n: usize, o: crate::ObjId) -> WorkloadBuilder {
        let mut w = WorkloadBuilder::new(n);
        for i in 0..n {
            w.op(
                ProcessId(i),
                OpSpec::update(OpDesc::CounterIncrement, move || Machine::new(incr(o))),
            );
        }
        w
    }

    #[test]
    fn round_robin_runs_all_increments() {
        let mut mem = Memory::new();
        let o = mem.alloc(0);
        let outcome = Executor::new().run(&mut mem, workload(4, o), &mut RoundRobin::new());
        assert!(outcome.all_done);
        assert_eq!(mem.peek(o), 4);
        assert_eq!(outcome.history.len(), 4);
        assert!(outcome.history.completed().count() == 4);
    }

    #[test]
    fn solo_runs_operations_without_interference() {
        let mut mem = Memory::new();
        let o = mem.alloc(0);
        let outcome = Executor::new().run(&mut mem, workload(3, o), &mut Solo::new());
        assert!(outcome.all_done);
        assert_eq!(mem.peek(o), 3);
        // Solo: every increment succeeds on the first CAS — exactly 2 steps.
        for op in outcome.history.ops() {
            assert_eq!(op.steps, 2);
        }
    }

    #[test]
    fn random_schedules_still_count_correctly() {
        for seed in 0..16 {
            let mut mem = Memory::new();
            let o = mem.alloc(0);
            let outcome =
                Executor::new().run(&mut mem, workload(5, o), &mut RandomScheduler::new(seed));
            assert!(outcome.all_done);
            assert_eq!(mem.peek(o), 5, "seed {seed}");
            assert!(outcome.history.ops().iter().all(|op| op.is_complete()));
        }
    }

    #[test]
    fn step_budget_stops_execution() {
        let mut mem = Memory::new();
        let o = mem.alloc(0);
        let outcome =
            Executor::with_step_budget(3).run(&mut mem, workload(4, o), &mut RoundRobin::new());
        assert!(!outcome.all_done);
        assert_eq!(mem.steps(), 3);
    }

    #[test]
    fn history_intervals_nest_inside_execution() {
        let mut mem = Memory::new();
        let o = mem.alloc(0);
        let outcome = Executor::new().run(&mut mem, workload(3, o), &mut RandomScheduler::new(42));
        for op in outcome.history.ops() {
            let resp = op.response.unwrap();
            assert!(op.invoke < resp);
            assert!(resp <= mem.steps());
        }
    }

    #[test]
    fn zero_step_ops_never_get_zero_width_intervals() {
        // Two already-done machines invoked at the same tick: each must
        // be recorded with response == invoke + 1, so neither precedes
        // the other (regression: response == invoke created a mutual-
        // precedence cycle).
        let mut mem = Memory::new();
        let _ = mem.alloc(0);
        let mut w = WorkloadBuilder::new(2);
        for i in 0..2 {
            w.op(
                ProcessId(i),
                OpSpec::update(OpDesc::WriteMax(0), || Machine::completed(0)),
            );
        }
        let outcome = Executor::new().run(&mut mem, w, &mut RoundRobin::new());
        assert!(outcome.all_done);
        let ops = outcome.history.ops();
        assert_eq!(ops.len(), 2);
        for op in ops {
            assert_eq!(op.invoke, 0);
            assert_eq!(op.response, Some(1));
        }
        assert!(ops[0].overlaps(&ops[1]));
        assert!(!ops[0].precedes(&ops[1]));
        assert!(!ops[1].precedes(&ops[0]));
    }

    #[test]
    fn per_process_sequences_run_in_order() {
        // One process does two increments; they must not overlap.
        let mut mem = Memory::new();
        let o = mem.alloc(0);
        let mut w = WorkloadBuilder::new(1);
        for _ in 0..2 {
            w.op(
                ProcessId(0),
                OpSpec::update(OpDesc::CounterIncrement, move || Machine::new(incr(o))),
            );
        }
        let outcome = Executor::new().run(&mut mem, w, &mut RoundRobin::new());
        let ops = outcome.history.ops();
        assert_eq!(ops.len(), 2);
        assert!(ops[0].precedes(&ops[1]));
        assert_eq!(mem.peek(o), 2);
    }
}
