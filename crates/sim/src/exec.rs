//! The executor: runs workloads of operations under a scheduler.

use std::collections::VecDeque;
use std::fmt;

use crate::fault::{FaultClock, FaultPlan};
use crate::history::{History, OpDesc, OpOutput, OpRecord};
use crate::{Machine, Memory, ProcessId, Scheduler, Word};

type StartFn = Box<dyn FnOnce() -> Machine + Send>;
type FinishFn = Box<dyn FnOnce(Word) -> OpOutput + Send>;

/// One operation a process will perform: a description (for the history)
/// plus a constructor for its step machine.
pub struct OpSpec {
    desc: OpDesc,
    start: StartFn,
    finish: FinishFn,
}

impl fmt::Debug for OpSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OpSpec").field("desc", &self.desc).finish()
    }
}

impl OpSpec {
    /// An update-type operation (output is [`OpOutput::Unit`]).
    pub fn update(desc: OpDesc, start: impl FnOnce() -> Machine + Send + 'static) -> Self {
        OpSpec {
            desc,
            start: Box::new(start),
            finish: Box::new(|_| OpOutput::Unit),
        }
    }

    /// A read-type operation whose machine result is the returned value.
    pub fn value(desc: OpDesc, start: impl FnOnce() -> Machine + Send + 'static) -> Self {
        OpSpec {
            desc,
            start: Box::new(start),
            finish: Box::new(OpOutput::Value),
        }
    }

    /// A scan-type operation; `finish` maps the machine's word result
    /// (typically an index into a side table owned by the object) to the
    /// scanned vector.
    pub fn vector(
        desc: OpDesc,
        start: impl FnOnce() -> Machine + Send + 'static,
        finish: impl FnOnce(Word) -> Vec<Word> + Send + 'static,
    ) -> Self {
        OpSpec {
            desc,
            start: Box::new(start),
            finish: Box::new(move |w| OpOutput::Vector(finish(w))),
        }
    }

    /// The operation's description.
    pub fn desc(&self) -> &OpDesc {
        &self.desc
    }
}

/// Assigns each process the sequence of operations it will perform.
#[derive(Debug)]
pub struct WorkloadBuilder {
    queues: Vec<VecDeque<OpSpec>>,
}

impl WorkloadBuilder {
    /// A workload for `n` processes (ids `0..n`), all initially idle.
    pub fn new(n: usize) -> Self {
        WorkloadBuilder {
            queues: (0..n).map(|_| VecDeque::new()).collect(),
        }
    }

    /// Appends an operation to `pid`'s queue.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range.
    pub fn op(&mut self, pid: ProcessId, spec: OpSpec) -> &mut Self {
        self.queues[pid.index()].push_back(spec);
        self
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.queues.len()
    }
}

/// What happened when an executor ran a workload.
#[derive(Clone, Debug)]
pub struct ExecOutcome {
    /// The invocation/response history of every operation that was
    /// invoked.
    pub history: History,
    /// Whether every queued operation completed. `false` means the step
    /// budget ran out first — expected for obstruction-free algorithms
    /// under adversarial schedules — or that a crashed process left work
    /// behind (see [`ExecOutcome::crashed`]).
    pub all_done: bool,
    /// Processes the [`FaultPlan`] crashed during the run, in id order.
    /// Each crashed process's in-flight operation (if any) is *pending*
    /// in [`ExecOutcome::history`]: invoked but never responded. Empty
    /// for [`Executor::run`].
    pub crashed: Vec<ProcessId>,
}

struct Running {
    machine: Machine,
    hist_idx: usize,
    finish: Option<FinishFn>,
}

struct ProcState {
    queue: VecDeque<OpSpec>,
    current: Option<Running>,
}

/// Runs workloads step by step under a scheduler.
#[derive(Debug, Default)]
pub struct Executor {
    max_steps: Option<usize>,
}

impl Executor {
    /// An executor with no step budget (suitable for wait-free
    /// algorithms, which always terminate).
    pub fn new() -> Self {
        Executor { max_steps: None }
    }

    /// Limits the total number of shared-memory steps. Use for
    /// obstruction-free algorithms (e.g. double-collect scans), whose
    /// operations an adversarial schedule can starve forever.
    pub fn with_step_budget(max_steps: usize) -> Self {
        Executor {
            max_steps: Some(max_steps),
        }
    }

    /// Runs the workload on `mem` under `sched` until every operation
    /// completes or the step budget is exhausted.
    pub fn run(
        &self,
        mem: &mut Memory,
        workload: WorkloadBuilder,
        sched: &mut dyn Scheduler,
    ) -> ExecOutcome {
        self.run_with_faults(mem, workload, sched, &FaultPlan::none())
    }

    /// Runs the workload on `mem` under `sched` while `plan` injects
    /// crashes and stalls at the executor's scheduling points.
    ///
    /// A crashed process is never scheduled again: its in-flight
    /// operation stays *pending* in the history (the completion rule in
    /// [`lin`](crate::lin) decides whether it took effect) and its
    /// queued operations are never invoked — so `all_done` is `false`
    /// whenever a crash left work behind. A stalled process is skipped
    /// until its window of global steps elapses; if every live process
    /// is stalled at once, the earliest window is released immediately
    /// (time passes vacuously when nobody can move), so stalls never
    /// deadlock the run.
    pub fn run_with_faults(
        &self,
        mem: &mut Memory,
        workload: WorkloadBuilder,
        sched: &mut dyn Scheduler,
        plan: &FaultPlan,
    ) -> ExecOutcome {
        let mut history = History::new();
        let mut clock = FaultClock::new(plan, workload.queues.len());
        let mut procs: Vec<ProcState> = workload
            .queues
            .into_iter()
            .map(|queue| ProcState {
                queue,
                current: None,
            })
            .collect();

        loop {
            let alive: Vec<ProcessId> = procs
                .iter()
                .enumerate()
                .filter(|(_, st)| st.current.is_some() || !st.queue.is_empty())
                .map(|(i, _)| ProcessId(i))
                .filter(|&pid| !clock.is_crashed(pid))
                .collect();
            if alive.is_empty() {
                let all_done = procs
                    .iter()
                    .all(|st| st.current.is_none() && st.queue.is_empty());
                return ExecOutcome {
                    history,
                    all_done,
                    crashed: clock.crashed_processes(),
                };
            }
            if let Some(budget) = self.max_steps {
                if mem.steps() >= budget {
                    return ExecOutcome {
                        history,
                        all_done: false,
                        crashed: clock.crashed_processes(),
                    };
                }
            }
            let now = mem.steps();
            let mut runnable: Vec<ProcessId> = alive
                .iter()
                .copied()
                .filter(|&pid| !clock.is_stalled(pid, now))
                .collect();
            if runnable.is_empty() {
                let released = clock
                    .release_earliest_stall(&alive)
                    .expect("every live process is stalled");
                runnable.push(released);
            }
            let choice = sched.pick(&runnable);
            let pid = runnable[choice];
            let st = &mut procs[pid.index()];

            if st.current.is_none() {
                let spec = st.queue.pop_front().expect("runnable implies work");
                let machine = (spec.start)();
                let invoke = mem.steps();
                history.push(OpRecord {
                    pid,
                    desc: spec.desc,
                    invoke,
                    response: None,
                    output: None,
                    steps: 0,
                });
                let hist_idx = history.len() - 1;
                if machine.is_done() {
                    let result = machine.result().expect("done machine has result");
                    let rec = &mut history.ops_mut()[hist_idx];
                    // Completion consumes a tick: a zero-step operation
                    // occupies [invoke, invoke + 1], never a zero-width
                    // interval (response == invoke would make two
                    // same-tick operations mutually precede each other
                    // and poison the checkers' precedence relation).
                    rec.response = Some(invoke + 1);
                    rec.output = Some((spec.finish)(result));
                    continue;
                }
                st.current = Some(Running {
                    machine,
                    hist_idx,
                    finish: Some(spec.finish),
                });
            }

            let running = st.current.as_mut().expect("current op present");
            let prim = running.machine.enabled().expect("running op has event");
            let resp = mem.apply(pid, prim);
            clock.on_event(pid, mem.steps());
            let finished = running.machine.feed(resp);
            history.ops_mut()[running.hist_idx].steps = running.machine.steps();
            if finished {
                let result = running.machine.result().expect("finished machine");
                let finish = running.finish.take().expect("finish not yet used");
                let rec = &mut history.ops_mut()[running.hist_idx];
                rec.response = Some(mem.steps());
                rec.output = Some(finish(result));
                st.current = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::OpDesc;
    use crate::{cas, done, read, RandomScheduler, RoundRobin, Solo};

    /// A CAS-loop counter increment on a single cell.
    fn incr(o: crate::ObjId) -> crate::Step {
        read(o, move |v| {
            cas(
                o,
                v,
                v + 1,
                move |ok| if ok == 1 { done(v + 1) } else { incr(o) },
            )
        })
    }

    fn workload(n: usize, o: crate::ObjId) -> WorkloadBuilder {
        let mut w = WorkloadBuilder::new(n);
        for i in 0..n {
            w.op(
                ProcessId(i),
                OpSpec::update(OpDesc::CounterIncrement, move || Machine::new(incr(o))),
            );
        }
        w
    }

    #[test]
    fn round_robin_runs_all_increments() {
        let mut mem = Memory::new();
        let o = mem.alloc(0);
        let outcome = Executor::new().run(&mut mem, workload(4, o), &mut RoundRobin::new());
        assert!(outcome.all_done);
        assert_eq!(mem.peek(o), 4);
        assert_eq!(outcome.history.len(), 4);
        assert!(outcome.history.completed().count() == 4);
    }

    #[test]
    fn solo_runs_operations_without_interference() {
        let mut mem = Memory::new();
        let o = mem.alloc(0);
        let outcome = Executor::new().run(&mut mem, workload(3, o), &mut Solo::new());
        assert!(outcome.all_done);
        assert_eq!(mem.peek(o), 3);
        // Solo: every increment succeeds on the first CAS — exactly 2 steps.
        for op in outcome.history.ops() {
            assert_eq!(op.steps, 2);
        }
    }

    #[test]
    fn random_schedules_still_count_correctly() {
        for seed in 0..16 {
            let mut mem = Memory::new();
            let o = mem.alloc(0);
            let outcome =
                Executor::new().run(&mut mem, workload(5, o), &mut RandomScheduler::new(seed));
            assert!(outcome.all_done);
            assert_eq!(mem.peek(o), 5, "seed {seed}");
            assert!(outcome.history.ops().iter().all(|op| op.is_complete()));
        }
    }

    #[test]
    fn step_budget_stops_execution() {
        let mut mem = Memory::new();
        let o = mem.alloc(0);
        let outcome =
            Executor::with_step_budget(3).run(&mut mem, workload(4, o), &mut RoundRobin::new());
        assert!(!outcome.all_done);
        assert_eq!(mem.steps(), 3);
    }

    #[test]
    fn history_intervals_nest_inside_execution() {
        let mut mem = Memory::new();
        let o = mem.alloc(0);
        let outcome = Executor::new().run(&mut mem, workload(3, o), &mut RandomScheduler::new(42));
        // Iterate completed() rather than unwrapping responses: the same
        // assertion must hold verbatim for crash-truncated runs, where
        // some operations are pending.
        let mut seen = 0;
        for op in outcome.history.completed() {
            let resp = op.response.expect("completed() yields responded ops");
            assert!(op.invoke < resp);
            assert!(resp <= mem.steps());
            seen += 1;
        }
        assert_eq!(seen, 3);
    }

    #[test]
    fn zero_step_ops_never_get_zero_width_intervals() {
        // Two already-done machines invoked at the same tick: each must
        // be recorded with response == invoke + 1, so neither precedes
        // the other (regression: response == invoke created a mutual-
        // precedence cycle).
        let mut mem = Memory::new();
        let _ = mem.alloc(0);
        let mut w = WorkloadBuilder::new(2);
        for i in 0..2 {
            w.op(
                ProcessId(i),
                OpSpec::update(OpDesc::WriteMax(0), || Machine::completed(0)),
            );
        }
        let outcome = Executor::new().run(&mut mem, w, &mut RoundRobin::new());
        assert!(outcome.all_done);
        let ops = outcome.history.ops();
        assert_eq!(ops.len(), 2);
        for op in ops {
            assert_eq!(op.invoke, 0);
            assert_eq!(op.response, Some(1));
        }
        assert!(ops[0].overlaps(&ops[1]));
        assert!(!ops[0].precedes(&ops[1]));
        assert!(!ops[1].precedes(&ops[0]));
    }

    #[test]
    fn crashed_process_leaves_a_pending_op() {
        // p1 crashes after its first event: its read happened, the CAS
        // never will. The op must stay pending and the run must report
        // unfinished work.
        let mut mem = Memory::new();
        let o = mem.alloc(0);
        let plan = FaultPlan::new().crash(ProcessId(1), 1);
        let outcome = Executor::new().run_with_faults(
            &mut mem,
            workload(2, o),
            &mut RoundRobin::new(),
            &plan,
        );
        assert!(!outcome.all_done);
        assert_eq!(outcome.crashed, vec![ProcessId(1)]);
        assert_eq!(mem.peek(o), 1); // only p0's increment landed
        let ops = outcome.history.ops();
        assert_eq!(ops.len(), 2);
        let pending: Vec<_> = ops.iter().filter(|op| !op.is_complete()).collect();
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].pid, ProcessId(1));
        assert!(pending[0].output.is_none());
    }

    #[test]
    fn crash_before_first_event_never_invokes() {
        let mut mem = Memory::new();
        let o = mem.alloc(0);
        let plan = FaultPlan::new().crash(ProcessId(0), 0);
        let outcome = Executor::new().run_with_faults(
            &mut mem,
            workload(3, o),
            &mut RoundRobin::new(),
            &plan,
        );
        assert!(!outcome.all_done);
        assert_eq!(outcome.crashed, vec![ProcessId(0)]);
        // p0's operation was never invoked, so it is absent — not pending.
        assert_eq!(outcome.history.len(), 2);
        assert!(outcome.history.ops().iter().all(|op| op.is_complete()));
        assert_eq!(mem.peek(o), 2);
    }

    #[test]
    fn stalls_delay_but_never_lose_operations() {
        let mut mem = Memory::new();
        let o = mem.alloc(0);
        let plan = FaultPlan::new()
            .stall(ProcessId(0), 1, 8)
            .stall(ProcessId(2), 0, 3);
        let outcome = Executor::new().run_with_faults(
            &mut mem,
            workload(3, o),
            &mut RoundRobin::new(),
            &plan,
        );
        assert!(outcome.all_done);
        assert!(outcome.crashed.is_empty());
        assert_eq!(mem.peek(o), 3);
        assert!(outcome.history.ops().iter().all(|op| op.is_complete()));
    }

    #[test]
    fn mutual_stalls_release_instead_of_deadlocking() {
        // Every process stalled at once: the earliest window must be
        // released so the run terminates.
        let mut mem = Memory::new();
        let o = mem.alloc(0);
        let plan =
            FaultPlan::new()
                .stall(ProcessId(0), 0, 1_000_000)
                .stall(ProcessId(1), 0, 2_000_000);
        let outcome = Executor::new().run_with_faults(
            &mut mem,
            workload(2, o),
            &mut RoundRobin::new(),
            &plan,
        );
        assert!(outcome.all_done);
        assert_eq!(mem.peek(o), 2);
    }

    #[test]
    fn empty_plan_matches_plain_run_exactly() {
        let run = |faulty: bool| {
            let mut mem = Memory::new();
            let o = mem.alloc(0);
            let mut sched = RandomScheduler::new(9);
            let outcome = if faulty {
                Executor::new().run_with_faults(
                    &mut mem,
                    workload(4, o),
                    &mut sched,
                    &FaultPlan::none(),
                )
            } else {
                Executor::new().run(&mut mem, workload(4, o), &mut sched)
            };
            format!("{:?}", outcome.history)
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn per_process_sequences_run_in_order() {
        // One process does two increments; they must not overlap.
        let mut mem = Memory::new();
        let o = mem.alloc(0);
        let mut w = WorkloadBuilder::new(1);
        for _ in 0..2 {
            w.op(
                ProcessId(0),
                OpSpec::update(OpDesc::CounterIncrement, move || Machine::new(incr(o))),
            );
        }
        let outcome = Executor::new().run(&mut mem, w, &mut RoundRobin::new());
        let ops = outcome.history.ops();
        assert_eq!(ops.len(), 2);
        assert!(ops[0].precedes(&ops[1]));
        assert_eq!(mem.peek(o), 2);
    }
}
