//! Schedulers: who moves next.
//!
//! The model is asynchronous — an adversarial scheduler interleaves the
//! enabled events of active processes arbitrarily. The executor asks a
//! [`Scheduler`] to pick among the currently runnable processes at every
//! step. Deterministic schedulers (given the same seed) reproduce the
//! same execution, which keeps every experiment in this repository
//! reproducible.

use crate::rng::SplitMix64;
use crate::ProcessId;

/// Picks the next process to take a step.
pub trait Scheduler {
    /// Chooses an index into `runnable` (the processes that currently
    /// have an enabled event). `runnable` is never empty and is sorted by
    /// process id.
    fn pick(&mut self, runnable: &[ProcessId]) -> usize;
}

/// Cycles through processes in id order, giving each one step in turn.
///
/// Round-robin is the "fair" schedule; under it every wait-free operation
/// completes in its worst-case step bound.
#[derive(Clone, Debug, Default)]
pub struct RoundRobin {
    last: Option<ProcessId>,
}

impl RoundRobin {
    /// Creates a round-robin scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for RoundRobin {
    fn pick(&mut self, runnable: &[ProcessId]) -> usize {
        let idx = match self.last {
            None => 0,
            Some(last) => runnable.iter().position(|&p| p > last).unwrap_or_default(),
        };
        self.last = Some(runnable[idx]);
        idx
    }
}

/// Chooses uniformly at random among runnable processes, deterministically
/// from a seed.
///
/// Random schedules are the workhorse of the linearizability test suite:
/// they explore interleavings that neither round-robin nor solo runs
/// reach, and the seed makes failures replayable.
#[derive(Clone, Debug)]
pub struct RandomScheduler {
    rng: SplitMix64,
}

impl RandomScheduler {
    /// Creates a random scheduler from a seed.
    pub fn new(seed: u64) -> Self {
        RandomScheduler {
            rng: SplitMix64::new(seed),
        }
    }
}

impl Scheduler for RandomScheduler {
    fn pick(&mut self, runnable: &[ProcessId]) -> usize {
        self.rng.gen_index(runnable.len())
    }
}

/// Runs the lowest-id runnable process until it finishes, then the next —
/// i.e. every operation runs *solo*.
///
/// Solo runs are how obstruction-free progress is exercised, and how
/// *solo step complexity* (the measure in the paper's theorems) is
/// measured: an operation's solo step count is its step complexity
/// without interference.
#[derive(Clone, Copy, Debug, Default)]
pub struct Solo;

impl Solo {
    /// Creates a solo scheduler.
    pub fn new() -> Self {
        Solo
    }
}

impl Scheduler for Solo {
    fn pick(&mut self, _runnable: &[ProcessId]) -> usize {
        0
    }
}

/// Replays a fixed sequence of process choices — the scheduler form of a
/// hand-crafted adversarial schedule (failure injection, regression
/// schedules, paper counterexamples).
///
/// Each entry names the process that should move next. If the named
/// process is not runnable at that point (already finished), the entry
/// is skipped. When the script runs out, scheduling falls back to
/// round-robin so executions always drain.
#[derive(Clone, Debug)]
pub struct ScriptedScheduler {
    script: std::collections::VecDeque<ProcessId>,
    fallback: RoundRobin,
}

impl ScriptedScheduler {
    /// Creates a scheduler from the given process order.
    pub fn new(script: impl IntoIterator<Item = ProcessId>) -> Self {
        ScriptedScheduler {
            script: script.into_iter().collect(),
            fallback: RoundRobin::new(),
        }
    }

    /// Number of scripted choices remaining.
    pub fn remaining(&self) -> usize {
        self.script.len()
    }
}

impl Scheduler for ScriptedScheduler {
    fn pick(&mut self, runnable: &[ProcessId]) -> usize {
        while let Some(next) = self.script.pop_front() {
            if let Some(idx) = runnable.iter().position(|&p| p == next) {
                return idx;
            }
            // Named process is not runnable here; skip the entry.
        }
        self.fallback.pick(runnable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pids(ids: &[usize]) -> Vec<ProcessId> {
        ids.iter().map(|&i| ProcessId(i)).collect()
    }

    #[test]
    fn round_robin_cycles_in_id_order() {
        let mut rr = RoundRobin::new();
        let r = pids(&[0, 1, 2]);
        assert_eq!(rr.pick(&r), 0);
        assert_eq!(rr.pick(&r), 1);
        assert_eq!(rr.pick(&r), 2);
        assert_eq!(rr.pick(&r), 0);
    }

    #[test]
    fn round_robin_skips_finished_processes() {
        let mut rr = RoundRobin::new();
        assert_eq!(rr.pick(&pids(&[0, 1, 2])), 0);
        // p1 finished; after p0 the next runnable above p0 is p2.
        assert_eq!(rr.pick(&pids(&[0, 2])), 1);
        // wrap around
        assert_eq!(rr.pick(&pids(&[0, 2])), 0);
    }

    #[test]
    fn random_scheduler_is_deterministic_per_seed() {
        let r = pids(&[0, 1, 2, 3]);
        let picks1: Vec<usize> = {
            let mut s = RandomScheduler::new(7);
            (0..32).map(|_| s.pick(&r)).collect()
        };
        let picks2: Vec<usize> = {
            let mut s = RandomScheduler::new(7);
            (0..32).map(|_| s.pick(&r)).collect()
        };
        assert_eq!(picks1, picks2);
        let picks3: Vec<usize> = {
            let mut s = RandomScheduler::new(8);
            (0..32).map(|_| s.pick(&r)).collect()
        };
        assert_ne!(picks1, picks3, "different seeds should differ");
    }

    #[test]
    fn solo_always_picks_first() {
        let mut s = Solo::new();
        assert_eq!(s.pick(&pids(&[2, 5])), 0);
        assert_eq!(s.pick(&pids(&[5])), 0);
    }

    #[test]
    fn scripted_scheduler_follows_the_script() {
        let mut s = ScriptedScheduler::new([ProcessId(2), ProcessId(0), ProcessId(1)]);
        let r = pids(&[0, 1, 2]);
        assert_eq!(s.pick(&r), 2);
        assert_eq!(s.pick(&r), 0);
        assert_eq!(s.pick(&r), 1);
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn scripted_scheduler_skips_unrunnable_entries() {
        let mut s = ScriptedScheduler::new([ProcessId(7), ProcessId(1)]);
        let r = pids(&[0, 1]);
        // p7 is not runnable: skip to p1.
        assert_eq!(s.pick(&r), 1);
    }

    #[test]
    fn scripted_scheduler_falls_back_to_round_robin() {
        let mut s = ScriptedScheduler::new([ProcessId(1)]);
        let r = pids(&[0, 1]);
        assert_eq!(s.pick(&r), 1);
        // Script exhausted: round-robin continues after p1 -> p0.
        assert_eq!(s.pick(&r), 0);
        assert_eq!(s.pick(&r), 1);
    }
}
