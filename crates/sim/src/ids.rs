//! Identifier newtypes for processes and base objects.

use std::fmt;

/// Identifies one of the `N` processes sharing an implementation.
///
/// Process identifiers are dense indices `0..N`. The paper names processes
/// `p1..pN`; we use zero-based indices, so the paper's `p_i` is
/// `ProcessId(i - 1)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(pub usize);

impl ProcessId {
    /// Returns the zero-based index of this process.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Debug for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<usize> for ProcessId {
    fn from(i: usize) -> Self {
        ProcessId(i)
    }
}

/// Identifies a base object inside a [`Memory`](crate::Memory).
///
/// Object identifiers are handed out by [`Memory::alloc`](crate::Memory::alloc)
/// and are valid only for the memory that allocated them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjId(pub(crate) usize);

impl ObjId {
    /// Returns the dense index of this object within its memory.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }

    /// Reconstructs an id from a dense index.
    ///
    /// Intended for analyzers that iterate over every object of a log
    /// (object ids are dense, starting at 0); the id is only meaningful
    /// against the memory that allocated that index.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        ObjId(index)
    }
}

impl fmt::Debug for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_formats_like_the_paper() {
        assert_eq!(format!("{}", ProcessId(3)), "p3");
        assert_eq!(format!("{:?}", ProcessId(0)), "p0");
    }

    #[test]
    fn process_id_orders_by_index() {
        assert!(ProcessId(1) < ProcessId(2));
        assert_eq!(ProcessId::from(7).index(), 7);
    }

    #[test]
    fn obj_id_formats_with_index() {
        assert_eq!(format!("{}", ObjId(5)), "o5");
    }
}
