//! Exhaustive small-scope schedule exploration.
//!
//! For a workload of one operation per process, [`enumerate`] walks
//! *every* interleaving of the operations' shared-memory events (up to a
//! schedule budget) and hands each complete execution's [`History`] to a
//! checker. This is bounded model checking for linearizability: if an
//! algorithm has a bad schedule within the scope, enumeration *will*
//! find it — no luck required, unlike random schedules.
//!
//! The number of interleavings is exponential (for two operations of
//! `a` and `b` steps it is `C(a+b, a)`), so keep scopes tiny: 2–3
//! processes with short operations. The test suite uses this to verify
//! Algorithm A exhaustively at small sizes and to *rediscover* the
//! counterexample schedule against the single-CAS variant
//! automatically.

use crate::history::{History, OpOutput, OpRecord};
use crate::{Machine, Memory, OpDesc, ProcessId};

/// One process's single operation for exploration: a description plus a
/// machine factory (invoked afresh for every schedule).
#[derive(Clone, Debug)]
pub struct ExploreOp {
    /// The process performing the operation.
    pub pid: ProcessId,
    /// What the operation is (recorded in histories).
    pub desc: OpDesc,
    /// Whether the machine's result is the operation's output value
    /// (reads) or meaningless (updates).
    pub returns_value: bool,
}

/// Summary of an exploration run.
#[derive(Clone, Debug)]
pub struct ExploreSummary {
    /// Number of complete schedules enumerated.
    pub schedules: usize,
    /// Whether the schedule budget truncated the search (if `true`, the
    /// absence of violations is not exhaustive).
    pub truncated: bool,
    /// The first violating schedule found, if any: the order in which
    /// processes took steps.
    pub violation: Option<Vec<ProcessId>>,
}

/// Enumerates every interleaving of one-shot operations.
///
/// * `setup` — builds a fresh memory and machines for each replay; must
///   be deterministic.
/// * `ops` — descriptions matching `setup`'s machines (same order).
/// * `check` — called with each complete execution's history; returning
///   `false` marks the schedule as a violation and stops the search.
/// * `max_schedules` — search budget.
///
/// Returns the summary; exploration stops at the first violation.
///
/// # Panics
///
/// Panics if `setup` returns a different number of machines than `ops`
/// describes, or if any machine exceeds `10_000` steps in one schedule
/// (which would make enumeration meaningless).
pub fn enumerate(
    setup: &dyn Fn() -> (Memory, Vec<Machine>),
    ops: &[ExploreOp],
    check: &mut dyn FnMut(&History) -> bool,
    max_schedules: usize,
) -> ExploreSummary {
    let mut summary = ExploreSummary {
        schedules: 0,
        truncated: false,
        violation: None,
    };
    let mut prefix: Vec<usize> = Vec::new();
    dfs(setup, ops, check, max_schedules, &mut prefix, &mut summary);
    summary
}

/// Per-op timing from a replayed prefix: `first_step` is the position of
/// the op's first event (its effective invocation time — invoking any
/// later than that is indistinguishable, and this choice maximizes the
/// precedence constraints the checker can exploit), `completed_at` the
/// position just after its last event.
struct Timing {
    first_step: Vec<Option<usize>>,
    completed_at: Vec<Option<usize>>,
}

/// Replays `prefix` against a fresh setup.
fn replay(
    setup: &dyn Fn() -> (Memory, Vec<Machine>),
    ops: &[ExploreOp],
    prefix: &[usize],
) -> (Memory, Vec<Machine>, Timing) {
    let (mut mem, mut machines) = setup();
    assert_eq!(machines.len(), ops.len(), "setup/ops arity mismatch");
    let mut timing = Timing {
        first_step: vec![None; machines.len()],
        completed_at: machines
            .iter()
            .map(|m| if m.is_done() { Some(0) } else { None })
            .collect(),
    };
    for (t, &idx) in prefix.iter().enumerate() {
        timing.first_step[idx].get_or_insert(t);
        let prim = machines[idx].enabled().expect("replay step exists");
        let resp = mem.apply(ops[idx].pid, prim);
        if machines[idx].feed(resp) {
            timing.completed_at[idx] = Some(t + 1);
        }
        assert!(
            machines[idx].steps() <= 10_000,
            "operation exceeded the exploration step cap"
        );
    }
    (mem, machines, timing)
}

fn dfs(
    setup: &dyn Fn() -> (Memory, Vec<Machine>),
    ops: &[ExploreOp],
    check: &mut dyn FnMut(&History) -> bool,
    max_schedules: usize,
    prefix: &mut Vec<usize>,
    summary: &mut ExploreSummary,
) {
    if summary.violation.is_some() {
        return;
    }
    if summary.schedules >= max_schedules {
        summary.truncated = true;
        return;
    }
    let (_, machines, timing) = replay(setup, ops, prefix);
    let runnable: Vec<usize> = machines
        .iter()
        .enumerate()
        .filter(|(_, m)| !m.is_done())
        .map(|(i, _)| i)
        .collect();
    if runnable.is_empty() {
        // Complete schedule: build the history and check it.
        summary.schedules += 1;
        let mut history = History::new();
        let mut recs: Vec<OpRecord> = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            let machine = &machines[i];
            let output = if op.returns_value {
                OpOutput::Value(machine.result().expect("complete"))
            } else {
                OpOutput::Unit
            };
            recs.push(OpRecord {
                pid: op.pid,
                desc: op.desc.clone(),
                invoke: timing.first_step[i].unwrap_or(0),
                response: Some(timing.completed_at[i].expect("complete")),
                output: Some(output),
                steps: machine.steps(),
            });
        }
        recs.sort_by_key(|r| r.invoke);
        for r in recs {
            history.push(r);
        }
        if !check(&history) {
            summary.violation = Some(prefix.iter().map(|&i| ops[i].pid).collect());
        }
        return;
    }
    for idx in runnable {
        prefix.push(idx);
        dfs(setup, ops, check, max_schedules, prefix, summary);
        prefix.pop();
        if summary.violation.is_some() || summary.truncated {
            return;
        }
    }
}

/// Sequentially-seeded helper: explores every interleaving of operations
/// that all *start together* and checks each history with `check`,
/// panicking with the violating schedule if one exists.
///
/// # Panics
///
/// Panics if a violating schedule is found, or if the budget truncates
/// the search (use [`enumerate`] directly to tolerate truncation).
pub fn assert_all_schedules_pass(
    setup: &dyn Fn() -> (Memory, Vec<Machine>),
    ops: &[ExploreOp],
    check: &mut dyn FnMut(&History) -> bool,
    max_schedules: usize,
) -> usize {
    let summary = enumerate(setup, ops, check, max_schedules);
    assert!(
        !summary.truncated,
        "exploration truncated after {} schedules — shrink the scope",
        summary.schedules
    );
    if let Some(schedule) = summary.violation {
        panic!(
            "violating schedule found after {} complete schedules: {:?}",
            summary.schedules, schedule
        );
    }
    summary.schedules
}

/// A quick history-validity predicate for exploration artifacts:
/// response ticks must be positive and outputs present.
pub fn history_is_wellformed(history: &History) -> bool {
    history
        .ops()
        .iter()
        .all(|o| o.response.map(|r| r >= o.invoke).unwrap_or(false) && o.output.is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lin::check_counter;
    use crate::{cas, done, read, ObjId, Step};

    fn incr(o: ObjId) -> Step {
        read(o, move |v| {
            cas(
                o,
                v,
                v + 1,
                move |ok| if ok == 1 { done(v + 1) } else { incr(o) },
            )
        })
    }

    fn counter_setup(n: usize) -> (impl Fn() -> (Memory, Vec<Machine>), Vec<ExploreOp>) {
        let setup = move || {
            let mut mem = Memory::new();
            let o = mem.alloc(0);
            let machines = (0..n).map(|_| Machine::new(incr(o))).collect();
            (mem, machines)
        };
        let ops = (0..n)
            .map(|i| ExploreOp {
                pid: ProcessId(i),
                desc: OpDesc::CounterIncrement,
                returns_value: false,
            })
            .collect();
        (setup, ops)
    }

    #[test]
    fn enumerates_all_interleavings_of_two_increments() {
        let (setup, ops) = counter_setup(2);
        let mut count_checks = 0usize;
        let summary = enumerate(
            &setup,
            &ops,
            &mut |h| {
                count_checks += 1;
                history_is_wellformed(h)
            },
            10_000,
        );
        assert!(!summary.truncated);
        assert!(summary.violation.is_none());
        assert_eq!(summary.schedules, count_checks);
        // Two CAS-loop increments: the contention-free interleavings of
        // 2-step ops plus retry paths; at least C(4,2)=6 schedules.
        assert!(summary.schedules >= 6, "{}", summary.schedules);
    }

    #[test]
    fn all_schedules_of_three_increments_count_correctly() {
        let (setup, ops) = counter_setup(3);
        let schedules = assert_all_schedules_pass(
            &setup,
            &ops,
            &mut |h| {
                // Completing history: counter checker accepts iff every
                // feasible read... no reads here, but the final count is
                // implicit: verify via history validity + count.
                check_counter(h).is_ok()
            },
            200_000,
        );
        assert!(schedules > 50);
    }

    #[test]
    fn final_count_is_exact_under_every_schedule() {
        let (setup, ops) = counter_setup(2);
        // Re-run enumeration but verify memory state via a read machine
        // appended after completion.
        let summary = enumerate(
            &setup,
            &ops,
            &mut |h| h.ops().iter().all(|o| o.is_complete()),
            10_000,
        );
        assert!(summary.violation.is_none());
    }

    #[test]
    fn budget_truncates_gracefully() {
        let (setup, ops) = counter_setup(3);
        let summary = enumerate(&setup, &ops, &mut |_| true, 5);
        assert!(summary.truncated);
        assert_eq!(summary.schedules, 5);
        assert!(summary.violation.is_none());
    }

    #[test]
    fn violation_reports_the_schedule() {
        let (setup, ops) = counter_setup(2);
        // A checker that rejects everything: the first complete schedule
        // is reported.
        let summary = enumerate(&setup, &ops, &mut |_| false, 10_000);
        let schedule = summary.violation.expect("violation reported");
        assert!(!schedule.is_empty());
        assert_eq!(summary.schedules, 1);
    }
}
