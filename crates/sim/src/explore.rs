//! Exhaustive small-scope schedule exploration.
//!
//! For a workload of one operation per process, [`explore`] walks every
//! interleaving of the operations' shared-memory events (up to a
//! schedule budget) and hands each complete execution's [`History`] to a
//! checker. This is bounded model checking for linearizability: if an
//! algorithm has a bad schedule within the scope, enumeration *will*
//! find it — no luck required, unlike random schedules.
//!
//! Two things keep the search scalable:
//!
//! * **Incremental execution.** The DFS never replays a prefix. Taking a
//!   step applies one primitive; backtracking undoes it with
//!   [`Memory::undo_last`] (`O(1)` — each [`Event`](crate::Event) logs
//!   the overwritten value) and rebuilds only the stepped machine by
//!   re-feeding its recorded responses into a fresh machine from a pool
//!   (continuations are `FnOnce`, so a consumed machine cannot be
//!   rewound directly). Legacy full-prefix replay cost
//!   `O(tree-size × depth)` memory events; the incremental scheme costs
//!   `O(tree-size)` plus the (per-process, usually much shorter) machine
//!   re-feeds.
//!
//! * **Independence-based pruning** (sleep sets, Godefroid-style),
//!   enabled via [`ExploreConfig::prune`]. Two steps by different
//!   processes are *independent* when they commute as memory actions
//!   (different cells, or both reads) **and** neither is an operation
//!   boundary adjacent to the other's boundary (see below). Schedules
//!   that differ only by swapping adjacent independent steps produce
//!   identical histories, so only one representative per equivalence
//!   class is explored. The opt-out (`prune: false`, the [`enumerate`]
//!   default) enumerates every interleaving — tests use it to prove the
//!   pruned search reaches the same verdicts and histories.
//!
//! # Why pruning is sound here
//!
//! A checker's verdict depends only on (a) each operation's output and
//! (b) the precedence relation `a.response <= b.invoke` between
//! operations (every built-in checker condition is expressible in those
//! terms). Swapping two adjacent steps that commute as memory actions
//! leaves every response — and hence every output and every machine's
//! subsequent behavior — unchanged. It can shift `invoke`/`response`
//! *ticks* by one, which changes the precedence relation only when the
//! earlier step is the **last** step of its operation and the later step
//! is the **first** step of its operation (completion-before-invocation
//! is exactly what `precedes` observes). The dependence relation
//! therefore additionally marks such boundary pairs dependent, which
//! restores history equality for all remaining swaps. Consequence: with
//! pruning enabled the checker must not distinguish histories beyond
//! outputs + precedence (raw-tick inspection may differ between
//! representatives); all checkers in [`crate::lin`] qualify.
//!
//! The number of interleavings is exponential (for two operations of
//! `a` and `b` steps it is `C(a+b, a)`); pruning typically removes the
//! commuting bulk, extending exhaustive scopes to 3–4 processes with
//! realistic operations (see `tests/exhaustive.rs` and EXPERIMENTS.md
//! § W5). The test suite uses this to verify Algorithm A exhaustively at
//! small sizes and to *rediscover* the counterexample schedule against
//! the single-CAS variant automatically — with pruning on and off.
//!
//! # Crash exploration
//!
//! [`ExploreConfig::max_crashes`] additionally enumerates schedules in
//! which up to `k` operations crash — halt permanently right after one
//! of their own events, leaving a *pending* operation (no response, no
//! output) in the history. Because a crash's only observable effect is
//! which of the process's events happened, crashing immediately after
//! each event is a canonical form covering every placement of the crash
//! in the global schedule. This turns the hand-crafted failure-injection
//! schedules of `tests/failure_injection.rs` into exhaustive
//! crash-tolerance proofs within the scope: every 1-crash schedule of
//! Algorithm A at N=4 is checked, and the single-CAS variant's
//! lost-write bug is found automatically (see
//! `tests/crash_exploration.rs` and EXPERIMENTS.md § W6).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use crate::history::{History, OpOutput, OpRecord};
use crate::{Machine, Memory, ObjId, OpDesc, ProcessId, Word};

/// Hard per-operation step cap: a machine exceeding this many steps in
/// one schedule would make enumeration meaningless.
const STEP_CAP: usize = 10_000;

/// One process's single operation for exploration: a description plus a
/// machine factory (invoked afresh for every schedule).
#[derive(Clone, Debug)]
pub struct ExploreOp {
    /// The process performing the operation.
    pub pid: ProcessId,
    /// What the operation is (recorded in histories).
    pub desc: OpDesc,
    /// Whether the machine's result is the operation's output value
    /// (reads) or meaningless (updates).
    pub returns_value: bool,
}

/// Search configuration for [`explore`].
#[derive(Clone, Copy, Debug)]
pub struct ExploreConfig {
    /// Schedule budget: the search stops (and reports
    /// [`ExploreSummary::truncated`]) once this many complete schedules
    /// have been checked and more remain.
    pub max_schedules: usize,
    /// Whether to prune trace-equivalent interleavings via sleep sets.
    /// Sound for checkers that depend only on operation outputs and the
    /// precedence relation (all of [`crate::lin`]); disable to enumerate
    /// every interleaving.
    pub prune: bool,
    /// Crash budget: in addition to plain interleavings, explore every
    /// schedule in which up to this many operations *crash* — halt
    /// permanently — right after one of their own events, leaving the
    /// operation pending in the history (no response, no output). `0`
    /// (the default) explores crash-free schedules only.
    ///
    /// Crash points are canonical: a process's crash is observable only
    /// through which of its own events happened, so crashing it
    /// immediately after its k-th event (for every `k ≥ 1`) covers every
    /// placement of the crash in the global schedule. Crashing *before*
    /// the first event is the same as exploring the scope without that
    /// operation, so it is not enumerated — cover it with a smaller
    /// scope if needed.
    ///
    /// Checkers must handle pending operations per the completion rule
    /// (all of [`crate::lin`] do).
    pub max_crashes: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_schedules: 1_000_000,
            prune: true,
            max_crashes: 0,
        }
    }
}

/// Counters describing how much work an exploration did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Complete schedules checked (same as [`ExploreSummary::schedules`]).
    pub schedules: usize,
    /// Branches skipped because the process was in the sleep set (each
    /// skip removes an entire subtree of interleavings).
    pub pruned_branches: usize,
    /// Shared-memory events actually executed during the search.
    pub executed_steps: u64,
    /// Memory events a full-prefix-replay explorer would have executed,
    /// minus this search's actual cost (forward steps are counted by
    /// `executed_steps`; machine re-feeds on backtrack are subtracted
    /// here). A direct measure of what snapshot/restore saves.
    pub replay_steps_saved: u64,
    /// Deepest DFS prefix reached (= longest schedule length).
    pub peak_depth: usize,
    /// Crash branches taken: DFS nodes where an operation was crashed
    /// right after one of its events ([`ExploreConfig::max_crashes`]).
    pub crash_branches: usize,
    /// `read` primitives among [`executed_steps`](ExploreStats::executed_steps).
    ///
    /// Like `executed_steps`, the primitive-kind tallies count forward
    /// executions only and never decrement on backtrack, so
    /// `reads + writes + cas_ok + cas_fail == executed_steps`.
    pub reads: u64,
    /// `write` primitives among executed steps.
    pub writes: u64,
    /// Successful CAS primitives among executed steps.
    pub cas_ok: u64,
    /// Failed CAS primitives among executed steps.
    pub cas_fail: u64,
}

/// Summary of an exploration run.
#[derive(Clone, Debug)]
pub struct ExploreSummary {
    /// Number of complete schedules enumerated.
    pub schedules: usize,
    /// Whether the schedule budget truncated the search (if `true`, the
    /// absence of violations is not exhaustive).
    pub truncated: bool,
    /// The first violating schedule found, if any: the order in which
    /// processes took steps.
    pub violation: Option<Vec<ProcessId>>,
    /// Processes that were crashed in the violating schedule (each after
    /// its last step in [`ExploreSummary::violation`]). Empty when the
    /// violation needed no crash, or when there is no violation.
    pub violation_crashed: Vec<ProcessId>,
    /// Work counters for the run.
    pub stats: ExploreStats,
}

/// What the explorer remembers about one executed step, for undo and for
/// the independence relation.
#[derive(Clone, Copy, Debug)]
struct StepInfo {
    /// Index (into `ops`) of the process that stepped.
    idx: usize,
    /// The cell the primitive accessed.
    obj: ObjId,
    /// Whether the primitive was a read.
    is_read: bool,
    /// Whether this was the operation's first step.
    was_first: bool,
    /// Whether this step completed the operation.
    was_last: bool,
}

/// Memory-level commutativity: steps on different cells always commute;
/// steps on the same cell commute only if both are reads.
fn commutes(a_obj: ObjId, a_is_read: bool, b: &StepInfo) -> bool {
    a_obj != b.obj || (a_is_read && b.is_read)
}

/// Full independence between two *executed* steps (both boundary flags
/// known): they commute as memory actions and neither's last step
/// immediately precedes the other's first (which is the one swap that
/// can change the precedence relation — see the module docs).
fn independent(a: &StepInfo, b: &StepInfo) -> bool {
    commutes(a.obj, a.is_read, b) && !(a.was_last && b.was_first) && !(b.was_last && a.was_first)
}

/// Cross-worker coordination for [`explore_parallel`]: the global
/// schedule count (shared budget) and a stop flag raised on the first
/// violation or on budget truncation. All accesses are `Relaxed` —
/// the counters gate *work*, never memory visibility (each worker owns
/// its memory and machines outright).
struct SharedSearch {
    schedules: AtomicUsize,
    stop: AtomicBool,
    truncated: AtomicBool,
}

struct Explorer<'a> {
    setup: &'a dyn Fn() -> (Memory, Vec<Machine>),
    ops: &'a [ExploreOp],
    check: &'a mut dyn FnMut(&History) -> bool,
    cfg: ExploreConfig,
    /// Present only under [`explore_parallel`]: the shared budget and
    /// stop flag. `None` keeps the sequential search byte-identical.
    shared: Option<&'a SharedSearch>,
    /// The one memory being mutated and un-mutated in place.
    mem: Memory,
    /// Event-log length when exploration started (setups may pre-run
    /// seed operations; those events are never undone).
    base: usize,
    /// Current machine state per operation.
    machines: Vec<Machine>,
    /// Responses fed to each machine so far, for rebuild on backtrack.
    resp_log: Vec<Vec<Word>>,
    /// Pool of fresh (never-stepped) machines per operation, refilled by
    /// extra `setup` calls.
    spare: Vec<Vec<Machine>>,
    /// Tick of each operation's first event, if it has stepped.
    first_step: Vec<Option<usize>>,
    /// Tick just after each operation's last event, if it completed by
    /// stepping (zero-step operations stay `None`).
    completed_at: Vec<Option<usize>>,
    /// The current schedule prefix (operation indices).
    prefix: Vec<usize>,
    /// Bitmask of operations crashed on the current DFS path.
    crashed: u64,
    /// Remaining crash budget on the current DFS path.
    crashes_left: usize,
    schedules: usize,
    truncated: bool,
    violation: Option<Vec<ProcessId>>,
    violation_crashed: Vec<ProcessId>,
    stats: ExploreStats,
}

impl Explorer<'_> {
    /// Executes one step of operation `idx` against `mem`, recording
    /// everything needed to undo it.
    fn step_forward(&mut self, idx: usize) -> StepInfo {
        let prim = self.machines[idx].enabled().expect("runnable step exists");
        let was_first = self.first_step[idx].is_none();
        let t = self.mem.steps();
        let resp = self.mem.apply(self.ops[idx].pid, prim);
        self.stats.executed_steps += 1;
        if prim.is_read() {
            self.stats.reads += 1;
        } else if prim.is_write() {
            self.stats.writes += 1;
        } else if resp == 1 {
            self.stats.cas_ok += 1;
        } else {
            self.stats.cas_fail += 1;
        }
        let finished = self.machines[idx].feed(resp);
        self.resp_log[idx].push(resp);
        if was_first {
            self.first_step[idx] = Some(t);
        }
        if finished {
            self.completed_at[idx] = Some(t + 1);
        }
        assert!(
            self.machines[idx].steps() <= STEP_CAP,
            "operation exceeded the exploration step cap"
        );
        self.prefix.push(idx);
        StepInfo {
            idx,
            obj: prim.obj(),
            is_read: prim.is_read(),
            was_first,
            was_last: finished,
        }
    }

    /// Undoes the step described by `info`: the memory event is reversed
    /// in `O(1)` and the stepped machine is rebuilt from a fresh machine
    /// by re-feeding its remaining recorded responses.
    fn step_back(&mut self, info: &StepInfo) {
        self.prefix.pop();
        let idx = info.idx;
        self.mem.undo_last();
        self.resp_log[idx].pop();
        if info.was_last {
            self.completed_at[idx] = None;
        }
        if info.was_first {
            self.first_step[idx] = None;
        }
        let mut m = self.fresh_machine(idx);
        let refeeds = self.resp_log[idx].len();
        for i in 0..refeeds {
            m.feed(self.resp_log[idx][i]);
        }
        self.stats.replay_steps_saved =
            self.stats.replay_steps_saved.saturating_sub(refeeds as u64);
        self.machines[idx] = m;
    }

    /// A never-stepped machine for operation `idx`, from the pool —
    /// refilled by calling `setup` again (deterministic by contract; the
    /// extra memory it builds is discarded).
    fn fresh_machine(&mut self, idx: usize) -> Machine {
        if let Some(m) = self.spare[idx].pop() {
            return m;
        }
        let (_, machines) = (self.setup)();
        assert_eq!(machines.len(), self.ops.len(), "setup/ops arity mismatch");
        for (j, m) in machines.into_iter().enumerate() {
            self.spare[j].push(m);
        }
        self.spare[idx]
            .pop()
            .expect("setup provides one machine per op")
    }

    /// The child's sleep set after executing `info`: every process asleep
    /// at this node (inherited or an already-explored sibling) stays
    /// asleep iff its deferred step is independent of `info`.
    fn child_sleep(&self, asleep: u64, explored: &[StepInfo], info: &StepInfo) -> u64 {
        let mut out = 0u64;
        let mut explored_mask = 0u64;
        for s in explored {
            explored_mask |= 1 << s.idx;
            if independent(s, info) {
                out |= 1 << s.idx;
            }
        }
        let mut inherited = asleep & !explored_mask;
        while inherited != 0 {
            let q = inherited.trailing_zeros() as usize;
            inherited &= inherited - 1;
            let prim = self.machines[q].enabled().expect("sleeping op is enabled");
            // Whether q's deferred step would be its operation's *last*
            // is unknown without executing it — assume it could be
            // (conservative: waking a process early never loses a trace
            // class, it only explores more).
            let q_first = self.first_step[q].is_none();
            if commutes(prim.obj(), prim.is_read(), info)
                && !info.was_first
                && !(info.was_last && q_first)
            {
                out |= 1 << q;
            }
        }
        out
    }

    /// Builds the history of the (complete) current schedule. Crashed
    /// operations become *pending* records: invoked at their first
    /// event's tick, no response, no output (crash branches only fire
    /// after an operation's own event, so a crashed operation was always
    /// invoked).
    fn build_history(&self) -> History {
        let mut recs: Vec<OpRecord> = self
            .ops
            .iter()
            .enumerate()
            .map(|(i, op)| {
                let machine = &self.machines[i];
                if self.crashed & (1 << i) != 0 {
                    let invoke = self.first_step[i].expect("crashed op took an event");
                    debug_assert!(self.completed_at[i].is_none());
                    return OpRecord {
                        pid: op.pid,
                        desc: op.desc.clone(),
                        invoke,
                        response: None,
                        output: None,
                        steps: machine.steps(),
                    };
                }
                let output = if op.returns_value {
                    OpOutput::Value(machine.result().expect("complete schedule has results"))
                } else {
                    OpOutput::Unit
                };
                let invoke = self.first_step[i].unwrap_or(self.base);
                // Completion consumes a tick: a zero-step operation
                // occupies the virtual interval [invoke, invoke + 1], so
                // `response > invoke` holds for every record (see the
                // invariant on `OpRecord::invoke`).
                let response = self.completed_at[i].unwrap_or(invoke + 1);
                debug_assert!(response > invoke);
                OpRecord {
                    pid: op.pid,
                    desc: op.desc.clone(),
                    invoke,
                    response: Some(response),
                    output: Some(output),
                    steps: machine.steps(),
                }
            })
            .collect();
        recs.sort_by_key(|r| r.invoke);
        recs.into_iter().collect()
    }

    /// Whether another worker already stopped the search (violation or
    /// truncation elsewhere). Always `false` for sequential runs.
    fn stopped(&self) -> bool {
        self.shared.is_some_and(|s| s.stop.load(Ordering::Relaxed))
    }

    /// Whether the schedule budget is spent — against the shared global
    /// count under [`explore_parallel`], the local count otherwise.
    fn budget_exhausted(&self) -> bool {
        let done = match self.shared {
            Some(s) => s.schedules.load(Ordering::Relaxed),
            None => self.schedules,
        };
        done >= self.cfg.max_schedules
    }

    fn mark_truncated(&mut self) {
        self.truncated = true;
        if let Some(s) = self.shared {
            s.truncated.store(true, Ordering::Relaxed);
            s.stop.store(true, Ordering::Relaxed);
        }
    }

    fn dfs(&mut self, sleep: u64) {
        if self.violation.is_some() || self.truncated || self.stopped() {
            return;
        }
        if self.budget_exhausted() {
            self.mark_truncated();
            return;
        }
        let depth = self.prefix.len();
        self.stats.peak_depth = self.stats.peak_depth.max(depth);
        if depth > 0 {
            // A full-prefix-replay explorer re-executes the whole prefix
            // to reach this node; the incremental scheme paid one step.
            self.stats.replay_steps_saved += (depth - 1) as u64;
        }
        let runnable: Vec<usize> = (0..self.machines.len())
            .filter(|&i| !self.machines[i].is_done() && self.crashed & (1 << i) == 0)
            .collect();
        if runnable.is_empty() {
            // Complete schedule (every op done or crashed): build the
            // history and check it.
            self.schedules += 1;
            if let Some(s) = self.shared {
                s.schedules.fetch_add(1, Ordering::Relaxed);
            }
            let history = self.build_history();
            if !(self.check)(&history) {
                self.violation = Some(self.prefix.iter().map(|&i| self.ops[i].pid).collect());
                self.violation_crashed = (0..self.ops.len())
                    .filter(|&i| self.crashed & (1 << i) != 0)
                    .map(|i| self.ops[i].pid)
                    .collect();
                if let Some(s) = self.shared {
                    s.stop.store(true, Ordering::Relaxed);
                }
            }
            return;
        }
        let mut asleep = sleep;
        let mut explored: Vec<StepInfo> = Vec::new();
        for &idx in &runnable {
            if self.cfg.prune && asleep & (1 << idx) != 0 {
                self.stats.pruned_branches += 1;
                continue;
            }
            let info = self.step_forward(idx);
            let child_sleep = if self.cfg.prune {
                self.child_sleep(asleep, &explored, &info)
            } else {
                0
            };
            self.dfs(child_sleep);
            // Crash branch: the same prefix, but idx halts permanently
            // right after the event it just took (canonical crash point;
            // see `ExploreConfig::max_crashes`). Crashing a *finished*
            // operation is a no-op, so only unfinished ops branch. The
            // child's sleep set is reset: earlier siblings were deferred
            // on the assumption that idx keeps stepping, which the crash
            // invalidates (conservative — only explores more).
            if self.crashes_left > 0
                && !info.was_last
                && self.violation.is_none()
                && !self.truncated
            {
                self.crashes_left -= 1;
                self.crashed |= 1 << idx;
                self.stats.crash_branches += 1;
                self.dfs(0);
                self.crashed &= !(1 << idx);
                self.crashes_left += 1;
            }
            self.step_back(&info);
            if self.violation.is_some() || self.truncated || self.stopped() {
                return;
            }
            // Subsequent siblings may defer idx's step until something
            // dependent on it executes.
            asleep |= 1 << idx;
            explored.push(info);
        }
    }

    /// Runs the root level of the search, descending only into the
    /// top-level branches whose rank in the root's runnable order is
    /// `≡ worker (mod workers)` — the partition used by
    /// [`explore_parallel`].
    ///
    /// Every worker first *precomputes* each root branch's first step
    /// (executed against the pristine root state and immediately
    /// undone, with the stats snapshot restored so the probe is free):
    /// those [`StepInfo`]s are exactly the `explored` list the
    /// sequential root loop would have accumulated, so an owned branch
    /// at rank `k` starts with the same sleep set — earlier siblings
    /// whose first steps are independent of its own — that the
    /// sequential DFS gives it. Union over workers, the searches visit
    /// exactly the sequential node set, so merged counters (schedules,
    /// pruned branches, executed steps, replay savings, crash branches)
    /// reproduce a sequential run field-for-field.
    fn run_root_partition(&mut self, worker: usize, workers: usize) {
        if self.stopped() {
            return;
        }
        if self.budget_exhausted() {
            self.mark_truncated();
            return;
        }
        let runnable: Vec<usize> = (0..self.machines.len())
            .filter(|&i| !self.machines[i].is_done() && self.crashed & (1 << i) == 0)
            .collect();
        if runnable.is_empty() {
            // Degenerate scope (every op zero-step): exactly one worker
            // checks the single empty schedule.
            if worker == 0 {
                self.dfs(0);
            }
            return;
        }
        let saved = self.stats;
        let infos: Vec<StepInfo> = runnable
            .iter()
            .map(|&idx| {
                let info = self.step_forward(idx);
                self.step_back(&info);
                info
            })
            .collect();
        self.stats = saved;
        for (rank, &idx) in runnable.iter().enumerate() {
            if rank % workers != worker {
                continue;
            }
            let info = self.step_forward(idx);
            debug_assert_eq!(info.obj, infos[rank].obj, "setup must be deterministic");
            let child_sleep = if self.cfg.prune {
                infos[..rank]
                    .iter()
                    .filter(|s| independent(s, &info))
                    .fold(0u64, |m, s| m | 1 << s.idx)
            } else {
                0
            };
            self.dfs(child_sleep);
            // Crash branch, exactly as in `dfs` (see the comment there).
            if self.crashes_left > 0
                && !info.was_last
                && self.violation.is_none()
                && !self.truncated
                && !self.stopped()
            {
                self.crashes_left -= 1;
                self.crashed |= 1 << idx;
                self.stats.crash_branches += 1;
                self.dfs(0);
                self.crashed &= !(1 << idx);
                self.crashes_left += 1;
            }
            self.step_back(&info);
            if self.violation.is_some() || self.truncated || self.stopped() {
                return;
            }
        }
    }
}

/// Explores interleavings of one-shot operations under `cfg`.
///
/// * `setup` — builds a fresh memory and machines; must be
///   deterministic (it is re-invoked to refill the machine pool). It may
///   pre-run seed operations solo before returning: exploration starts
///   from whatever state `setup` leaves, and recorded ticks are absolute
///   positions in that memory's event log.
/// * `ops` — descriptions matching `setup`'s machines (same order).
/// * `check` — called with each complete execution's history; returning
///   `false` marks the schedule as a violation and stops the search.
///   With [`ExploreConfig::prune`] set, the verdict must depend only on
///   operation outputs and the precedence relation (see module docs).
///
/// Returns the summary; exploration stops at the first violation.
///
/// # Panics
///
/// Panics if `setup` returns a different number of machines than `ops`
/// describes, if there are more than 64 operations, or if any machine
/// exceeds `10_000` steps in one schedule.
pub fn explore(
    setup: &dyn Fn() -> (Memory, Vec<Machine>),
    ops: &[ExploreOp],
    check: &mut dyn FnMut(&History) -> bool,
    cfg: ExploreConfig,
) -> ExploreSummary {
    assert!(
        ops.len() <= 64,
        "explorer supports at most 64 operations, got {}",
        ops.len()
    );
    let (mem, machines) = setup();
    assert_eq!(machines.len(), ops.len(), "setup/ops arity mismatch");
    let n = machines.len();
    let base = mem.steps();
    let mut explorer = Explorer {
        setup,
        ops,
        check,
        cfg,
        shared: None,
        mem,
        base,
        machines,
        resp_log: vec![Vec::new(); n],
        spare: (0..n).map(|_| Vec::new()).collect(),
        first_step: vec![None; n],
        completed_at: vec![None; n],
        prefix: Vec::new(),
        crashed: 0,
        crashes_left: cfg.max_crashes,
        schedules: 0,
        truncated: false,
        violation: None,
        violation_crashed: Vec::new(),
        stats: ExploreStats::default(),
    };
    explorer.dfs(0);
    let mut stats = explorer.stats;
    stats.schedules = explorer.schedules;
    ExploreSummary {
        schedules: explorer.schedules,
        truncated: explorer.truncated,
        violation: explorer.violation,
        violation_crashed: explorer.violation_crashed,
        stats,
    }
}

/// Explores interleavings like [`explore`], but partitions the root
/// branch frontier across `workers` OS threads (`std::thread::scope`).
///
/// Each worker builds its own memory and machines via `setup`, owns a
/// per-worker sleep-set search over its share of the top-level
/// branches (ranks `≡ worker (mod workers)` in the root's runnable
/// order, each seeded with the sleep set the sequential search would
/// give it), and the workers coordinate only through a shared schedule
/// budget and a stop flag. The union of the workers' searches visits
/// exactly the sequential node set, so the merged [`ExploreStats`]
/// (fields summed, `peak_depth` maxed) reproduce a sequential
/// [`explore`] of the same scope field-for-field — `tests` assert this
/// and the W5 benchmark records it in `BENCH_explore.json`.
///
/// Differences from [`explore`]:
///
/// * `setup` and `check` must be `Sync` (`check` is `Fn`, not
///   `FnMut` — aggregate across schedules with atomics or a mutex).
/// * On truncation the shared budget may be overshot by up to
///   `workers - 1` schedules (each in-flight worker can complete one
///   before observing the stop flag).
/// * With multiple violating schedules, *which* violation is reported
///   depends on worker timing (the first found wins); whether one
///   exists does not.
///
/// `workers == 0` is treated as `1`. See [`explore`] for the remaining
/// parameter docs and panics.
pub fn explore_parallel(
    setup: &(dyn Fn() -> (Memory, Vec<Machine>) + Sync),
    ops: &[ExploreOp],
    check: &(dyn Fn(&History) -> bool + Sync),
    cfg: ExploreConfig,
    workers: usize,
) -> ExploreSummary {
    assert!(
        ops.len() <= 64,
        "explorer supports at most 64 operations, got {}",
        ops.len()
    );
    let workers = workers.max(1);
    let shared = SharedSearch {
        schedules: AtomicUsize::new(0),
        stop: AtomicBool::new(false),
        truncated: AtomicBool::new(false),
    };
    struct WorkerResult {
        schedules: usize,
        violation: Option<Vec<ProcessId>>,
        violation_crashed: Vec<ProcessId>,
        stats: ExploreStats,
    }
    let results: Vec<WorkerResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let shared = &shared;
                scope.spawn(move || {
                    let (mem, machines) = setup();
                    assert_eq!(machines.len(), ops.len(), "setup/ops arity mismatch");
                    let n = machines.len();
                    let base = mem.steps();
                    let mut local_check = |h: &History| check(h);
                    let mut explorer = Explorer {
                        setup,
                        ops,
                        check: &mut local_check,
                        cfg,
                        shared: Some(shared),
                        mem,
                        base,
                        machines,
                        resp_log: vec![Vec::new(); n],
                        spare: (0..n).map(|_| Vec::new()).collect(),
                        first_step: vec![None; n],
                        completed_at: vec![None; n],
                        prefix: Vec::new(),
                        crashed: 0,
                        crashes_left: cfg.max_crashes,
                        schedules: 0,
                        truncated: false,
                        violation: None,
                        violation_crashed: Vec::new(),
                        stats: ExploreStats::default(),
                    };
                    explorer.run_root_partition(w, workers);
                    WorkerResult {
                        schedules: explorer.schedules,
                        violation: explorer.violation,
                        violation_crashed: explorer.violation_crashed,
                        stats: explorer.stats,
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("explore worker panicked"))
            .collect()
    });
    let mut stats = ExploreStats::default();
    let mut schedules = 0usize;
    let mut violation = None;
    let mut violation_crashed = Vec::new();
    for r in results {
        schedules += r.schedules;
        stats.pruned_branches += r.stats.pruned_branches;
        stats.executed_steps += r.stats.executed_steps;
        stats.replay_steps_saved += r.stats.replay_steps_saved;
        stats.peak_depth = stats.peak_depth.max(r.stats.peak_depth);
        stats.crash_branches += r.stats.crash_branches;
        stats.reads += r.stats.reads;
        stats.writes += r.stats.writes;
        stats.cas_ok += r.stats.cas_ok;
        stats.cas_fail += r.stats.cas_fail;
        if violation.is_none() {
            if let Some(v) = r.violation {
                violation = Some(v);
                violation_crashed = r.violation_crashed;
            }
        }
    }
    stats.schedules = schedules;
    ExploreSummary {
        schedules,
        truncated: shared.truncated.load(Ordering::Relaxed),
        violation,
        violation_crashed,
        stats,
    }
}

/// Enumerates *every* interleaving of one-shot operations (no pruning).
///
/// Equivalent to [`explore`] with [`ExploreConfig::prune`] off: schedule
/// counts are exact interleaving counts, and the checker may inspect raw
/// ticks. See [`explore`] for parameter docs and panics.
pub fn enumerate(
    setup: &dyn Fn() -> (Memory, Vec<Machine>),
    ops: &[ExploreOp],
    check: &mut dyn FnMut(&History) -> bool,
    max_schedules: usize,
) -> ExploreSummary {
    explore(
        setup,
        ops,
        check,
        ExploreConfig {
            max_schedules,
            prune: false,
            max_crashes: 0,
        },
    )
}

/// Sequentially-seeded helper: explores every interleaving of operations
/// that all *start together* and checks each history with `check`,
/// panicking with the violating schedule if one exists.
///
/// # Panics
///
/// Panics if a violating schedule is found, or if the budget truncates
/// the search (use [`enumerate`] directly to tolerate truncation).
pub fn assert_all_schedules_pass(
    setup: &dyn Fn() -> (Memory, Vec<Machine>),
    ops: &[ExploreOp],
    check: &mut dyn FnMut(&History) -> bool,
    max_schedules: usize,
) -> usize {
    let summary = enumerate(setup, ops, check, max_schedules);
    assert!(
        !summary.truncated,
        "exploration truncated after {} schedules — shrink the scope",
        summary.schedules
    );
    if let Some(schedule) = summary.violation {
        panic!(
            "violating schedule found after {} complete schedules: {:?}",
            summary.schedules, schedule
        );
    }
    summary.schedules
}

/// A quick history-validity predicate for exploration artifacts: every
/// operation completed strictly after it was invoked
/// (`invoke < response` — completion consumes a tick even for zero-step
/// operations) with an output present.
pub fn history_is_wellformed(history: &History) -> bool {
    history
        .ops()
        .iter()
        .all(|o| o.response.map(|r| r > o.invoke).unwrap_or(false) && o.output.is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lin::check_counter;
    use crate::{cas, done, read, write, ObjId, Step};

    fn incr(o: ObjId) -> Step {
        read(o, move |v| {
            cas(
                o,
                v,
                v + 1,
                move |ok| if ok == 1 { done(v + 1) } else { incr(o) },
            )
        })
    }

    fn counter_setup(n: usize) -> (impl Fn() -> (Memory, Vec<Machine>), Vec<ExploreOp>) {
        let setup = move || {
            let mut mem = Memory::new();
            let o = mem.alloc(0);
            let machines = (0..n).map(|_| Machine::new(incr(o))).collect();
            (mem, machines)
        };
        let ops = (0..n)
            .map(|i| ExploreOp {
                pid: ProcessId(i),
                desc: OpDesc::CounterIncrement,
                returns_value: false,
            })
            .collect();
        (setup, ops)
    }

    #[test]
    fn enumerates_all_interleavings_of_two_increments() {
        let (setup, ops) = counter_setup(2);
        let mut count_checks = 0usize;
        let summary = enumerate(
            &setup,
            &ops,
            &mut |h| {
                count_checks += 1;
                history_is_wellformed(h)
            },
            10_000,
        );
        assert!(!summary.truncated);
        assert!(summary.violation.is_none());
        assert_eq!(summary.schedules, count_checks);
        // Two CAS-loop increments: the contention-free interleavings of
        // 2-step ops plus retry paths; at least C(4,2)=6 schedules.
        assert!(summary.schedules >= 6, "{}", summary.schedules);
        // Unpruned enumeration never prunes.
        assert_eq!(summary.stats.pruned_branches, 0);
        assert_eq!(summary.stats.schedules, summary.schedules);
        assert!(summary.stats.peak_depth >= 4);
        assert!(summary.stats.executed_steps >= 4 * 6);
    }

    #[test]
    fn all_schedules_of_three_increments_count_correctly() {
        let (setup, ops) = counter_setup(3);
        let schedules = assert_all_schedules_pass(
            &setup,
            &ops,
            &mut |h| {
                // Completing history: counter checker accepts iff every
                // feasible read... no reads here, but the final count is
                // implicit: verify via history validity + count.
                check_counter(h).is_ok()
            },
            200_000,
        );
        assert!(schedules > 50);
    }

    #[test]
    fn final_count_is_exact_under_every_schedule() {
        let (setup, ops) = counter_setup(2);
        // Re-run enumeration but verify memory state via a read machine
        // appended after completion.
        let summary = enumerate(
            &setup,
            &ops,
            &mut |h| h.ops().iter().all(|o| o.is_complete()),
            10_000,
        );
        assert!(summary.violation.is_none());
    }

    #[test]
    fn budget_truncates_gracefully() {
        let (setup, ops) = counter_setup(3);
        let summary = enumerate(&setup, &ops, &mut |_| true, 5);
        assert!(summary.truncated);
        assert_eq!(summary.schedules, 5);
        assert!(summary.violation.is_none());
    }

    #[test]
    fn violation_reports_the_schedule() {
        let (setup, ops) = counter_setup(2);
        // A checker that rejects everything: the first complete schedule
        // is reported.
        let summary = enumerate(&setup, &ops, &mut |_| false, 10_000);
        let schedule = summary.violation.expect("violation reported");
        assert!(!schedule.is_empty());
        assert_eq!(summary.schedules, 1);
    }

    #[test]
    fn pruning_skips_commuting_interleavings() {
        // Two 2-step ops on *disjoint* cells: all interleavings are
        // trace-equivalent up to boundary effects; pruning must explore
        // strictly fewer than the C(4,2) = 6 full interleavings.
        let setup = || {
            let mut mem = Memory::new();
            let a = mem.alloc(0);
            let b = mem.alloc(0);
            let machines = vec![Machine::new(incr(a)), Machine::new(incr(b))];
            (mem, machines)
        };
        let ops: Vec<ExploreOp> = (0..2)
            .map(|i| ExploreOp {
                pid: ProcessId(i),
                desc: OpDesc::CounterIncrement,
                returns_value: false,
            })
            .collect();
        let full = enumerate(&setup, &ops, &mut |_| true, 10_000);
        assert_eq!(full.schedules, 6);
        let pruned = explore(
            &setup,
            &ops,
            &mut |_| true,
            ExploreConfig {
                max_schedules: 10_000,
                prune: true,
                max_crashes: 0,
            },
        );
        assert!(pruned.violation.is_none());
        assert!(!pruned.truncated);
        assert!(
            pruned.schedules < full.schedules,
            "pruned {} vs full {}",
            pruned.schedules,
            full.schedules
        );
        assert!(pruned.stats.pruned_branches > 0);
    }

    /// A history signature that is invariant across trace-equivalent
    /// schedules: per operation (in `ops` order) its output, step count,
    /// and precedence row against every other operation.
    type Signature = Vec<(Option<OpOutput>, usize, Vec<bool>)>;

    fn signature(ops: &[ExploreOp], h: &History) -> Signature {
        // Map history records (sorted by invoke) back to ops order by pid
        // (one op per process in these scopes).
        let by_pid = |pid: ProcessId| {
            h.ops()
                .iter()
                .find(|o| o.pid == pid)
                .expect("one record per process")
        };
        ops.iter()
            .map(|op| {
                let rec = by_pid(op.pid);
                let row = ops
                    .iter()
                    .map(|other| rec.precedes(by_pid(other.pid)))
                    .collect();
                (rec.output.clone(), rec.steps, row)
            })
            .collect()
    }

    /// The load-bearing soundness property: with pruning on, the *set* of
    /// distinct histories (outputs + step counts + precedence relation)
    /// is exactly the unpruned set — no history class is lost.
    #[test]
    fn pruning_preserves_the_set_of_histories() {
        use std::collections::BTreeSet;

        type Setup = Box<dyn Fn() -> (Memory, Vec<Machine>)>;

        // Scenarios mixing same-cell contention, disjoint cells, reads,
        // and a zero-step operation.
        let scenarios: Vec<(Setup, Vec<ExploreOp>)> = vec![
            // (a) two increments on one cell + read of another cell
            (
                Box::new(|| {
                    let mut mem = Memory::new();
                    let a = mem.alloc(0);
                    let b = mem.alloc(7);
                    let machines = vec![
                        Machine::new(incr(a)),
                        Machine::new(incr(a)),
                        Machine::new(read(b, done)),
                    ];
                    (mem, machines)
                }),
                vec![
                    ExploreOp {
                        pid: ProcessId(0),
                        desc: OpDesc::CounterIncrement,
                        returns_value: false,
                    },
                    ExploreOp {
                        pid: ProcessId(1),
                        desc: OpDesc::CounterIncrement,
                        returns_value: false,
                    },
                    ExploreOp {
                        pid: ProcessId(2),
                        desc: OpDesc::CounterRead,
                        returns_value: true,
                    },
                ],
            ),
            // (b) write/read race on one cell + independent writer
            (
                Box::new(|| {
                    let mut mem = Memory::new();
                    let a = mem.alloc(0);
                    let b = mem.alloc(0);
                    let machines = vec![
                        Machine::new(write(a, 5, || done(0))),
                        Machine::new(read(a, done)),
                        Machine::new(write(b, 9, || done(0))),
                    ];
                    (mem, machines)
                }),
                vec![
                    ExploreOp {
                        pid: ProcessId(0),
                        desc: OpDesc::WriteMax(5),
                        returns_value: false,
                    },
                    ExploreOp {
                        pid: ProcessId(1),
                        desc: OpDesc::ReadMax,
                        returns_value: true,
                    },
                    ExploreOp {
                        pid: ProcessId(2),
                        desc: OpDesc::WriteMax(9),
                        returns_value: false,
                    },
                ],
            ),
            // (c) a zero-step op racing a 2-step op and a 1-step reader
            (
                Box::new(|| {
                    let mut mem = Memory::new();
                    let a = mem.alloc(0);
                    let machines = vec![
                        Machine::completed(0),
                        Machine::new(incr(a)),
                        Machine::new(read(a, done)),
                    ];
                    (mem, machines)
                }),
                vec![
                    ExploreOp {
                        pid: ProcessId(0),
                        desc: OpDesc::WriteMax(0),
                        returns_value: false,
                    },
                    ExploreOp {
                        pid: ProcessId(1),
                        desc: OpDesc::CounterIncrement,
                        returns_value: false,
                    },
                    ExploreOp {
                        pid: ProcessId(2),
                        desc: OpDesc::CounterRead,
                        returns_value: true,
                    },
                ],
            ),
        ];

        for (i, (setup, ops)) in scenarios.iter().enumerate() {
            let mut full: BTreeSet<String> = BTreeSet::new();
            let s1 = enumerate(
                &**setup,
                ops,
                &mut |h| {
                    full.insert(format!("{:?}", signature(ops, h)));
                    true
                },
                1_000_000,
            );
            let mut pruned: BTreeSet<String> = BTreeSet::new();
            let s2 = explore(
                &**setup,
                ops,
                &mut |h| {
                    pruned.insert(format!("{:?}", signature(ops, h)));
                    true
                },
                ExploreConfig {
                    max_schedules: 1_000_000,
                    prune: true,
                    max_crashes: 0,
                },
            );
            assert!(!s1.truncated && !s2.truncated);
            assert!(
                s2.schedules <= s1.schedules,
                "scenario {i}: pruned explored more schedules"
            );
            assert_eq!(
                full, pruned,
                "scenario {i}: pruning changed the set of histories"
            );
        }
    }

    #[test]
    fn zero_step_ops_get_strictly_positive_width() {
        // A zero-step machine racing a stepped one: every history must
        // satisfy the strict invoke < response invariant.
        let setup = || {
            let mut mem = Memory::new();
            let a = mem.alloc(0);
            let machines = vec![Machine::completed(3), Machine::new(incr(a))];
            (mem, machines)
        };
        let ops = vec![
            ExploreOp {
                pid: ProcessId(0),
                desc: OpDesc::ReadMax,
                returns_value: true,
            },
            ExploreOp {
                pid: ProcessId(1),
                desc: OpDesc::CounterIncrement,
                returns_value: false,
            },
        ];
        let summary = enumerate(
            &setup,
            &ops,
            &mut |h| {
                history_is_wellformed(h) && h.ops().iter().all(|o| o.response.unwrap() > o.invoke)
            },
            10_000,
        );
        assert!(summary.violation.is_none());
        assert!(summary.schedules >= 1);
    }

    #[test]
    fn seeded_setup_records_absolute_ticks() {
        // The setup pre-runs a seed op solo; explored records must use
        // ticks past the seed's events.
        let setup = || {
            let mut mem = Memory::new();
            let a = mem.alloc(0);
            // Seed: two increments run to completion inside setup.
            for _ in 0..2 {
                let mut m = Machine::new(incr(a));
                while let Some(p) = m.enabled() {
                    let r = mem.apply(ProcessId(9), p);
                    m.feed(r);
                }
            }
            let machines = vec![Machine::new(incr(a))];
            (mem, machines)
        };
        let ops = vec![ExploreOp {
            pid: ProcessId(0),
            desc: OpDesc::CounterIncrement,
            returns_value: false,
        }];
        let summary = enumerate(
            &setup,
            &ops,
            &mut |h| {
                h.ops()
                    .iter()
                    .all(|o| o.invoke >= 4 && history_is_wellformed(h))
            },
            100,
        );
        assert!(summary.violation.is_none());
        assert_eq!(summary.schedules, 1);
    }

    #[test]
    fn pruned_search_still_finds_violations() {
        // A dirty-read bug: the "increment" writes the new value before
        // validating, so a concurrent reader can observe an overcount.
        // Pruning must still reach a violating schedule.
        fn sloppy_double_incr(o: ObjId) -> Step {
            read(o, move |v| {
                write(o, v + 2, move || write(o, v + 1, move || done(0)))
            })
        }
        let setup = || {
            let mut mem = Memory::new();
            let o = mem.alloc(0);
            let machines = vec![
                Machine::new(sloppy_double_incr(o)),
                Machine::new(read(o, done)),
            ];
            (mem, machines)
        };
        let ops = vec![
            ExploreOp {
                pid: ProcessId(0),
                desc: OpDesc::CounterIncrement,
                returns_value: false,
            },
            ExploreOp {
                pid: ProcessId(1),
                desc: OpDesc::CounterRead,
                returns_value: true,
            },
        ];
        // The read may see 0 or 1 (the final value); seeing the
        // transient 2 is the injected violation.
        let mut check = |h: &History| h.ops().iter().all(|o| o.output != Some(OpOutput::Value(2)));
        for prune in [false, true] {
            let summary = explore(
                &setup,
                &ops,
                &mut check,
                ExploreConfig {
                    max_schedules: 10_000,
                    prune,
                    max_crashes: 0,
                },
            );
            assert!(
                summary.violation.is_some(),
                "prune={prune}: dirty read not found"
            );
        }
    }

    #[test]
    fn crash_exploration_yields_pending_histories() {
        // Two CAS-loop increments with a 1-crash budget: some schedules
        // must contain exactly one pending increment, every history must
        // still satisfy the counter checker (completion rule), and the
        // crash-free schedules must still all be enumerated.
        let (setup, ops) = counter_setup(2);
        let mut pending_histories = 0usize;
        let mut complete_histories = 0usize;
        let summary = explore(
            &setup,
            &ops,
            &mut |h| {
                let pending = h.pending().count();
                assert!(pending <= 1, "crash budget is 1");
                if pending == 1 {
                    pending_histories += 1;
                    // The crashed increment has no response and no output.
                    let p = h.pending().next().unwrap();
                    assert!(p.output.is_none());
                    assert!(p.steps >= 1);
                } else {
                    complete_histories += 1;
                }
                check_counter(h).is_ok()
            },
            ExploreConfig {
                max_schedules: 100_000,
                prune: false,
                max_crashes: 1,
            },
        );
        assert!(!summary.truncated);
        assert!(summary.violation.is_none());
        assert!(summary.violation_crashed.is_empty());
        assert!(summary.stats.crash_branches > 0);
        assert_eq!(
            summary.stats.crash_branches, pending_histories,
            "each crash branch completes into exactly one schedule here"
        );
        // Crash-free schedules are unchanged by the crash budget: the
        // same scope without crashes enumerates exactly this many.
        let baseline = enumerate(&setup, &ops, &mut |_| true, 100_000);
        assert_eq!(complete_histories, baseline.schedules);
    }

    #[test]
    fn crash_budget_zero_changes_nothing() {
        let (setup, ops) = counter_setup(2);
        let a = enumerate(&setup, &ops, &mut |_| true, 100_000);
        let b = explore(
            &setup,
            &ops,
            &mut |_| true,
            ExploreConfig {
                max_schedules: 100_000,
                prune: false,
                max_crashes: 0,
            },
        );
        assert_eq!(a.schedules, b.schedules);
        assert_eq!(b.stats.crash_branches, 0);
    }

    #[test]
    fn crash_exploration_finds_crash_only_bugs() {
        // A two-phase "write-ahead increment": process 0 bumps a dirty
        // flag cell, then the real cell. If it crashes between the two
        // writes, a reader of the dirty cell sees a count the real cell
        // never reaches — a violation that NO crash-free schedule
        // exhibits (the checker below only fails when the crashed state
        // is observed). Crash exploration must find it automatically.
        fn two_phase(a: ObjId, b: ObjId) -> Step {
            write(a, 1, move || write(b, 1, move || done(0)))
        }
        let setup = move || {
            let mut mem = Memory::new();
            let a = mem.alloc(0);
            let b = mem.alloc(0);
            let machines = vec![
                Machine::new(two_phase(a, b)),
                Machine::new(read(a, move |va| read(b, move |vb| done(va - vb)))),
            ];
            (mem, machines)
        };
        let ops = vec![
            ExploreOp {
                pid: ProcessId(0),
                desc: OpDesc::CounterIncrement,
                returns_value: false,
            },
            ExploreOp {
                pid: ProcessId(1),
                desc: OpDesc::CounterRead,
                returns_value: true,
            },
        ];
        // "Violation": the reader observed a - b == 1 AND the writer is
        // pending — i.e. the torn intermediate state outlived the crash.
        let mut check = |h: &History| {
            let torn = h.ops().iter().any(|o| o.output == Some(OpOutput::Value(1)));
            let writer_crashed = h.pending().any(|o| o.desc == OpDesc::CounterIncrement);
            !(torn && writer_crashed)
        };
        // Without crashes the torn state is transient (the writer always
        // finishes): the schedule where the reader interleaves sees a=1,
        // b=0 too — but the writer completes, so `writer_crashed` is
        // false and no violation fires.
        let clean = explore(
            &setup,
            &ops,
            &mut check,
            ExploreConfig {
                max_schedules: 100_000,
                prune: false,
                max_crashes: 0,
            },
        );
        assert!(clean.violation.is_none());
        // With a 1-crash budget the explorer finds the bad crash point.
        for prune in [false, true] {
            let summary = explore(
                &setup,
                &ops,
                &mut check,
                ExploreConfig {
                    max_schedules: 100_000,
                    prune,
                    max_crashes: 1,
                },
            );
            assert!(
                summary.violation.is_some(),
                "prune={prune}: crash-only bug not found"
            );
            assert_eq!(
                summary.violation_crashed,
                vec![ProcessId(0)],
                "prune={prune}: the writer is the crashed process"
            );
        }
    }

    #[test]
    fn crash_exploration_respects_pruning_soundness() {
        // The pruned and unpruned crash explorations must agree on the
        // set of history classes (outputs + step counts + precedence),
        // mirroring `pruning_preserves_the_set_of_histories`.
        use std::collections::BTreeSet;
        let setup = || {
            let mut mem = Memory::new();
            let a = mem.alloc(0);
            let machines = vec![
                Machine::new(incr(a)),
                Machine::new(incr(a)),
                Machine::new(read(a, done)),
            ];
            (mem, machines)
        };
        let ops = vec![
            ExploreOp {
                pid: ProcessId(0),
                desc: OpDesc::CounterIncrement,
                returns_value: false,
            },
            ExploreOp {
                pid: ProcessId(1),
                desc: OpDesc::CounterIncrement,
                returns_value: false,
            },
            ExploreOp {
                pid: ProcessId(2),
                desc: OpDesc::CounterRead,
                returns_value: true,
            },
        ];
        // Signature tolerant of pending ops: output (None when pending),
        // completion flag, and the precedence row.
        let sig = |h: &History| {
            let by_pid = |pid: ProcessId| h.ops().iter().find(|o| o.pid == pid).unwrap();
            let rows: Vec<String> = ops
                .iter()
                .map(|op| {
                    let rec = by_pid(op.pid);
                    let row: Vec<bool> = ops
                        .iter()
                        .map(|other| rec.precedes(by_pid(other.pid)))
                        .collect();
                    format!("{:?}|{}|{:?}", rec.output, rec.is_complete(), row)
                })
                .collect();
            rows.join(";")
        };
        let collect = |prune: bool| {
            let mut set: BTreeSet<String> = BTreeSet::new();
            let summary = explore(
                &setup,
                &ops,
                &mut |h| {
                    set.insert(sig(h));
                    true
                },
                ExploreConfig {
                    max_schedules: 1_000_000,
                    prune,
                    max_crashes: 1,
                },
            );
            assert!(!summary.truncated);
            (set, summary.schedules)
        };
        let (full, full_n) = collect(false);
        let (pruned, pruned_n) = collect(true);
        assert!(pruned_n <= full_n);
        assert_eq!(full, pruned, "crash pruning changed the history set");
    }

    #[test]
    fn stats_replay_savings_accumulate() {
        let (setup, ops) = counter_setup(3);
        let summary = enumerate(&setup, &ops, &mut |_| true, 200_000);
        // Every DFS node below depth 1 saves replay work; with thousands
        // of schedules of depth >= 6, savings must be substantial.
        assert!(
            summary.stats.replay_steps_saved > summary.stats.executed_steps,
            "saved {} vs executed {}",
            summary.stats.replay_steps_saved,
            summary.stats.executed_steps
        );
    }

    #[test]
    fn stats_prim_kinds_partition_executed_steps() {
        let (setup, ops) = counter_setup(3);
        let summary = enumerate(&setup, &ops, &mut |_| true, 200_000);
        let s = &summary.stats;
        assert_eq!(
            s.reads + s.writes + s.cas_ok + s.cas_fail,
            s.executed_steps,
            "prim-kind tallies must partition executed_steps"
        );
        // The read-CAS increment loop issues reads and CASes, and with 3
        // contending processes some interleavings must fail a CAS.
        assert!(s.reads > 0 && s.cas_ok > 0 && s.cas_fail > 0);
        assert_eq!(s.writes, 0, "incr uses no write primitive");
    }

    /// Asserts two explorations did exactly the same work, field by
    /// field (parallel merges must reproduce the sequential counters).
    fn assert_stats_eq(a: &ExploreStats, b: &ExploreStats, ctx: &str) {
        assert_eq!(a.schedules, b.schedules, "{ctx}: schedules");
        assert_eq!(
            a.pruned_branches, b.pruned_branches,
            "{ctx}: pruned_branches"
        );
        assert_eq!(a.executed_steps, b.executed_steps, "{ctx}: executed_steps");
        assert_eq!(
            a.replay_steps_saved, b.replay_steps_saved,
            "{ctx}: replay_steps_saved"
        );
        assert_eq!(a.peak_depth, b.peak_depth, "{ctx}: peak_depth");
        assert_eq!(a.crash_branches, b.crash_branches, "{ctx}: crash_branches");
        assert_eq!(a.reads, b.reads, "{ctx}: reads");
        assert_eq!(a.writes, b.writes, "{ctx}: writes");
        assert_eq!(a.cas_ok, b.cas_ok, "{ctx}: cas_ok");
        assert_eq!(a.cas_fail, b.cas_fail, "{ctx}: cas_fail");
    }

    #[test]
    fn parallel_explorer_reproduces_sequential_counts() {
        // Across prune × crash-budget × worker-count, the merged
        // parallel stats must equal the sequential run field for field:
        // the root partition visits exactly the sequential node set.
        let (setup, ops) = counter_setup(3);
        for prune in [false, true] {
            for max_crashes in [0, 1] {
                let cfg = ExploreConfig {
                    max_schedules: 1_000_000,
                    prune,
                    max_crashes,
                };
                let sequential = explore(&setup, &ops, &mut |_| true, cfg);
                assert!(!sequential.truncated);
                for workers in [1, 2, 4] {
                    let parallel = explore_parallel(&setup, &ops, &|_| true, cfg, workers);
                    let ctx = format!("prune={prune} max_crashes={max_crashes} workers={workers}");
                    assert!(!parallel.truncated, "{ctx}: truncated");
                    assert!(parallel.violation.is_none(), "{ctx}: violation");
                    assert_eq!(parallel.schedules, sequential.schedules, "{ctx}");
                    assert_stats_eq(&parallel.stats, &sequential.stats, &ctx);
                }
            }
        }
    }

    #[test]
    fn parallel_explorer_finds_violations() {
        // Same dirty-read scenario as `pruning_reaches_violating_schedules`,
        // but searched in parallel: a transient overcount of 2 must still
        // be found regardless of which worker owns the violating branch.
        fn sloppy_double_incr(o: ObjId) -> Step {
            read(o, move |v| {
                write(o, v + 2, move || write(o, v + 1, move || done(0)))
            })
        }
        let setup = || {
            let mut mem = Memory::new();
            let o = mem.alloc(0);
            let machines = vec![
                Machine::new(sloppy_double_incr(o)),
                Machine::new(read(o, done)),
            ];
            (mem, machines)
        };
        let ops = vec![
            ExploreOp {
                pid: ProcessId(0),
                desc: OpDesc::CounterIncrement,
                returns_value: false,
            },
            ExploreOp {
                pid: ProcessId(1),
                desc: OpDesc::CounterRead,
                returns_value: true,
            },
        ];
        let check = |h: &History| h.ops().iter().all(|o| o.output != Some(OpOutput::Value(2)));
        for prune in [false, true] {
            for workers in [1, 2, 4] {
                let summary = explore_parallel(
                    &setup,
                    &ops,
                    &check,
                    ExploreConfig {
                        max_schedules: 10_000,
                        prune,
                        max_crashes: 0,
                    },
                    workers,
                );
                assert!(
                    summary.violation.is_some(),
                    "prune={prune} workers={workers}: dirty read not found"
                );
            }
        }
    }

    #[test]
    fn parallel_explorer_respects_the_shared_budget() {
        let (setup, ops) = counter_setup(3);
        let workers = 4;
        let budget = 5;
        let summary = explore_parallel(
            &setup,
            &ops,
            &|_| true,
            ExploreConfig {
                max_schedules: budget,
                prune: false,
                max_crashes: 0,
            },
            workers,
        );
        assert!(summary.truncated);
        // The budget is shared; each in-flight worker may complete at
        // most one extra schedule before it observes the stop flag.
        assert!(
            summary.schedules >= budget && summary.schedules < budget + workers,
            "schedules={} budget={budget} workers={workers}",
            summary.schedules
        );
    }
}
