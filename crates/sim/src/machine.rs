//! Operations as step machines.
//!
//! Algorithms in the simulator are written in continuation-passing style:
//! each of [`read`], [`write`] and [`cas`] names the next shared-memory
//! event and a closure that receives its response and produces the rest
//! of the operation; [`done`] terminates with a result. This keeps
//! algorithm code close to the paper's pseudo-code while exposing exactly
//! one enabled event at a time — which is what the model requires ("if a
//! process has not completed its operation, it has exactly one enabled
//! event").
//!
//! ```
//! use ruo_sim::{read, cas, done, Machine, Memory, ProcessId, Step, ObjId, Word};
//!
//! /// `fetch_max(o, v)`: a CAS-loop that raises `o` to at least `v`.
//! fn fetch_max(o: ObjId, v: Word) -> Step {
//!     read(o, move |cur| {
//!         if cur >= v {
//!             done(cur)
//!         } else {
//!             cas(o, cur, v, move |ok| if ok == 1 { done(v) } else { fetch_max(o, v) })
//!         }
//!     })
//! }
//!
//! let mut mem = Memory::new();
//! let o = mem.alloc(0);
//! let mut m = Machine::new(fetch_max(o, 7));
//! while let Some(prim) = m.enabled() {
//!     let resp = mem.apply(ProcessId(0), prim);
//!     m.feed(resp);
//! }
//! assert_eq!(mem.peek(o), 7);
//! ```

use std::fmt;

use crate::{ObjId, Prim, Word};

/// The continuation of an operation after one event's response.
pub type BoxedStep = Box<dyn FnOnce(Word) -> Step + Send>;

/// The state of an in-progress operation: either one enabled event plus a
/// continuation, or a completed operation with its result.
pub enum Step {
    /// The operation's next (unique) enabled event, and what to do with
    /// its response.
    Pending {
        /// The enabled primitive.
        prim: Prim,
        /// Continuation receiving the primitive's response.
        k: BoxedStep,
    },
    /// The operation has completed with this result.
    Done(Word),
}

impl fmt::Debug for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Step::Pending { prim, .. } => f.debug_struct("Pending").field("prim", prim).finish(),
            Step::Done(v) => f.debug_tuple("Done").field(v).finish(),
        }
    }
}

/// A pending `read` event; `k` receives the value read.
pub fn read(obj: ObjId, k: impl FnOnce(Word) -> Step + Send + 'static) -> Step {
    Step::Pending {
        prim: Prim::Read(obj),
        k: Box::new(k),
    }
}

/// A pending `write` event; `k` runs after the write is applied.
pub fn write(obj: ObjId, value: Word, k: impl FnOnce() -> Step + Send + 'static) -> Step {
    Step::Pending {
        prim: Prim::Write(obj, value),
        k: Box::new(move |_| k()),
    }
}

/// A pending `CAS` event; `k` receives `1` if the swap succeeded, `0`
/// otherwise.
pub fn cas(
    obj: ObjId,
    expected: Word,
    new: Word,
    k: impl FnOnce(Word) -> Step + Send + 'static,
) -> Step {
    Step::Pending {
        prim: Prim::Cas { obj, expected, new },
        k: Box::new(k),
    }
}

/// Completes the operation with `result`.
pub fn done(result: Word) -> Step {
    Step::Done(result)
}

/// Drives a [`Step`] chain event by event.
///
/// A `Machine` is one operation instance (e.g. one `WriteMax(v)` by one
/// process). The scheduler asks for the [`enabled`](Machine::enabled)
/// event, applies it to memory, and [`feed`](Machine::feed)s the response
/// back. The number of `feed` calls is the operation's step count.
#[derive(Debug)]
pub struct Machine {
    state: Option<Step>,
    steps: usize,
}

impl Machine {
    /// Wraps an operation's initial step.
    pub fn new(initial: Step) -> Self {
        Machine {
            state: Some(initial),
            steps: 0,
        }
    }

    /// A machine that is already done (for zero-step operations).
    pub fn completed(result: Word) -> Self {
        Machine {
            state: Some(Step::Done(result)),
            steps: 0,
        }
    }

    /// The operation's unique enabled event, or `None` if it has
    /// completed.
    pub fn enabled(&self) -> Option<Prim> {
        match self.state.as_ref().expect("machine state present") {
            Step::Pending { prim, .. } => Some(*prim),
            Step::Done(_) => None,
        }
    }

    /// Whether the operation has completed.
    pub fn is_done(&self) -> bool {
        matches!(self.state.as_ref(), Some(Step::Done(_)))
    }

    /// The operation's result, if completed.
    pub fn result(&self) -> Option<Word> {
        match self.state.as_ref() {
            Some(Step::Done(v)) => Some(*v),
            _ => None,
        }
    }

    /// Number of shared-memory events this operation has issued.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Delivers the response of the enabled event, advancing the machine.
    ///
    /// Returns `true` if the operation completed as a result.
    ///
    /// # Panics
    ///
    /// Panics if the operation has already completed.
    pub fn feed(&mut self, resp: Word) -> bool {
        match self.state.take().expect("machine state present") {
            Step::Pending { k, .. } => {
                self.steps += 1;
                let next = k(resp);
                let finished = matches!(next, Step::Done(_));
                self.state = Some(next);
                finished
            }
            Step::Done(_) => panic!("feed called on a completed operation"),
        }
    }
}

/// Drives a step machine to completion with no interference, returning
/// `(result, steps)` — the *solo step complexity* of the operation,
/// which is the measure used in all step-count tables.
///
/// This is the single shared driver for every sequential-sanity test and
/// solo-complexity measurement in the workspace; it lives here (rather
/// than in the bench crate) so that every crate can reach it without a
/// bench dependency.
pub fn run_solo(
    mem: &mut crate::Memory,
    pid: crate::ProcessId,
    mut machine: Machine,
) -> (Word, usize) {
    while let Some(prim) = machine.enabled() {
        let resp = mem.apply(pid, prim);
        machine.feed(resp);
    }
    (
        machine.result().expect("machine completed"),
        machine.steps(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Memory, ProcessId};

    #[test]
    fn straight_line_machine_counts_steps() {
        let mut mem = Memory::new();
        let a = mem.alloc(10);
        let b = mem.alloc(0);
        // read a; write a+1 to b; done(a)
        let m = Machine::new(read(a, move |v| write(b, v + 1, move || done(v))));
        let (result, steps) = run_solo(&mut mem, ProcessId(0), m);
        assert_eq!(result, 10);
        assert_eq!(steps, 2);
        assert_eq!(mem.peek(b), 11);
    }

    #[test]
    fn cas_loop_terminates_solo() {
        fn incr(o: ObjId) -> Step {
            read(o, move |v| {
                cas(
                    o,
                    v,
                    v + 1,
                    move |ok| if ok == 1 { done(v + 1) } else { incr(o) },
                )
            })
        }
        let mut mem = Memory::new();
        let o = mem.alloc(0);
        let (result, steps) = run_solo(&mut mem, ProcessId(0), Machine::new(incr(o)));
        assert_eq!(result, 1);
        assert_eq!(steps, 2);
    }

    #[test]
    fn completed_machine_has_no_enabled_event() {
        let m = Machine::completed(42);
        assert!(m.is_done());
        assert_eq!(m.enabled(), None);
        assert_eq!(m.result(), Some(42));
        assert_eq!(m.steps(), 0);
    }

    #[test]
    #[should_panic(expected = "completed operation")]
    fn feeding_a_done_machine_panics() {
        let mut m = Machine::completed(0);
        m.feed(0);
    }

    #[test]
    fn failed_cas_takes_the_retry_branch() {
        let mut mem = Memory::new();
        let o = mem.alloc(5);
        // CAS expecting 3 fails; fall back to reading the value.
        let m = Machine::new(cas(o, 3, 9, move |ok| {
            assert_eq!(ok, 0);
            read(o, done)
        }));
        let (result, steps) = run_solo(&mut mem, ProcessId(0), m);
        assert_eq!(result, 5);
        assert_eq!(steps, 2);
    }
}
