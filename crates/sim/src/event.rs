//! Shared-memory events and the execution log.
//!
//! The paper reasons about *executions*: sequences of events, each of
//! which applies one primitive to one base object. [`EventLog`] is that
//! sequence, recorded by [`Memory`](crate::Memory) as primitives are
//! applied. The log carries enough information (value before/after, CAS
//! success) for the information-flow analysis in `ruo-lowerbound` to
//! recompute visibility, awareness and familiarity per Definitions 1–4.

use crate::{ObjId, ProcessId, Word};

/// A primitive operation applied to a base object.
///
/// These are the only means of manipulating base objects in the model
/// (Section 2 of the paper): `read`, `write`, and compare-and-swap.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Prim {
    /// Read the object's value.
    Read(ObjId),
    /// Write a value to the object.
    Write(ObjId, Word),
    /// `CAS(obj, expected, new)`: atomically replace the value with `new`
    /// if it currently equals `expected`. Responds `1` on success and `0`
    /// on failure.
    Cas {
        /// Target object.
        obj: ObjId,
        /// Value the object must currently hold for the swap to happen.
        expected: Word,
        /// Value installed on success.
        new: Word,
    },
}

impl Prim {
    /// The base object this primitive accesses.
    #[inline]
    pub fn obj(&self) -> ObjId {
        match *self {
            Prim::Read(o) => o,
            Prim::Write(o, _) => o,
            Prim::Cas { obj, .. } => obj,
        }
    }

    /// Whether this primitive is a read.
    #[inline]
    pub fn is_read(&self) -> bool {
        matches!(self, Prim::Read(_))
    }

    /// Whether this primitive is a write.
    #[inline]
    pub fn is_write(&self) -> bool {
        matches!(self, Prim::Write(..))
    }

    /// Whether this primitive is a CAS.
    #[inline]
    pub fn is_cas(&self) -> bool {
        matches!(self, Prim::Cas { .. })
    }

    /// Whether applying this primitive to an object currently holding
    /// `current` would leave the object's value unchanged (a *trivial*
    /// event in the paper's terminology).
    #[inline]
    pub fn is_trivial_against(&self, current: Word) -> bool {
        match *self {
            Prim::Read(_) => true,
            Prim::Write(_, v) => v == current,
            Prim::Cas { expected, new, .. } => expected != current || new == current,
        }
    }
}

/// One shared-memory event: a primitive applied by a process, together
/// with everything the analysis later needs (previous value, response,
/// whether the value changed).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Position of this event in the execution (0-based).
    pub seq: usize,
    /// The process that issued the event.
    pub pid: ProcessId,
    /// The primitive applied.
    pub prim: Prim,
    /// Value of the object immediately before the event.
    pub prev: Word,
    /// Response returned to the process (read: the value; write: `0`;
    /// CAS: `1` on success, `0` on failure).
    pub resp: Word,
}

impl Event {
    /// The object this event accessed.
    #[inline]
    pub fn obj(&self) -> ObjId {
        self.prim.obj()
    }

    /// The object's value immediately after this event.
    #[inline]
    pub fn next_value(&self) -> Word {
        match self.prim {
            Prim::Read(_) => self.prev,
            Prim::Write(_, v) => v,
            Prim::Cas { new, .. } => {
                if self.resp == 1 {
                    new
                } else {
                    self.prev
                }
            }
        }
    }

    /// Whether the event changed the object's value. Events that do not
    /// are *trivial* (Section 2): reads, failed CASes, writes of the
    /// current value, and successful CASes where `new == expected`.
    #[inline]
    pub fn is_trivial(&self) -> bool {
        self.next_value() == self.prev
    }

    /// Whether the event is a write or CAS (trivial or not) — the event
    /// kinds that can make an object *familiar* with a process (Def. 4).
    #[inline]
    pub fn is_mutation_kind(&self) -> bool {
        !self.prim.is_read()
    }
}

/// An execution: the sequence of all events applied to a [`Memory`](crate::Memory).
#[derive(Clone, Debug, Default)]
pub struct EventLog {
    events: Vec<Event>,
}

impl EventLog {
    /// Creates an empty log (the paper's `⊥`, the empty execution).
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn push(&mut self, ev: Event) {
        debug_assert_eq!(ev.seq, self.events.len());
        self.events.push(ev);
    }

    pub(crate) fn pop(&mut self) -> Option<Event> {
        self.events.pop()
    }

    /// Number of events in the execution.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the execution is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events, in execution order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Iterate over the events of one process, in order.
    pub fn events_of(&self, pid: ProcessId) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.pid == pid)
    }

    /// Number of steps (events) process `pid` has taken.
    pub fn steps_of(&self, pid: ProcessId) -> usize {
        self.events_of(pid).count()
    }
}

impl<'a> IntoIterator for &'a EventLog {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: usize, pid: usize, prim: Prim, prev: Word, resp: Word) -> Event {
        Event {
            seq,
            pid: ProcessId(pid),
            prim,
            prev,
            resp,
        }
    }

    #[test]
    fn read_events_are_trivial() {
        let e = ev(0, 0, Prim::Read(ObjId(0)), 7, 7);
        assert!(e.is_trivial());
        assert_eq!(e.next_value(), 7);
        assert!(!e.is_mutation_kind());
    }

    #[test]
    fn write_of_same_value_is_trivial() {
        let e = ev(0, 0, Prim::Write(ObjId(0), 7), 7, 0);
        assert!(e.is_trivial());
        assert!(e.is_mutation_kind());
    }

    #[test]
    fn write_of_new_value_changes_object() {
        let e = ev(0, 0, Prim::Write(ObjId(0), 9), 7, 0);
        assert!(!e.is_trivial());
        assert_eq!(e.next_value(), 9);
    }

    #[test]
    fn failed_cas_is_trivial() {
        let e = ev(
            0,
            0,
            Prim::Cas {
                obj: ObjId(0),
                expected: 3,
                new: 9,
            },
            7,
            0,
        );
        assert!(e.is_trivial());
        assert_eq!(e.next_value(), 7);
    }

    #[test]
    fn successful_cas_changes_object() {
        let e = ev(
            0,
            0,
            Prim::Cas {
                obj: ObjId(0),
                expected: 7,
                new: 9,
            },
            7,
            1,
        );
        assert!(!e.is_trivial());
        assert_eq!(e.next_value(), 9);
    }

    #[test]
    fn trivial_against_matches_event_semantics() {
        assert!(Prim::Read(ObjId(0)).is_trivial_against(5));
        assert!(Prim::Write(ObjId(0), 5).is_trivial_against(5));
        assert!(!Prim::Write(ObjId(0), 6).is_trivial_against(5));
        let cas = Prim::Cas {
            obj: ObjId(0),
            expected: 5,
            new: 6,
        };
        assert!(!cas.is_trivial_against(5));
        assert!(cas.is_trivial_against(4));
        let noop_cas = Prim::Cas {
            obj: ObjId(0),
            expected: 5,
            new: 5,
        };
        assert!(noop_cas.is_trivial_against(5));
    }

    #[test]
    fn log_tracks_per_process_steps() {
        let mut log = EventLog::new();
        log.push(ev(0, 0, Prim::Read(ObjId(0)), 0, 0));
        log.push(ev(1, 1, Prim::Write(ObjId(0), 2), 0, 0));
        log.push(ev(2, 0, Prim::Read(ObjId(0)), 2, 2));
        assert_eq!(log.len(), 3);
        assert_eq!(log.steps_of(ProcessId(0)), 2);
        assert_eq!(log.steps_of(ProcessId(1)), 1);
        assert_eq!(log.steps_of(ProcessId(9)), 0);
    }
}
