//! Shared base-object memory.

use crate::{Event, EventLog, ObjId, Prim, ProcessId, Word};

/// The set `B` of shared base objects, with an event log.
///
/// Every [`apply`](Memory::apply) is one *step* in the paper's complexity
/// measure and appends one [`Event`] to the log. Adversaries and test
/// harnesses may inspect values without taking steps via
/// [`peek`](Memory::peek); algorithms must not.
#[derive(Clone, Debug, Default)]
pub struct Memory {
    cells: Vec<Word>,
    log: EventLog,
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a new base object with the given initial value.
    ///
    /// Allocation is part of setting up the *initial configuration* and
    /// does not count as a step, matching the paper's model where "each
    /// base object is assigned an initial value".
    pub fn alloc(&mut self, init: Word) -> ObjId {
        let id = ObjId(self.cells.len());
        self.cells.push(init);
        id
    }

    /// Allocates `n` objects, all with the same initial value.
    pub fn alloc_n(&mut self, n: usize, init: Word) -> Vec<ObjId> {
        (0..n).map(|_| self.alloc(init)).collect()
    }

    /// Number of allocated base objects.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether no objects have been allocated.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Applies a primitive on behalf of `pid`, logging the event and
    /// returning the response (read: the value; write: `0`; CAS: `1` on
    /// success, `0` on failure).
    ///
    /// # Panics
    ///
    /// Panics if the primitive targets an object not allocated from this
    /// memory.
    pub fn apply(&mut self, pid: ProcessId, prim: Prim) -> Word {
        let obj = prim.obj();
        let prev = self.cells[obj.0];
        let resp = match prim {
            Prim::Read(_) => prev,
            Prim::Write(_, v) => {
                self.cells[obj.0] = v;
                0
            }
            Prim::Cas { expected, new, .. } => {
                if prev == expected {
                    self.cells[obj.0] = new;
                    1
                } else {
                    0
                }
            }
        };
        self.log.push(Event {
            seq: self.log.len(),
            pid,
            prim,
            prev,
            resp,
        });
        resp
    }

    /// Undoes the most recent event in `O(1)`: the target cell is
    /// restored to the value it held before the event and the event is
    /// removed from the log. The explorer uses this to backtrack one
    /// step without replaying the whole prefix.
    ///
    /// # Panics
    ///
    /// Panics if the log is empty.
    pub fn undo_last(&mut self) -> Event {
        let ev = self.log.pop().expect("undo_last requires a logged event");
        self.cells[ev.obj().0] = ev.prev;
        ev
    }

    /// Reads an object's current value without taking a step (no event is
    /// logged). For adversaries, invariant checks and tests only.
    pub fn peek(&self, obj: ObjId) -> Word {
        self.cells[obj.0]
    }

    /// The execution so far.
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// Total number of steps taken by all processes.
    pub fn steps(&self) -> usize {
        self.log.len()
    }

    /// Resets all cells to the provided snapshot of initial values and
    /// clears the log. Used by replay-based adversaries (Lemma 2 erasure
    /// is implemented by replaying the surviving events from the initial
    /// configuration).
    ///
    /// # Panics
    ///
    /// Panics if `initial` does not have one value per allocated object.
    pub fn reset_to(&mut self, initial: &[Word]) {
        assert_eq!(
            initial.len(),
            self.cells.len(),
            "reset snapshot must cover every allocated object"
        );
        self.cells.copy_from_slice(initial);
        self.log = EventLog::new();
    }

    /// Snapshot of every cell's current value, usable with
    /// [`reset_to`](Memory::reset_to).
    pub fn snapshot(&self) -> Vec<Word> {
        self.cells.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_assigns_dense_ids_and_initial_values() {
        let mut mem = Memory::new();
        let a = mem.alloc(1);
        let b = mem.alloc(2);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(mem.peek(a), 1);
        assert_eq!(mem.peek(b), 2);
        assert_eq!(mem.len(), 2);
    }

    #[test]
    fn read_returns_value_and_logs() {
        let mut mem = Memory::new();
        let a = mem.alloc(5);
        let resp = mem.apply(ProcessId(0), Prim::Read(a));
        assert_eq!(resp, 5);
        assert_eq!(mem.steps(), 1);
        assert_eq!(mem.log().events()[0].prev, 5);
    }

    #[test]
    fn write_stores_value() {
        let mut mem = Memory::new();
        let a = mem.alloc(0);
        mem.apply(ProcessId(1), Prim::Write(a, 9));
        assert_eq!(mem.peek(a), 9);
    }

    #[test]
    fn cas_succeeds_only_on_expected() {
        let mut mem = Memory::new();
        let a = mem.alloc(3);
        let ok = mem.apply(
            ProcessId(0),
            Prim::Cas {
                obj: a,
                expected: 3,
                new: 4,
            },
        );
        assert_eq!(ok, 1);
        assert_eq!(mem.peek(a), 4);
        let fail = mem.apply(
            ProcessId(0),
            Prim::Cas {
                obj: a,
                expected: 3,
                new: 5,
            },
        );
        assert_eq!(fail, 0);
        assert_eq!(mem.peek(a), 4);
    }

    #[test]
    fn peek_takes_no_step() {
        let mut mem = Memory::new();
        let a = mem.alloc(3);
        let _ = mem.peek(a);
        assert_eq!(mem.steps(), 0);
    }

    #[test]
    fn reset_restores_initial_configuration() {
        let mut mem = Memory::new();
        let a = mem.alloc(3);
        let init = mem.snapshot();
        mem.apply(ProcessId(0), Prim::Write(a, 10));
        assert_eq!(mem.peek(a), 10);
        mem.reset_to(&init);
        assert_eq!(mem.peek(a), 3);
        assert_eq!(mem.steps(), 0);
    }

    #[test]
    fn undo_last_reverses_each_primitive_kind() {
        let mut mem = Memory::new();
        let a = mem.alloc(3);
        mem.apply(ProcessId(0), Prim::Read(a));
        mem.apply(ProcessId(0), Prim::Write(a, 9));
        mem.apply(
            ProcessId(1),
            Prim::Cas {
                obj: a,
                expected: 9,
                new: 12,
            },
        );
        assert_eq!(mem.peek(a), 12);
        assert_eq!(mem.steps(), 3);
        let ev = mem.undo_last(); // successful CAS
        assert!(ev.prim.is_cas());
        assert_eq!(mem.peek(a), 9);
        mem.undo_last(); // write
        assert_eq!(mem.peek(a), 3);
        mem.undo_last(); // read (no value change)
        assert_eq!(mem.peek(a), 3);
        assert_eq!(mem.steps(), 0);
    }

    #[test]
    fn undo_restores_failed_cas_without_changing_value() {
        let mut mem = Memory::new();
        let a = mem.alloc(5);
        mem.apply(
            ProcessId(0),
            Prim::Cas {
                obj: a,
                expected: 3,
                new: 9,
            },
        );
        assert_eq!(mem.peek(a), 5);
        mem.undo_last();
        assert_eq!(mem.peek(a), 5);
        assert!(mem.log().is_empty());
    }

    #[test]
    #[should_panic(expected = "undo_last requires")]
    fn undo_on_empty_log_panics() {
        let mut mem = Memory::new();
        let _ = mem.alloc(0);
        mem.undo_last();
    }

    #[test]
    #[should_panic(expected = "reset snapshot")]
    fn reset_rejects_mismatched_snapshot() {
        let mut mem = Memory::new();
        let _ = mem.alloc(0);
        mem.reset_to(&[]);
    }
}
