//! Interval linearizability checking at scale (Wing–Gong–Lowe style).
//!
//! [`check_exact`](super::check_exact) is a complete decision procedure
//! but refuses histories over 63 operations: its linearized set is a
//! `u64` bitmask. This module removes the cap. [`check_interval`] runs
//! the same search — happens-before over invocation/response intervals,
//! an in-degree-zero frontier of linearizable candidates, depth-first
//! search with a memo of failed `(linearized set, sequential-spec
//! state)` pairs — over a representation that scales to histories of
//! tens of thousands of operations.
//!
//! # How the representation scales
//!
//! The precedence relation of a history is an **interval order**
//! (`a` precedes `b` iff `a.response <= b.invoke`). Interval orders
//! admit a minimum *chain decomposition* computed greedily in
//! `O(n log n)`: walking operations by invocation tick and appending
//! each to any chain whose last response is `<= invoke` partitions the
//! history into `w` chains, where `w` is the maximum number of mutually
//! overlapping operations (for executor histories, at most the process
//! count plus crash-pending operations). Two facts make chains the
//! right search state:
//!
//! * Every set linearized by a partial search is a *down-set* of the
//!   precedence order, and a down-set is exactly a position per chain —
//!   the search state is a `Vec<u32>` of length `w`, not a bitmask of
//!   length `n`.
//! * Responses strictly increase along a chain, so "all predecessors of
//!   op `i` are linearized" reduces to "no other chain's head precedes
//!   `i`" — the in-degree-zero frontier is computable from the `w`
//!   chain heads alone, in `O(w)` per node.
//!
//! The memo keys failed states by `(chain positions, spec state)`, the
//! direct analogue of `check_exact`'s `(bitmask, spec state)`; the DFS
//! is iterative (explicit stack), so history length never threatens the
//! call stack. Verdict semantics are identical to `check_exact` — the
//! completion rule for pending operations (each may linearize anywhere
//! after its invocation or be omitted), `Unit` expected outputs acting
//! as wildcards, acceptance once every *complete* operation is
//! linearized — and `crates/sim/tests/interval_vs_exact.rs` fuzzes the
//! two checkers differentially on every [`SeqSpec`].
//!
//! Worst-case cost is still exponential in the overlap width `w` (the
//! problem is NP-hard in general), but `w` is small for histories
//! produced by `N`-process executions, and the memo makes the common
//! linearizable case near-linear.

use std::collections::{BTreeSet, HashMap, HashSet};

use super::{output_within_k, Violation, ViolationKind};
use crate::history::{History, OpRecord};
use crate::spec::{SeqSpec, SpecState};

/// One DFS node: the spec state on arrival, the frontier of enabled
/// chains, a cursor into it, and which chain was advanced to get here
/// (`u32::MAX` for the root).
struct Frame {
    state: SpecState,
    cands: Vec<u32>,
    next: usize,
    came_via: u32,
}

/// Greedy minimum chain decomposition of the interval order, processing
/// operations by invocation tick. Returns chains of indices into `ops`;
/// consecutive chain elements satisfy `prev.response <= next.invoke`,
/// so responses strictly increase along each chain and a pending
/// operation is always the last element of its chain.
fn chain_decomposition(ops: &[OpRecord]) -> Vec<Vec<usize>> {
    let mut order: Vec<usize> = (0..ops.len()).collect();
    order.sort_by_key(|&i| ops[i].invoke);

    let mut chains: Vec<Vec<usize>> = Vec::new();
    // Chains available for extension, keyed by their last response.
    let mut avail: BTreeSet<(usize, usize)> = BTreeSet::new();
    for i in order {
        let op = &ops[i];
        let c = match avail.range(..=(op.invoke, usize::MAX)).next_back().copied() {
            Some(key) => {
                avail.remove(&key);
                key.1
            }
            None => {
                chains.push(Vec::new());
                chains.len() - 1
            }
        };
        chains[c].push(i);
        if let Some(r) = op.response {
            avail.insert((r, c));
        }
    }
    chains
}

/// The in-degree-zero frontier: chains whose head operation has no
/// un-linearized predecessor. Head `i` of chain `c` is enabled iff no
/// *other* chain's head precedes it, i.e. the minimum response among
/// the other heads is `> i.invoke` (pending heads never precede
/// anything). Computed with a min/second-min pass, `O(w)`.
fn enabled_heads(chains: &[Vec<usize>], pos: &[u32], ops: &[OpRecord]) -> Vec<u32> {
    const INF: usize = usize::MAX;
    let mut min1 = INF;
    let mut min1_chain = usize::MAX;
    let mut min2 = INF;
    let mut heads: Vec<(u32, usize)> = Vec::new();
    for (c, chain) in chains.iter().enumerate() {
        if let Some(&i) = chain.get(pos[c] as usize) {
            let r = ops[i].response.unwrap_or(INF);
            if r < min1 {
                min2 = min1;
                min1 = r;
                min1_chain = c;
            } else if r < min2 {
                min2 = r;
            }
            heads.push((c as u32, i));
        }
    }
    let mut out = Vec::with_capacity(heads.len());
    for &(c, i) in &heads {
        let other_min = if c as usize == min1_chain { min2 } else { min1 };
        if other_min > ops[i].invoke {
            out.push(c);
        }
    }
    out
}

/// Decides whether `history` is linearizable with respect to `spec`,
/// with no cap on history length.
///
/// Same verdict semantics as [`check_exact`](super::check_exact) —
/// pending operations follow the completion rule (linearize anywhere
/// after invocation, or omit), and acceptance requires linearizing
/// every complete operation — but the search state scales: histories
/// of tens of thousands of operations from `N`-process executions are
/// decided in near-linear time. `check_exact` remains the ≤63-op
/// differential oracle for this checker.
///
/// # Errors
///
/// Returns [`ViolationKind::NoLinearization`] if no legal order exists.
/// Never returns [`ViolationKind::Uncheckable`].
pub fn check_interval(history: &History, spec: &SeqSpec) -> Result<(), Violation> {
    check_interval_k(history, spec, 1)
}

/// [`check_interval`] generalized to k-multiplicative accuracy
/// (ISSUE 9): decides whether some linearization exists in which every
/// scalar read output `v` satisfies `V / k ≤ v ≤ V` against the spec
/// value `V` at its linearization point, with no cap on history length.
/// The search is identical to the exact one — only the output
/// acceptance test ([`output_within_k`](super::output_within_k)) is
/// relaxed — so `k = 1` reduces bit-for-bit to [`check_interval`]'s
/// verdicts, and [`check_exact_k`](super::check_exact_k) remains the
/// ≤63-op differential oracle at every `k`.
///
/// # Panics
///
/// Panics if `k == 0` (the accuracy factor is `≥ 1` by definition).
///
/// # Errors
///
/// Returns [`ViolationKind::NoLinearization`] if no legal order exists
/// even under the k-envelope.
pub fn check_interval_k(history: &History, spec: &SeqSpec, k: u64) -> Result<(), Violation> {
    assert!(k >= 1, "accuracy factor k must be >= 1");
    let ops = history.ops();
    let mut remaining = ops.iter().filter(|o| o.is_complete()).count();
    if remaining == 0 {
        // Only pending operations (or none): omit them all.
        return Ok(());
    }

    let chains = chain_decomposition(ops);
    let width = chains.len();
    let mut pos: Vec<u32> = vec![0; width];
    // Failed states: chain positions -> spec states already proven dead.
    let mut failed: HashMap<Vec<u32>, HashSet<SpecState>> = HashMap::new();

    let mut stack: Vec<Frame> = Vec::new();
    stack.push(Frame {
        state: spec.init(),
        cands: enabled_heads(&chains, &pos, ops),
        next: 0,
        came_via: u32::MAX,
    });

    while let Some(top) = stack.last_mut() {
        if let Some(&c) = top.cands.get(top.next) {
            top.next += 1;
            let c = c as usize;
            let i = chains[c][pos[c] as usize];
            let op = &ops[i];
            let (next_state, expected) = spec.apply(&top.state, op.pid, &op.desc);
            if let Some(observed) = &op.output {
                if !output_within_k(observed, &expected, k) {
                    continue;
                }
            }
            pos[c] += 1;
            if op.is_complete() {
                remaining -= 1;
                if remaining == 0 {
                    return Ok(());
                }
            }
            if failed
                .get(&pos)
                .is_some_and(|states| states.contains(&next_state))
            {
                pos[c] -= 1;
                if op.is_complete() {
                    remaining += 1;
                }
                continue;
            }
            let cands = enabled_heads(&chains, &pos, ops);
            stack.push(Frame {
                state: next_state,
                cands,
                next: 0,
                came_via: c as u32,
            });
        } else {
            let frame = stack.pop().expect("loop condition guarantees a frame");
            failed.entry(pos.clone()).or_default().insert(frame.state);
            if frame.came_via != u32::MAX {
                let c = frame.came_via as usize;
                pos[c] -= 1;
                let i = chains[c][pos[c] as usize];
                if ops[i].is_complete() {
                    remaining += 1;
                }
            }
        }
    }

    let envelope = if k > 1 {
        format!(" within accuracy factor k={k}")
    } else {
        String::new()
    };
    Err(Violation::new(
        ViolationKind::NoLinearization,
        format!(
            "no legal linearization of {} operations exists{envelope} \
             (interval search over {width} chains)",
            ops.len()
        ),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{OpDesc, OpOutput};
    use crate::ProcessId;

    fn op(pid: usize, desc: OpDesc, invoke: usize, response: usize, output: OpOutput) -> OpRecord {
        OpRecord {
            pid: ProcessId(pid),
            desc,
            invoke,
            response: Some(response),
            output: Some(output),
            steps: 1,
        }
    }

    fn pending(pid: usize, desc: OpDesc, invoke: usize) -> OpRecord {
        OpRecord {
            pid: ProcessId(pid),
            desc,
            invoke,
            response: None,
            output: None,
            steps: 1,
        }
    }

    fn hist(ops: Vec<OpRecord>) -> History {
        let mut sorted = ops;
        sorted.sort_by_key(|o| o.invoke);
        sorted.into_iter().collect()
    }

    const MAX_SPEC: SeqSpec = SeqSpec::MaxRegister { initial: -1 };

    #[test]
    fn empty_history_is_linearizable() {
        assert!(check_interval(&History::new(), &SeqSpec::Counter).is_ok());
    }

    #[test]
    fn sequential_max_register_history_is_linearizable() {
        let h = hist(vec![
            op(0, OpDesc::WriteMax(5), 0, 1, OpOutput::Unit),
            op(1, OpDesc::ReadMax, 2, 3, OpOutput::Value(5)),
        ]);
        assert!(check_interval(&h, &MAX_SPEC).is_ok());
    }

    #[test]
    fn stale_read_is_rejected() {
        let h = hist(vec![
            op(0, OpDesc::WriteMax(5), 0, 1, OpOutput::Unit),
            op(1, OpDesc::ReadMax, 2, 3, OpOutput::Value(-1)),
        ]);
        let v = check_interval(&h, &MAX_SPEC).unwrap_err();
        assert_eq!(v.kind, ViolationKind::NoLinearization);
    }

    #[test]
    fn concurrent_write_may_or_may_not_be_seen() {
        for seen in [-1, 5] {
            let h = hist(vec![
                op(0, OpDesc::WriteMax(5), 0, 4, OpOutput::Unit),
                op(1, OpDesc::ReadMax, 1, 3, OpOutput::Value(seen)),
            ]);
            assert!(check_interval(&h, &MAX_SPEC).is_ok(), "seen={seen}");
        }
    }

    #[test]
    fn counter_interval_conditions() {
        let ok = hist(vec![
            op(0, OpDesc::CounterIncrement, 0, 1, OpOutput::Unit),
            op(1, OpDesc::CounterRead, 2, 3, OpOutput::Value(1)),
        ]);
        assert!(check_interval(&ok, &SeqSpec::Counter).is_ok());
        for wrong in [0, 2] {
            let bad = hist(vec![
                op(0, OpDesc::CounterIncrement, 0, 1, OpOutput::Unit),
                op(1, OpDesc::CounterRead, 2, 3, OpOutput::Value(wrong)),
            ]);
            assert!(check_interval(&bad, &SeqSpec::Counter).is_err(), "{wrong}");
        }
    }

    #[test]
    fn pending_increment_may_linearize_or_not() {
        for (seen, ok) in [(0, true), (1, true), (2, false)] {
            let mut h = History::new();
            h.push(pending(0, OpDesc::CounterIncrement, 0));
            h.push(op(1, OpDesc::CounterRead, 1, 2, OpOutput::Value(seen)));
            assert_eq!(
                check_interval(&h, &SeqSpec::Counter).is_ok(),
                ok,
                "seen={seen}"
            );
        }
    }

    #[test]
    fn pending_increment_does_not_lower_the_floor() {
        let mut h = History::new();
        h.push(op(0, OpDesc::CounterIncrement, 0, 1, OpOutput::Unit));
        h.push(pending(1, OpDesc::CounterIncrement, 2));
        h.push(op(2, OpDesc::CounterRead, 3, 4, OpOutput::Value(0)));
        assert!(check_interval(&h, &SeqSpec::Counter).is_err());
    }

    #[test]
    fn pending_snapshot_update_may_linearize_or_not() {
        for (seen, ok) in [(0, true), (1, true), (9, false)] {
            let mut h = History::new();
            h.push(pending(0, OpDesc::Update(1), 0));
            h.push(op(2, OpDesc::Scan, 1, 2, OpOutput::Vector(vec![seen, 0])));
            let spec = SeqSpec::Snapshot { n: 2, initial: 0 };
            assert_eq!(check_interval(&h, &spec).is_ok(), ok, "seen={seen}");
        }
    }

    #[test]
    fn all_pending_history_is_accepted_by_omission() {
        let mut h = History::new();
        h.push(pending(0, OpDesc::CounterIncrement, 0));
        h.push(pending(1, OpDesc::CounterRead, 1));
        assert!(check_interval(&h, &SeqSpec::Counter).is_ok());
    }

    #[test]
    fn snapshot_incomparable_scans_fail() {
        let h = hist(vec![
            op(0, OpDesc::Update(1), 0, 10, OpOutput::Unit),
            op(1, OpDesc::Update(2), 0, 10, OpOutput::Unit),
            op(2, OpDesc::Scan, 1, 2, OpOutput::Vector(vec![1, 0])),
            op(3, OpDesc::Scan, 3, 4, OpOutput::Vector(vec![0, 2])),
        ]);
        let spec = SeqSpec::Snapshot { n: 2, initial: 0 };
        assert!(check_interval(&h, &spec).is_err());
    }

    #[test]
    fn decides_past_the_exact_checker_cap() {
        // 64+ sequential increments: `check_exact` refuses, this decides.
        let ops: Vec<OpRecord> = (0..200)
            .map(|i| {
                op(
                    0,
                    OpDesc::CounterIncrement,
                    2 * i,
                    2 * i + 1,
                    OpOutput::Unit,
                )
            })
            .collect();
        assert!(check_interval(&hist(ops), &SeqSpec::Counter).is_ok());
    }

    #[test]
    fn rejects_violations_past_the_exact_checker_cap() {
        // 100 completed increments, then a read that misses half of them.
        let mut ops: Vec<OpRecord> = (0..100)
            .map(|i| {
                op(
                    0,
                    OpDesc::CounterIncrement,
                    2 * i,
                    2 * i + 1,
                    OpOutput::Unit,
                )
            })
            .collect();
        ops.push(op(1, OpDesc::CounterRead, 300, 301, OpOutput::Value(50)));
        let v = check_interval(&hist(ops), &SeqSpec::Counter).unwrap_err();
        assert_eq!(v.kind, ViolationKind::NoLinearization);
    }

    #[test]
    fn decides_thousands_of_overlapping_ops() {
        // 4 processes, 1000 alternating update/read rounds each, laid out
        // with genuine overlap: process p's k-th op spans
        // [4k + p, 4k + p + 4). Reads return the count of increments
        // whose interval already closed — a feasible value.
        let n = 4usize;
        let rounds = 1000usize;
        let mut ops: Vec<OpRecord> = Vec::new();
        for p in 0..n {
            for k in 0..rounds {
                let invoke = 4 * k + p;
                let response = invoke + 4;
                if k % 2 == 0 {
                    ops.push(op(
                        p,
                        OpDesc::CounterIncrement,
                        invoke,
                        response,
                        OpOutput::Unit,
                    ));
                } else {
                    // Count increments with response <= invoke: process q
                    // contributed its even rounds k' with 4k' + q + 4 <= invoke.
                    let mut seen = 0;
                    for q in 0..n {
                        let mut done = 0;
                        for k2 in (0..rounds).step_by(2) {
                            if 4 * k2 + q + 4 <= invoke {
                                done += 1;
                            }
                        }
                        seen += done;
                    }
                    ops.push(op(
                        p,
                        OpDesc::CounterRead,
                        invoke,
                        response,
                        OpOutput::Value(seen),
                    ));
                }
            }
        }
        let h = hist(ops);
        assert_eq!(h.len(), n * rounds);
        assert!(check_interval(&h, &SeqSpec::Counter).is_ok());
    }

    #[test]
    fn k_envelope_decides_past_the_exact_checker_cap() {
        // 100 completed increments, then a read of 50: exactly on the
        // k=2 boundary (50·2 = 100), outside at k=1 — far beyond
        // check_exact's 63-op cap in both cases.
        let base: Vec<OpRecord> = (0..100)
            .map(|i| {
                op(
                    0,
                    OpDesc::CounterIncrement,
                    2 * i,
                    2 * i + 1,
                    OpOutput::Unit,
                )
            })
            .collect();
        for (seen, k, ok) in [
            (50, 2, true),
            (50, 1, false),
            (49, 2, false),
            (101, 2, false),
        ] {
            let mut ops = base.clone();
            ops.push(op(1, OpDesc::CounterRead, 300, 301, OpOutput::Value(seen)));
            assert_eq!(
                check_interval_k(&hist(ops), &SeqSpec::Counter, k).is_ok(),
                ok,
                "seen={seen} k={k}"
            );
        }
    }

    #[test]
    fn chain_decomposition_width_matches_overlap() {
        // Two fully sequential processes interleaved in time but never
        // overlapping collapse to one chain; two overlapping ops need two.
        let seq = hist(vec![
            op(0, OpDesc::CounterIncrement, 0, 1, OpOutput::Unit),
            op(1, OpDesc::CounterIncrement, 2, 3, OpOutput::Unit),
        ]);
        assert_eq!(chain_decomposition(seq.ops()).len(), 1);
        let conc = hist(vec![
            op(0, OpDesc::CounterIncrement, 0, 3, OpOutput::Unit),
            op(1, OpDesc::CounterIncrement, 1, 4, OpOutput::Unit),
        ]);
        assert_eq!(chain_decomposition(conc.ops()).len(), 2);
    }
}
