//! Linearizability checking.
//!
//! Three layers:
//!
//! * [`check_exact`] — a complete Wing–Gong-style search over a `u64`
//!   bitmask of linearized operations. Decides linearizability exactly
//!   but refuses histories over 63 operations; it is the differential
//!   oracle for the interval checker and the fast checkers below.
//! * [`check_interval`] — the same complete search over a chain
//!   decomposition of the interval order (see [`wgl`] for the
//!   construction), with no cap on history length: histories of tens of
//!   thousands of operations, including pending operations left by
//!   crashes, are *decided* rather than refused.
//! * [`check_max_register`], [`check_counter`], [`check_snapshot`] —
//!   fast, *sound* checkers built on interval conditions specific to each
//!   object family. Sound means every reported [`Violation`] is a real
//!   linearizability violation; they may in principle accept a
//!   pathological non-linearizable history, so the property-test suite
//!   cross-validates them against [`check_exact`] on small histories.
//!
//! Every checker except the snapshot one also comes as a `_k` variant
//! ([`check_exact_k`], [`check_interval_k`], [`check_max_register_k`],
//! [`check_counter_k`]) deciding *linearizability up to a
//! k-multiplicative accuracy factor* (ISSUE 9): a scalar read may
//! underestimate the spec value by at most the factor `k` and may never
//! overestimate it — the contract of the HKM approximate objects in
//! `ruo-core`. The plain names are thin wrappers over the `_k` variants
//! at `k = 1`, which reduces bit-for-bit to the exact verdicts.
//!
//! All checkers take the executor's [`History`]: operation intervals in
//! global event ticks, where operation `a` precedes `b` iff
//! `a.response <= b.invoke`.

use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;

use crate::history::{History, OpDesc, OpOutput, OpRecord};
use crate::spec::{SeqSpec, SpecState};
use crate::Word;

pub mod wgl;

pub use wgl::{check_interval, check_interval_k};

/// Whether `observed` is an acceptable output for an operation whose
/// legal sequential output is `expected`, under k-multiplicative
/// accuracy (ISSUE 9): a scalar read may underestimate the true value
/// by at most the factor `k` and may never overestimate it
/// (`observed ≤ expected ≤ k · observed`).
///
/// This is the **single relaxation point** shared by [`check_exact_k`]
/// and [`check_interval_k`] — everything else about their searches is
/// untouched, which is why the two agree by construction at every `k`.
/// The relaxation applies only where it is well defined:
///
/// * `Unit` outputs accept anything (updates return nothing);
/// * scalar values relax only when both sides are non-negative —
///   negative values (e.g. a `-∞`-floored max register) compare
///   exactly, since multiplicative error is meaningless below zero;
/// * vectors (snapshot scans) always compare exactly — the HKM
///   constructions define no k-relaxed snapshot;
/// * `k = 1` is bit-for-bit today's exact comparison.
pub(crate) fn output_within_k(observed: &OpOutput, expected: &OpOutput, k: u64) -> bool {
    match (observed, expected) {
        (_, OpOutput::Unit) => true,
        (OpOutput::Value(o), OpOutput::Value(x)) => {
            if k <= 1 || *o < 0 || *x < 0 {
                o == x
            } else {
                *o <= *x && (*o as i128) * (k as i128) >= *x as i128
            }
        }
        (o, x) => o == x,
    }
}

/// Why a history is not linearizable (or not checkable).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// A read returned a value smaller than one it was required to see.
    StaleRead,
    /// A read returned a value that no operation ever wrote.
    UnwrittenValue,
    /// Two non-overlapping reads returned values in the wrong order.
    NonMonotone,
    /// A counter read fell outside its feasible interval.
    CountOutOfRange,
    /// Two scans returned vectors that no single linearization can order.
    IncomparableScans,
    /// The exhaustive search found no legal linearization.
    NoLinearization,
    /// The history violates a checker precondition (e.g. duplicate
    /// per-process update values for the snapshot checker).
    BadWorkload,
    /// The history exceeds the checker's capacity (the exact checker's
    /// 63-operation bitmask limit). Not a linearizability verdict —
    /// re-check with [`check_interval`], which has no cap.
    Uncheckable,
}

/// A linearizability violation, with human-readable detail.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The kind of violation.
    pub kind: ViolationKind,
    /// Human-readable description naming the offending operations.
    pub detail: String,
}

impl Violation {
    fn new(kind: ViolationKind, detail: impl Into<String>) -> Self {
        Violation {
            kind,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}: {}", self.kind, self.detail)
    }
}

impl Error for Violation {}

/// Exhaustively decides whether `history` is linearizable with respect to
/// `spec`.
///
/// Pending operations (no response) are treated per the standard
/// completion rule: each may be linearized at any point after its
/// invocation, or omitted entirely.
///
/// # Errors
///
/// Returns [`ViolationKind::NoLinearization`] if no legal order exists,
/// or [`ViolationKind::Uncheckable`] if the history has more than 63
/// operations (the bitmask search's capacity — use [`check_interval`]
/// for large histories). `Uncheckable` is a capacity report, not a
/// linearizability verdict; crash-truncated soak runs check it
/// explicitly instead of aborting.
pub fn check_exact(history: &History, spec: &SeqSpec) -> Result<(), Violation> {
    check_exact_k(history, spec, 1)
}

/// [`check_exact`] generalized to k-multiplicative accuracy (ISSUE 9):
/// decides whether some linearization exists in which every scalar read
/// output `v` satisfies `V / k ≤ v ≤ V` against the spec value `V` at
/// its linearization point ("linearizable up to factor `k`"). The search
/// is identical to the exact one — only the output acceptance test
/// ([`output_within_k`]) is relaxed — so `k = 1` reduces bit-for-bit to
/// [`check_exact`]'s verdicts.
///
/// # Panics
///
/// Panics if `k == 0` (the accuracy factor is `≥ 1` by definition).
///
/// # Errors
///
/// As [`check_exact`]: [`ViolationKind::NoLinearization`] if no legal
/// order exists even under the k-envelope, [`ViolationKind::Uncheckable`]
/// above 63 operations.
pub fn check_exact_k(history: &History, spec: &SeqSpec, k: u64) -> Result<(), Violation> {
    assert!(k >= 1, "accuracy factor k must be >= 1");
    let ops = history.ops();
    if ops.len() > 63 {
        return Err(Violation::new(
            ViolationKind::Uncheckable,
            format!(
                "exact checker supports at most 63 operations, got {}",
                ops.len()
            ),
        ));
    }
    let n = ops.len();
    let all_complete: u64 = ops
        .iter()
        .enumerate()
        .filter(|(_, o)| o.is_complete())
        .fold(0u64, |m, (i, _)| m | (1 << i));

    // Precompute precedence: must[i] = set of ops that must come before i.
    let mut must_before: Vec<u64> = vec![0; n];
    for (i, oi) in ops.iter().enumerate() {
        for (j, oj) in ops.iter().enumerate() {
            if i != j && oj.precedes(oi) {
                must_before[i] |= 1 << j;
            }
        }
    }

    // Failed-state memo, keyed by linearized-set mask. Nesting the
    // states per mask lets the hot probe borrow `state` instead of
    // cloning it on every DFS node (for snapshot specs a clone is a Vec
    // allocation).
    let mut failed: HashMap<u64, HashSet<SpecState>> = HashMap::new();

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        mask: u64,
        state: &SpecState,
        ops: &[OpRecord],
        spec: &SeqSpec,
        k: u64,
        all_complete: u64,
        must_before: &[u64],
        failed: &mut HashMap<u64, HashSet<SpecState>>,
    ) -> bool {
        if mask & all_complete == all_complete {
            return true;
        }
        if failed
            .get(&mask)
            .is_some_and(|states| states.contains(state))
        {
            return false;
        }
        for (i, op) in ops.iter().enumerate() {
            let bit = 1u64 << i;
            if mask & bit != 0 {
                continue;
            }
            if must_before[i] & !mask != 0 {
                continue; // some predecessor not yet linearized
            }
            let (next, expected) = spec.apply(state, op.pid, &op.desc);
            if let Some(observed) = &op.output {
                if !output_within_k(observed, &expected, k) {
                    continue;
                }
            }
            if dfs(
                mask | bit,
                &next,
                ops,
                spec,
                k,
                all_complete,
                must_before,
                failed,
            ) {
                return true;
            }
        }
        failed.entry(mask).or_default().insert(state.clone());
        false
    }

    if dfs(
        0,
        &spec.init(),
        ops,
        spec,
        k,
        all_complete,
        &must_before,
        &mut failed,
    ) {
        Ok(())
    } else {
        let envelope = if k > 1 {
            format!(" within accuracy factor k={k}")
        } else {
            String::new()
        };
        Err(Violation::new(
            ViolationKind::NoLinearization,
            format!("no legal linearization of {n} operations exists{envelope}"),
        ))
    }
}

fn fmt_op(i: usize, op: &OpRecord) -> String {
    format!(
        "op#{i} {} by {} [{}, {}]",
        op.desc,
        op.pid,
        op.invoke,
        op.response
            .map(|r| r.to_string())
            .unwrap_or_else(|| "pending".into())
    )
}

/// Running maxima over events sorted by completion tick: answers "among
/// entries with `response <= t`, what is the largest value (and which
/// op held it)?" in `O(log n)` after an `O(n log n)` build. The fast
/// checkers use it to replace their quadratic all-pairs scans, since
/// DPOR-scaled explorations hand them far more histories.
struct PrefixMax {
    /// `(response, best_value_so_far, op index holding it)`, sorted by
    /// response.
    entries: Vec<(usize, Word, usize)>,
}

impl PrefixMax {
    /// Builds from `(op index, response tick, value)` triples.
    fn new(mut items: Vec<(usize, usize, Word)>) -> Self {
        items.sort_by_key(|&(_, resp, _)| resp);
        let mut entries = Vec::with_capacity(items.len());
        let mut best: Option<(Word, usize)> = None;
        for (i, resp, v) in items {
            let (bv, bi) = match best {
                Some((bv, bi)) if bv >= v => (bv, bi),
                _ => (v, i),
            };
            best = Some((bv, bi));
            entries.push((resp, bv, bi));
        }
        PrefixMax { entries }
    }

    /// Largest value among entries with `response <= t`, with the
    /// holder's op index.
    fn up_to(&self, t: usize) -> Option<(Word, usize)> {
        let k = self.entries.partition_point(|&(resp, _, _)| resp <= t);
        (k > 0).then(|| {
            let (_, v, i) = self.entries[k - 1];
            (v, i)
        })
    }
}

/// Fast sound checker for max-register histories.
///
/// Verifies, for every completed `ReadMax` returning `v`:
///
/// 1. `v` is `initial` or was the operand of some `WriteMax(v)` invoked
///    before the read responded (no value materializes from nowhere);
/// 2. `v` is at least the operand of every `WriteMax` that completed
///    before the read was invoked (reads do not miss completed writes);
/// 3. non-overlapping reads return non-decreasing values (the register
///    is monotone).
///
/// Pending operations follow the standard completion rule: a pending
/// `WriteMax` (e.g. left behind by a crash) counts as *invoked* for
/// condition 1 — it may have taken effect, so reads may see its value —
/// but never as *completed* for condition 2, so no read is required to
/// see it. Pending reads returned nothing and are ignored.
///
/// # Errors
///
/// Returns the first violated condition.
pub fn check_max_register(history: &History, initial: Word) -> Result<(), Violation> {
    check_max_register_k(history, initial, 1)
}

/// [`check_max_register`] generalized to k-multiplicative accuracy
/// (ISSUE 9): a read returning `v` is allowed to underestimate the true
/// maximum `M` by at most the factor `k` (`v ≤ M ≤ k·v`, for
/// non-negative values). The three conditions relax accordingly:
///
/// 1. some value that could be the true maximum lies in the read's
///    envelope `[v, k·v]` — a `WriteMax` operand invoked before the
///    read's response, or `initial` itself;
/// 2. `k·v` is at least the operand of every `WriteMax` that completed
///    before the read was invoked;
/// 3. for non-overlapping reads returning `v1` then `v2`: `v1 ≤ k·v2`
///    (the underlying maxima are monotone even when the observed values
///    are not).
///
/// Negative observed values (the `initial` floor of a fresh register)
/// compare exactly — multiplicative error is meaningless below zero —
/// and `k = 1` reduces bit-for-bit to [`check_max_register`]. Still
/// *sound*: every reported violation is a real k-linearizability
/// violation.
///
/// # Panics
///
/// Panics if `k == 0`.
///
/// # Errors
///
/// Returns the first violated condition.
pub fn check_max_register_k(history: &History, initial: Word, k: u64) -> Result<(), Violation> {
    assert!(k >= 1, "accuracy factor k must be >= 1");
    let ops = history.ops();
    let reads: Vec<(usize, &OpRecord, Word)> = ops
        .iter()
        .enumerate()
        .filter(|(_, o)| o.desc == OpDesc::ReadMax && o.is_complete())
        .map(|(i, o)| {
            let v = o
                .output
                .as_ref()
                .and_then(|out| out.value())
                .expect("completed ReadMax has a value");
            (i, o, v)
        })
        .collect();

    // Single-pass indexes over the writes (the old all-pairs scans were
    // O(ops²) per history):
    // * earliest invocation tick per written value, for condition 1;
    // * prefix maxima of completed writes by response tick, for
    //   condition 2.
    let mut first_invoke: HashMap<Word, usize> = HashMap::new();
    let mut completed_writes: Vec<(usize, usize, Word)> = Vec::new();
    for (j, o) in ops.iter().enumerate() {
        if let OpDesc::WriteMax(wv) = o.desc {
            let slot = first_invoke.entry(wv).or_insert(o.invoke);
            *slot = (*slot).min(o.invoke);
            if let Some(r) = o.response {
                completed_writes.push((j, r, wv));
            }
        }
    }
    let write_max_before = PrefixMax::new(completed_writes);

    // Relaxed condition 1 needs a range query per read ("is any written
    // value inside [v, k·v] invoked before my response?"). An offline
    // sweep in response order over a BTreeSet of invoked operands keeps
    // it O((reads + writes) · log writes) instead of a value scan per
    // read.
    let mut envelope_witness: Vec<bool> = vec![false; reads.len()];
    if k > 1 {
        let mut writes_by_invoke: Vec<(usize, Word)> = ops
            .iter()
            .filter_map(|o| match o.desc {
                OpDesc::WriteMax(wv) => Some((o.invoke, wv)),
                _ => None,
            })
            .collect();
        writes_by_invoke.sort_unstable();
        let mut order: Vec<usize> = (0..reads.len()).collect();
        order.sort_by_key(|&ri| reads[ri].1.response.unwrap());
        let mut invoked: std::collections::BTreeSet<Word> = std::collections::BTreeSet::new();
        let mut wi = 0;
        for ri in order {
            let (_, read, v) = reads[ri];
            let resp = read.response.unwrap();
            while wi < writes_by_invoke.len() && writes_by_invoke[wi].0 < resp {
                invoked.insert(writes_by_invoke[wi].1);
                wi += 1;
            }
            if v >= 0 {
                let hi = ((v as i128) * (k as i128)).min(Word::MAX as i128) as Word;
                envelope_witness[ri] = invoked.range(v..=hi).next().is_some();
            }
        }
    }

    for (ri, &(i, read, v)) in reads.iter().enumerate() {
        // Condition 1: something inside the envelope was actually
        // written (or is the floor).
        if k <= 1 || v < 0 {
            if v != initial {
                let written = first_invoke
                    .get(&v)
                    .is_some_and(|&inv| inv < read.response.unwrap());
                if !written {
                    return Err(Violation::new(
                        ViolationKind::UnwrittenValue,
                        format!(
                            "{} returned {v}, never written before its response",
                            fmt_op(i, read)
                        ),
                    ));
                }
            }
        } else {
            let hi = (v as i128) * (k as i128);
            let initial_in_envelope = initial >= v && (initial as i128) <= hi;
            if !initial_in_envelope && !envelope_witness[ri] {
                return Err(Violation::new(
                    ViolationKind::UnwrittenValue,
                    format!(
                        "{} returned {v}, but nothing written before its response \
                         lies in its k={k} envelope [{v}, {hi}]",
                        fmt_op(i, read)
                    ),
                ));
            }
        }
        // Condition 2: no completed preceding write is missed (beyond
        // the allowed factor-k underestimate).
        if let Some((wv, j)) = write_max_before.up_to(read.invoke) {
            let missed = if k <= 1 || v < 0 {
                wv > v
            } else {
                (wv as i128) > (v as i128) * (k as i128)
            };
            if missed {
                let note = if k > 1 {
                    format!(" (outside the k={k} envelope)")
                } else {
                    String::new()
                };
                return Err(Violation::new(
                    ViolationKind::StaleRead,
                    format!(
                        "{} returned {v} but {} completed before it{note}",
                        fmt_op(i, read),
                        fmt_op(j, &ops[j])
                    ),
                ));
            }
        }
    }
    // Condition 3: monotone across non-overlapping reads (prefix maxima
    // again: a read conflicts iff some read completing no later than its
    // invocation returned a value larger than k times its own).
    let read_max_before = PrefixMax::new(
        reads
            .iter()
            .map(|&(i, r, v)| (i, r.response.unwrap(), v))
            .collect(),
    );
    for &(i2, r2, v2) in &reads {
        if let Some((v1, i1)) = read_max_before.up_to(r2.invoke) {
            let non_monotone = if k <= 1 || v2 < 0 {
                v1 > v2
            } else {
                (v1 as i128) > (v2 as i128) * (k as i128)
            };
            if non_monotone {
                let note = if k > 1 {
                    format!(" (below the k={k} envelope)")
                } else {
                    String::new()
                };
                return Err(Violation::new(
                    ViolationKind::NonMonotone,
                    format!(
                        "{} returned {v1} but later {} returned {v2}{note}",
                        fmt_op(i1, &ops[i1]),
                        fmt_op(i2, r2)
                    ),
                ));
            }
        }
    }
    Ok(())
}

/// Fast sound checker for counter histories.
///
/// Verifies, for every completed `CounterRead` returning `c`:
///
/// 1. `c` is at least the number of `CounterIncrement`s that completed
///    before the read was invoked;
/// 2. `c` is at most the number of `CounterIncrement`s invoked before the
///    read responded;
/// 3. non-overlapping reads return non-decreasing counts.
///
/// Pending operations follow the completion rule: a pending
/// `CounterIncrement` widens the feasible interval's upper bound
/// (condition 2: it *may* have taken effect) but never the lower bound
/// (condition 1: no read is required to see it). Pending reads are
/// ignored.
///
/// # Errors
///
/// Returns the first violated condition.
pub fn check_counter(history: &History) -> Result<(), Violation> {
    check_counter_k(history, 1)
}

/// [`check_counter`] generalized to k-multiplicative accuracy (ISSUE 9):
/// a read returning `c` is allowed to underestimate the true count `C`
/// by at most the factor `k` (`c ≤ C ≤ k·c`). The conditions relax to:
///
/// 1. `k·c` is at least the number of `CounterIncrement`s completed
///    before the read was invoked (a factor-k underestimate is allowed);
/// 2. `c` is at most the number invoked before the read responded (an
///    overestimate never is);
/// 3. for non-overlapping reads returning `c1` then `c2`: `c1 ≤ k·c2`
///    (true counts are monotone; observed values at `k > 1` need not
///    be).
///
/// `k = 1` reduces bit-for-bit to [`check_counter`]. Still *sound*:
/// every reported violation is a real k-linearizability violation.
///
/// # Panics
///
/// Panics if `k == 0`.
///
/// # Errors
///
/// Returns the first violated condition.
pub fn check_counter_k(history: &History, k: u64) -> Result<(), Violation> {
    assert!(k >= 1, "accuracy factor k must be >= 1");
    let ops = history.ops();
    let reads: Vec<(usize, &OpRecord, Word)> = ops
        .iter()
        .enumerate()
        .filter(|(_, o)| o.desc == OpDesc::CounterRead && o.is_complete())
        .map(|(i, o)| {
            let v = o
                .output
                .as_ref()
                .and_then(|out| out.value())
                .expect("completed CounterRead has a value");
            (i, o, v)
        })
        .collect();

    // Single-pass: sorted completion/invocation ticks of the increments
    // turn each read's feasible interval into two binary searches
    // (instead of an O(ops) scan per read).
    let mut inc_responses: Vec<usize> = Vec::new();
    let mut inc_invokes: Vec<usize> = Vec::new();
    for o in ops {
        if o.desc == OpDesc::CounterIncrement {
            inc_invokes.push(o.invoke);
            if let Some(r) = o.response {
                inc_responses.push(r);
            }
        }
    }
    inc_responses.sort_unstable();
    inc_invokes.sort_unstable();

    for &(i, read, c) in &reads {
        let completed_before = inc_responses.partition_point(|&r| r <= read.invoke) as Word;
        let invoked_before =
            inc_invokes.partition_point(|&inv| inv < read.response.unwrap()) as Word;
        let out_of_range = if k <= 1 || c < 0 {
            c < completed_before || c > invoked_before
        } else {
            // k·c must reach the completed floor; c itself may never
            // exceed the invoked ceiling (no overestimates).
            c > invoked_before || (c as i128) * (k as i128) < completed_before as i128
        };
        if out_of_range {
            let envelope = if k > 1 {
                format!(" under accuracy factor k={k}")
            } else {
                String::new()
            };
            return Err(Violation::new(
                ViolationKind::CountOutOfRange,
                format!(
                    "{} returned {c}, feasible interval is \
                     [{completed_before}, {invoked_before}]{envelope}",
                    fmt_op(i, read)
                ),
            ));
        }
    }
    let read_max_before = PrefixMax::new(
        reads
            .iter()
            .map(|&(i, r, c)| (i, r.response.unwrap(), c))
            .collect(),
    );
    for &(i2, r2, c2) in &reads {
        if let Some((c1, i1)) = read_max_before.up_to(r2.invoke) {
            let non_monotone = if k <= 1 || c2 < 0 {
                c1 > c2
            } else {
                (c1 as i128) > (c2 as i128) * (k as i128)
            };
            if non_monotone {
                let note = if k > 1 {
                    format!(" (below the k={k} envelope)")
                } else {
                    String::new()
                };
                return Err(Violation::new(
                    ViolationKind::NonMonotone,
                    format!(
                        "{} returned {c1} but later {} returned {c2}{note}",
                        fmt_op(i1, &ops[i1]),
                        fmt_op(i2, r2)
                    ),
                ));
            }
        }
    }
    Ok(())
}

/// Fast sound checker for single-writer snapshot histories.
///
/// Preconditions on the workload (checked, reported as
/// [`ViolationKind::BadWorkload`]): each process's `Update` operands are
/// pairwise distinct and distinct from `initial`, so a scanned segment
/// value identifies a unique position in that process's update sequence.
///
/// Verifies, for every completed `Scan` returning `vec`:
///
/// 1. every `vec[i]` is `initial` or an operand of some `Update` by
///    process `i` invoked before the scan responded;
/// 2. `vec[i]` is not older (in process `i`'s update order) than the last
///    update by `i` that completed before the scan was invoked;
/// 3. all scan vectors are coordinatewise comparable (scans are totally
///    ordered), and non-overlapping scans respect that order.
///
/// Pending operations follow the completion rule: a pending `Update`
/// participates in its process's update sequence (condition 1: scans may
/// see its value) but, never having responded, precedes no scan
/// (condition 2: no scan is required to see it). Pending scans are
/// ignored.
///
/// # Errors
///
/// Returns the first violated condition.
pub fn check_snapshot(history: &History, n: usize, initial: Word) -> Result<(), Violation> {
    let ops = history.ops();

    // Per-process update sequences; value -> 1-based index therein.
    let mut seqs: Vec<Vec<(usize, &OpRecord, Word)>> = vec![Vec::new(); n];
    for (i, o) in ops.iter().enumerate() {
        if let OpDesc::Update(v) = o.desc {
            if o.pid.index() >= n {
                return Err(Violation::new(
                    ViolationKind::BadWorkload,
                    format!("{} updates segment out of range", fmt_op(i, o)),
                ));
            }
            let seq = &mut seqs[o.pid.index()];
            if v == initial || seq.iter().any(|&(_, _, prev)| prev == v) {
                return Err(Violation::new(
                    ViolationKind::BadWorkload,
                    format!(
                        "{} reuses value {v}; checker needs distinct operands",
                        fmt_op(i, o)
                    ),
                ));
            }
            seq.push((i, o, v));
        }
    }
    let pos_of = |seg: usize, v: Word| -> Option<usize> {
        if v == initial {
            return Some(0);
        }
        seqs[seg]
            .iter()
            .position(|&(_, _, sv)| sv == v)
            .map(|p| p + 1)
    };

    let scans: Vec<(usize, &OpRecord, &[Word])> = ops
        .iter()
        .enumerate()
        .filter(|(_, o)| o.desc == OpDesc::Scan && o.is_complete())
        .map(|(i, o)| {
            let v = o
                .output
                .as_ref()
                .and_then(|out| out.vector())
                .expect("completed Scan has a vector");
            (i, o, v)
        })
        .collect();

    let mut scan_positions: Vec<(usize, &OpRecord, Vec<usize>)> = Vec::new();
    for &(i, scan, vec) in &scans {
        if vec.len() != n {
            return Err(Violation::new(
                ViolationKind::BadWorkload,
                format!(
                    "{} returned {} segments, expected {n}",
                    fmt_op(i, scan),
                    vec.len()
                ),
            ));
        }
        let mut positions = Vec::with_capacity(n);
        for (seg, &v) in vec.iter().enumerate() {
            // Condition 1: value exists and was invoked before the response.
            let pos = match pos_of(seg, v) {
                Some(p) => p,
                None => {
                    return Err(Violation::new(
                        ViolationKind::UnwrittenValue,
                        format!(
                            "{} saw {v} in segment {seg}, never written",
                            fmt_op(i, scan)
                        ),
                    ))
                }
            };
            if pos > 0 {
                let (ui, upd, _) = seqs[seg][pos - 1];
                if upd.invoke >= scan.response.unwrap() {
                    return Err(Violation::new(
                        ViolationKind::UnwrittenValue,
                        format!(
                            "{} saw {v} in segment {seg}, but {} was invoked after the scan responded",
                            fmt_op(i, scan),
                            fmt_op(ui, upd)
                        ),
                    ));
                }
            }
            // Condition 2: not older than the last preceding completed update.
            let last_completed = seqs[seg]
                .iter()
                .enumerate()
                .filter(|(_, (_, upd, _))| upd.precedes(scan))
                .map(|(k, _)| k + 1)
                .max()
                .unwrap_or(0);
            if pos < last_completed {
                let (ui, upd, _) = seqs[seg][last_completed - 1];
                return Err(Violation::new(
                    ViolationKind::StaleRead,
                    format!(
                        "{} saw position {pos} of segment {seg}, but {} completed before it",
                        fmt_op(i, scan),
                        fmt_op(ui, upd)
                    ),
                ));
            }
            positions.push(pos);
        }
        scan_positions.push((i, scan, positions));
    }

    // Condition 3: total order on scans.
    for a in 0..scan_positions.len() {
        for b in (a + 1)..scan_positions.len() {
            let (ia, sa, pa) = &scan_positions[a];
            let (ib, sb, pb) = &scan_positions[b];
            let a_le_b = pa.iter().zip(pb).all(|(x, y)| x <= y);
            let b_le_a = pb.iter().zip(pa).all(|(x, y)| x <= y);
            if !a_le_b && !b_le_a {
                return Err(Violation::new(
                    ViolationKind::IncomparableScans,
                    format!(
                        "{} and {} are incomparable",
                        fmt_op(*ia, sa),
                        fmt_op(*ib, sb)
                    ),
                ));
            }
            if sa.precedes(sb) && !a_le_b {
                return Err(Violation::new(
                    ViolationKind::NonMonotone,
                    format!(
                        "{} precedes {} but saw newer values",
                        fmt_op(*ia, sa),
                        fmt_op(*ib, sb)
                    ),
                ));
            }
            if sb.precedes(sa) && !b_le_a {
                return Err(Violation::new(
                    ViolationKind::NonMonotone,
                    format!(
                        "{} precedes {} but saw newer values",
                        fmt_op(*ib, sb),
                        fmt_op(*ia, sa)
                    ),
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{OpDesc, OpOutput, OpRecord};
    use crate::ProcessId;

    fn op(pid: usize, desc: OpDesc, invoke: usize, response: usize, output: OpOutput) -> OpRecord {
        OpRecord {
            pid: ProcessId(pid),
            desc,
            invoke,
            response: Some(response),
            output: Some(output),
            steps: 1,
        }
    }

    fn hist(ops: Vec<OpRecord>) -> History {
        let mut sorted = ops;
        sorted.sort_by_key(|o| o.invoke);
        sorted.into_iter().collect()
    }

    const MAX_SPEC: SeqSpec = SeqSpec::MaxRegister { initial: -1 };

    #[test]
    fn sequential_max_register_history_is_linearizable() {
        let h = hist(vec![
            op(0, OpDesc::WriteMax(5), 0, 1, OpOutput::Unit),
            op(1, OpDesc::ReadMax, 2, 3, OpOutput::Value(5)),
        ]);
        assert!(check_exact(&h, &MAX_SPEC).is_ok());
        assert!(check_max_register(&h, -1).is_ok());
    }

    #[test]
    fn stale_read_is_rejected_by_both_checkers() {
        let h = hist(vec![
            op(0, OpDesc::WriteMax(5), 0, 1, OpOutput::Unit),
            op(1, OpDesc::ReadMax, 2, 3, OpOutput::Value(-1)),
        ]);
        assert!(check_exact(&h, &MAX_SPEC).is_err());
        let v = check_max_register(&h, -1).unwrap_err();
        assert_eq!(v.kind, ViolationKind::StaleRead);
    }

    #[test]
    fn concurrent_write_may_or_may_not_be_seen() {
        // Write overlaps read: both outcomes linearizable.
        for seen in [-1, 5] {
            let h = hist(vec![
                op(0, OpDesc::WriteMax(5), 0, 4, OpOutput::Unit),
                op(1, OpDesc::ReadMax, 1, 3, OpOutput::Value(seen)),
            ]);
            assert!(check_exact(&h, &MAX_SPEC).is_ok(), "seen={seen}");
            assert!(check_max_register(&h, -1).is_ok(), "seen={seen}");
        }
    }

    #[test]
    fn unwritten_value_is_rejected() {
        let h = hist(vec![op(1, OpDesc::ReadMax, 0, 1, OpOutput::Value(9))]);
        assert!(check_exact(&h, &MAX_SPEC).is_err());
        let v = check_max_register(&h, -1).unwrap_err();
        assert_eq!(v.kind, ViolationKind::UnwrittenValue);
    }

    #[test]
    fn non_monotone_reads_are_rejected() {
        let h = hist(vec![
            op(0, OpDesc::WriteMax(5), 0, 10, OpOutput::Unit),
            op(1, OpDesc::ReadMax, 1, 2, OpOutput::Value(5)),
            op(2, OpDesc::ReadMax, 3, 4, OpOutput::Value(-1)),
        ]);
        assert!(check_exact(&h, &MAX_SPEC).is_err());
        let v = check_max_register(&h, -1).unwrap_err();
        assert_eq!(v.kind, ViolationKind::NonMonotone);
    }

    #[test]
    fn counter_interval_conditions() {
        // inc [0,1]; read [2,3] must return exactly 1.
        let ok = hist(vec![
            op(0, OpDesc::CounterIncrement, 0, 1, OpOutput::Unit),
            op(1, OpDesc::CounterRead, 2, 3, OpOutput::Value(1)),
        ]);
        assert!(check_counter(&ok).is_ok());
        assert!(check_exact(&ok, &SeqSpec::Counter).is_ok());

        let missed = hist(vec![
            op(0, OpDesc::CounterIncrement, 0, 1, OpOutput::Unit),
            op(1, OpDesc::CounterRead, 2, 3, OpOutput::Value(0)),
        ]);
        assert_eq!(
            check_counter(&missed).unwrap_err().kind,
            ViolationKind::CountOutOfRange
        );
        assert!(check_exact(&missed, &SeqSpec::Counter).is_err());

        let overcount = hist(vec![
            op(0, OpDesc::CounterIncrement, 0, 1, OpOutput::Unit),
            op(1, OpDesc::CounterRead, 2, 3, OpOutput::Value(2)),
        ]);
        assert_eq!(
            check_counter(&overcount).unwrap_err().kind,
            ViolationKind::CountOutOfRange
        );
        assert!(check_exact(&overcount, &SeqSpec::Counter).is_err());
    }

    #[test]
    fn concurrent_increment_gives_slack() {
        let h = hist(vec![
            op(0, OpDesc::CounterIncrement, 0, 10, OpOutput::Unit),
            op(1, OpDesc::CounterRead, 1, 2, OpOutput::Value(1)),
        ]);
        assert!(check_counter(&h).is_ok());
        assert!(check_exact(&h, &SeqSpec::Counter).is_ok());
    }

    #[test]
    fn counter_reads_must_be_monotone() {
        let h = hist(vec![
            op(0, OpDesc::CounterIncrement, 0, 20, OpOutput::Unit),
            op(1, OpDesc::CounterRead, 1, 2, OpOutput::Value(1)),
            op(2, OpDesc::CounterRead, 3, 4, OpOutput::Value(0)),
        ]);
        assert_eq!(
            check_counter(&h).unwrap_err().kind,
            ViolationKind::NonMonotone
        );
        assert!(check_exact(&h, &SeqSpec::Counter).is_err());
    }

    #[test]
    fn snapshot_consistent_scans_pass() {
        let h = hist(vec![
            op(0, OpDesc::Update(1), 0, 1, OpOutput::Unit),
            op(1, OpDesc::Update(2), 2, 3, OpOutput::Unit),
            op(2, OpDesc::Scan, 4, 5, OpOutput::Vector(vec![1, 2])),
        ]);
        assert!(check_snapshot(&h, 2, 0).is_ok());
        assert!(check_exact(&h, &SeqSpec::Snapshot { n: 2, initial: 0 }).is_ok());
    }

    #[test]
    fn snapshot_missed_update_fails() {
        let h = hist(vec![
            op(0, OpDesc::Update(1), 0, 1, OpOutput::Unit),
            op(2, OpDesc::Scan, 2, 3, OpOutput::Vector(vec![0, 0])),
        ]);
        assert_eq!(
            check_snapshot(&h, 2, 0).unwrap_err().kind,
            ViolationKind::StaleRead
        );
        assert!(check_exact(&h, &SeqSpec::Snapshot { n: 2, initial: 0 }).is_err());
    }

    #[test]
    fn snapshot_incomparable_scans_fail() {
        // Two concurrent updates; two scans each seeing only one of them.
        let h = hist(vec![
            op(0, OpDesc::Update(1), 0, 10, OpOutput::Unit),
            op(1, OpDesc::Update(2), 0, 10, OpOutput::Unit),
            op(2, OpDesc::Scan, 1, 2, OpOutput::Vector(vec![1, 0])),
            op(3, OpDesc::Scan, 3, 4, OpOutput::Vector(vec![0, 2])),
        ]);
        let v = check_snapshot(&h, 2, 0).unwrap_err();
        assert!(
            v.kind == ViolationKind::IncomparableScans || v.kind == ViolationKind::NonMonotone,
            "{v}"
        );
        assert!(check_exact(&h, &SeqSpec::Snapshot { n: 2, initial: 0 }).is_err());
    }

    #[test]
    fn snapshot_checker_rejects_duplicate_values() {
        let h = hist(vec![
            op(0, OpDesc::Update(1), 0, 1, OpOutput::Unit),
            op(0, OpDesc::Update(1), 2, 3, OpOutput::Unit),
        ]);
        assert_eq!(
            check_snapshot(&h, 2, 0).unwrap_err().kind,
            ViolationKind::BadWorkload
        );
    }

    #[test]
    fn pending_write_may_linearize_or_not() {
        // A pending WriteMax(7) may or may not take effect; reads seeing
        // either value are fine, but monotonicity still applies.
        let pending = OpRecord {
            pid: ProcessId(0),
            desc: OpDesc::WriteMax(7),
            invoke: 0,
            response: None,
            output: None,
            steps: 1,
        };
        for seen in [-1, 7] {
            let mut h = History::new();
            h.push(pending.clone());
            h.push(op(1, OpDesc::ReadMax, 1, 2, OpOutput::Value(seen)));
            assert!(check_exact(&h, &MAX_SPEC).is_ok(), "seen={seen}");
            assert!(check_max_register(&h, -1).is_ok(), "seen={seen}");
        }
    }

    fn pending(pid: usize, desc: OpDesc, invoke: usize) -> OpRecord {
        OpRecord {
            pid: ProcessId(pid),
            desc,
            invoke,
            response: None,
            output: None,
            steps: 1,
        }
    }

    #[test]
    fn pending_increment_may_linearize_or_not() {
        // A crash left an increment pending: reads seeing 0 or 1 are both
        // fine (completion rule), 2 is not.
        for (seen, ok) in [(0, true), (1, true), (2, false)] {
            let mut h = History::new();
            h.push(pending(0, OpDesc::CounterIncrement, 0));
            h.push(op(1, OpDesc::CounterRead, 1, 2, OpOutput::Value(seen)));
            assert_eq!(
                check_exact(&h, &SeqSpec::Counter).is_ok(),
                ok,
                "seen={seen}"
            );
            assert_eq!(check_counter(&h).is_ok(), ok, "seen={seen}");
        }
    }

    #[test]
    fn pending_increment_does_not_lower_the_floor() {
        // A *completed* increment must be seen even when another is
        // pending: the pending one widens only the upper bound.
        let mut h = History::new();
        h.push(op(0, OpDesc::CounterIncrement, 0, 1, OpOutput::Unit));
        h.push(pending(1, OpDesc::CounterIncrement, 2));
        h.push(op(2, OpDesc::CounterRead, 3, 4, OpOutput::Value(0)));
        assert!(check_exact(&h, &SeqSpec::Counter).is_err());
        assert_eq!(
            check_counter(&h).unwrap_err().kind,
            ViolationKind::CountOutOfRange
        );
    }

    #[test]
    fn pending_snapshot_update_may_linearize_or_not() {
        // p0's Update(1) is pending when p2 scans: segment 0 may read 0
        // or 1, but a value never written anywhere stays illegal.
        for (seen, ok) in [(0, true), (1, true), (9, false)] {
            let mut h = History::new();
            h.push(pending(0, OpDesc::Update(1), 0));
            h.push(op(2, OpDesc::Scan, 1, 2, OpOutput::Vector(vec![seen, 0])));
            let spec = SeqSpec::Snapshot { n: 2, initial: 0 };
            assert_eq!(check_exact(&h, &spec).is_ok(), ok, "seen={seen}");
            assert_eq!(check_snapshot(&h, 2, 0).is_ok(), ok, "seen={seen}");
        }
    }

    #[test]
    fn pending_reads_are_ignored_by_every_checker() {
        // Crashed readers returned nothing; they impose no constraint.
        let mut h = History::new();
        h.push(op(0, OpDesc::WriteMax(5), 0, 1, OpOutput::Unit));
        h.push(pending(1, OpDesc::ReadMax, 2));
        assert!(check_exact(&h, &MAX_SPEC).is_ok());
        assert!(check_max_register(&h, -1).is_ok());

        let mut h = History::new();
        h.push(op(0, OpDesc::CounterIncrement, 0, 1, OpOutput::Unit));
        h.push(pending(1, OpDesc::CounterRead, 2));
        assert!(check_exact(&h, &SeqSpec::Counter).is_ok());
        assert!(check_counter(&h).is_ok());

        let mut h = History::new();
        h.push(op(0, OpDesc::Update(1), 0, 1, OpOutput::Unit));
        h.push(pending(1, OpDesc::Scan, 2));
        assert!(check_exact(&h, &SeqSpec::Snapshot { n: 2, initial: 0 }).is_ok());
        assert!(check_snapshot(&h, 2, 0).is_ok());
    }

    #[test]
    fn exact_checker_handles_interleaved_counter() {
        // Two concurrent increments and a concurrent read seeing 0, 1 or 2.
        for seen in 0..=2 {
            let h = hist(vec![
                op(0, OpDesc::CounterIncrement, 0, 5, OpOutput::Unit),
                op(1, OpDesc::CounterIncrement, 1, 6, OpOutput::Unit),
                op(2, OpDesc::CounterRead, 2, 4, OpOutput::Value(seen)),
            ]);
            assert!(check_exact(&h, &SeqSpec::Counter).is_ok(), "seen={seen}");
            assert!(check_counter(&h).is_ok(), "seen={seen}");
        }
        let h = hist(vec![
            op(0, OpDesc::CounterIncrement, 0, 5, OpOutput::Unit),
            op(1, OpDesc::CounterIncrement, 1, 6, OpOutput::Unit),
            op(2, OpDesc::CounterRead, 2, 4, OpOutput::Value(3)),
        ]);
        assert!(check_exact(&h, &SeqSpec::Counter).is_err());
        assert!(check_counter(&h).is_err());
    }

    #[test]
    fn snapshot_checker_rejects_wrong_vector_length() {
        let h = hist(vec![op(
            0,
            OpDesc::Scan,
            0,
            1,
            OpOutput::Vector(vec![0, 0, 0]),
        )]);
        assert_eq!(
            check_snapshot(&h, 2, 0).unwrap_err().kind,
            ViolationKind::BadWorkload
        );
    }

    #[test]
    fn snapshot_checker_rejects_out_of_range_updater() {
        let h = hist(vec![op(5, OpDesc::Update(1), 0, 1, OpOutput::Unit)]);
        assert_eq!(
            check_snapshot(&h, 2, 0).unwrap_err().kind,
            ViolationKind::BadWorkload
        );
    }

    #[test]
    fn snapshot_scan_of_unwritten_value_is_rejected() {
        let h = hist(vec![op(
            0,
            OpDesc::Scan,
            0,
            1,
            OpOutput::Vector(vec![7, 0]),
        )]);
        assert_eq!(
            check_snapshot(&h, 2, 0).unwrap_err().kind,
            ViolationKind::UnwrittenValue
        );
    }

    #[test]
    fn snapshot_scan_of_future_update_is_rejected() {
        // Scan responds BEFORE the update is invoked, yet sees it.
        let h = hist(vec![
            op(0, OpDesc::Scan, 0, 1, OpOutput::Vector(vec![9, 0])),
            op(0, OpDesc::Update(9), 2, 3, OpOutput::Unit),
        ]);
        assert_eq!(
            check_snapshot(&h, 2, 0).unwrap_err().kind,
            ViolationKind::UnwrittenValue
        );
    }

    #[test]
    fn exact_checker_reports_oversized_histories_as_uncheckable() {
        let ops: Vec<OpRecord> = (0..64)
            .map(|i| {
                op(
                    0,
                    OpDesc::CounterIncrement,
                    2 * i,
                    2 * i + 1,
                    OpOutput::Unit,
                )
            })
            .collect();
        let v = check_exact(&hist(ops), &SeqSpec::Counter).unwrap_err();
        assert_eq!(v.kind, ViolationKind::Uncheckable);
        assert!(v.detail.contains("64"), "{}", v.detail);
        // Exactly 63 is still decided, not refused.
        let ops: Vec<OpRecord> = (0..63)
            .map(|i| {
                op(
                    0,
                    OpDesc::CounterIncrement,
                    2 * i,
                    2 * i + 1,
                    OpOutput::Unit,
                )
            })
            .collect();
        assert!(check_exact(&hist(ops), &SeqSpec::Counter).is_ok());
    }

    #[test]
    fn zero_step_same_tick_ops_do_not_poison_the_exact_checker() {
        // Regression: two zero-step operations invoked at the same tick
        // used to be recorded with response == invoke, so each preceded
        // the other — a cycle in `check_exact`'s must-before relation
        // and a spurious NoLinearization. Completion now consumes a
        // tick, so the executor's history linearizes trivially.
        use crate::exec::{Executor, OpSpec, WorkloadBuilder};
        use crate::{Machine, Memory, RoundRobin};

        let mut mem = Memory::new();
        let _ = mem.alloc(0);
        let mut w = WorkloadBuilder::new(2);
        for i in 0..2 {
            w.op(
                ProcessId(i),
                OpSpec::update(OpDesc::WriteMax(0), || Machine::completed(0)),
            );
        }
        let outcome = Executor::new().run(&mut mem, w, &mut RoundRobin::new());
        assert!(outcome.all_done);
        let h = &outcome.history;
        for o in h.ops() {
            assert!(
                o.response.unwrap() > o.invoke,
                "zero-width interval recorded: {o:?}"
            );
        }
        assert!(
            check_exact(h, &SeqSpec::MaxRegister { initial: 0 }).is_ok(),
            "spurious violation on same-tick zero-step ops"
        );
        assert!(check_max_register(h, 0).is_ok());
    }

    #[test]
    fn k_envelope_accepts_bounded_underestimates_only() {
        // Two sequential increments, then a read: exact value is 2.
        // k=2 admits 1 (2 ≤ 2·1) but not 0; overestimates never pass.
        let h = |seen: Word| {
            hist(vec![
                op(0, OpDesc::CounterIncrement, 0, 1, OpOutput::Unit),
                op(0, OpDesc::CounterIncrement, 2, 3, OpOutput::Unit),
                op(1, OpDesc::CounterRead, 4, 5, OpOutput::Value(seen)),
            ])
        };
        for (seen, k, ok) in [
            (2, 1, true),
            (1, 1, false),
            (1, 2, true),
            (0, 2, false),
            (3, 2, false), // overestimate: never allowed
            (1, 3, true),
        ] {
            assert_eq!(
                check_exact_k(&h(seen), &SeqSpec::Counter, k).is_ok(),
                ok,
                "exact seen={seen} k={k}"
            );
            assert_eq!(
                check_counter_k(&h(seen), k).is_ok(),
                ok,
                "fast seen={seen} k={k}"
            );
        }
    }

    #[test]
    fn k_envelope_boundary_is_exact_factor_k() {
        // True max is 9; k=3 admits exactly v ∈ {3, …, 9} (3·3 = 9 on
        // the boundary), rejects 2 (2·3 = 6 < 9).
        let h = |seen: Word| {
            hist(vec![
                op(0, OpDesc::WriteMax(9), 0, 1, OpOutput::Unit),
                op(1, OpDesc::ReadMax, 2, 3, OpOutput::Value(seen)),
            ])
        };
        for (seen, ok) in [(9, true), (3, true), (2, false), (10, false)] {
            assert_eq!(
                check_exact_k(&h(seen), &MAX_SPEC, 3).is_ok(),
                ok,
                "exact seen={seen}"
            );
            assert_eq!(
                check_max_register_k(&h(seen), -1, 3).is_ok(),
                ok,
                "fast seen={seen}"
            );
        }
    }

    #[test]
    fn k_relaxed_reads_may_be_non_monotone_within_the_envelope() {
        // 4 completed increments plus 8 pending ones give every read the
        // feasible interval [4, 12]. A read of 12 followed by one of 6
        // is legal at k=2 (6·2 = 12) even though the observed values
        // decrease; a second read of 5 is not (5·2 = 10 < 12).
        let h = |second: Word| {
            let completed: Vec<OpRecord> = (0..4)
                .map(|j| {
                    op(
                        0,
                        OpDesc::CounterIncrement,
                        2 * j,
                        2 * j + 1,
                        OpOutput::Unit,
                    )
                })
                .collect();
            let mut hh = hist(completed);
            for j in 0..8 {
                hh.push(pending(0, OpDesc::CounterIncrement, 10 + j));
            }
            hh.push(op(1, OpDesc::CounterRead, 20, 21, OpOutput::Value(12)));
            hh.push(op(2, OpDesc::CounterRead, 22, 23, OpOutput::Value(second)));
            hh
        };
        assert!(check_counter_k(&h(6), 2).is_ok());
        assert!(check_exact_k(&h(6), &SeqSpec::Counter, 2).is_ok());
        assert_eq!(
            check_counter_k(&h(5), 2).unwrap_err().kind,
            ViolationKind::NonMonotone
        );
        assert!(check_exact_k(&h(5), &SeqSpec::Counter, 2).is_err());
        // At k=1 the decrease is already fatal.
        assert!(check_counter_k(&h(6), 1).is_err());
        assert!(check_exact_k(&h(6), &SeqSpec::Counter, 1).is_err());
    }

    #[test]
    fn k_maxreg_bucket_floors_are_accepted_without_being_written() {
        // The approximate register returns bucket floors (powers of k)
        // that were never operands of any write: 8 against a write of 13
        // at k=2 (8 ≤ 13 ≤ 16) must pass both checkers.
        let h = hist(vec![
            op(0, OpDesc::WriteMax(13), 0, 1, OpOutput::Unit),
            op(1, OpDesc::ReadMax, 2, 3, OpOutput::Value(8)),
        ]);
        assert!(check_exact_k(&h, &MAX_SPEC, 2).is_ok());
        assert!(check_max_register_k(&h, -1, 2).is_ok());
        // …but 8 with nothing in [8, 16] ever written is still invented.
        let unwritten = hist(vec![
            op(0, OpDesc::WriteMax(7), 0, 1, OpOutput::Unit),
            op(1, OpDesc::ReadMax, 2, 3, OpOutput::Value(8)),
        ]);
        assert!(check_exact_k(&unwritten, &MAX_SPEC, 2).is_err());
        assert_eq!(
            check_max_register_k(&unwritten, -1, 2).unwrap_err().kind,
            ViolationKind::UnwrittenValue
        );
    }

    #[test]
    fn k_negative_floor_values_still_compare_exactly() {
        // A fresh register's -1 floor is not subject to multiplicative
        // slack: reading -1 after a completed write is stale at every k.
        let h = hist(vec![
            op(0, OpDesc::WriteMax(5), 0, 1, OpOutput::Unit),
            op(1, OpDesc::ReadMax, 2, 3, OpOutput::Value(-1)),
        ]);
        for k in [1, 2, 8] {
            assert!(check_exact_k(&h, &MAX_SPEC, k).is_err(), "k={k}");
            assert_eq!(
                check_max_register_k(&h, -1, k).unwrap_err().kind,
                ViolationKind::StaleRead,
                "k={k}"
            );
        }
    }

    #[test]
    fn k_snapshot_vectors_never_relax() {
        // No k-relaxed snapshot exists: vector outputs compare exactly
        // at every k.
        let h = hist(vec![
            op(0, OpDesc::Update(4), 0, 1, OpOutput::Unit),
            op(2, OpDesc::Scan, 2, 3, OpOutput::Vector(vec![2, 0])),
        ]);
        let spec = SeqSpec::Snapshot { n: 2, initial: 0 };
        for k in [1, 2] {
            assert!(check_exact_k(&h, &spec, k).is_err(), "k={k}");
        }
    }

    #[test]
    fn violation_display_is_informative() {
        let h = hist(vec![
            op(0, OpDesc::WriteMax(5), 0, 1, OpOutput::Unit),
            op(1, OpDesc::ReadMax, 2, 3, OpOutput::Value(0)),
        ]);
        let v = check_max_register(&h, 0).unwrap_err();
        let text = v.to_string();
        assert!(text.contains("StaleRead"), "{text}");
        assert!(text.contains("WriteMax(5)"), "{text}");
    }
}
