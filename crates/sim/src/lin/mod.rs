//! Linearizability checking.
//!
//! Three layers:
//!
//! * [`check_exact`] — a complete Wing–Gong-style search over a `u64`
//!   bitmask of linearized operations. Decides linearizability exactly
//!   but refuses histories over 63 operations; it is the differential
//!   oracle for the interval checker and the fast checkers below.
//! * [`check_interval`] — the same complete search over a chain
//!   decomposition of the interval order (see [`wgl`] for the
//!   construction), with no cap on history length: histories of tens of
//!   thousands of operations, including pending operations left by
//!   crashes, are *decided* rather than refused.
//! * [`check_max_register`], [`check_counter`], [`check_snapshot`] —
//!   fast, *sound* checkers built on interval conditions specific to each
//!   object family. Sound means every reported [`Violation`] is a real
//!   linearizability violation; they may in principle accept a
//!   pathological non-linearizable history, so the property-test suite
//!   cross-validates them against [`check_exact`] on small histories.
//!
//! All checkers take the executor's [`History`]: operation intervals in
//! global event ticks, where operation `a` precedes `b` iff
//! `a.response <= b.invoke`.

use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;

use crate::history::{History, OpDesc, OpOutput, OpRecord};
use crate::spec::{SeqSpec, SpecState};
use crate::Word;

pub mod wgl;

pub use wgl::check_interval;

/// Why a history is not linearizable (or not checkable).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// A read returned a value smaller than one it was required to see.
    StaleRead,
    /// A read returned a value that no operation ever wrote.
    UnwrittenValue,
    /// Two non-overlapping reads returned values in the wrong order.
    NonMonotone,
    /// A counter read fell outside its feasible interval.
    CountOutOfRange,
    /// Two scans returned vectors that no single linearization can order.
    IncomparableScans,
    /// The exhaustive search found no legal linearization.
    NoLinearization,
    /// The history violates a checker precondition (e.g. duplicate
    /// per-process update values for the snapshot checker).
    BadWorkload,
    /// The history exceeds the checker's capacity (the exact checker's
    /// 63-operation bitmask limit). Not a linearizability verdict —
    /// re-check with [`check_interval`], which has no cap.
    Uncheckable,
}

/// A linearizability violation, with human-readable detail.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The kind of violation.
    pub kind: ViolationKind,
    /// Human-readable description naming the offending operations.
    pub detail: String,
}

impl Violation {
    fn new(kind: ViolationKind, detail: impl Into<String>) -> Self {
        Violation {
            kind,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}: {}", self.kind, self.detail)
    }
}

impl Error for Violation {}

/// Exhaustively decides whether `history` is linearizable with respect to
/// `spec`.
///
/// Pending operations (no response) are treated per the standard
/// completion rule: each may be linearized at any point after its
/// invocation, or omitted entirely.
///
/// # Errors
///
/// Returns [`ViolationKind::NoLinearization`] if no legal order exists,
/// or [`ViolationKind::Uncheckable`] if the history has more than 63
/// operations (the bitmask search's capacity — use [`check_interval`]
/// for large histories). `Uncheckable` is a capacity report, not a
/// linearizability verdict; crash-truncated soak runs check it
/// explicitly instead of aborting.
pub fn check_exact(history: &History, spec: &SeqSpec) -> Result<(), Violation> {
    let ops = history.ops();
    if ops.len() > 63 {
        return Err(Violation::new(
            ViolationKind::Uncheckable,
            format!(
                "exact checker supports at most 63 operations, got {}",
                ops.len()
            ),
        ));
    }
    let n = ops.len();
    let all_complete: u64 = ops
        .iter()
        .enumerate()
        .filter(|(_, o)| o.is_complete())
        .fold(0u64, |m, (i, _)| m | (1 << i));

    // Precompute precedence: must[i] = set of ops that must come before i.
    let mut must_before: Vec<u64> = vec![0; n];
    for (i, oi) in ops.iter().enumerate() {
        for (j, oj) in ops.iter().enumerate() {
            if i != j && oj.precedes(oi) {
                must_before[i] |= 1 << j;
            }
        }
    }

    // Failed-state memo, keyed by linearized-set mask. Nesting the
    // states per mask lets the hot probe borrow `state` instead of
    // cloning it on every DFS node (for snapshot specs a clone is a Vec
    // allocation).
    let mut failed: HashMap<u64, HashSet<SpecState>> = HashMap::new();

    fn dfs(
        mask: u64,
        state: &SpecState,
        ops: &[OpRecord],
        spec: &SeqSpec,
        all_complete: u64,
        must_before: &[u64],
        failed: &mut HashMap<u64, HashSet<SpecState>>,
    ) -> bool {
        if mask & all_complete == all_complete {
            return true;
        }
        if failed
            .get(&mask)
            .is_some_and(|states| states.contains(state))
        {
            return false;
        }
        for (i, op) in ops.iter().enumerate() {
            let bit = 1u64 << i;
            if mask & bit != 0 {
                continue;
            }
            if must_before[i] & !mask != 0 {
                continue; // some predecessor not yet linearized
            }
            let (next, expected) = spec.apply(state, op.pid, &op.desc);
            if let Some(observed) = &op.output {
                let ok = match &expected {
                    OpOutput::Unit => true,
                    other => observed == other,
                };
                if !ok {
                    continue;
                }
            }
            if dfs(
                mask | bit,
                &next,
                ops,
                spec,
                all_complete,
                must_before,
                failed,
            ) {
                return true;
            }
        }
        failed.entry(mask).or_default().insert(state.clone());
        false
    }

    if dfs(
        0,
        &spec.init(),
        ops,
        spec,
        all_complete,
        &must_before,
        &mut failed,
    ) {
        Ok(())
    } else {
        Err(Violation::new(
            ViolationKind::NoLinearization,
            format!("no legal linearization of {n} operations exists"),
        ))
    }
}

fn fmt_op(i: usize, op: &OpRecord) -> String {
    format!(
        "op#{i} {} by {} [{}, {}]",
        op.desc,
        op.pid,
        op.invoke,
        op.response
            .map(|r| r.to_string())
            .unwrap_or_else(|| "pending".into())
    )
}

/// Running maxima over events sorted by completion tick: answers "among
/// entries with `response <= t`, what is the largest value (and which
/// op held it)?" in `O(log n)` after an `O(n log n)` build. The fast
/// checkers use it to replace their quadratic all-pairs scans, since
/// DPOR-scaled explorations hand them far more histories.
struct PrefixMax {
    /// `(response, best_value_so_far, op index holding it)`, sorted by
    /// response.
    entries: Vec<(usize, Word, usize)>,
}

impl PrefixMax {
    /// Builds from `(op index, response tick, value)` triples.
    fn new(mut items: Vec<(usize, usize, Word)>) -> Self {
        items.sort_by_key(|&(_, resp, _)| resp);
        let mut entries = Vec::with_capacity(items.len());
        let mut best: Option<(Word, usize)> = None;
        for (i, resp, v) in items {
            let (bv, bi) = match best {
                Some((bv, bi)) if bv >= v => (bv, bi),
                _ => (v, i),
            };
            best = Some((bv, bi));
            entries.push((resp, bv, bi));
        }
        PrefixMax { entries }
    }

    /// Largest value among entries with `response <= t`, with the
    /// holder's op index.
    fn up_to(&self, t: usize) -> Option<(Word, usize)> {
        let k = self.entries.partition_point(|&(resp, _, _)| resp <= t);
        (k > 0).then(|| {
            let (_, v, i) = self.entries[k - 1];
            (v, i)
        })
    }
}

/// Fast sound checker for max-register histories.
///
/// Verifies, for every completed `ReadMax` returning `v`:
///
/// 1. `v` is `initial` or was the operand of some `WriteMax(v)` invoked
///    before the read responded (no value materializes from nowhere);
/// 2. `v` is at least the operand of every `WriteMax` that completed
///    before the read was invoked (reads do not miss completed writes);
/// 3. non-overlapping reads return non-decreasing values (the register
///    is monotone).
///
/// Pending operations follow the standard completion rule: a pending
/// `WriteMax` (e.g. left behind by a crash) counts as *invoked* for
/// condition 1 — it may have taken effect, so reads may see its value —
/// but never as *completed* for condition 2, so no read is required to
/// see it. Pending reads returned nothing and are ignored.
///
/// # Errors
///
/// Returns the first violated condition.
pub fn check_max_register(history: &History, initial: Word) -> Result<(), Violation> {
    let ops = history.ops();
    let reads: Vec<(usize, &OpRecord, Word)> = ops
        .iter()
        .enumerate()
        .filter(|(_, o)| o.desc == OpDesc::ReadMax && o.is_complete())
        .map(|(i, o)| {
            let v = o
                .output
                .as_ref()
                .and_then(|out| out.value())
                .expect("completed ReadMax has a value");
            (i, o, v)
        })
        .collect();

    // Single-pass indexes over the writes (the old all-pairs scans were
    // O(ops²) per history):
    // * earliest invocation tick per written value, for condition 1;
    // * prefix maxima of completed writes by response tick, for
    //   condition 2.
    let mut first_invoke: HashMap<Word, usize> = HashMap::new();
    let mut completed_writes: Vec<(usize, usize, Word)> = Vec::new();
    for (j, o) in ops.iter().enumerate() {
        if let OpDesc::WriteMax(wv) = o.desc {
            let slot = first_invoke.entry(wv).or_insert(o.invoke);
            *slot = (*slot).min(o.invoke);
            if let Some(r) = o.response {
                completed_writes.push((j, r, wv));
            }
        }
    }
    let write_max_before = PrefixMax::new(completed_writes);

    for &(i, read, v) in &reads {
        // Condition 1: the value was actually written (or is the floor).
        if v != initial {
            let written = first_invoke
                .get(&v)
                .is_some_and(|&inv| inv < read.response.unwrap());
            if !written {
                return Err(Violation::new(
                    ViolationKind::UnwrittenValue,
                    format!(
                        "{} returned {v}, never written before its response",
                        fmt_op(i, read)
                    ),
                ));
            }
        }
        // Condition 2: no completed preceding write is missed.
        if let Some((wv, j)) = write_max_before.up_to(read.invoke) {
            if wv > v {
                return Err(Violation::new(
                    ViolationKind::StaleRead,
                    format!(
                        "{} returned {v} but {} completed before it",
                        fmt_op(i, read),
                        fmt_op(j, &ops[j])
                    ),
                ));
            }
        }
    }
    // Condition 3: monotone across non-overlapping reads (prefix maxima
    // again: a read conflicts iff some read completing no later than its
    // invocation returned a larger value).
    let read_max_before = PrefixMax::new(
        reads
            .iter()
            .map(|&(i, r, v)| (i, r.response.unwrap(), v))
            .collect(),
    );
    for &(i2, r2, v2) in &reads {
        if let Some((v1, i1)) = read_max_before.up_to(r2.invoke) {
            if v1 > v2 {
                return Err(Violation::new(
                    ViolationKind::NonMonotone,
                    format!(
                        "{} returned {v1} but later {} returned {v2}",
                        fmt_op(i1, &ops[i1]),
                        fmt_op(i2, r2)
                    ),
                ));
            }
        }
    }
    Ok(())
}

/// Fast sound checker for counter histories.
///
/// Verifies, for every completed `CounterRead` returning `c`:
///
/// 1. `c` is at least the number of `CounterIncrement`s that completed
///    before the read was invoked;
/// 2. `c` is at most the number of `CounterIncrement`s invoked before the
///    read responded;
/// 3. non-overlapping reads return non-decreasing counts.
///
/// Pending operations follow the completion rule: a pending
/// `CounterIncrement` widens the feasible interval's upper bound
/// (condition 2: it *may* have taken effect) but never the lower bound
/// (condition 1: no read is required to see it). Pending reads are
/// ignored.
///
/// # Errors
///
/// Returns the first violated condition.
pub fn check_counter(history: &History) -> Result<(), Violation> {
    let ops = history.ops();
    let reads: Vec<(usize, &OpRecord, Word)> = ops
        .iter()
        .enumerate()
        .filter(|(_, o)| o.desc == OpDesc::CounterRead && o.is_complete())
        .map(|(i, o)| {
            let v = o
                .output
                .as_ref()
                .and_then(|out| out.value())
                .expect("completed CounterRead has a value");
            (i, o, v)
        })
        .collect();

    // Single-pass: sorted completion/invocation ticks of the increments
    // turn each read's feasible interval into two binary searches
    // (instead of an O(ops) scan per read).
    let mut inc_responses: Vec<usize> = Vec::new();
    let mut inc_invokes: Vec<usize> = Vec::new();
    for o in ops {
        if o.desc == OpDesc::CounterIncrement {
            inc_invokes.push(o.invoke);
            if let Some(r) = o.response {
                inc_responses.push(r);
            }
        }
    }
    inc_responses.sort_unstable();
    inc_invokes.sort_unstable();

    for &(i, read, c) in &reads {
        let completed_before = inc_responses.partition_point(|&r| r <= read.invoke) as Word;
        let invoked_before =
            inc_invokes.partition_point(|&inv| inv < read.response.unwrap()) as Word;
        if c < completed_before || c > invoked_before {
            return Err(Violation::new(
                ViolationKind::CountOutOfRange,
                format!(
                    "{} returned {c}, feasible interval is [{completed_before}, {invoked_before}]",
                    fmt_op(i, read)
                ),
            ));
        }
    }
    let read_max_before = PrefixMax::new(
        reads
            .iter()
            .map(|&(i, r, c)| (i, r.response.unwrap(), c))
            .collect(),
    );
    for &(i2, r2, c2) in &reads {
        if let Some((c1, i1)) = read_max_before.up_to(r2.invoke) {
            if c1 > c2 {
                return Err(Violation::new(
                    ViolationKind::NonMonotone,
                    format!(
                        "{} returned {c1} but later {} returned {c2}",
                        fmt_op(i1, &ops[i1]),
                        fmt_op(i2, r2)
                    ),
                ));
            }
        }
    }
    Ok(())
}

/// Fast sound checker for single-writer snapshot histories.
///
/// Preconditions on the workload (checked, reported as
/// [`ViolationKind::BadWorkload`]): each process's `Update` operands are
/// pairwise distinct and distinct from `initial`, so a scanned segment
/// value identifies a unique position in that process's update sequence.
///
/// Verifies, for every completed `Scan` returning `vec`:
///
/// 1. every `vec[i]` is `initial` or an operand of some `Update` by
///    process `i` invoked before the scan responded;
/// 2. `vec[i]` is not older (in process `i`'s update order) than the last
///    update by `i` that completed before the scan was invoked;
/// 3. all scan vectors are coordinatewise comparable (scans are totally
///    ordered), and non-overlapping scans respect that order.
///
/// Pending operations follow the completion rule: a pending `Update`
/// participates in its process's update sequence (condition 1: scans may
/// see its value) but, never having responded, precedes no scan
/// (condition 2: no scan is required to see it). Pending scans are
/// ignored.
///
/// # Errors
///
/// Returns the first violated condition.
pub fn check_snapshot(history: &History, n: usize, initial: Word) -> Result<(), Violation> {
    let ops = history.ops();

    // Per-process update sequences; value -> 1-based index therein.
    let mut seqs: Vec<Vec<(usize, &OpRecord, Word)>> = vec![Vec::new(); n];
    for (i, o) in ops.iter().enumerate() {
        if let OpDesc::Update(v) = o.desc {
            if o.pid.index() >= n {
                return Err(Violation::new(
                    ViolationKind::BadWorkload,
                    format!("{} updates segment out of range", fmt_op(i, o)),
                ));
            }
            let seq = &mut seqs[o.pid.index()];
            if v == initial || seq.iter().any(|&(_, _, prev)| prev == v) {
                return Err(Violation::new(
                    ViolationKind::BadWorkload,
                    format!(
                        "{} reuses value {v}; checker needs distinct operands",
                        fmt_op(i, o)
                    ),
                ));
            }
            seq.push((i, o, v));
        }
    }
    let pos_of = |seg: usize, v: Word| -> Option<usize> {
        if v == initial {
            return Some(0);
        }
        seqs[seg]
            .iter()
            .position(|&(_, _, sv)| sv == v)
            .map(|p| p + 1)
    };

    let scans: Vec<(usize, &OpRecord, &[Word])> = ops
        .iter()
        .enumerate()
        .filter(|(_, o)| o.desc == OpDesc::Scan && o.is_complete())
        .map(|(i, o)| {
            let v = o
                .output
                .as_ref()
                .and_then(|out| out.vector())
                .expect("completed Scan has a vector");
            (i, o, v)
        })
        .collect();

    let mut scan_positions: Vec<(usize, &OpRecord, Vec<usize>)> = Vec::new();
    for &(i, scan, vec) in &scans {
        if vec.len() != n {
            return Err(Violation::new(
                ViolationKind::BadWorkload,
                format!(
                    "{} returned {} segments, expected {n}",
                    fmt_op(i, scan),
                    vec.len()
                ),
            ));
        }
        let mut positions = Vec::with_capacity(n);
        for (seg, &v) in vec.iter().enumerate() {
            // Condition 1: value exists and was invoked before the response.
            let pos = match pos_of(seg, v) {
                Some(p) => p,
                None => {
                    return Err(Violation::new(
                        ViolationKind::UnwrittenValue,
                        format!(
                            "{} saw {v} in segment {seg}, never written",
                            fmt_op(i, scan)
                        ),
                    ))
                }
            };
            if pos > 0 {
                let (ui, upd, _) = seqs[seg][pos - 1];
                if upd.invoke >= scan.response.unwrap() {
                    return Err(Violation::new(
                        ViolationKind::UnwrittenValue,
                        format!(
                            "{} saw {v} in segment {seg}, but {} was invoked after the scan responded",
                            fmt_op(i, scan),
                            fmt_op(ui, upd)
                        ),
                    ));
                }
            }
            // Condition 2: not older than the last preceding completed update.
            let last_completed = seqs[seg]
                .iter()
                .enumerate()
                .filter(|(_, (_, upd, _))| upd.precedes(scan))
                .map(|(k, _)| k + 1)
                .max()
                .unwrap_or(0);
            if pos < last_completed {
                let (ui, upd, _) = seqs[seg][last_completed - 1];
                return Err(Violation::new(
                    ViolationKind::StaleRead,
                    format!(
                        "{} saw position {pos} of segment {seg}, but {} completed before it",
                        fmt_op(i, scan),
                        fmt_op(ui, upd)
                    ),
                ));
            }
            positions.push(pos);
        }
        scan_positions.push((i, scan, positions));
    }

    // Condition 3: total order on scans.
    for a in 0..scan_positions.len() {
        for b in (a + 1)..scan_positions.len() {
            let (ia, sa, pa) = &scan_positions[a];
            let (ib, sb, pb) = &scan_positions[b];
            let a_le_b = pa.iter().zip(pb).all(|(x, y)| x <= y);
            let b_le_a = pb.iter().zip(pa).all(|(x, y)| x <= y);
            if !a_le_b && !b_le_a {
                return Err(Violation::new(
                    ViolationKind::IncomparableScans,
                    format!(
                        "{} and {} are incomparable",
                        fmt_op(*ia, sa),
                        fmt_op(*ib, sb)
                    ),
                ));
            }
            if sa.precedes(sb) && !a_le_b {
                return Err(Violation::new(
                    ViolationKind::NonMonotone,
                    format!(
                        "{} precedes {} but saw newer values",
                        fmt_op(*ia, sa),
                        fmt_op(*ib, sb)
                    ),
                ));
            }
            if sb.precedes(sa) && !b_le_a {
                return Err(Violation::new(
                    ViolationKind::NonMonotone,
                    format!(
                        "{} precedes {} but saw newer values",
                        fmt_op(*ib, sb),
                        fmt_op(*ia, sa)
                    ),
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{OpDesc, OpOutput, OpRecord};
    use crate::ProcessId;

    fn op(pid: usize, desc: OpDesc, invoke: usize, response: usize, output: OpOutput) -> OpRecord {
        OpRecord {
            pid: ProcessId(pid),
            desc,
            invoke,
            response: Some(response),
            output: Some(output),
            steps: 1,
        }
    }

    fn hist(ops: Vec<OpRecord>) -> History {
        let mut sorted = ops;
        sorted.sort_by_key(|o| o.invoke);
        sorted.into_iter().collect()
    }

    const MAX_SPEC: SeqSpec = SeqSpec::MaxRegister { initial: -1 };

    #[test]
    fn sequential_max_register_history_is_linearizable() {
        let h = hist(vec![
            op(0, OpDesc::WriteMax(5), 0, 1, OpOutput::Unit),
            op(1, OpDesc::ReadMax, 2, 3, OpOutput::Value(5)),
        ]);
        assert!(check_exact(&h, &MAX_SPEC).is_ok());
        assert!(check_max_register(&h, -1).is_ok());
    }

    #[test]
    fn stale_read_is_rejected_by_both_checkers() {
        let h = hist(vec![
            op(0, OpDesc::WriteMax(5), 0, 1, OpOutput::Unit),
            op(1, OpDesc::ReadMax, 2, 3, OpOutput::Value(-1)),
        ]);
        assert!(check_exact(&h, &MAX_SPEC).is_err());
        let v = check_max_register(&h, -1).unwrap_err();
        assert_eq!(v.kind, ViolationKind::StaleRead);
    }

    #[test]
    fn concurrent_write_may_or_may_not_be_seen() {
        // Write overlaps read: both outcomes linearizable.
        for seen in [-1, 5] {
            let h = hist(vec![
                op(0, OpDesc::WriteMax(5), 0, 4, OpOutput::Unit),
                op(1, OpDesc::ReadMax, 1, 3, OpOutput::Value(seen)),
            ]);
            assert!(check_exact(&h, &MAX_SPEC).is_ok(), "seen={seen}");
            assert!(check_max_register(&h, -1).is_ok(), "seen={seen}");
        }
    }

    #[test]
    fn unwritten_value_is_rejected() {
        let h = hist(vec![op(1, OpDesc::ReadMax, 0, 1, OpOutput::Value(9))]);
        assert!(check_exact(&h, &MAX_SPEC).is_err());
        let v = check_max_register(&h, -1).unwrap_err();
        assert_eq!(v.kind, ViolationKind::UnwrittenValue);
    }

    #[test]
    fn non_monotone_reads_are_rejected() {
        let h = hist(vec![
            op(0, OpDesc::WriteMax(5), 0, 10, OpOutput::Unit),
            op(1, OpDesc::ReadMax, 1, 2, OpOutput::Value(5)),
            op(2, OpDesc::ReadMax, 3, 4, OpOutput::Value(-1)),
        ]);
        assert!(check_exact(&h, &MAX_SPEC).is_err());
        let v = check_max_register(&h, -1).unwrap_err();
        assert_eq!(v.kind, ViolationKind::NonMonotone);
    }

    #[test]
    fn counter_interval_conditions() {
        // inc [0,1]; read [2,3] must return exactly 1.
        let ok = hist(vec![
            op(0, OpDesc::CounterIncrement, 0, 1, OpOutput::Unit),
            op(1, OpDesc::CounterRead, 2, 3, OpOutput::Value(1)),
        ]);
        assert!(check_counter(&ok).is_ok());
        assert!(check_exact(&ok, &SeqSpec::Counter).is_ok());

        let missed = hist(vec![
            op(0, OpDesc::CounterIncrement, 0, 1, OpOutput::Unit),
            op(1, OpDesc::CounterRead, 2, 3, OpOutput::Value(0)),
        ]);
        assert_eq!(
            check_counter(&missed).unwrap_err().kind,
            ViolationKind::CountOutOfRange
        );
        assert!(check_exact(&missed, &SeqSpec::Counter).is_err());

        let overcount = hist(vec![
            op(0, OpDesc::CounterIncrement, 0, 1, OpOutput::Unit),
            op(1, OpDesc::CounterRead, 2, 3, OpOutput::Value(2)),
        ]);
        assert_eq!(
            check_counter(&overcount).unwrap_err().kind,
            ViolationKind::CountOutOfRange
        );
        assert!(check_exact(&overcount, &SeqSpec::Counter).is_err());
    }

    #[test]
    fn concurrent_increment_gives_slack() {
        let h = hist(vec![
            op(0, OpDesc::CounterIncrement, 0, 10, OpOutput::Unit),
            op(1, OpDesc::CounterRead, 1, 2, OpOutput::Value(1)),
        ]);
        assert!(check_counter(&h).is_ok());
        assert!(check_exact(&h, &SeqSpec::Counter).is_ok());
    }

    #[test]
    fn counter_reads_must_be_monotone() {
        let h = hist(vec![
            op(0, OpDesc::CounterIncrement, 0, 20, OpOutput::Unit),
            op(1, OpDesc::CounterRead, 1, 2, OpOutput::Value(1)),
            op(2, OpDesc::CounterRead, 3, 4, OpOutput::Value(0)),
        ]);
        assert_eq!(
            check_counter(&h).unwrap_err().kind,
            ViolationKind::NonMonotone
        );
        assert!(check_exact(&h, &SeqSpec::Counter).is_err());
    }

    #[test]
    fn snapshot_consistent_scans_pass() {
        let h = hist(vec![
            op(0, OpDesc::Update(1), 0, 1, OpOutput::Unit),
            op(1, OpDesc::Update(2), 2, 3, OpOutput::Unit),
            op(2, OpDesc::Scan, 4, 5, OpOutput::Vector(vec![1, 2])),
        ]);
        assert!(check_snapshot(&h, 2, 0).is_ok());
        assert!(check_exact(&h, &SeqSpec::Snapshot { n: 2, initial: 0 }).is_ok());
    }

    #[test]
    fn snapshot_missed_update_fails() {
        let h = hist(vec![
            op(0, OpDesc::Update(1), 0, 1, OpOutput::Unit),
            op(2, OpDesc::Scan, 2, 3, OpOutput::Vector(vec![0, 0])),
        ]);
        assert_eq!(
            check_snapshot(&h, 2, 0).unwrap_err().kind,
            ViolationKind::StaleRead
        );
        assert!(check_exact(&h, &SeqSpec::Snapshot { n: 2, initial: 0 }).is_err());
    }

    #[test]
    fn snapshot_incomparable_scans_fail() {
        // Two concurrent updates; two scans each seeing only one of them.
        let h = hist(vec![
            op(0, OpDesc::Update(1), 0, 10, OpOutput::Unit),
            op(1, OpDesc::Update(2), 0, 10, OpOutput::Unit),
            op(2, OpDesc::Scan, 1, 2, OpOutput::Vector(vec![1, 0])),
            op(3, OpDesc::Scan, 3, 4, OpOutput::Vector(vec![0, 2])),
        ]);
        let v = check_snapshot(&h, 2, 0).unwrap_err();
        assert!(
            v.kind == ViolationKind::IncomparableScans || v.kind == ViolationKind::NonMonotone,
            "{v}"
        );
        assert!(check_exact(&h, &SeqSpec::Snapshot { n: 2, initial: 0 }).is_err());
    }

    #[test]
    fn snapshot_checker_rejects_duplicate_values() {
        let h = hist(vec![
            op(0, OpDesc::Update(1), 0, 1, OpOutput::Unit),
            op(0, OpDesc::Update(1), 2, 3, OpOutput::Unit),
        ]);
        assert_eq!(
            check_snapshot(&h, 2, 0).unwrap_err().kind,
            ViolationKind::BadWorkload
        );
    }

    #[test]
    fn pending_write_may_linearize_or_not() {
        // A pending WriteMax(7) may or may not take effect; reads seeing
        // either value are fine, but monotonicity still applies.
        let pending = OpRecord {
            pid: ProcessId(0),
            desc: OpDesc::WriteMax(7),
            invoke: 0,
            response: None,
            output: None,
            steps: 1,
        };
        for seen in [-1, 7] {
            let mut h = History::new();
            h.push(pending.clone());
            h.push(op(1, OpDesc::ReadMax, 1, 2, OpOutput::Value(seen)));
            assert!(check_exact(&h, &MAX_SPEC).is_ok(), "seen={seen}");
            assert!(check_max_register(&h, -1).is_ok(), "seen={seen}");
        }
    }

    fn pending(pid: usize, desc: OpDesc, invoke: usize) -> OpRecord {
        OpRecord {
            pid: ProcessId(pid),
            desc,
            invoke,
            response: None,
            output: None,
            steps: 1,
        }
    }

    #[test]
    fn pending_increment_may_linearize_or_not() {
        // A crash left an increment pending: reads seeing 0 or 1 are both
        // fine (completion rule), 2 is not.
        for (seen, ok) in [(0, true), (1, true), (2, false)] {
            let mut h = History::new();
            h.push(pending(0, OpDesc::CounterIncrement, 0));
            h.push(op(1, OpDesc::CounterRead, 1, 2, OpOutput::Value(seen)));
            assert_eq!(
                check_exact(&h, &SeqSpec::Counter).is_ok(),
                ok,
                "seen={seen}"
            );
            assert_eq!(check_counter(&h).is_ok(), ok, "seen={seen}");
        }
    }

    #[test]
    fn pending_increment_does_not_lower_the_floor() {
        // A *completed* increment must be seen even when another is
        // pending: the pending one widens only the upper bound.
        let mut h = History::new();
        h.push(op(0, OpDesc::CounterIncrement, 0, 1, OpOutput::Unit));
        h.push(pending(1, OpDesc::CounterIncrement, 2));
        h.push(op(2, OpDesc::CounterRead, 3, 4, OpOutput::Value(0)));
        assert!(check_exact(&h, &SeqSpec::Counter).is_err());
        assert_eq!(
            check_counter(&h).unwrap_err().kind,
            ViolationKind::CountOutOfRange
        );
    }

    #[test]
    fn pending_snapshot_update_may_linearize_or_not() {
        // p0's Update(1) is pending when p2 scans: segment 0 may read 0
        // or 1, but a value never written anywhere stays illegal.
        for (seen, ok) in [(0, true), (1, true), (9, false)] {
            let mut h = History::new();
            h.push(pending(0, OpDesc::Update(1), 0));
            h.push(op(2, OpDesc::Scan, 1, 2, OpOutput::Vector(vec![seen, 0])));
            let spec = SeqSpec::Snapshot { n: 2, initial: 0 };
            assert_eq!(check_exact(&h, &spec).is_ok(), ok, "seen={seen}");
            assert_eq!(check_snapshot(&h, 2, 0).is_ok(), ok, "seen={seen}");
        }
    }

    #[test]
    fn pending_reads_are_ignored_by_every_checker() {
        // Crashed readers returned nothing; they impose no constraint.
        let mut h = History::new();
        h.push(op(0, OpDesc::WriteMax(5), 0, 1, OpOutput::Unit));
        h.push(pending(1, OpDesc::ReadMax, 2));
        assert!(check_exact(&h, &MAX_SPEC).is_ok());
        assert!(check_max_register(&h, -1).is_ok());

        let mut h = History::new();
        h.push(op(0, OpDesc::CounterIncrement, 0, 1, OpOutput::Unit));
        h.push(pending(1, OpDesc::CounterRead, 2));
        assert!(check_exact(&h, &SeqSpec::Counter).is_ok());
        assert!(check_counter(&h).is_ok());

        let mut h = History::new();
        h.push(op(0, OpDesc::Update(1), 0, 1, OpOutput::Unit));
        h.push(pending(1, OpDesc::Scan, 2));
        assert!(check_exact(&h, &SeqSpec::Snapshot { n: 2, initial: 0 }).is_ok());
        assert!(check_snapshot(&h, 2, 0).is_ok());
    }

    #[test]
    fn exact_checker_handles_interleaved_counter() {
        // Two concurrent increments and a concurrent read seeing 0, 1 or 2.
        for seen in 0..=2 {
            let h = hist(vec![
                op(0, OpDesc::CounterIncrement, 0, 5, OpOutput::Unit),
                op(1, OpDesc::CounterIncrement, 1, 6, OpOutput::Unit),
                op(2, OpDesc::CounterRead, 2, 4, OpOutput::Value(seen)),
            ]);
            assert!(check_exact(&h, &SeqSpec::Counter).is_ok(), "seen={seen}");
            assert!(check_counter(&h).is_ok(), "seen={seen}");
        }
        let h = hist(vec![
            op(0, OpDesc::CounterIncrement, 0, 5, OpOutput::Unit),
            op(1, OpDesc::CounterIncrement, 1, 6, OpOutput::Unit),
            op(2, OpDesc::CounterRead, 2, 4, OpOutput::Value(3)),
        ]);
        assert!(check_exact(&h, &SeqSpec::Counter).is_err());
        assert!(check_counter(&h).is_err());
    }

    #[test]
    fn snapshot_checker_rejects_wrong_vector_length() {
        let h = hist(vec![op(
            0,
            OpDesc::Scan,
            0,
            1,
            OpOutput::Vector(vec![0, 0, 0]),
        )]);
        assert_eq!(
            check_snapshot(&h, 2, 0).unwrap_err().kind,
            ViolationKind::BadWorkload
        );
    }

    #[test]
    fn snapshot_checker_rejects_out_of_range_updater() {
        let h = hist(vec![op(5, OpDesc::Update(1), 0, 1, OpOutput::Unit)]);
        assert_eq!(
            check_snapshot(&h, 2, 0).unwrap_err().kind,
            ViolationKind::BadWorkload
        );
    }

    #[test]
    fn snapshot_scan_of_unwritten_value_is_rejected() {
        let h = hist(vec![op(
            0,
            OpDesc::Scan,
            0,
            1,
            OpOutput::Vector(vec![7, 0]),
        )]);
        assert_eq!(
            check_snapshot(&h, 2, 0).unwrap_err().kind,
            ViolationKind::UnwrittenValue
        );
    }

    #[test]
    fn snapshot_scan_of_future_update_is_rejected() {
        // Scan responds BEFORE the update is invoked, yet sees it.
        let h = hist(vec![
            op(0, OpDesc::Scan, 0, 1, OpOutput::Vector(vec![9, 0])),
            op(0, OpDesc::Update(9), 2, 3, OpOutput::Unit),
        ]);
        assert_eq!(
            check_snapshot(&h, 2, 0).unwrap_err().kind,
            ViolationKind::UnwrittenValue
        );
    }

    #[test]
    fn exact_checker_reports_oversized_histories_as_uncheckable() {
        let ops: Vec<OpRecord> = (0..64)
            .map(|i| {
                op(
                    0,
                    OpDesc::CounterIncrement,
                    2 * i,
                    2 * i + 1,
                    OpOutput::Unit,
                )
            })
            .collect();
        let v = check_exact(&hist(ops), &SeqSpec::Counter).unwrap_err();
        assert_eq!(v.kind, ViolationKind::Uncheckable);
        assert!(v.detail.contains("64"), "{}", v.detail);
        // Exactly 63 is still decided, not refused.
        let ops: Vec<OpRecord> = (0..63)
            .map(|i| {
                op(
                    0,
                    OpDesc::CounterIncrement,
                    2 * i,
                    2 * i + 1,
                    OpOutput::Unit,
                )
            })
            .collect();
        assert!(check_exact(&hist(ops), &SeqSpec::Counter).is_ok());
    }

    #[test]
    fn zero_step_same_tick_ops_do_not_poison_the_exact_checker() {
        // Regression: two zero-step operations invoked at the same tick
        // used to be recorded with response == invoke, so each preceded
        // the other — a cycle in `check_exact`'s must-before relation
        // and a spurious NoLinearization. Completion now consumes a
        // tick, so the executor's history linearizes trivially.
        use crate::exec::{Executor, OpSpec, WorkloadBuilder};
        use crate::{Machine, Memory, RoundRobin};

        let mut mem = Memory::new();
        let _ = mem.alloc(0);
        let mut w = WorkloadBuilder::new(2);
        for i in 0..2 {
            w.op(
                ProcessId(i),
                OpSpec::update(OpDesc::WriteMax(0), || Machine::completed(0)),
            );
        }
        let outcome = Executor::new().run(&mut mem, w, &mut RoundRobin::new());
        assert!(outcome.all_done);
        let h = &outcome.history;
        for o in h.ops() {
            assert!(
                o.response.unwrap() > o.invoke,
                "zero-width interval recorded: {o:?}"
            );
        }
        assert!(
            check_exact(h, &SeqSpec::MaxRegister { initial: 0 }).is_ok(),
            "spurious violation on same-tick zero-step ops"
        );
        assert!(check_max_register(h, 0).is_ok());
    }

    #[test]
    fn violation_display_is_informative() {
        let h = hist(vec![
            op(0, OpDesc::WriteMax(5), 0, 1, OpOutput::Unit),
            op(1, OpDesc::ReadMax, 2, 3, OpOutput::Value(0)),
        ]);
        let v = check_max_register(&h, 0).unwrap_err();
        let text = v.to_string();
        assert!(text.contains("StaleRead"), "{text}");
        assert!(text.contains("WriteMax(5)"), "{text}");
    }
}
