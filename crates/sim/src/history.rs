//! Invocation/response histories for linearizability checking.
//!
//! The executor records, for every operation instance, the interval
//! `[invoke, response)` measured in *global event ticks* (positions in the
//! execution's event log: `invoke` is the log length just before the
//! operation's first event, `response` the position just after its last).
//! Operation `a` *precedes* operation `b` exactly when
//! `a.response <= b.invoke`, matching the paper's definition
//! ("Φ1 precedes Φ2 in E if Φ1 completes in E before the first event of
//! Φ2 has been issued").

use std::fmt;

use crate::{ProcessId, Word};

/// What kind of high-level operation an [`OpRecord`] describes.
///
/// These are the operations of the paper's three object families
/// (Section 2): max registers, counters, and single-writer snapshots.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum OpDesc {
    /// `WriteMax(v)` on a max register.
    WriteMax(Word),
    /// `ReadMax()` on a max register.
    ReadMax,
    /// `CounterIncrement()` on a counter.
    CounterIncrement,
    /// `CounterRead()` on a counter.
    CounterRead,
    /// `Update(v)` of the caller's segment of a single-writer snapshot.
    Update(Word),
    /// `Scan()` of a snapshot.
    Scan,
}

impl OpDesc {
    /// Whether this is an update-type operation (one that mutates the
    /// object). A *pending* update may already have taken effect, so
    /// stripping it from a history is unsound; see
    /// [`History::strip_pending`].
    pub fn is_update(&self) -> bool {
        matches!(
            self,
            OpDesc::WriteMax(_) | OpDesc::CounterIncrement | OpDesc::Update(_)
        )
    }

    /// Whether this is a read-type operation (one that only observes the
    /// object). A pending read returned nothing to anyone; dropping it
    /// from a history is always sound.
    pub fn is_read(&self) -> bool {
        !self.is_update()
    }
}

impl fmt::Display for OpDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpDesc::WriteMax(v) => write!(f, "WriteMax({v})"),
            OpDesc::ReadMax => write!(f, "ReadMax"),
            OpDesc::CounterIncrement => write!(f, "CounterIncrement"),
            OpDesc::CounterRead => write!(f, "CounterRead"),
            OpDesc::Update(v) => write!(f, "Update({v})"),
            OpDesc::Scan => write!(f, "Scan"),
        }
    }
}

/// The value an operation returned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OpOutput {
    /// No meaningful return value (writes, increments, updates).
    Unit,
    /// A single word (reads).
    Value(Word),
    /// A vector of segment values (scans).
    Vector(Vec<Word>),
}

impl OpOutput {
    /// The single-word value, if this output is one.
    pub fn value(&self) -> Option<Word> {
        match self {
            OpOutput::Value(v) => Some(*v),
            _ => None,
        }
    }

    /// The vector value, if this output is one.
    pub fn vector(&self) -> Option<&[Word]> {
        match self {
            OpOutput::Vector(v) => Some(v),
            _ => None,
        }
    }
}

/// One completed (or still-pending) operation instance in a history.
///
/// # Invariant
///
/// Every executor and explorer maintains `invoke < response` for
/// completed operations: completion consumes a tick, so even a zero-step
/// operation occupies the non-empty interval `[invoke, invoke + 1)`.
/// A zero-width interval (`response == invoke`) would make two same-tick
/// operations *mutually* precede each other under
/// [`precedes`](OpRecord::precedes), creating a precedence cycle no
/// linearization can satisfy — a spurious violation, the worst failure
/// mode a checker can have. [`crate::explore::history_is_wellformed`]
/// checks this invariant strictly.
#[derive(Clone, Debug)]
pub struct OpRecord {
    /// The process that performed the operation.
    pub pid: ProcessId,
    /// What the operation was.
    pub desc: OpDesc,
    /// Global event tick at which the operation was invoked (the length
    /// of the event log just before its first event).
    pub invoke: usize,
    /// Global event tick at which the operation responded, if it did
    /// (position just after its last event; always `> invoke`).
    pub response: Option<usize>,
    /// The operation's output, if it completed.
    pub output: Option<OpOutput>,
    /// Number of shared-memory steps the operation took.
    pub steps: usize,
}

impl OpRecord {
    /// Whether this operation completed.
    pub fn is_complete(&self) -> bool {
        self.response.is_some()
    }

    /// Whether `self` precedes `other` in real time (`self` responded
    /// before `other` was invoked).
    pub fn precedes(&self, other: &OpRecord) -> bool {
        match self.response {
            Some(r) => r <= other.invoke,
            None => false,
        }
    }

    /// Whether the two operations' intervals overlap (neither precedes
    /// the other).
    pub fn overlaps(&self, other: &OpRecord) -> bool {
        !self.precedes(other) && !other.precedes(self)
    }
}

/// A history: every operation instance of an execution, in invocation
/// order.
#[derive(Clone, Debug, Default)]
pub struct History {
    ops: Vec<OpRecord>,
}

impl History {
    /// Creates an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record. Records must be pushed in invocation order.
    pub fn push(&mut self, rec: OpRecord) {
        debug_assert!(self
            .ops
            .last()
            .map(|prev| prev.invoke <= rec.invoke)
            .unwrap_or(true));
        self.ops.push(rec);
    }

    /// All records in invocation order.
    pub fn ops(&self) -> &[OpRecord] {
        &self.ops
    }

    /// Mutable access for executors filling in responses.
    pub fn ops_mut(&mut self) -> &mut [OpRecord] {
        &mut self.ops
    }

    /// Number of operation instances.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the history has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Only the completed operations.
    pub fn completed(&self) -> impl Iterator<Item = &OpRecord> {
        self.ops.iter().filter(|o| o.is_complete())
    }

    /// Only the pending (invoked, never responded) operations — what a
    /// crash leaves behind.
    pub fn pending(&self) -> impl Iterator<Item = &OpRecord> {
        self.ops.iter().filter(|o| !o.is_complete())
    }

    /// Drops pending (incomplete) operations, returning a complete
    /// history.
    ///
    /// This is only sound when every pending operation is *read-type*: a
    /// pending read returned nothing to anyone, but a pending update may
    /// already have taken effect and be observed by completed reads —
    /// stripping it can turn a linearizable history into one the
    /// checkers reject (or worse, hide a real violation). Debug builds
    /// assert that contract; use [`History::strip_pending`] for the
    /// checked version, or keep the pending ops and rely on the
    /// checkers' completion rule (every checker in [`crate::lin`]
    /// handles pending updates directly).
    pub fn without_pending(&self) -> History {
        debug_assert!(
            self.pending().all(|o| o.desc.is_read()),
            "stripping a pending update-type operation is unsound; \
             use strip_pending() or pass the history to the checkers as-is"
        );
        History {
            ops: self
                .ops
                .iter()
                .filter(|o| o.is_complete())
                .cloned()
                .collect(),
        }
    }

    /// Checked version of [`History::without_pending`]: drops pending
    /// read-type operations, but refuses (with the offending operation's
    /// index) if any pending operation is update-type, since such an
    /// operation may already have taken effect.
    pub fn strip_pending(&self) -> Result<History, StripPendingError> {
        if let Some(index) = self
            .ops
            .iter()
            .position(|o| !o.is_complete() && o.desc.is_update())
        {
            return Err(StripPendingError {
                index,
                desc: self.ops[index].desc.clone(),
                pid: self.ops[index].pid,
            });
        }
        Ok(History {
            ops: self
                .ops
                .iter()
                .filter(|o| o.is_complete())
                .cloned()
                .collect(),
        })
    }
}

/// Why [`History::strip_pending`] refused: a pending update-type
/// operation may already have taken effect, so dropping it is unsound.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StripPendingError {
    /// Index (in invocation order) of the offending operation.
    pub index: usize,
    /// The pending update's description.
    pub desc: OpDesc,
    /// The process that invoked it.
    pub pid: ProcessId,
}

impl fmt::Display for StripPendingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot strip pending update-type op #{} ({} by p{}): it may already have taken effect",
            self.index, self.desc, self.pid.0
        )
    }
}

impl std::error::Error for StripPendingError {}

impl<'a> IntoIterator for &'a History {
    type Item = &'a OpRecord;
    type IntoIter = std::slice::Iter<'a, OpRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.ops.iter()
    }
}

impl FromIterator<OpRecord> for History {
    fn from_iter<T: IntoIterator<Item = OpRecord>>(iter: T) -> Self {
        let mut h = History::new();
        for rec in iter {
            h.push(rec);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(pid: usize, desc: OpDesc, invoke: usize, response: usize) -> OpRecord {
        OpRecord {
            pid: ProcessId(pid),
            desc,
            invoke,
            response: Some(response),
            output: Some(OpOutput::Unit),
            steps: response - invoke,
        }
    }

    #[test]
    fn precedence_matches_paper_definition() {
        let a = rec(0, OpDesc::CounterIncrement, 0, 2);
        let b = rec(1, OpDesc::CounterRead, 3, 5);
        assert!(a.precedes(&b));
        assert!(!b.precedes(&a));
        assert!(!a.overlaps(&b));
    }

    #[test]
    fn overlapping_intervals_do_not_precede() {
        let a = rec(0, OpDesc::CounterIncrement, 0, 4);
        let b = rec(1, OpDesc::CounterRead, 2, 6);
        assert!(a.overlaps(&b));
        assert!(!a.precedes(&b));
    }

    #[test]
    fn pending_op_precedes_nothing() {
        let pending = OpRecord {
            pid: ProcessId(0),
            desc: OpDesc::ReadMax,
            invoke: 0,
            response: None,
            output: None,
            steps: 1,
        };
        let later = rec(1, OpDesc::ReadMax, 10, 11);
        assert!(!pending.precedes(&later));
        assert!(pending.overlaps(&later));
    }

    #[test]
    fn without_pending_strips_incomplete_ops() {
        let mut h = History::new();
        h.push(rec(0, OpDesc::ReadMax, 0, 1));
        h.push(OpRecord {
            pid: ProcessId(1),
            desc: OpDesc::ReadMax,
            invoke: 2,
            response: None,
            output: None,
            steps: 0,
        });
        assert_eq!(h.len(), 2);
        assert_eq!(h.without_pending().len(), 1);
    }

    #[test]
    fn strip_pending_refuses_pending_updates() {
        let mut h = History::new();
        h.push(rec(0, OpDesc::ReadMax, 0, 1));
        h.push(OpRecord {
            pid: ProcessId(1),
            desc: OpDesc::WriteMax(7),
            invoke: 2,
            response: None,
            output: None,
            steps: 1,
        });
        let err = h.strip_pending().expect_err("pending update must refuse");
        assert_eq!(err.index, 1);
        assert_eq!(err.desc, OpDesc::WriteMax(7));
        assert_eq!(err.pid, ProcessId(1));
        assert!(err.to_string().contains("WriteMax(7)"));
    }

    #[test]
    fn strip_pending_drops_pending_reads() {
        let mut h = History::new();
        h.push(rec(0, OpDesc::WriteMax(3), 0, 1));
        h.push(OpRecord {
            pid: ProcessId(1),
            desc: OpDesc::Scan,
            invoke: 2,
            response: None,
            output: None,
            steps: 0,
        });
        let stripped = h.strip_pending().expect("pending read strips fine");
        assert_eq!(stripped.len(), 1);
        assert_eq!(stripped.ops()[0].desc, OpDesc::WriteMax(3));
    }

    #[test]
    #[should_panic(expected = "unsound")]
    #[cfg(debug_assertions)]
    fn without_pending_asserts_on_pending_updates() {
        let mut h = History::new();
        h.push(OpRecord {
            pid: ProcessId(0),
            desc: OpDesc::CounterIncrement,
            invoke: 0,
            response: None,
            output: None,
            steps: 1,
        });
        let _ = h.without_pending();
    }

    #[test]
    fn update_read_classification_covers_every_desc() {
        assert!(OpDesc::WriteMax(1).is_update());
        assert!(OpDesc::CounterIncrement.is_update());
        assert!(OpDesc::Update(2).is_update());
        assert!(OpDesc::ReadMax.is_read());
        assert!(OpDesc::CounterRead.is_read());
        assert!(OpDesc::Scan.is_read());
    }

    #[test]
    fn pending_iterator_yields_only_incomplete_ops() {
        let mut h = History::new();
        h.push(rec(0, OpDesc::ReadMax, 0, 1));
        h.push(OpRecord {
            pid: ProcessId(1),
            desc: OpDesc::WriteMax(5),
            invoke: 2,
            response: None,
            output: None,
            steps: 1,
        });
        let pending: Vec<_> = h.pending().collect();
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].desc, OpDesc::WriteMax(5));
    }

    #[test]
    fn output_accessors() {
        assert_eq!(OpOutput::Value(3).value(), Some(3));
        assert_eq!(OpOutput::Unit.value(), None);
        assert_eq!(OpOutput::Vector(vec![1, 2]).vector(), Some(&[1, 2][..]));
        assert_eq!(OpOutput::Value(3).vector(), None);
    }
}
