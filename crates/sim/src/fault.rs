//! First-class fault injection: crash and stall scheduling.
//!
//! The paper's objects are wait-free or obstruction-free — their whole
//! point is surviving processes that stop mid-operation. A [`FaultPlan`]
//! makes that adversary first-class: it is a deterministic, seedable
//! description of *which* processes fail and *when*, measured in the
//! process's own shared-memory events (so a plan is meaningful under any
//! scheduler).
//!
//! Two fault kinds, matching the standard model:
//!
//! * [`Fault::Crash`] — the process halts **permanently** after taking
//!   its `after`-th event. Its in-flight operation stays *pending* in the
//!   [`History`](crate::History) (invoked, never responded); the
//!   completion rule for checkers says such an operation may linearize
//!   anywhere after its invocation or be dropped entirely.
//! * [`Fault::Stall`] — the process is descheduled for a **bounded
//!   window** (`hold` global steps) after taking its `after`-th event,
//!   then resumes. Stalls change interleavings but never leave pending
//!   operations behind.
//!
//! Plans are injected at the executor's scheduling points
//! ([`Executor::run_with_faults`](crate::Executor::run_with_faults))
//! rather than wrapped around a [`Scheduler`](crate::Scheduler): a plain
//! scheduler only picks among runnable processes and cannot express
//! "this process never runs again", which is exactly what a crash is.
//! The bounded-exploration analogue lives in
//! [`ExploreConfig::max_crashes`](crate::explore::ExploreConfig):
//! exhaustive enumeration over *every* crash point within a budget.

use crate::rng::SplitMix64;
use crate::ProcessId;

/// One scheduled fault for one process, triggered by the process's own
/// event count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// The process halts permanently after taking `after` shared-memory
    /// events (`after == 0` crashes it before its first event).
    Crash {
        /// Events the process takes before halting.
        after: usize,
    },
    /// After taking `after` events, the process is not scheduled until
    /// `hold` further *global* steps have elapsed (or, if no other
    /// process can move, the stall is released early — a stall is a
    /// bounded window, never a deadlock).
    Stall {
        /// Events the process takes before stalling.
        after: usize,
        /// Global steps the stall holds the process for.
        hold: usize,
    },
}

impl Fault {
    /// The triggering event count.
    fn after(&self) -> usize {
        match *self {
            Fault::Crash { after } => after,
            Fault::Stall { after, .. } => after,
        }
    }
}

/// A deterministic fault schedule: per process, a list of [`Fault`]s
/// triggered by that process's own event count.
///
/// Plans compose with any scheduler — the trigger is "after my k-th
/// event", not "at global tick t" — so the same plan reproduces the same
/// fault behavior under round-robin, seeded-random or scripted
/// schedules.
///
/// ```
/// use ruo_sim::fault::FaultPlan;
/// use ruo_sim::ProcessId;
///
/// // p1 crashes after 3 events; p2 stalls for 10 global steps after 1.
/// let plan = FaultPlan::new()
///     .crash(ProcessId(1), 3)
///     .stall(ProcessId(2), 1, 10);
/// assert!(plan.crashes(ProcessId(1)));
/// assert!(!plan.crashes(ProcessId(0)));
/// ```
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// `faults[p]` = process `p`'s faults, sorted by trigger event count.
    faults: Vec<Vec<Fault>>,
}

impl FaultPlan {
    /// An empty plan (no faults). [`Executor::run`](crate::Executor::run)
    /// is exactly `run_with_faults` under this plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Alias for [`FaultPlan::new`], reading better at call sites that
    /// opt out of fault injection explicitly.
    pub fn none() -> Self {
        Self::default()
    }

    fn slot(&mut self, pid: ProcessId) -> &mut Vec<Fault> {
        if self.faults.len() <= pid.index() {
            self.faults.resize(pid.index() + 1, Vec::new());
        }
        &mut self.faults[pid.index()]
    }

    fn push(mut self, pid: ProcessId, fault: Fault) -> Self {
        let slot = self.slot(pid);
        slot.push(fault);
        slot.sort_by_key(Fault::after);
        self
    }

    /// Adds a permanent crash of `pid` after its `after`-th event.
    pub fn crash(self, pid: ProcessId, after: usize) -> Self {
        self.push(pid, Fault::Crash { after })
    }

    /// Adds a bounded stall of `pid`: after its `after`-th event it is
    /// descheduled for `hold` global steps.
    pub fn stall(self, pid: ProcessId, after: usize, hold: usize) -> Self {
        self.push(pid, Fault::Stall { after, hold })
    }

    /// A seeded random plan over `n` processes: up to `crashes` distinct
    /// processes each crash at an event count in `[0, max_after]`.
    /// Deterministic per seed, like every scheduler in this crate.
    pub fn random_crashes(seed: u64, n: usize, crashes: usize, max_after: usize) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut pids: Vec<usize> = (0..n).collect();
        let mut plan = FaultPlan::new();
        for _ in 0..crashes.min(n) {
            let i = rng.gen_index(pids.len());
            let pid = pids.swap_remove(i);
            let after = rng.gen_index(max_after + 1);
            plan = plan.crash(ProcessId(pid), after);
        }
        plan
    }

    /// The faults scheduled for `pid`, sorted by trigger event count.
    pub fn faults_for(&self, pid: ProcessId) -> &[Fault] {
        self.faults
            .get(pid.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Whether the plan ever crashes `pid`.
    pub fn crashes(&self, pid: ProcessId) -> bool {
        self.faults_for(pid)
            .iter()
            .any(|f| matches!(f, Fault::Crash { .. }))
    }

    /// Whether the plan contains no faults at all.
    pub fn is_empty(&self) -> bool {
        self.faults.iter().all(Vec::is_empty)
    }
}

/// Runtime fault state: tracks each process's event count against a
/// [`FaultPlan`] and answers "may this process be scheduled now?".
///
/// The executor owns one per run; exposed so hand-driven harnesses
/// (tests that advance machines manually) can reuse the same trigger
/// logic instead of re-deriving crash points.
#[derive(Clone, Debug)]
pub struct FaultClock<'a> {
    plan: &'a FaultPlan,
    /// Per process: events taken so far.
    events: Vec<usize>,
    /// Per process: index of the next untriggered fault in the plan.
    cursor: Vec<usize>,
    /// Per process: whether a crash has triggered.
    crashed: Vec<bool>,
    /// Per process: global step before which the process may not run.
    stalled_until: Vec<Option<usize>>,
}

impl<'a> FaultClock<'a> {
    /// A clock for `n` processes following `plan`.
    pub fn new(plan: &'a FaultPlan, n: usize) -> Self {
        let mut clock = FaultClock {
            plan,
            events: vec![0; n],
            cursor: vec![0; n],
            crashed: vec![false; n],
            stalled_until: vec![None; n],
        };
        // Trigger `after == 0` faults before any event.
        for p in 0..n {
            clock.trigger(ProcessId(p), 0);
        }
        clock
    }

    /// Fires every fault of `pid` whose trigger count has been reached.
    fn trigger(&mut self, pid: ProcessId, now: usize) {
        let p = pid.index();
        let faults = self.plan.faults_for(pid);
        while let Some(fault) = faults.get(self.cursor[p]) {
            if fault.after() > self.events[p] {
                break;
            }
            self.cursor[p] += 1;
            match *fault {
                Fault::Crash { .. } => self.crashed[p] = true,
                Fault::Stall { hold, .. } => {
                    let until = now + hold;
                    self.stalled_until[p] = Some(match self.stalled_until[p] {
                        Some(cur) => cur.max(until),
                        None => until,
                    });
                }
            }
        }
    }

    /// Records one shared-memory event by `pid` at global step `now`
    /// (the step count *after* the event), firing any fault it reaches.
    pub fn on_event(&mut self, pid: ProcessId, now: usize) {
        self.events[pid.index()] += 1;
        self.trigger(pid, now);
    }

    /// Whether `pid` has crashed.
    pub fn is_crashed(&self, pid: ProcessId) -> bool {
        self.crashed[pid.index()]
    }

    /// Whether `pid` is inside a stall window at global step `now`
    /// (expired windows are cleared as a side effect of the answer being
    /// `false` at a later query — the stored bound is immutable).
    pub fn is_stalled(&self, pid: ProcessId, now: usize) -> bool {
        matches!(self.stalled_until[pid.index()], Some(until) if now < until)
    }

    /// Events `pid` has taken.
    pub fn events(&self, pid: ProcessId) -> usize {
        self.events[pid.index()]
    }

    /// Releases the stall with the earliest deadline among `candidates`
    /// (stalls are bounded windows: if nobody else can move, time
    /// passes vacuously and the earliest window elapses). Returns the
    /// released process, or `None` if no candidate is stalled.
    pub fn release_earliest_stall(&mut self, candidates: &[ProcessId]) -> Option<ProcessId> {
        let released = candidates
            .iter()
            .filter_map(|&pid| self.stalled_until[pid.index()].map(|until| (until, pid)))
            .min_by_key(|&(until, _)| until)
            .map(|(_, pid)| pid)?;
        self.stalled_until[released.index()] = None;
        Some(released)
    }

    /// Every process the clock has marked crashed, in id order.
    pub fn crashed_processes(&self) -> Vec<ProcessId> {
        self.crashed
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c)
            .map(|(p, _)| ProcessId(p))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_builder_sorts_faults_by_trigger() {
        let plan = FaultPlan::new()
            .stall(ProcessId(0), 5, 2)
            .crash(ProcessId(0), 3);
        let faults = plan.faults_for(ProcessId(0));
        assert_eq!(faults[0], Fault::Crash { after: 3 });
        assert_eq!(faults[1], Fault::Stall { after: 5, hold: 2 });
        assert!(plan.crashes(ProcessId(0)));
        assert!(!plan.is_empty());
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn clock_crashes_exactly_at_the_trigger_count() {
        let plan = FaultPlan::new().crash(ProcessId(1), 2);
        let mut clock = FaultClock::new(&plan, 2);
        assert!(!clock.is_crashed(ProcessId(1)));
        clock.on_event(ProcessId(1), 1);
        assert!(!clock.is_crashed(ProcessId(1)));
        clock.on_event(ProcessId(1), 2);
        assert!(clock.is_crashed(ProcessId(1)));
        assert!(!clock.is_crashed(ProcessId(0)));
        assert_eq!(clock.crashed_processes(), vec![ProcessId(1)]);
    }

    #[test]
    fn crash_after_zero_triggers_before_any_event() {
        let plan = FaultPlan::new().crash(ProcessId(0), 0);
        let clock = FaultClock::new(&plan, 1);
        assert!(clock.is_crashed(ProcessId(0)));
    }

    #[test]
    fn stall_holds_for_the_window_then_expires() {
        let plan = FaultPlan::new().stall(ProcessId(0), 1, 5);
        let mut clock = FaultClock::new(&plan, 1);
        assert!(!clock.is_stalled(ProcessId(0), 0));
        clock.on_event(ProcessId(0), 1); // trigger: stalled until step 6
        assert!(clock.is_stalled(ProcessId(0), 1));
        assert!(clock.is_stalled(ProcessId(0), 5));
        assert!(!clock.is_stalled(ProcessId(0), 6));
    }

    #[test]
    fn release_earliest_stall_picks_the_smallest_deadline() {
        let plan = FaultPlan::new()
            .stall(ProcessId(0), 0, 50)
            .stall(ProcessId(1), 0, 10);
        let mut clock = FaultClock::new(&plan, 2);
        let released = clock.release_earliest_stall(&[ProcessId(0), ProcessId(1)]);
        assert_eq!(released, Some(ProcessId(1)));
        assert!(!clock.is_stalled(ProcessId(1), 0));
        assert!(clock.is_stalled(ProcessId(0), 0));
    }

    #[test]
    fn random_plans_are_deterministic_and_bounded() {
        let a = FaultPlan::random_crashes(7, 4, 2, 10);
        let b = FaultPlan::random_crashes(7, 4, 2, 10);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let crashed: Vec<bool> = (0..4).map(|p| a.crashes(ProcessId(p))).collect();
        assert_eq!(crashed.iter().filter(|&&c| c).count(), 2);
        for p in 0..4 {
            for f in a.faults_for(ProcessId(p)) {
                assert!(f.after() <= 10);
            }
        }
        // Different seeds differ somewhere in a small sweep.
        let plans: Vec<String> = (0..8)
            .map(|s| format!("{:?}", FaultPlan::random_crashes(s, 4, 2, 10)))
            .collect();
        assert!(plans.iter().any(|p| *p != plans[0]));
    }

    #[test]
    fn events_are_counted_per_process() {
        let plan = FaultPlan::none();
        let mut clock = FaultClock::new(&plan, 2);
        clock.on_event(ProcessId(0), 1);
        clock.on_event(ProcessId(0), 2);
        clock.on_event(ProcessId(1), 3);
        assert_eq!(clock.events(ProcessId(0)), 2);
        assert_eq!(clock.events(ProcessId(1)), 1);
    }
}
