//! Executor + `ScriptedScheduler`: replaying fixed schedules through the
//! high-level executor, the mechanism regression schedules use.

use ruo_sim::history::OpDesc;
use ruo_sim::{
    cas, done, read, Executor, Machine, Memory, ObjId, OpSpec, ProcessId, RoundRobin,
    ScriptedScheduler, Step, WorkloadBuilder,
};

fn incr(o: ObjId) -> Step {
    read(o, move |v| {
        cas(
            o,
            v,
            v + 1,
            move |ok| if ok == 1 { done(v + 1) } else { incr(o) },
        )
    })
}

fn increments(n: usize, o: ObjId) -> WorkloadBuilder {
    let mut w = WorkloadBuilder::new(n);
    for p in 0..n {
        w.op(
            ProcessId(p),
            OpSpec::update(OpDesc::CounterIncrement, move || Machine::new(incr(o))),
        );
    }
    w
}

#[test]
fn scripted_schedule_forces_cas_failures() {
    let mut mem = Memory::new();
    let o = mem.alloc(0);
    // Interleave p0's read, p1's read, then both CAS: exactly one fails
    // and retries (2 extra steps).
    let script = ScriptedScheduler::new([
        ProcessId(0), // p0 read
        ProcessId(1), // p1 read (same value)
        ProcessId(0), // p0 CAS succeeds
        ProcessId(1), // p1 CAS fails
        ProcessId(1), // p1 retry read
        ProcessId(1), // p1 retry CAS succeeds
    ]);
    let outcome = Executor::new().run(&mut mem, increments(2, o), &mut { script });
    assert!(outcome.all_done);
    assert_eq!(mem.peek(o), 2);
    let steps: Vec<usize> = outcome.history.ops().iter().map(|op| op.steps).collect();
    assert_eq!(steps, vec![2, 4], "p1 must have paid the scripted retry");
}

#[test]
fn script_prefix_then_fallback_drains_everything() {
    let mut mem = Memory::new();
    let o = mem.alloc(0);
    // Script only the first two steps; round-robin fallback finishes.
    let script = ScriptedScheduler::new([ProcessId(2), ProcessId(2)]);
    let outcome = Executor::new().run(&mut mem, increments(3, o), &mut { script });
    assert!(outcome.all_done);
    assert_eq!(mem.peek(o), 3);
    // p2 completed first (its 2 steps were scripted back-to-back).
    let first_done = outcome
        .history
        .ops()
        .iter()
        .min_by_key(|op| op.response.unwrap())
        .unwrap();
    assert_eq!(first_done.pid, ProcessId(2));
}

#[test]
fn same_script_reproduces_the_same_execution() {
    let run = || {
        let mut mem = Memory::new();
        let o = mem.alloc(0);
        let script =
            ScriptedScheduler::new([ProcessId(1), ProcessId(0), ProcessId(1), ProcessId(0)]);
        let outcome = Executor::new().run(&mut mem, increments(2, o), &mut { script });
        let steps: Vec<usize> = outcome.history.ops().iter().map(|op| op.steps).collect();
        (mem.steps(), steps)
    };
    assert_eq!(run(), run());
}

#[test]
fn scripted_and_round_robin_agree_on_final_state() {
    let total = |sched: &mut dyn ruo_sim::Scheduler| {
        let mut mem = Memory::new();
        let o = mem.alloc(0);
        let outcome = Executor::new().run(&mut mem, increments(4, o), sched);
        assert!(outcome.all_done);
        mem.peek(o)
    };
    let mut rr = RoundRobin::new();
    let mut scripted = ScriptedScheduler::new((0..4).cycle().take(64).map(ProcessId));
    assert_eq!(total(&mut rr), 4);
    assert_eq!(total(&mut scripted), 4);
}
