//! Property tests for the simulator: memory semantics, executor
//! determinism, and cross-validation of the fast linearizability
//! checkers against the exact search.

use proptest::prelude::*;
use ruo_sim::history::{History, OpDesc, OpOutput, OpRecord};
use ruo_sim::lin::{check_counter, check_exact, check_max_register};
use ruo_sim::spec::SeqSpec;
use ruo_sim::{
    cas, done, read, Executor, Machine, Memory, ObjId, OpSpec, Prim, ProcessId, RandomScheduler,
    Step, Word, WorkloadBuilder,
};

fn arb_prim(n_objs: usize) -> impl Strategy<Value = (usize, u8, Word, Word)> {
    (0..n_objs, 0u8..3, -3i64..4, -3i64..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Memory responses follow the primitive semantics exactly, and the
    /// log reconstructs the final state.
    #[test]
    fn memory_semantics_hold(steps in proptest::collection::vec(arb_prim(3), 1..60)) {
        let mut mem = Memory::new();
        let objs = mem.alloc_n(3, 0);
        let mut shadow = [0i64; 3];
        for (o, kind, a, b) in steps {
            let prim = match kind {
                0 => Prim::Read(objs[o]),
                1 => Prim::Write(objs[o], a),
                _ => Prim::Cas { obj: objs[o], expected: a, new: b },
            };
            let resp = mem.apply(ProcessId(0), prim);
            match prim {
                Prim::Read(_) => prop_assert_eq!(resp, shadow[o]),
                Prim::Write(_, v) => {
                    prop_assert_eq!(resp, 0);
                    shadow[o] = v;
                }
                Prim::Cas { expected, new, .. } => {
                    if shadow[o] == expected {
                        prop_assert_eq!(resp, 1);
                        shadow[o] = new;
                    } else {
                        prop_assert_eq!(resp, 0);
                    }
                }
            }
            prop_assert_eq!(mem.peek(objs[o]), shadow[o]);
        }
        // The event log replays to the same final state.
        let events: Vec<_> = mem.log().events().to_vec();
        let mut mem2 = Memory::new();
        let objs2 = mem2.alloc_n(3, 0);
        for e in &events {
            let prim = match e.prim {
                Prim::Read(o) => Prim::Read(objs2[o.index()]),
                Prim::Write(o, v) => Prim::Write(objs2[o.index()], v),
                Prim::Cas { obj, expected, new } => Prim::Cas {
                    obj: objs2[obj.index()],
                    expected,
                    new,
                },
            };
            let resp = mem2.apply(e.pid, prim);
            prop_assert_eq!(resp, e.resp, "replay diverged at seq {}", e.seq);
        }
        for o in 0..3 {
            prop_assert_eq!(mem2.peek(objs2[o]), shadow[o]);
        }
    }

    /// The executor is deterministic per scheduler seed: same seed, same
    /// history; and CAS-loop increments never lose counts under any seed.
    #[test]
    fn executor_is_deterministic_and_exact(seed in 0u64..10_000, n in 2usize..6) {
        fn incr(o: ObjId) -> Step {
            read(o, move |v| {
                cas(o, v, v + 1, move |ok| if ok == 1 { done(v + 1) } else { incr(o) })
            })
        }
        let run = |seed: u64| {
            let mut mem = Memory::new();
            let o = mem.alloc(0);
            let mut w = WorkloadBuilder::new(n);
            for p in 0..n {
                w.op(
                    ProcessId(p),
                    OpSpec::update(OpDesc::CounterIncrement, move || Machine::new(incr(o))),
                );
            }
            let outcome = Executor::new().run(&mut mem, w, &mut RandomScheduler::new(seed));
            (mem.peek(o), mem.steps(), outcome.history.len())
        };
        let a = run(seed);
        let b = run(seed);
        prop_assert_eq!(a, b, "same seed must reproduce the execution");
        prop_assert_eq!(a.0, n as i64, "increments lost or duplicated");
    }

    /// Fast max-register checker is sound relative to the exact search:
    /// whenever the fast checker accepts a random small history, so does
    /// the exact checker... in contrapositive form: exact-violation ⇒
    /// fast result may be either, but fast-violation ⇒ exact-violation.
    #[test]
    fn fast_maxreg_checker_never_cries_wolf(
        ops in proptest::collection::vec((0u8..2, 0i64..4, 0usize..8, 1usize..8), 1..7)
    ) {
        // Build a random (possibly nonsense) complete history.
        let mut recs = Vec::new();
        let mut t = 0usize;
        for (i, (kind, v, gap, len)) in ops.iter().enumerate() {
            let invoke = t + gap;
            let response = invoke + len;
            t = invoke + 1;
            let (desc, output) = if *kind == 0 {
                (OpDesc::WriteMax(*v), OpOutput::Unit)
            } else {
                (OpDesc::ReadMax, OpOutput::Value(*v))
            };
            recs.push(OpRecord {
                pid: ProcessId(i % 3),
                desc,
                invoke,
                response: Some(response),
                output: Some(output),
                steps: 1,
            });
        }
        recs.sort_by_key(|r| r.invoke);
        let history: History = recs.into_iter().collect();
        let fast = check_max_register(&history, 0);
        let exact = check_exact(&history, &SeqSpec::MaxRegister { initial: 0 });
        if fast.is_err() {
            prop_assert!(
                exact.is_err(),
                "fast checker reported a violation the exact checker rejects: {:?}",
                fast.unwrap_err()
            );
        }
    }

    /// Same soundness cross-check for the counter checker.
    #[test]
    fn fast_counter_checker_never_cries_wolf(
        ops in proptest::collection::vec((0u8..2, 0i64..5, 0usize..8, 1usize..8), 1..7)
    ) {
        let mut recs = Vec::new();
        let mut t = 0usize;
        for (i, (kind, v, gap, len)) in ops.iter().enumerate() {
            let invoke = t + gap;
            let response = invoke + len;
            t = invoke + 1;
            let (desc, output) = if *kind == 0 {
                (OpDesc::CounterIncrement, OpOutput::Unit)
            } else {
                (OpDesc::CounterRead, OpOutput::Value(*v))
            };
            recs.push(OpRecord {
                pid: ProcessId(i % 3),
                desc,
                invoke,
                response: Some(response),
                output: Some(output),
                steps: 1,
            });
        }
        recs.sort_by_key(|r| r.invoke);
        let history: History = recs.into_iter().collect();
        let fast = check_counter(&history);
        let exact = check_exact(&history, &SeqSpec::Counter);
        if fast.is_err() {
            prop_assert!(exact.is_err(), "fast counter checker false positive");
        }
    }

    /// And the exact checker accepts every *truly sequential* legal
    /// history (generated by running the spec).
    #[test]
    fn exact_checker_accepts_legal_sequential_histories(
        kinds in proptest::collection::vec((0u8..2, 0usize..3), 1..10)
    ) {
        let spec = SeqSpec::Counter;
        let mut state = spec.init();
        let mut recs = Vec::new();
        for (i, (kind, p)) in kinds.iter().enumerate() {
            let pid = ProcessId(*p);
            let desc = if *kind == 0 {
                OpDesc::CounterIncrement
            } else {
                OpDesc::CounterRead
            };
            let (next, output) = spec.apply(&state, pid, &desc);
            state = next;
            recs.push(OpRecord {
                pid,
                desc,
                invoke: 2 * i,
                response: Some(2 * i + 1),
                output: Some(output),
                steps: 1,
            });
        }
        let history: History = recs.into_iter().collect();
        prop_assert!(check_exact(&history, &spec).is_ok());
        prop_assert!(check_counter(&history).is_ok());
    }
}

mod explore_props {
    use proptest::prelude::*;
    use ruo_sim::explore::{enumerate, history_is_wellformed, ExploreOp};
    use ruo_sim::{done, read, Machine, Memory, ObjId, OpDesc, ProcessId, Step};

    /// A pure read chain of exactly `len` events.
    fn chain(o: ObjId, len: usize) -> Step {
        if len == 1 {
            read(o, done)
        } else {
            read(o, move |_| chain(o, len - 1))
        }
    }

    /// `C(a+b, a)`, computed termwise (exact: each prefix product of
    /// consecutive binomial factors divides evenly).
    fn binomial(a: u64, b: u64) -> u64 {
        let n = a + b;
        let k = a.min(b);
        let mut num = 1u64;
        for i in 0..k {
            num = num * (n - i) / (i + 1);
        }
        num
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Enumeration over two fixed-length independent operations
        /// yields exactly C(a+b, a) schedules.
        #[test]
        fn enumeration_count_is_binomial(a in 1usize..6, b in 1usize..6) {
            let setup = move || {
                let mut mem = Memory::new();
                let o = mem.alloc(0);
                (mem, vec![
                    Machine::new(chain(o, a)),
                    Machine::new(chain(o, b)),
                ])
            };
            let ops = vec![
                ExploreOp { pid: ProcessId(0), desc: OpDesc::ReadMax, returns_value: true },
                ExploreOp { pid: ProcessId(1), desc: OpDesc::ReadMax, returns_value: true },
            ];
            let summary = enumerate(&setup, &ops, &mut |h| history_is_wellformed(h), 100_000);
            prop_assert!(!summary.truncated);
            prop_assert!(summary.violation.is_none());
            prop_assert_eq!(summary.schedules as u64, binomial(a as u64, b as u64));
        }
    }
}
