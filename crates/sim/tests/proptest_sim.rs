//! Property tests for the simulator: memory semantics, executor
//! determinism, and cross-validation of the fast linearizability
//! checkers against the exact search.
//!
//! The workspace builds offline with no external dependencies, so these
//! are deterministic randomized property tests driven by the local
//! [`ruo_sim::SplitMix64`] generator rather than `proptest`: each test
//! runs a fixed number of seeded cases, and a failure message always
//! includes the case number so the exact input can be regenerated.

use ruo_sim::history::{History, OpDesc, OpOutput, OpRecord};
use ruo_sim::lin::{check_counter, check_exact, check_max_register};
use ruo_sim::spec::SeqSpec;
use ruo_sim::{
    cas, done, read, Executor, Machine, Memory, ObjId, OpSpec, Prim, ProcessId, RandomScheduler,
    SplitMix64, Step, Word, WorkloadBuilder,
};

/// One random primitive kind/object/operand triple; operands in -3..4.
fn arb_prim(rng: &mut SplitMix64, n_objs: usize) -> (usize, u8, Word, Word) {
    (
        rng.gen_index(n_objs),
        rng.gen_below(3) as u8,
        rng.gen_below(7) as Word - 3,
        rng.gen_below(7) as Word - 3,
    )
}

/// Memory responses follow the primitive semantics exactly, and the
/// log reconstructs the final state.
#[test]
fn memory_semantics_hold() {
    let mut rng = SplitMix64::new(0x3e3);
    for case in 0..256 {
        let mut mem = Memory::new();
        let objs = mem.alloc_n(3, 0);
        let mut shadow = [0i64; 3];
        let steps = 1 + rng.gen_index(59);
        for _ in 0..steps {
            let (o, kind, a, b) = arb_prim(&mut rng, 3);
            let prim = match kind {
                0 => Prim::Read(objs[o]),
                1 => Prim::Write(objs[o], a),
                _ => Prim::Cas {
                    obj: objs[o],
                    expected: a,
                    new: b,
                },
            };
            let resp = mem.apply(ProcessId(0), prim);
            match prim {
                Prim::Read(_) => assert_eq!(resp, shadow[o], "case {case}"),
                Prim::Write(_, v) => {
                    assert_eq!(resp, 0, "case {case}");
                    shadow[o] = v;
                }
                Prim::Cas { expected, new, .. } => {
                    if shadow[o] == expected {
                        assert_eq!(resp, 1, "case {case}");
                        shadow[o] = new;
                    } else {
                        assert_eq!(resp, 0, "case {case}");
                    }
                }
            }
            assert_eq!(mem.peek(objs[o]), shadow[o], "case {case}");
        }
        // The event log replays to the same final state.
        let events: Vec<_> = mem.log().events().to_vec();
        let mut mem2 = Memory::new();
        let objs2 = mem2.alloc_n(3, 0);
        for e in &events {
            let prim = match e.prim {
                Prim::Read(o) => Prim::Read(objs2[o.index()]),
                Prim::Write(o, v) => Prim::Write(objs2[o.index()], v),
                Prim::Cas { obj, expected, new } => Prim::Cas {
                    obj: objs2[obj.index()],
                    expected,
                    new,
                },
            };
            let resp = mem2.apply(e.pid, prim);
            assert_eq!(
                resp, e.resp,
                "case {case}: replay diverged at seq {}",
                e.seq
            );
        }
        for o in 0..3 {
            assert_eq!(mem2.peek(objs2[o]), shadow[o], "case {case}");
        }
    }
}

/// The executor is deterministic per scheduler seed: same seed, same
/// history; and CAS-loop increments never lose counts under any seed.
#[test]
fn executor_is_deterministic_and_exact() {
    fn incr(o: ObjId) -> Step {
        read(o, move |v| {
            cas(
                o,
                v,
                v + 1,
                move |ok| if ok == 1 { done(v + 1) } else { incr(o) },
            )
        })
    }
    let mut rng = SplitMix64::new(0xe8ec);
    for case in 0..256 {
        let seed = rng.gen_below(10_000);
        let n = 2 + rng.gen_index(4);
        let run = |seed: u64| {
            let mut mem = Memory::new();
            let o = mem.alloc(0);
            let mut w = WorkloadBuilder::new(n);
            for p in 0..n {
                w.op(
                    ProcessId(p),
                    OpSpec::update(OpDesc::CounterIncrement, move || Machine::new(incr(o))),
                );
            }
            let outcome = Executor::new().run(&mut mem, w, &mut RandomScheduler::new(seed));
            (mem.peek(o), mem.steps(), outcome.history.len())
        };
        let a = run(seed);
        let b = run(seed);
        assert_eq!(a, b, "case {case}: same seed must reproduce the execution");
        assert_eq!(a.0, n as i64, "case {case}: increments lost or duplicated");
    }
}

/// Fast max-register checker is sound relative to the exact search:
/// whenever the fast checker reports a violation on a random small
/// history, the exact checker must also reject it.
#[test]
fn fast_maxreg_checker_never_cries_wolf() {
    let mut rng = SplitMix64::new(0x10_bb);
    for case in 0..256 {
        let n_ops = 1 + rng.gen_index(6);
        let mut recs = Vec::new();
        let mut t = 0usize;
        for i in 0..n_ops {
            let kind = rng.gen_below(2) as u8;
            let v = rng.gen_below(4) as i64;
            let gap = rng.gen_index(8);
            let len = 1 + rng.gen_index(7);
            let invoke = t + gap;
            let response = invoke + len;
            t = invoke + 1;
            let (desc, output) = if kind == 0 {
                (OpDesc::WriteMax(v), OpOutput::Unit)
            } else {
                (OpDesc::ReadMax, OpOutput::Value(v))
            };
            recs.push(OpRecord {
                pid: ProcessId(i % 3),
                desc,
                invoke,
                response: Some(response),
                output: Some(output),
                steps: 1,
            });
        }
        recs.sort_by_key(|r| r.invoke);
        let history: History = recs.into_iter().collect();
        let fast = check_max_register(&history, 0);
        let exact = check_exact(&history, &SeqSpec::MaxRegister { initial: 0 });
        if let Err(violation) = fast {
            assert!(
                exact.is_err(),
                "case {case}: fast checker reported a violation the exact checker rejects: \
                 {violation:?}"
            );
        }
    }
}

/// Same soundness cross-check for the counter checker.
#[test]
fn fast_counter_checker_never_cries_wolf() {
    let mut rng = SplitMix64::new(0xc2_bb);
    for case in 0..256 {
        let n_ops = 1 + rng.gen_index(6);
        let mut recs = Vec::new();
        let mut t = 0usize;
        for i in 0..n_ops {
            let kind = rng.gen_below(2) as u8;
            let v = rng.gen_below(5) as i64;
            let gap = rng.gen_index(8);
            let len = 1 + rng.gen_index(7);
            let invoke = t + gap;
            let response = invoke + len;
            t = invoke + 1;
            let (desc, output) = if kind == 0 {
                (OpDesc::CounterIncrement, OpOutput::Unit)
            } else {
                (OpDesc::CounterRead, OpOutput::Value(v))
            };
            recs.push(OpRecord {
                pid: ProcessId(i % 3),
                desc,
                invoke,
                response: Some(response),
                output: Some(output),
                steps: 1,
            });
        }
        recs.sort_by_key(|r| r.invoke);
        let history: History = recs.into_iter().collect();
        let fast = check_counter(&history);
        let exact = check_exact(&history, &SeqSpec::Counter);
        if fast.is_err() {
            assert!(
                exact.is_err(),
                "case {case}: fast counter checker false positive"
            );
        }
    }
}

/// And the exact checker accepts every *truly sequential* legal
/// history (generated by running the spec).
#[test]
fn exact_checker_accepts_legal_sequential_histories() {
    let mut rng = SplitMix64::new(0x5e9);
    for case in 0..256 {
        let spec = SeqSpec::Counter;
        let mut state = spec.init();
        let mut recs = Vec::new();
        let n_ops = 1 + rng.gen_index(9);
        for i in 0..n_ops {
            let pid = ProcessId(rng.gen_index(3));
            let desc = if rng.gen_bool(0.5) {
                OpDesc::CounterIncrement
            } else {
                OpDesc::CounterRead
            };
            let (next, output) = spec.apply(&state, pid, &desc);
            state = next;
            recs.push(OpRecord {
                pid,
                desc,
                invoke: 2 * i,
                response: Some(2 * i + 1),
                output: Some(output),
                steps: 1,
            });
        }
        let history: History = recs.into_iter().collect();
        assert!(check_exact(&history, &spec).is_ok(), "case {case}");
        assert!(check_counter(&history).is_ok(), "case {case}");
    }
}

mod explore_props {
    use ruo_sim::explore::{enumerate, history_is_wellformed, ExploreOp};
    use ruo_sim::{done, read, Machine, Memory, ObjId, OpDesc, ProcessId, Step};

    /// A pure read chain of exactly `len` events.
    fn chain(o: ObjId, len: usize) -> Step {
        if len == 1 {
            read(o, done)
        } else {
            read(o, move |_| chain(o, len - 1))
        }
    }

    /// `C(a+b, a)`, computed termwise (exact: each prefix product of
    /// consecutive binomial factors divides evenly).
    fn binomial(a: u64, b: u64) -> u64 {
        let n = a + b;
        let k = a.min(b);
        let mut num = 1u64;
        for i in 0..k {
            num = num * (n - i) / (i + 1);
        }
        num
    }

    /// Enumeration over two fixed-length independent operations yields
    /// exactly C(a+b, a) schedules — checked exhaustively for all
    /// lengths the proptest original sampled from.
    #[test]
    fn enumeration_count_is_binomial() {
        for a in 1usize..6 {
            for b in 1usize..6 {
                let setup = move || {
                    let mut mem = Memory::new();
                    let o = mem.alloc(0);
                    (
                        mem,
                        vec![Machine::new(chain(o, a)), Machine::new(chain(o, b))],
                    )
                };
                let ops = vec![
                    ExploreOp {
                        pid: ProcessId(0),
                        desc: OpDesc::ReadMax,
                        returns_value: true,
                    },
                    ExploreOp {
                        pid: ProcessId(1),
                        desc: OpDesc::ReadMax,
                        returns_value: true,
                    },
                ];
                let summary = enumerate(&setup, &ops, &mut |h| history_is_wellformed(h), 100_000);
                assert!(!summary.truncated, "a={a} b={b}");
                assert!(summary.violation.is_none(), "a={a} b={b}");
                assert_eq!(
                    summary.schedules as u64,
                    binomial(a as u64, b as u64),
                    "a={a} b={b}"
                );
            }
        }
    }
}
