//! Differential fuzz: `check_interval` vs `check_exact`.
//!
//! `check_exact` is the ≤63-operation differential oracle for the
//! scalable WGL interval checker: on every history both can decide,
//! their verdicts must agree *exactly*. The generator below produces
//! seeded random histories across all three [`SeqSpec`] families —
//! overlapping intervals, crash-completed histories with pending
//! operations, linearizable-by-construction output assignments, and
//! deliberately corrupted outputs — and asserts agreement on each.

use ruo_sim::history::{History, OpDesc, OpOutput, OpRecord};
use ruo_sim::lin::{
    check_counter_k, check_exact, check_exact_k, check_interval, check_interval_k,
    check_max_register_k, ViolationKind,
};
use ruo_sim::spec::SeqSpec;
use ruo_sim::{ProcessId, SplitMix64, Word};

/// An operation sketch before outputs are assigned.
struct Sketch {
    pid: usize,
    desc: OpDesc,
    invoke: usize,
    /// `None` = left pending by a crash.
    response: Option<usize>,
    /// Linearization point used to assign consistent outputs; `None`
    /// for pending operations the assignment chose to omit.
    point: Option<usize>,
}

/// Draws a random operation description for `spec`. Small value ranges
/// force value collisions and interesting orderings.
fn random_desc(rng: &mut SplitMix64, spec: &SeqSpec, pid: usize) -> OpDesc {
    let update = rng.gen_below(100) < 55;
    match spec {
        SeqSpec::MaxRegister { .. } => {
            if update {
                OpDesc::WriteMax(rng.gen_below(6) as Word)
            } else {
                OpDesc::ReadMax
            }
        }
        SeqSpec::Counter => {
            if update {
                OpDesc::CounterIncrement
            } else {
                OpDesc::CounterRead
            }
        }
        SeqSpec::Snapshot { .. } => {
            if update {
                // Repeated operand values are legal for the exact and
                // interval checkers (only the fast snapshot checker
                // needs distinct ones).
                OpDesc::Update(rng.gen_below(5) as Word)
            } else {
                let _ = pid;
                OpDesc::Scan
            }
        }
    }
}

/// Generates a random well-formed history for `spec`: per-process
/// sequential intervals with genuine cross-process overlap, optional
/// crash-pending last operations, and outputs assigned by applying the
/// spec along a random interval-consistent linearization (so the
/// uncorrupted history is linearizable by construction).
fn random_history(rng: &mut SplitMix64, spec: &SeqSpec, n: usize, max_ops: usize) -> History {
    let mut sketches: Vec<Sketch> = Vec::new();
    let total = rng.gen_index(max_ops + 1);
    let mut clock = vec![0usize; n];
    for _ in 0..total {
        let pid = rng.gen_index(n);
        let invoke = clock[pid] + rng.gen_index(4);
        let response = invoke + 1 + rng.gen_index(7);
        clock[pid] = response;
        sketches.push(Sketch {
            pid,
            desc: random_desc(rng, spec, pid),
            invoke,
            response: Some(response),
            point: None,
        });
    }
    // Crash some processes: their last operation becomes pending.
    for pid in 0..n {
        if rng.gen_below(100) < 30 {
            if let Some(s) = sketches.iter_mut().rev().find(|s| s.pid == pid) {
                s.response = None;
            }
        }
    }
    // Pick linearization points: complete ops anywhere inside their
    // interval; pending ops are included (any point at or after the
    // invocation) or omitted, per the completion rule.
    for s in &mut sketches {
        s.point = match s.response {
            Some(r) => Some(s.invoke + rng.gen_index(r - s.invoke)),
            None if rng.gen_below(2) == 0 => Some(s.invoke + rng.gen_index(10)),
            None => None,
        };
    }
    // Apply the spec along the chosen linearization to assign outputs.
    let mut order: Vec<usize> = (0..sketches.len()).collect();
    order.sort_by_key(|&i| (sketches[i].point, i));
    let mut state = spec.init();
    let mut outputs: Vec<Option<OpOutput>> = vec![None; sketches.len()];
    for i in order {
        let s = &sketches[i];
        if s.point.is_none() {
            continue;
        }
        let (next, out) = spec.apply(&state, ProcessId(s.pid), &s.desc);
        state = next;
        // Pending ops never report an output, even when linearized.
        if s.response.is_some() {
            outputs[i] = Some(out);
        }
    }
    let mut ops: Vec<OpRecord> = sketches
        .iter()
        .zip(outputs)
        .map(|(s, output)| OpRecord {
            pid: ProcessId(s.pid),
            desc: s.desc.clone(),
            invoke: s.invoke,
            response: s.response,
            output,
            steps: 1,
        })
        .collect();
    ops.sort_by_key(|o| o.invoke);
    ops.into_iter().collect()
}

/// Corrupts one random read output so the history is (usually) no
/// longer linearizable. Both checkers must still agree on the verdict.
fn corrupt(rng: &mut SplitMix64, history: &History) -> Option<History> {
    let targets: Vec<usize> = history
        .ops()
        .iter()
        .enumerate()
        .filter(|(_, o)| {
            matches!(
                o.output,
                Some(OpOutput::Value(_)) | Some(OpOutput::Vector(_))
            )
        })
        .map(|(i, _)| i)
        .collect();
    let &pick = targets.get(rng.gen_index(targets.len().max(1)))?;
    let mut ops: Vec<OpRecord> = history.ops().to_vec();
    let delta = 1 + rng.gen_below(3) as Word;
    match ops[pick].output.as_mut() {
        Some(OpOutput::Value(v)) => {
            *v = if rng.gen_below(2) == 0 {
                *v + delta
            } else {
                *v - delta
            }
        }
        Some(OpOutput::Vector(vec)) => {
            let k = rng.gen_index(vec.len().max(1));
            if vec.is_empty() {
                return None;
            }
            vec[k] += delta;
        }
        _ => return None,
    }
    Some(ops.into_iter().collect())
}

/// Asserts both checkers reach the same verdict on `history` at
/// accuracy factor `k` (they share the relaxed acceptance test, so the
/// agreement must hold at *every* k, not just the exact k = 1).
fn assert_agreement_k(history: &History, spec: &SeqSpec, k: u64, ctx: &str) {
    let exact = check_exact_k(history, spec, k);
    let interval = check_interval_k(history, spec, k);
    match (&exact, &interval) {
        (Ok(()), Ok(())) => {}
        (Err(e), Err(i)) => {
            assert_eq!(e.kind, ViolationKind::NoLinearization, "{ctx}: {e}");
            assert_eq!(i.kind, ViolationKind::NoLinearization, "{ctx}: {i}");
        }
        _ => panic!(
            "{ctx}: verdicts disagree at k={k}: exact={exact:?} interval={interval:?}\nhistory: {:#?}",
            history.ops()
        ),
    }
}

/// Asserts both checkers reach the same verdict on `history`.
fn assert_agreement(history: &History, spec: &SeqSpec, ctx: &str) {
    let exact = check_exact(history, spec);
    let interval = check_interval(history, spec);
    match (&exact, &interval) {
        (Ok(()), Ok(())) => {}
        (Err(e), Err(i)) => {
            assert_eq!(e.kind, ViolationKind::NoLinearization, "{ctx}: {e}");
            assert_eq!(i.kind, ViolationKind::NoLinearization, "{ctx}: {i}");
        }
        _ => panic!(
            "{ctx}: verdicts disagree: exact={exact:?} interval={interval:?}\nhistory: {:#?}",
            history.ops()
        ),
    }
    // The k = 1 reduction (ISSUE 9): the `_k` path at factor 1 must
    // reproduce the exact verdict bit for bit, on passing and failing
    // histories alike.
    let exact_k1 = check_exact_k(history, spec, 1);
    let interval_k1 = check_interval_k(history, spec, 1);
    assert_eq!(
        format!("{exact:?}"),
        format!("{exact_k1:?}"),
        "{ctx}: check_exact_k(1) diverged from check_exact"
    );
    assert_eq!(
        format!("{interval:?}"),
        format!("{interval_k1:?}"),
        "{ctx}: check_interval_k(1) diverged from check_interval"
    );
}

fn fuzz_family(spec: &SeqSpec, n: usize, seed: u64, cases: usize) {
    let mut rng = SplitMix64::new(seed);
    let mut violations = 0usize;
    let mut pending_seen = 0usize;
    for case in 0..cases {
        let h = random_history(&mut rng, spec, n, 24);
        pending_seen += h.pending().count();
        let ctx = format!("{spec:?} seed={seed} case={case}");
        assert_agreement(&h, spec, &ctx);
        if rng.gen_below(100) < 50 {
            if let Some(bad) = corrupt(&mut rng, &h) {
                if check_exact(&bad, spec).is_err() {
                    violations += 1;
                }
                assert_agreement(&bad, spec, &format!("{ctx} corrupted"));
            }
        }
    }
    // The fuzz must actually exercise both outcomes and the completion
    // rule, or agreement is vacuous.
    assert!(violations > 0, "{spec:?}: no violating history generated");
    assert!(pending_seen > 0, "{spec:?}: no pending op generated");
}

#[test]
fn max_register_verdicts_agree() {
    fuzz_family(&SeqSpec::MaxRegister { initial: -1 }, 4, 0xA11CE, 1200);
}

#[test]
fn counter_verdicts_agree() {
    fuzz_family(&SeqSpec::Counter, 4, 0xB0B, 1200);
}

#[test]
fn snapshot_verdicts_agree() {
    fuzz_family(&SeqSpec::Snapshot { n: 3, initial: 0 }, 3, 0xCAFE, 600);
}

/// Scales every non-negative scalar read in `history` down to
/// `ceil(v / k)` — the smallest answer the k-envelope admits, i.e. an
/// error of exactly factor k against the linearization that assigned
/// the outputs.
fn scale_reads_to_envelope_floor(history: &History, k: u64) -> History {
    let ops: Vec<OpRecord> = history
        .ops()
        .iter()
        .cloned()
        .map(|mut op| {
            let is_read = matches!(op.desc, OpDesc::ReadMax | OpDesc::CounterRead);
            if let (true, Some(OpOutput::Value(v))) = (is_read, op.output.as_mut()) {
                if *v > 0 {
                    *v = (*v as u64).div_ceil(k) as Word;
                }
            }
            op
        })
        .collect();
    ops.into_iter().collect()
}

#[test]
fn relaxed_verdicts_agree_at_every_k() {
    // Same harness as the k = 1 fuzz, but with reads pushed to the
    // envelope floor and the `_k` checkers (search + fast) asked to
    // certify the result. A linearizable-by-construction history whose
    // reads underestimate by exactly factor k must pass at k and keep
    // exact/interval agreement; the fast checkers — sound, never
    // complete — may only err on histories the oracle also rejects.
    for (spec, seed) in [
        (SeqSpec::MaxRegister { initial: 0 }, 0x5CA1E_u64),
        (SeqSpec::Counter, 0x5CA1F),
    ] {
        let mut rng = SplitMix64::new(seed);
        for k in [2u64, 3, 7] {
            for case in 0..300 {
                let h = random_history(&mut rng, &spec, 4, 24);
                let scaled = scale_reads_to_envelope_floor(&h, k);
                let ctx = format!("{spec:?} k={k} case={case}");
                let exact = check_exact_k(&scaled, &spec, k);
                assert!(
                    exact.is_ok(),
                    "{ctx}: envelope-floor reads must stay k-linearizable: {exact:?}"
                );
                assert_agreement_k(&scaled, &spec, k, &ctx);
                let fast = match spec {
                    SeqSpec::MaxRegister { initial } => check_max_register_k(&scaled, initial, k),
                    SeqSpec::Counter => check_counter_k(&scaled, k),
                    SeqSpec::Snapshot { .. } => unreachable!(),
                };
                assert!(fast.is_ok(), "{ctx}: fast checker must be sound: {fast:?}");
                // Corrupted histories still agree between the two
                // search checkers at this k.
                if let Some(bad) = corrupt(&mut rng, &scaled) {
                    assert_agreement_k(&bad, &spec, k, &format!("{ctx} corrupted"));
                }
            }
        }
    }
}

#[test]
fn the_envelope_boundary_is_exactly_factor_k() {
    // C sequential increments, then one read r: with everything
    // completed before the read invokes, every linearization pins the
    // read's expected value at C — so ceil(C / k) is accepted and one
    // less is not, by search and fast checkers alike.
    let spec = SeqSpec::Counter;
    for (c, k) in [(10u64, 3u64), (12, 4), (9, 2), (25, 5)] {
        let mut ops: Vec<OpRecord> = (0..c)
            .map(|i| OpRecord {
                pid: ProcessId(0),
                desc: OpDesc::CounterIncrement,
                invoke: (2 * i) as usize,
                response: Some((2 * i + 1) as usize),
                output: Some(OpOutput::Unit),
                steps: 1,
            })
            .collect();
        let read = |v: u64| OpRecord {
            pid: ProcessId(1),
            desc: OpDesc::CounterRead,
            invoke: (2 * c) as usize,
            response: Some((2 * c + 1) as usize),
            output: Some(OpOutput::Value(v as Word)),
            steps: 1,
        };
        let floor = c.div_ceil(k);
        ops.push(read(floor));
        let good: History = ops.clone().into_iter().collect();
        assert!(check_exact_k(&good, &spec, k).is_ok(), "C={c} k={k}");
        assert!(check_interval_k(&good, &spec, k).is_ok(), "C={c} k={k}");
        assert!(check_counter_k(&good, k).is_ok(), "C={c} k={k}");
        ops.pop();
        ops.push(read(floor - 1));
        let bad: History = ops.into_iter().collect();
        assert!(check_exact_k(&bad, &spec, k).is_err(), "C={c} k={k}");
        assert!(check_interval_k(&bad, &spec, k).is_err(), "C={c} k={k}");
        assert!(check_counter_k(&bad, k).is_err(), "C={c} k={k}");
    }
}

#[test]
fn verdicts_agree_at_the_exact_checker_boundary() {
    // Histories pinned at exactly 63 operations — the largest the
    // oracle can decide — still agree.
    let spec = SeqSpec::Counter;
    let mut rng = SplitMix64::new(0x63);
    for case in 0..40 {
        let mut h;
        loop {
            h = random_history(&mut rng, &spec, 4, 70);
            if h.len() >= 63 {
                break;
            }
        }
        let ops: Vec<OpRecord> = h.ops()[..63].to_vec();
        let h: History = ops.into_iter().collect();
        assert_agreement(&h, &spec, &format!("boundary case={case}"));
    }
}
