//! End-to-end check of the scenario binary's `--json` mode: stdout must
//! be a single `ruo-scenario-run-v1` document whose embedded reports
//! round-trip through [`ScenarioReport::parse`] — including the `steps`
//! block of a traced scenario — and any trace files the spec names must
//! land on disk relative to the run directory.

use std::process::Command;

use ruo_scenario::{Json, ScenarioReport};

fn spec_path(name: &str) -> String {
    format!("{}/../../scenarios/{name}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn run_json_emits_one_document_with_full_reports() {
    let tmp = std::env::temp_dir().join(format!("ruo-cli-json-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).expect("create scratch dir");

    let out = Command::new(env!("CARGO_BIN_EXE_scenario"))
        .current_dir(&tmp)
        .args(["run", "--quick", "--json"])
        .arg(spec_path("w5_explore_pruned.json"))
        .arg(spec_path("w5_explore_traced.json"))
        .arg(spec_path("w12_telemetry_sim.json"))
        .output()
        .expect("scenario binary runs");
    assert!(
        out.status.success(),
        "scenario run failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Verdict lines go to stderr in --json mode; stdout is one document.
    let stdout = String::from_utf8(out.stdout).expect("stdout is UTF-8");
    let doc = Json::parse(&stdout).expect("stdout parses as one JSON document");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("ruo-scenario-run-v1")
    );
    assert_eq!(doc.get("quick").and_then(Json::as_bool), Some(true));
    assert_eq!(doc.get("failures").and_then(Json::as_u64), Some(0));

    let results = doc.get("results").and_then(Json::as_arr).expect("results");
    assert_eq!(results.len(), 3);
    let mut reports = Vec::new();
    for entry in results {
        let file = entry.get("file").and_then(Json::as_str).expect("file");
        let embedded = entry.get("report").expect("embedded report").pretty();
        let report = ScenarioReport::parse(&embedded)
            .unwrap_or_else(|e| panic!("{file}: embedded report must round-trip: {e}"));
        assert!(report.ok, "{file} reported failure");
        // The embedded object is the *full* report: re-serializing the
        // parsed struct reproduces it byte for byte.
        assert_eq!(report.to_json(), embedded, "{file}: partial embed");
        reports.push((file.to_string(), report));
    }

    // The traced scenario's report carries the steps block end to end.
    let (_, traced) = reports
        .iter()
        .find(|(f, _)| f.ends_with("w5_explore_traced.json"))
        .expect("traced scenario present");
    let steps = traced.steps.as_ref().expect("traced report has steps");
    assert!(
        steps.per_op().iter().any(|(k, _)| k == "write_max"),
        "steps block lists write_max ops: {:?}",
        steps.per_op()
    );

    // The telemetry scenario's report carries the sampled curves and
    // the engine's wall clock end to end.
    let (_, telem) = reports
        .iter()
        .find(|(f, _)| f.ends_with("w12_telemetry_sim.json"))
        .expect("telemetry scenario present");
    let block = telem.telemetry.as_ref().expect("telemetry block");
    assert!(block.samples > 0);
    assert!(
        block.curves.iter().any(|(n, _)| n == "ok_runs"),
        "ok_runs curve present: {:?}",
        block.curves.iter().map(|(n, _)| n).collect::<Vec<_>>()
    );
    assert!(telem.metric("duration_ms").is_some(), "duration echoed");

    // And its trace exports landed relative to the run directory.
    for rel in [
        "traces/w5_explore.trace.jsonl",
        "traces/w5_explore.chrome.json",
    ] {
        assert!(tmp.join(rel).is_file(), "{rel} not written");
    }
    std::fs::remove_dir_all(&tmp).ok();
}
