//! The registry must cover every core implementation: this test scans
//! the `ruo-core` sources for `impl MaxRegister/Counter/Snapshot for X`
//! (and their `Sim*` counterparts) and fails if any implementing type
//! is not registered on the corresponding face. Adding a new
//! implementation without registering it — and thereby without soak /
//! equivalence / throughput coverage — breaks this test, not CI
//! silence.

use std::collections::BTreeSet;
use std::path::Path;

use ruo_scenario::{registry, AccuracyClass, CounterMode, Family};

/// `(trait, implementing type)` pairs declared in a source tree, for
/// the six object-facing traits.
fn impls_in(dir: &Path, found: &mut BTreeSet<(String, String)>) {
    for entry in std::fs::read_dir(dir).expect("core sources readable") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            impls_in(&path, found);
            continue;
        }
        if path.extension().and_then(|e| e.to_str()) != Some("rs") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("source readable");
        for line in text.lines() {
            let line = line.trim();
            let Some(mut rest) = line.strip_prefix("impl").map(str::trim_start) else {
                continue;
            };
            // Skip a generic parameter list: `impl<S: Snapshot> Counter
            // for CounterFromSnapshot<S>`.
            if let Some(generics) = rest.strip_prefix('<') {
                let mut depth = 1usize;
                let mut end = None;
                for (i, c) in generics.char_indices() {
                    match c {
                        '<' => depth += 1,
                        '>' => {
                            depth -= 1;
                            if depth == 0 {
                                end = Some(i);
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                match end {
                    Some(i) => rest = generics[i + 1..].trim_start(),
                    None => continue,
                }
            }
            for tr in [
                "SimMaxRegister",
                "SimCounter",
                "SimSnapshot",
                "MaxRegister",
                "Counter",
                "Snapshot",
            ] {
                let Some(tail) = rest.strip_prefix(tr) else {
                    continue;
                };
                let Some(tail) = tail.strip_prefix(" for ") else {
                    continue;
                };
                let ty: String = tail
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if !ty.is_empty() {
                    found.insert((tr.to_string(), ty));
                }
                break; // longest-prefix match wins (Sim* before bare).
            }
        }
    }
}

#[test]
fn every_core_implementation_is_registered() {
    let core_src = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../core/src"));
    let mut found = BTreeSet::new();
    impls_in(core_src, &mut found);
    assert!(found.len() >= 20, "impl scan looks broken: only {found:?}");

    let registered_real: BTreeSet<&str> = registry().iter().filter_map(|e| e.real_type).collect();
    let registered_sim: BTreeSet<&str> = registry().iter().filter_map(|e| e.sim_type).collect();

    let mut missing = Vec::new();
    for (tr, ty) in &found {
        let registered = if tr.starts_with("Sim") {
            registered_sim.contains(ty.as_str())
        } else {
            registered_real.contains(ty.as_str())
        };
        if !registered {
            missing.push(format!("{ty} (impl {tr})"));
        }
    }
    assert!(
        missing.is_empty(),
        "core implementations missing from the scenario registry: {missing:?} — \
         add an ImplEntry (or extend an existing one) in crates/scenario/src/registry.rs"
    );
}

#[test]
fn counter_mode_metadata_covers_every_mode_exactly_once() {
    // The `CounterMode` knob (ISSUE 6) is capability metadata: each
    // contended-write strategy must be registered on exactly one
    // counter face, and non-counter faces must not claim a mode.
    let mut seen: Vec<(CounterMode, &str)> = Vec::new();
    for e in registry() {
        match (e.family, e.caps.counter_mode) {
            (Family::Counter, Some(mode)) => seen.push((mode, e.id)),
            (Family::Counter, None) => {}
            (family, Some(mode)) => panic!(
                "{family}/{} claims counter_mode {mode} but is not a counter face",
                e.id
            ),
            (_, None) => {}
        }
    }
    for mode in CounterMode::all() {
        let holders: Vec<&str> = seen
            .iter()
            .filter(|(m, _)| *m == mode)
            .map(|(_, id)| *id)
            .collect();
        assert_eq!(
            holders.len(),
            1,
            "counter_mode {mode} must be registered on exactly one counter face, found {holders:?}"
        );
    }
    // And the registered face's id must round-trip through the schema
    // name so scenario tables can address modes by string.
    for (mode, id) in &seen {
        assert_eq!(
            CounterMode::parse(mode.name()),
            Some(*mode),
            "schema name for mode on face {id} does not round-trip"
        );
    }
}

#[test]
fn accuracy_metadata_covers_every_class_exactly_once_per_family() {
    // The `accuracy` capability (ISSUE 9) follows the same metadata
    // rule as `counter_mode`: each accuracy class must be registered on
    // exactly one face per relaxable family (maxreg and counter — the
    // checkers never relax snapshot vectors), and its schema name must
    // round-trip so scenario accuracy sections can address it.
    for family in [Family::MaxReg, Family::Counter] {
        for class in AccuracyClass::all() {
            let holders: Vec<&str> = registry()
                .iter()
                .filter(|e| e.family == family && e.caps.accuracy == Some(class))
                .map(|e| e.id)
                .collect();
            assert_eq!(
                holders.len(),
                1,
                "accuracy class {class} must be registered on exactly one \
                 {family} face, found {holders:?}"
            );
            assert_eq!(AccuracyClass::parse(class.name()), Some(class));
        }
    }
    for e in registry() {
        if e.family == Family::Snapshot {
            assert!(
                e.caps.accuracy.is_none(),
                "snapshot/{} claims an accuracy class, but scans return \
                 vectors the relaxed checkers never loosen",
                e.id
            );
        }
    }
}

#[test]
fn registered_type_names_exist_in_core() {
    let core_src = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../core/src"));
    let mut found = BTreeSet::new();
    impls_in(core_src, &mut found);
    let types: BTreeSet<&String> = found.iter().map(|(_, ty)| ty).collect();
    for e in registry() {
        for ty in [e.real_type, e.sim_type].into_iter().flatten() {
            assert!(
                types.contains(&ty.to_string()),
                "{}/{} registers type {ty} that implements no core object trait",
                e.family,
                e.id
            );
        }
    }
}
