//! Codec fuzzing: `ScenarioSpec::parse` must be the exact inverse of
//! `ScenarioSpec::to_json` on every representable spec. A SplitMix64
//! stream generates thousands of random specs — sweeping every enum
//! variant, every optional section, and names that exercise the string
//! escaper — and each must survive `parse(to_json(s)) == s`. The second
//! hop (`to_json ∘ parse ∘ to_json`) must also be textually identical,
//! so checked-in `scenarios/*.json` files are canonical by
//! construction.

use ruo_scenario::{
    CheckerKind, CrashAt, EngineKind, ExploreSpec, Family, FaultSpec, Json, OpKind, OpMix,
    RealSpec, ScenarioOp, ScenarioSpec, SchedulePolicy, TelemetrySpec, TraceSpec,
};
use ruo_sim::SplitMix64;

/// Characters chosen to stress the JSON string escaper: quotes,
/// backslashes, control characters, and some multi-byte UTF-8.
const NAME_CHARS: &[char] = &[
    'a', 'Z', '9', '-', '_', ' ', '"', '\\', '\n', '\t', '\r', '\u{1}', '\u{1f}', '/', 'é', '∀',
];

fn random_name(rng: &mut SplitMix64) -> String {
    let len = 1 + rng.gen_index(24);
    (0..len)
        .map(|_| NAME_CHARS[rng.gen_index(NAME_CHARS.len())])
        .collect()
}

fn random_spec(rng: &mut SplitMix64) -> ScenarioSpec {
    let family = match rng.gen_index(3) {
        0 => Family::MaxReg,
        1 => Family::Counter,
        _ => Family::Snapshot,
    };
    let engine = match rng.gen_index(3) {
        0 => EngineKind::Real,
        1 => EngineKind::Sim,
        _ => EngineKind::Explore,
    };
    let n = 1 + rng.gen_index(8);
    let mut spec = ScenarioSpec::new(random_name(rng), family, random_name(rng), engine, n);
    if rng.gen_bool(0.5) {
        spec.capacity = Some(rng.gen_below(1 << 20));
    }
    spec.seed = rng.next_u64();
    spec.seeds = 1 + rng.gen_below(10_000);
    spec.ops_per_process = 1 + rng.gen_index(32);
    spec.read_pct = rng.gen_index(101) as u8;
    spec.value_bound = 1 + rng.gen_below(1 << 30);
    spec.mix = if rng.gen_bool(0.5) {
        OpMix::Random
    } else {
        OpMix::Alternate
    };
    spec.schedule = if rng.gen_bool(0.5) {
        SchedulePolicy::Random
    } else {
        SchedulePolicy::RoundRobin
    };
    if rng.gen_bool(0.3) {
        spec.step_budget = Some(1 + rng.gen_index(1 << 20));
    }
    spec.faults = match rng.gen_index(3) {
        0 => None,
        1 => Some(FaultSpec::Random {
            crashes: 1 + rng.gen_index(n),
            max_after: 1 + rng.gen_index(64),
        }),
        _ => Some(FaultSpec::Explicit {
            crashes: (0..1 + rng.gen_index(3))
                .map(|_| CrashAt {
                    pid: rng.gen_index(n),
                    after: 1 + rng.gen_index(16),
                })
                .collect(),
        }),
    };
    spec.checker = match rng.gen_index(5) {
        0 => CheckerKind::Fast,
        1 => CheckerKind::Interval,
        2 => CheckerKind::Exact,
        _ => CheckerKind::Auto,
    };
    spec.certify = rng.gen_bool(0.3);
    spec.root_fast_path = rng.gen_bool(0.3);
    // The explore section is mandatory for the explore engine and
    // optional (ignored but representable) otherwise.
    if engine == EngineKind::Explore || rng.gen_bool(0.2) {
        spec.explore = Some(ExploreSpec {
            seed_update: rng.gen_bool(0.5).then(|| rng.gen_below(1 << 16)),
            ops: (0..1 + rng.gen_index(8))
                .map(|_| ScenarioOp {
                    pid: rng.gen_index(n),
                    kind: if rng.gen_bool(0.6) {
                        OpKind::Update
                    } else {
                        OpKind::Read
                    },
                    value: rng.gen_below(1 << 16),
                })
                .collect(),
            max_schedules: 1 + rng.gen_index(1 << 20),
            prune: rng.gen_bool(0.5),
            max_crashes: rng.gen_index(3),
            workers: 1 + rng.gen_index(8),
        });
    }
    if rng.gen_bool(0.4) {
        spec.real = Some(RealSpec {
            threads: 1 + rng.gen_index(16),
            ops_per_thread: 1 + rng.gen_below(100_000),
            samples: 1 + rng.gen_index(9),
        });
    }
    if rng.gen_bool(0.4) {
        // Export paths reuse the escaper-stressing name alphabet.
        spec.trace = Some(TraceSpec {
            steps: rng.gen_bool(0.8),
            jsonl: rng.gen_bool(0.5).then(|| random_name(rng)),
            chrome: rng.gen_bool(0.5).then(|| random_name(rng)),
        });
    }
    if rng.gen_bool(0.4) {
        spec.telemetry = Some(TelemetrySpec {
            capacity: 1 + rng.gen_index(1 << 12),
            every: 1 + rng.gen_below(1 << 16),
        });
    }
    if rng.gen_bool(0.4) {
        spec.watchdog_secs = Some(rng.gen_below(100_000));
    }
    spec
}

#[test]
fn random_specs_round_trip_through_json() {
    let mut rng = SplitMix64::new(0x5ca1_ab1e);
    for case in 0..2_000 {
        let spec = random_spec(&mut rng);
        let text = spec.to_json();
        let back = ScenarioSpec::parse(&text)
            .unwrap_or_else(|e| panic!("case {case}: emitted JSON rejected: {e}\n{text}"));
        assert_eq!(back, spec, "case {case}: round trip diverged\n{text}");
        assert_eq!(
            back.to_json(),
            text,
            "case {case}: re-emission is not canonical"
        );
    }
}

/// Generates a random JSON tree that mixes all four numeric shapes the
/// codec distinguishes — unsigned, negative integer, float — with
/// strings, arrays and objects, like an exported trace document.
fn random_json(rng: &mut SplitMix64, depth: usize) -> Json {
    match rng.gen_index(if depth == 0 { 6 } else { 8 }) {
        0 => Json::Null,
        1 => Json::Bool(rng.gen_bool(0.5)),
        2 => Json::Num(rng.next_u64() >> rng.gen_index(64)),
        3 => {
            // Strictly negative, spanning small trace values to i64::MIN.
            let n = (rng.next_u64() >> rng.gen_index(64)) as i64;
            Json::Int(n.checked_neg().map_or(i64::MIN, |m| m.min(-1)))
        }
        4 => Json::Float((rng.gen_below(2_000_001) as f64 - 1_000_000.0) / 16.0),
        5 => Json::Str(random_name(rng)),
        6 => Json::Arr(
            (0..rng.gen_index(4))
                .map(|_| random_json(rng, depth - 1))
                .collect(),
        ),
        _ => Json::Obj(
            (0..rng.gen_index(4))
                .map(|i| (format!("k{i}"), random_json(rng, depth - 1)))
                .collect(),
        ),
    }
}

/// The codec bugfix regression: negative integers used to re-import as
/// `Json::Float`, so exported traces with signed word values failed
/// strict integer reads. Random trees mixing every numeric shape must
/// now survive `parse(pretty(v)) == v` exactly.
#[test]
fn json_values_with_negative_integers_round_trip() {
    let mut rng = SplitMix64::new(0x4E47_1A7E);
    let mut negatives = 0usize;
    for case in 0..2_000 {
        let v = random_json(&mut rng, 3);
        let mut stack = vec![&v];
        while let Some(node) = stack.pop() {
            match node {
                Json::Int(n) => {
                    assert!(*n < 0, "Int must be strictly negative, got {n}");
                    negatives += 1;
                }
                Json::Arr(items) => stack.extend(items),
                Json::Obj(pairs) => stack.extend(pairs.iter().map(|(_, v)| v)),
                _ => {}
            }
        }
        let text = v.pretty();
        let back = Json::parse(&text)
            .unwrap_or_else(|e| panic!("case {case}: emitted JSON rejected: {e}\n{text}"));
        assert_eq!(back, v, "case {case}: round trip diverged\n{text}");
    }
    assert!(negatives > 100, "fuzz generated too few negative ints");
}

/// The strict codec stays strict inside the `trace` section: an unknown
/// key there is a parse error, exactly like a top-level typo.
#[test]
fn unknown_trace_keys_are_rejected() {
    let mut rng = SplitMix64::new(0xbeef);
    let mut checked = 0;
    while checked < 50 {
        let spec = random_spec(&mut rng);
        if spec.trace.is_none() {
            continue;
        }
        checked += 1;
        // `"steps"` only occurs as the trace key: the name alphabet
        // cannot spell it and `"step_budget"` doesn't match with the
        // closing quote included.
        let typo = spec.to_json().replace("\"steps\"", "\"stepz\"");
        let e = ScenarioSpec::parse(&typo).expect_err("trace typo must be rejected");
        assert!(e.to_string().contains("trace"), "{e}");
    }
}

/// Field-order independence: a reordered document parses to the same
/// spec the canonical emission does.
#[test]
fn parse_does_not_depend_on_key_order() {
    let mut rng = SplitMix64::new(7_2014);
    for _ in 0..200 {
        let spec = random_spec(&mut rng);
        let text = spec.to_json();
        // Reverse the top-level key order by hand: split the object
        // body on top-level commas and reassemble backwards.
        let body = text
            .trim()
            .strip_prefix('{')
            .and_then(|t| t.strip_suffix('}'))
            .expect("top-level object");
        let mut parts: Vec<String> = Vec::new();
        let (mut depth, mut start, mut in_str, mut esc) = (0i32, 0usize, false, false);
        for (i, c) in body.char_indices() {
            if esc {
                esc = false;
                continue;
            }
            match c {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                ',' if !in_str && depth == 0 => {
                    parts.push(body[start..i].to_string());
                    start = i + 1;
                }
                _ => {}
            }
        }
        parts.push(body[start..].to_string());
        parts.reverse();
        let reordered = format!("{{{}}}", parts.join(","));
        assert_eq!(
            ScenarioSpec::parse(&reordered).expect("reordered doc parses"),
            spec
        );
    }
}
