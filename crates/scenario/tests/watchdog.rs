//! The wall-clock watchdog: a scenario that blows its budget must come
//! back as a structured *failing* report (and a nonzero CLI exit), not
//! a hung harness.

use std::process::Command;

use ruo_scenario::{run_with_watchdog, EngineKind, Family, ScenarioSpec};

/// A sim scenario small enough to finish instantly.
fn tiny_spec() -> ScenarioSpec {
    let mut spec = ScenarioSpec::new("wd-tiny", Family::Counter, "farray", EngineKind::Sim, 2);
    spec.seeds = 2;
    spec.ops_per_process = 2;
    spec
}

/// A sim scenario with enough work that it cannot possibly produce a
/// report before a zero-second budget elapses (it still finishes in
/// well under a second, so the abandoned thread drains quickly).
fn slow_spec() -> ScenarioSpec {
    let mut spec = ScenarioSpec::new("wd-slow", Family::Counter, "farray", EngineKind::Sim, 4);
    spec.seeds = 200;
    spec.ops_per_process = 64;
    spec
}

#[test]
fn no_watchdog_behaves_like_plain_run() {
    let spec = tiny_spec();
    assert_eq!(spec.watchdog_secs, None);
    let report = run_with_watchdog(&spec, true).expect("engine runs");
    assert!(report.ok);
    assert_eq!(report.counter("watchdog_fired"), None);
}

#[test]
fn generous_watchdog_passes_the_report_through() {
    let mut spec = tiny_spec();
    spec.watchdog_secs = Some(120);
    let report = run_with_watchdog(&spec, true).expect("engine runs");
    assert!(report.ok, "a scenario well under budget must pass");
    assert_eq!(report.counter("watchdog_fired"), None);
    assert!(report.counter("seeds").is_some(), "real report expected");
}

#[test]
fn blown_budget_is_a_structured_failure() {
    let mut spec = slow_spec();
    spec.watchdog_secs = Some(0);
    let report = run_with_watchdog(&spec, false).expect("watchdog verdicts are reports");
    assert!(!report.ok, "a fired watchdog must fail the scenario");
    assert_eq!(report.counter("watchdog_fired"), Some(1));
    assert_eq!(report.counter("watchdog_secs"), Some(0));
    assert!(
        report.notes.iter().any(|n| n.contains("watchdog")),
        "notes must say what happened: {:?}",
        report.notes
    );
    // The identity block still echoes the spec, so harness tables and
    // the combined --json document render it like any other failure.
    assert_eq!(report.scenario, "wd-slow");
    assert_eq!(report.impl_id, "farray");
}

#[test]
fn cli_watchdog_failure_exits_nonzero() {
    let tmp = std::env::temp_dir().join(format!("ruo-watchdog-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).expect("create scratch dir");
    let mut spec = slow_spec();
    spec.watchdog_secs = Some(0);
    let path = tmp.join("wd_slow.json");
    std::fs::write(&path, spec.to_json()).expect("write spec");

    let out = Command::new(env!("CARGO_BIN_EXE_scenario"))
        .current_dir(&tmp)
        .args(["run"])
        .arg(&path)
        .output()
        .expect("scenario binary runs");
    assert_eq!(out.status.code(), Some(1), "fired watchdog must exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("FAIL"), "verdict line missing:\n{stdout}");
    assert!(
        stdout.contains("watchdog"),
        "watchdog note missing:\n{stdout}"
    );

    // `--watchdog <secs>` is only a default: a generous CLI budget must
    // not override the spec, and must let an unbudgeted spec pass.
    let mut plain = tiny_spec();
    plain.watchdog_secs = None;
    let plain_path = tmp.join("wd_tiny.json");
    std::fs::write(&plain_path, plain.to_json()).expect("write spec");
    let out = Command::new(env!("CARGO_BIN_EXE_scenario"))
        .current_dir(&tmp)
        .args(["run", "--quick", "--watchdog", "120"])
        .arg(&plain_path)
        .output()
        .expect("scenario binary runs");
    assert!(
        out.status.success(),
        "default watchdog broke a passing run:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_dir_all(&tmp).ok();
}
