//! Declarative scenario specifications and their JSON codec.
//!
//! A [`ScenarioSpec`] names an implementation from the
//! [registry](crate::registry()), an engine, and the workload / fault /
//! checker parameters; the three engines in [`crate::engine`] consume
//! the same spec. Specs serialize to the `"ruo-scenario-v1"` JSON
//! schema (see `scenarios/` at the repo root for checked-in examples)
//! and the codec is an exact round trip: for every spec `s`,
//! `ScenarioSpec::parse(&s.to_json()) == Ok(s)` — CI verifies this for
//! every checked-in scenario, and a fuzz test verifies it for random
//! specs.

use std::fmt;

use crate::json::Json;
use crate::registry::Family;

/// Schema identifier emitted and required in scenario files.
pub const SPEC_SCHEMA: &str = "ruo-scenario-v1";

/// Which engine runs the scenario.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineKind {
    /// OS threads on the real-atomics face (W4-style throughput plus
    /// latency histograms and progress certification).
    Real,
    /// The step-machine executor on the simulator face, over seeded
    /// schedules and fault plans (W6-style soak).
    Sim,
    /// The bounded model checker over every interleaving of a small
    /// scope (W5-style exploration).
    Explore,
}

impl EngineKind {
    /// The schema name.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Real => "real",
            EngineKind::Sim => "sim",
            EngineKind::Explore => "explore",
        }
    }

    pub(crate) fn parse(s: &str) -> Option<Self> {
        match s {
            "real" => Some(EngineKind::Real),
            "sim" => Some(EngineKind::Sim),
            "explore" => Some(EngineKind::Explore),
            _ => None,
        }
    }
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Scheduling policy for the sim engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedulePolicy {
    /// Seeded uniformly random choice among enabled processes.
    Random,
    /// Cyclic order over enabled processes.
    RoundRobin,
}

impl SchedulePolicy {
    /// The schema name.
    pub fn name(self) -> &'static str {
        match self {
            SchedulePolicy::Random => "random",
            SchedulePolicy::RoundRobin => "round_robin",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "random" => Some(SchedulePolicy::Random),
            "round_robin" => Some(SchedulePolicy::RoundRobin),
            _ => None,
        }
    }
}

/// How the sim engine builds each process's operation sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpMix {
    /// Seeded uniform mix: each op is a read with probability
    /// `read_pct`%, updates draw values uniformly from
    /// `1..=value_bound`.
    Random,
    /// The legacy deterministic soak mix: ops strictly alternate
    /// update, read, update, … with the value streams the pre-scenario
    /// soak harness used (`read_pct` is ignored). Kept so W6 soak
    /// scenarios reproduce the historical verdict tables bit for bit.
    Alternate,
}

impl OpMix {
    /// The schema name.
    pub fn name(self) -> &'static str {
        match self {
            OpMix::Random => "random",
            OpMix::Alternate => "alternate",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "random" => Some(OpMix::Random),
            "alternate" => Some(OpMix::Alternate),
            _ => None,
        }
    }
}

/// Which checker validates histories.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckerKind {
    /// Let the engine pick: the WGL interval checker for sim and real
    /// histories (decides any size), the fast per-object checker for
    /// the explore engine's millions of tiny histories. The report's
    /// `checker` field records what actually ran.
    Auto,
    /// The family's fast linear-time checker
    /// (`check_max_register` / `check_counter` / `check_snapshot`).
    Fast,
    /// The WGL interval linearizability checker (`check_interval`) —
    /// exact verdicts with no history-size cap.
    Interval,
    /// The bitmask exact linearizability checker (`check_exact`) —
    /// histories of at most 63 operations.
    Exact,
}

impl CheckerKind {
    /// The schema name.
    pub fn name(self) -> &'static str {
        match self {
            CheckerKind::Auto => "auto",
            CheckerKind::Fast => "fast",
            CheckerKind::Interval => "interval",
            CheckerKind::Exact => "exact",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "auto" => Some(CheckerKind::Auto),
            "fast" => Some(CheckerKind::Fast),
            "interval" => Some(CheckerKind::Interval),
            "exact" => Some(CheckerKind::Exact),
            _ => None,
        }
    }
}

/// A crash at a fixed point: `pid` halts after its `after`-th event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashAt {
    /// Process to crash.
    pub pid: usize,
    /// Number of the process's own events after which it halts.
    pub after: usize,
}

/// Declarative fault plan for the sim engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultSpec {
    /// Per-seed random crashes: up to `crashes` distinct processes each
    /// crash after a uniformly chosen `1..=max_after` of their events
    /// (`FaultPlan::random_crashes` seeded by the run's seed).
    Random {
        /// Number of processes to crash.
        crashes: usize,
        /// Upper bound on the crash point.
        max_after: usize,
    },
    /// The same explicit crash points for every seed.
    Explicit {
        /// The crash points.
        crashes: Vec<CrashAt>,
    },
}

/// One operation of an exploration scope.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScenarioOp {
    /// Process performing the operation.
    pub pid: usize,
    /// Update (`write_max` / `increment` / `update`) or read
    /// (`read_max` / `read` / `scan`).
    pub kind: OpKind,
    /// Value for updates; ignored (but round-tripped) for reads.
    pub value: u64,
}

/// Update or read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// A mutating operation.
    Update,
    /// A read-only operation.
    Read,
}

impl OpKind {
    /// The schema name.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Update => "update",
            OpKind::Read => "read",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "update" => Some(OpKind::Update),
            "read" => Some(OpKind::Read),
            _ => None,
        }
    }
}

/// Parameters specific to the explore engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExploreSpec {
    /// Optional value written solo before the scope opens (max
    /// registers only; becomes the checker's initial value).
    pub seed_update: Option<u64>,
    /// The scope: one operation per process slot, at most 64.
    pub ops: Vec<ScenarioOp>,
    /// Schedule budget before the search reports truncation.
    pub max_schedules: usize,
    /// Sleep-set pruning on/off.
    pub prune: bool,
    /// Crash budget (0 = crash-free schedules only).
    pub max_crashes: usize,
    /// Worker threads for the search (1 = the sequential explorer;
    /// more partitions the root branches via `explore_parallel`).
    pub workers: usize,
}

/// k-multiplicative accuracy parameters (ISSUE 9). Only meaningful for
/// implementations whose registry entry carries an accuracy capability
/// (`caps.accuracy`); the engines reject `k > 1` on exact
/// implementations rather than silently weakening their verdicts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccuracySpec {
    /// The multiplicative factor `k` (`≥ 1`): reads may underestimate
    /// the true value by at most this factor and never overestimate it.
    /// `k = 1` demands exactness — checkers reduce bit-for-bit to their
    /// exact verdicts.
    pub k: u64,
}

/// Parameters specific to the real-threads engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RealSpec {
    /// Worker threads (one process id each).
    pub threads: usize,
    /// Operations per thread per batch.
    pub ops_per_thread: u64,
    /// Timed batches; the reported time is their median.
    pub samples: usize,
}

/// Step-tracing controls, shared by all three engines.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceSpec {
    /// Collect per-op step statistics into the report's `steps` block.
    /// Defaults to `true` when the `trace` section is present.
    pub steps: bool,
    /// Write a `ruo-trace-v1` JSONL event stream to this path (sim and
    /// explore engines; one representative execution).
    pub jsonl: Option<String>,
    /// Write a Chrome `trace_event` JSON file to this path (sim and
    /// explore engines; opens in `chrome://tracing` / Perfetto).
    pub chrome: Option<String>,
}

impl Default for TraceSpec {
    fn default() -> Self {
        TraceSpec {
            steps: true,
            jsonl: None,
            chrome: None,
        }
    }
}

/// Telemetry sampling controls (sim and real engines). When present,
/// the engine registers its gauge families in a
/// `ruo_metrics::MetricsRegistry` and samples them through a
/// `SeriesSampler` on a deterministic tick source — the seed index in
/// sim, the timed-sample index in real — so the sampled curves land in
/// the report's `telemetry` block and are reproducible run to run.
/// The explore engine rejects this section (its per-schedule gauges
/// have no meaningful mid-run timeline).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TelemetrySpec {
    /// Ring capacity: the most recent samples kept (≥ 1).
    pub capacity: usize,
    /// Sample every `every` ticks (≥ 1); `1` samples every tick.
    pub every: u64,
}

impl Default for TelemetrySpec {
    fn default() -> Self {
        TelemetrySpec {
            capacity: 64,
            every: 1,
        }
    }
}

/// A complete declarative scenario.
///
/// Construct via [`ScenarioSpec::new`] (which fills the defaults) and
/// adjust fields directly; the struct is exhaustively public so specs
/// can also be written as literals in tests.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (report key; file stem by convention).
    pub name: String,
    /// Object family.
    pub family: Family,
    /// Implementation id within the family (registry key).
    pub impl_id: String,
    /// Engine that runs the scenario.
    pub engine: EngineKind,
    /// Number of processes.
    pub n: usize,
    /// Capacity for bounded implementations (AAC value bound, counter
    /// increment bound, path-copy update bound). `None` lets the engine
    /// derive one from the workload.
    pub capacity: Option<u64>,
    /// Base seed for workload generation and fault plans.
    pub seed: u64,
    /// Number of seeded schedules the sim engine sweeps.
    pub seeds: u64,
    /// Operations each process performs (sim engine).
    pub ops_per_process: usize,
    /// Percentage of operations that are reads (0–100); used by the
    /// real engine and the sim engine's random mix.
    pub read_pct: u8,
    /// Update values are drawn uniformly from `1..=value_bound`.
    pub value_bound: u64,
    /// How the sim engine builds per-process operation sequences.
    pub mix: OpMix,
    /// Scheduling policy (sim engine).
    pub schedule: SchedulePolicy,
    /// Executor step budget; `None` = unbounded.
    pub step_budget: Option<usize>,
    /// Fault plan (sim engine); `None` = crash-free.
    pub faults: Option<FaultSpec>,
    /// History checker.
    pub checker: CheckerKind,
    /// Certify per-process progress against a measured solo bound (sim
    /// engine) or completion counts (real engine).
    pub certify: bool,
    /// Opt into the § 4.5 root-read fast path where supported.
    pub root_fast_path: bool,
    /// Explore-engine parameters (required when `engine == Explore`).
    pub explore: Option<ExploreSpec>,
    /// Real-engine parameters (defaults derived from `n` when absent).
    pub real: Option<RealSpec>,
    /// Accuracy parameters (`None` = exact, equivalent to `k = 1`).
    /// Only valid on implementations whose registry entry advertises an
    /// accuracy capability when `k > 1`.
    pub accuracy: Option<AccuracySpec>,
    /// Step-tracing controls; `None` disables tracing entirely.
    pub trace: Option<TraceSpec>,
    /// Telemetry sampling controls; `None` disables the report's
    /// `telemetry` block (sim and real engines only).
    pub telemetry: Option<TelemetrySpec>,
    /// Wall-clock watchdog in seconds: a run that has not produced its
    /// report within this budget is failed with a structured
    /// `watchdog` verdict instead of hanging the harness. `None`
    /// disables the watchdog (the run may block forever).
    pub watchdog_secs: Option<u64>,
}

/// A spec validation / decoding error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError(pub String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario spec error: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

fn err<T>(msg: impl Into<String>) -> Result<T, SpecError> {
    Err(SpecError(msg.into()))
}

impl ScenarioSpec {
    /// A spec with the given identity and every knob at its default:
    /// crash-free random schedules, 100 seeds, 8 ops per process, 50%
    /// reads, values in `1..=1000`, auto checker, no certification.
    pub fn new(
        name: impl Into<String>,
        family: Family,
        impl_id: impl Into<String>,
        engine: EngineKind,
        n: usize,
    ) -> Self {
        ScenarioSpec {
            name: name.into(),
            family,
            impl_id: impl_id.into(),
            engine,
            n,
            capacity: None,
            seed: 1,
            seeds: 100,
            ops_per_process: 8,
            read_pct: 50,
            value_bound: 1000,
            mix: OpMix::Random,
            schedule: SchedulePolicy::Random,
            step_budget: None,
            faults: None,
            checker: CheckerKind::Auto,
            certify: false,
            root_fast_path: false,
            explore: None,
            real: None,
            accuracy: None,
            trace: None,
            telemetry: None,
            watchdog_secs: None,
        }
    }

    /// Serializes to the `"ruo-scenario-v1"` JSON document.
    ///
    /// Every scalar field is always emitted (so files are
    /// self-documenting); `None` optionals are omitted.
    pub fn to_json(&self) -> String {
        let mut o: Vec<(String, Json)> = vec![
            ("schema".into(), Json::Str(SPEC_SCHEMA.into())),
            ("name".into(), Json::Str(self.name.clone())),
            ("family".into(), Json::Str(self.family.name().into())),
            ("impl".into(), Json::Str(self.impl_id.clone())),
            ("engine".into(), Json::Str(self.engine.name().into())),
            ("n".into(), Json::Num(self.n as u64)),
        ];
        if let Some(c) = self.capacity {
            o.push(("capacity".into(), Json::Num(c)));
        }
        o.push(("seed".into(), Json::Num(self.seed)));
        o.push(("seeds".into(), Json::Num(self.seeds)));
        o.push((
            "ops_per_process".into(),
            Json::Num(self.ops_per_process as u64),
        ));
        o.push(("read_pct".into(), Json::Num(self.read_pct as u64)));
        o.push(("value_bound".into(), Json::Num(self.value_bound)));
        o.push(("mix".into(), Json::Str(self.mix.name().into())));
        o.push(("schedule".into(), Json::Str(self.schedule.name().into())));
        if let Some(b) = self.step_budget {
            o.push(("step_budget".into(), Json::Num(b as u64)));
        }
        if let Some(f) = &self.faults {
            o.push(("faults".into(), fault_to_json(f)));
        }
        o.push(("checker".into(), Json::Str(self.checker.name().into())));
        o.push(("certify".into(), Json::Bool(self.certify)));
        o.push(("root_fast_path".into(), Json::Bool(self.root_fast_path)));
        if let Some(e) = &self.explore {
            o.push(("explore".into(), explore_to_json(e)));
        }
        if let Some(r) = &self.real {
            o.push(("real".into(), real_to_json(r)));
        }
        if let Some(a) = &self.accuracy {
            o.push((
                "accuracy".into(),
                Json::Obj(vec![("k".into(), Json::Num(a.k))]),
            ));
        }
        if let Some(t) = &self.trace {
            o.push(("trace".into(), trace_to_json(t)));
        }
        if let Some(t) = &self.telemetry {
            o.push((
                "telemetry".into(),
                Json::Obj(vec![
                    ("capacity".into(), Json::Num(t.capacity as u64)),
                    ("every".into(), Json::Num(t.every)),
                ]),
            ));
        }
        if let Some(w) = self.watchdog_secs {
            o.push(("watchdog_secs".into(), Json::Num(w)));
        }
        Json::Obj(o).pretty()
    }

    /// Parses and validates a `"ruo-scenario-v1"` document. Unknown
    /// keys are rejected (they are almost always typos in a knob name).
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        let doc = Json::parse(text).map_err(|e| SpecError(e.to_string()))?;
        let obj = match doc.as_obj() {
            Some(o) => o,
            None => return err("top level must be an object"),
        };
        const KNOWN: &[&str] = &[
            "schema",
            "name",
            "family",
            "impl",
            "engine",
            "n",
            "capacity",
            "seed",
            "seeds",
            "ops_per_process",
            "read_pct",
            "value_bound",
            "mix",
            "schedule",
            "step_budget",
            "faults",
            "checker",
            "certify",
            "root_fast_path",
            "explore",
            "real",
            "accuracy",
            "trace",
            "telemetry",
            "watchdog_secs",
        ];
        for (k, _) in obj {
            if !KNOWN.contains(&k.as_str()) {
                return err(format!("unknown key \"{k}\""));
            }
        }
        match doc.get("schema").and_then(Json::as_str) {
            Some(SPEC_SCHEMA) => {}
            Some(other) => return err(format!("unsupported schema \"{other}\"")),
            None => return err("missing \"schema\""),
        }
        let name = req_str(&doc, "name")?.to_string();
        let family = match Family::parse(req_str(&doc, "family")?) {
            Some(f) => f,
            None => return err("\"family\" must be maxreg | counter | snapshot"),
        };
        let impl_id = req_str(&doc, "impl")?.to_string();
        let engine = match EngineKind::parse(req_str(&doc, "engine")?) {
            Some(e) => e,
            None => return err("\"engine\" must be real | sim | explore"),
        };
        let n = req_u64(&doc, "n")? as usize;
        if n == 0 {
            return err("\"n\" must be at least 1");
        }
        let mut spec = ScenarioSpec::new(&name, family, &impl_id, engine, n);
        spec.capacity = opt_u64(&doc, "capacity")?;
        if let Some(v) = opt_u64(&doc, "seed")? {
            spec.seed = v;
        }
        if let Some(v) = opt_u64(&doc, "seeds")? {
            spec.seeds = v;
        }
        if let Some(v) = opt_u64(&doc, "ops_per_process")? {
            spec.ops_per_process = v as usize;
        }
        if let Some(v) = opt_u64(&doc, "read_pct")? {
            if v > 100 {
                return err("\"read_pct\" must be 0–100");
            }
            spec.read_pct = v as u8;
        }
        if let Some(v) = opt_u64(&doc, "value_bound")? {
            if v == 0 {
                return err("\"value_bound\" must be at least 1");
            }
            spec.value_bound = v;
        }
        if let Some(s) = opt_str(&doc, "mix")? {
            spec.mix = match OpMix::parse(s) {
                Some(m) => m,
                None => return err("\"mix\" must be random | alternate"),
            };
        }
        if let Some(s) = opt_str(&doc, "schedule")? {
            spec.schedule = match SchedulePolicy::parse(s) {
                Some(p) => p,
                None => return err("\"schedule\" must be random | round_robin"),
            };
        }
        spec.step_budget = opt_u64(&doc, "step_budget")?.map(|v| v as usize);
        if let Some(f) = doc.get("faults") {
            spec.faults = Some(fault_from_json(f)?);
        }
        if let Some(s) = opt_str(&doc, "checker")? {
            spec.checker = match CheckerKind::parse(s) {
                Some(c) => c,
                None => return err("\"checker\" must be auto | fast | interval | exact"),
            };
        }
        if let Some(b) = opt_bool(&doc, "certify")? {
            spec.certify = b;
        }
        if let Some(b) = opt_bool(&doc, "root_fast_path")? {
            spec.root_fast_path = b;
        }
        if let Some(e) = doc.get("explore") {
            spec.explore = Some(explore_from_json(e, spec.n)?);
        }
        if let Some(r) = doc.get("real") {
            spec.real = Some(real_from_json(r)?);
        }
        if let Some(a) = doc.get("accuracy") {
            spec.accuracy = Some(accuracy_from_json(a)?);
        }
        if let Some(t) = doc.get("trace") {
            spec.trace = Some(trace_from_json(t)?);
        }
        if let Some(t) = doc.get("telemetry") {
            spec.telemetry = Some(telemetry_from_json(t)?);
        }
        spec.watchdog_secs = opt_u64(&doc, "watchdog_secs")?;
        if spec.engine == EngineKind::Explore && spec.explore.is_none() {
            return err("engine \"explore\" requires an \"explore\" section");
        }
        Ok(spec)
    }

    /// The effective accuracy factor: `accuracy.k` when the section is
    /// present, else `1` (exact).
    pub fn accuracy_k(&self) -> u64 {
        self.accuracy.map_or(1, |a| a.k)
    }
}

fn req_str<'a>(doc: &'a Json, key: &str) -> Result<&'a str, SpecError> {
    match doc.get(key).and_then(Json::as_str) {
        Some(s) => Ok(s),
        None => err(format!("missing or non-string \"{key}\"")),
    }
}

fn req_u64(doc: &Json, key: &str) -> Result<u64, SpecError> {
    match doc.get(key).and_then(Json::as_u64) {
        Some(v) => Ok(v),
        None => err(format!("missing or non-integer \"{key}\"")),
    }
}

fn opt_u64(doc: &Json, key: &str) -> Result<Option<u64>, SpecError> {
    match doc.get(key) {
        None => Ok(None),
        Some(v) => match v.as_u64() {
            Some(n) => Ok(Some(n)),
            None => err(format!("\"{key}\" must be an unsigned integer")),
        },
    }
}

fn opt_str<'a>(doc: &'a Json, key: &str) -> Result<Option<&'a str>, SpecError> {
    match doc.get(key) {
        None => Ok(None),
        Some(v) => match v.as_str() {
            Some(s) => Ok(Some(s)),
            None => err(format!("\"{key}\" must be a string")),
        },
    }
}

fn opt_bool(doc: &Json, key: &str) -> Result<Option<bool>, SpecError> {
    match doc.get(key) {
        None => Ok(None),
        Some(v) => match v.as_bool() {
            Some(b) => Ok(Some(b)),
            None => err(format!("\"{key}\" must be a bool")),
        },
    }
}

fn fault_to_json(f: &FaultSpec) -> Json {
    match f {
        FaultSpec::Random { crashes, max_after } => Json::Obj(vec![
            ("kind".into(), Json::Str("random".into())),
            ("crashes".into(), Json::Num(*crashes as u64)),
            ("max_after".into(), Json::Num(*max_after as u64)),
        ]),
        FaultSpec::Explicit { crashes } => Json::Obj(vec![
            ("kind".into(), Json::Str("explicit".into())),
            (
                "crashes".into(),
                Json::Arr(
                    crashes
                        .iter()
                        .map(|c| {
                            Json::Obj(vec![
                                ("pid".into(), Json::Num(c.pid as u64)),
                                ("after".into(), Json::Num(c.after as u64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
    }
}

fn fault_from_json(v: &Json) -> Result<FaultSpec, SpecError> {
    match v.get("kind").and_then(Json::as_str) {
        Some("random") => Ok(FaultSpec::Random {
            crashes: req_u64(v, "crashes")? as usize,
            max_after: req_u64(v, "max_after")? as usize,
        }),
        Some("explicit") => {
            let arr = match v.get("crashes").and_then(Json::as_arr) {
                Some(a) => a,
                None => return err("explicit faults need a \"crashes\" array"),
            };
            let mut crashes = Vec::with_capacity(arr.len());
            for c in arr {
                crashes.push(CrashAt {
                    pid: req_u64(c, "pid")? as usize,
                    after: req_u64(c, "after")? as usize,
                });
            }
            Ok(FaultSpec::Explicit { crashes })
        }
        _ => err("\"faults.kind\" must be random | explicit"),
    }
}

fn explore_to_json(e: &ExploreSpec) -> Json {
    let mut o: Vec<(String, Json)> = Vec::new();
    if let Some(s) = e.seed_update {
        o.push(("seed_update".into(), Json::Num(s)));
    }
    o.push((
        "ops".into(),
        Json::Arr(
            e.ops
                .iter()
                .map(|op| {
                    Json::Obj(vec![
                        ("pid".into(), Json::Num(op.pid as u64)),
                        ("kind".into(), Json::Str(op.kind.name().into())),
                        ("value".into(), Json::Num(op.value)),
                    ])
                })
                .collect(),
        ),
    ));
    o.push(("max_schedules".into(), Json::Num(e.max_schedules as u64)));
    o.push(("prune".into(), Json::Bool(e.prune)));
    o.push(("max_crashes".into(), Json::Num(e.max_crashes as u64)));
    if e.workers != 1 {
        o.push(("workers".into(), Json::Num(e.workers as u64)));
    }
    Json::Obj(o)
}

fn explore_from_json(v: &Json, n: usize) -> Result<ExploreSpec, SpecError> {
    let arr = match v.get("ops").and_then(Json::as_arr) {
        Some(a) => a,
        None => return err("\"explore.ops\" must be an array"),
    };
    let mut ops = Vec::with_capacity(arr.len());
    for op in arr {
        let pid = req_u64(op, "pid")? as usize;
        if pid >= n {
            return err(format!("explore op pid {pid} out of range for n = {n}"));
        }
        let kind = match OpKind::parse(req_str(op, "kind")?) {
            Some(k) => k,
            None => return err("explore op \"kind\" must be update | read"),
        };
        ops.push(ScenarioOp {
            pid,
            kind,
            value: opt_u64(op, "value")?.unwrap_or(0),
        });
    }
    if ops.len() > 64 {
        return err("the explorer supports at most 64 operations");
    }
    let workers = opt_u64(v, "workers")?.unwrap_or(1) as usize;
    if workers == 0 {
        return err("\"explore.workers\" must be at least 1");
    }
    Ok(ExploreSpec {
        seed_update: opt_u64(v, "seed_update")?,
        ops,
        max_schedules: req_u64(v, "max_schedules")? as usize,
        prune: opt_bool(v, "prune")?.unwrap_or(true),
        max_crashes: opt_u64(v, "max_crashes")?.unwrap_or(0) as usize,
        workers,
    })
}

fn real_to_json(r: &RealSpec) -> Json {
    Json::Obj(vec![
        ("threads".into(), Json::Num(r.threads as u64)),
        ("ops_per_thread".into(), Json::Num(r.ops_per_thread)),
        ("samples".into(), Json::Num(r.samples as u64)),
    ])
}

fn trace_to_json(t: &TraceSpec) -> Json {
    let mut o: Vec<(String, Json)> = vec![("steps".into(), Json::Bool(t.steps))];
    if let Some(p) = &t.jsonl {
        o.push(("jsonl".into(), Json::Str(p.clone())));
    }
    if let Some(p) = &t.chrome {
        o.push(("chrome".into(), Json::Str(p.clone())));
    }
    Json::Obj(o)
}

fn trace_from_json(v: &Json) -> Result<TraceSpec, SpecError> {
    let obj = match v.as_obj() {
        Some(o) => o,
        None => return err("\"trace\" must be an object"),
    };
    // Strict like the top level: a typo'd trace knob silently disabling
    // export is exactly the failure mode unknown-key rejection prevents.
    const KNOWN: &[&str] = &["steps", "jsonl", "chrome"];
    for (k, _) in obj {
        if !KNOWN.contains(&k.as_str()) {
            return err(format!("unknown key \"{k}\" in \"trace\""));
        }
    }
    Ok(TraceSpec {
        steps: opt_bool(v, "steps")?.unwrap_or(true),
        jsonl: opt_str(v, "jsonl")?.map(str::to_string),
        chrome: opt_str(v, "chrome")?.map(str::to_string),
    })
}

fn telemetry_from_json(v: &Json) -> Result<TelemetrySpec, SpecError> {
    let obj = match v.as_obj() {
        Some(o) => o,
        None => return err("\"telemetry\" must be an object"),
    };
    // Strict like "trace": a typo'd knob silently dropping the sampled
    // curves is exactly the failure mode unknown-key rejection prevents.
    const KNOWN: &[&str] = &["capacity", "every"];
    for (k, _) in obj {
        if !KNOWN.contains(&k.as_str()) {
            return err(format!("unknown key \"{k}\" in \"telemetry\""));
        }
    }
    let defaults = TelemetrySpec::default();
    let capacity = opt_u64(v, "capacity")?.unwrap_or(defaults.capacity as u64);
    if capacity == 0 {
        return err("\"telemetry.capacity\" must be at least 1");
    }
    let every = opt_u64(v, "every")?.unwrap_or(defaults.every);
    if every == 0 {
        return err("\"telemetry.every\" must be at least 1");
    }
    Ok(TelemetrySpec {
        capacity: capacity as usize,
        every,
    })
}

fn accuracy_from_json(v: &Json) -> Result<AccuracySpec, SpecError> {
    let obj = match v.as_obj() {
        Some(o) => o,
        None => return err("\"accuracy\" must be an object"),
    };
    // Strict like "trace": a typo'd knob silently running the exact
    // checkers at k = 1 would invert the meaning of a passing verdict.
    const KNOWN: &[&str] = &["k"];
    for (k, _) in obj {
        if !KNOWN.contains(&k.as_str()) {
            return err(format!("unknown key \"{k}\" in \"accuracy\""));
        }
    }
    let k = req_u64(v, "k")?;
    if k == 0 {
        return err("\"accuracy.k\" must be at least 1");
    }
    Ok(AccuracySpec { k })
}

fn real_from_json(v: &Json) -> Result<RealSpec, SpecError> {
    let threads = req_u64(v, "threads")? as usize;
    if threads == 0 {
        return err("\"real.threads\" must be at least 1");
    }
    Ok(RealSpec {
        threads,
        ops_per_thread: req_u64(v, "ops_per_thread")?,
        samples: req_u64(v, "samples")? as usize,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_round_trips() {
        let spec = ScenarioSpec::new("smoke", Family::MaxReg, "tree", EngineKind::Sim, 4);
        let parsed = ScenarioSpec::parse(&spec.to_json()).unwrap();
        assert_eq!(parsed, spec);
    }

    #[test]
    fn fully_loaded_spec_round_trips() {
        let mut spec = ScenarioSpec::new(
            "full",
            Family::Snapshot,
            "double_collect",
            EngineKind::Sim,
            3,
        );
        spec.capacity = Some(512);
        spec.seed = 42;
        spec.seeds = 7;
        spec.step_budget = Some(100_000);
        spec.schedule = SchedulePolicy::RoundRobin;
        spec.mix = OpMix::Alternate;
        spec.checker = CheckerKind::Exact;
        spec.certify = true;
        spec.root_fast_path = true;
        spec.faults = Some(FaultSpec::Explicit {
            crashes: vec![CrashAt { pid: 1, after: 3 }, CrashAt { pid: 2, after: 9 }],
        });
        spec.explore = Some(ExploreSpec {
            seed_update: Some(3),
            ops: vec![
                ScenarioOp {
                    pid: 0,
                    kind: OpKind::Update,
                    value: 4,
                },
                ScenarioOp {
                    pid: 1,
                    kind: OpKind::Read,
                    value: 0,
                },
            ],
            max_schedules: 100_000,
            prune: false,
            max_crashes: 1,
            workers: 4,
        });
        spec.real = Some(RealSpec {
            threads: 4,
            ops_per_thread: 20_000,
            samples: 7,
        });
        spec.accuracy = Some(AccuracySpec { k: 4 });
        spec.trace = Some(TraceSpec {
            steps: false,
            jsonl: Some("target/traces/full.jsonl".into()),
            chrome: Some("target/traces/full.trace.json".into()),
        });
        spec.telemetry = Some(TelemetrySpec {
            capacity: 32,
            every: 2,
        });
        spec.watchdog_secs = Some(45);
        let parsed = ScenarioSpec::parse(&spec.to_json()).unwrap();
        assert_eq!(parsed, spec);
        assert_eq!(parsed.accuracy_k(), 4);
    }

    #[test]
    fn accuracy_section_is_strict_and_defaults_to_exact() {
        let mut spec = ScenarioSpec::new("a", Family::Counter, "approx", EngineKind::Sim, 2);
        assert_eq!(spec.accuracy_k(), 1);
        spec.accuracy = Some(AccuracySpec { k: 8 });
        let json = spec.to_json();
        assert_eq!(ScenarioSpec::parse(&json).unwrap(), spec);
        // k = 0 is meaningless (reads could return anything).
        let zero = json.replace("\"k\": 8", "\"k\": 0");
        assert!(ScenarioSpec::parse(&zero).unwrap_err().0.contains("k"));
        // Unknown keys inside "accuracy" are rejected like top-level typos.
        let typo = json.replace("\"k\": 8", "\"factor\": 8");
        let e = ScenarioSpec::parse(&typo).unwrap_err();
        assert!(e.0.contains("accuracy"), "{e}");
    }

    #[test]
    fn trace_section_is_strict_and_defaults_steps_on() {
        let mut spec = ScenarioSpec::new("t", Family::MaxReg, "tree", EngineKind::Sim, 2);
        spec.trace = Some(TraceSpec::default());
        let json = spec.to_json();
        assert_eq!(ScenarioSpec::parse(&json).unwrap(), spec);
        // An omitted "steps" defaults to true.
        let no_steps = json.replace("\"steps\": true", "\"jsonl\": \"t.jsonl\"");
        let parsed = ScenarioSpec::parse(&no_steps).unwrap();
        assert!(parsed.trace.as_ref().unwrap().steps);
        assert_eq!(parsed.trace.unwrap().jsonl.as_deref(), Some("t.jsonl"));
        // Unknown keys inside "trace" are rejected like top-level typos.
        let typo = json.replace("\"steps\": true", "\"stepz\": true");
        let e = ScenarioSpec::parse(&typo).unwrap_err();
        assert!(e.0.contains("trace"), "{e}");
    }

    #[test]
    fn telemetry_section_is_strict_with_sane_defaults() {
        let mut spec = ScenarioSpec::new("t", Family::MaxReg, "tree", EngineKind::Sim, 2);
        spec.telemetry = Some(TelemetrySpec::default());
        let json = spec.to_json();
        assert_eq!(ScenarioSpec::parse(&json).unwrap(), spec);
        // Omitted knobs take the defaults.
        let bare = json.replace("\"capacity\": 64,\n    \"every\": 1", "\"every\": 4");
        let parsed = ScenarioSpec::parse(&bare).unwrap();
        assert_eq!(
            parsed.telemetry,
            Some(TelemetrySpec {
                capacity: 64,
                every: 4
            })
        );
        // Degenerate knobs are rejected.
        let zero_cap = json.replace("\"capacity\": 64", "\"capacity\": 0");
        assert!(ScenarioSpec::parse(&zero_cap)
            .unwrap_err()
            .0
            .contains("capacity"));
        let zero_every = json.replace("\"every\": 1", "\"every\": 0");
        assert!(ScenarioSpec::parse(&zero_every)
            .unwrap_err()
            .0
            .contains("every"));
        // Unknown keys inside "telemetry" are rejected like top-level typos.
        let typo = json.replace("\"every\": 1", "\"evry\": 1");
        let e = ScenarioSpec::parse(&typo).unwrap_err();
        assert!(e.0.contains("telemetry"), "{e}");
    }

    #[test]
    fn rejects_unknown_keys_and_bad_values() {
        let base = ScenarioSpec::new("x", Family::MaxReg, "tree", EngineKind::Sim, 2).to_json();
        let typo = base.replace("\"seeds\"", "\"seedz\"");
        assert!(ScenarioSpec::parse(&typo).is_err());
        let bad_family = base.replace("\"maxreg\"", "\"stack\"");
        assert!(ScenarioSpec::parse(&bad_family).is_err());
        let bad_schema = base.replace(SPEC_SCHEMA, "ruo-scenario-v0");
        assert!(ScenarioSpec::parse(&bad_schema).is_err());
    }

    #[test]
    fn explore_engine_requires_a_scope() {
        let spec = ScenarioSpec::new("w5", Family::MaxReg, "tree", EngineKind::Explore, 4);
        assert!(ScenarioSpec::parse(&spec.to_json()).is_err());
    }
}
