//! A minimal JSON tree, parser and pretty-printer.
//!
//! The workspace is deliberately dependency-free, so scenario specs and
//! reports use this hand-rolled codec instead of `serde`. The dialect is
//! exactly what the scenario schema needs:
//!
//! - integers parse to [`Json::Num`] (non-negative — every numeric
//!   field in a [`crate::ScenarioSpec`] is a count, seed, percentage or
//!   bound) or [`Json::Int`] (negative — exported traces carry signed
//!   words); [`Json::Float`] is reserved for numbers written with a
//!   fraction or exponent, so integral values survive a round trip as
//!   integers,
//! - strings support the standard `\" \\ \/ \n \t \r \b \f \uXXXX`
//!   escapes (no surrogate pairs — the schema is ASCII in practice),
//! - objects preserve key order, which keeps spec round-trips and report
//!   diffs stable.

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (what the parser produces for unsigned
    /// integer literals).
    Num(u64),
    /// A negative integer: produced by the parser for `-`-signed
    /// integral literals (exported traces carry signed words; nothing
    /// in the *spec* schemas is negative — integer spec fields read
    /// [`Json::as_u64`], which rejects it). Always strictly negative;
    /// `-0` normalizes to `Num(0)`.
    Int(i64),
    /// A float: emitted for report metrics and produced by the parser
    /// only for numbers with a fraction or exponent.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered key → value list.
    Obj(Vec<(String, Json)>),
}

/// A parse error with the byte offset where it occurred.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }

    /// Looks up a key in an object; `None` for missing keys and
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a signed integer, if it is an integer that fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) => i64::try_from(*n).ok(),
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a float; integers widen (exact for the magnitudes
    /// the schemas carry).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Float(x) => Some(*x),
            Json::Num(n) => Some(*n as f64),
            Json::Int(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object slice, if it is one.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.emit(&mut out, 0);
        out.push('\n');
        out
    }

    fn emit(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&n.to_string()),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Float(x) => {
                if x.is_finite() {
                    let text = format!("{x}");
                    out.push_str(&text);
                    // `{x}` on an integral float prints no dot; add one so
                    // the field stays recognizable as a float.
                    if !text.contains('.') && !text.contains('e') {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => emit_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.emit(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    emit_string(out, k);
                    out.push_str(": ");
                    v.emit(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn emit_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {what}")))
        }
    }

    fn keyword(&mut self, kw: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b'0'..=b'9') => self.number(false),
            Some(b'-') => {
                self.pos += 1;
                if !matches!(self.peek(), Some(b'0'..=b'9')) {
                    return Err(self.err("digit expected after `-`"));
                }
                self.number(true)
            }
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn number(&mut self, negative: bool) -> Result<Json, JsonError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if matches!(self.peek(), Some(b'.')) {
            float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit expected after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit expected in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        if float {
            let x = text
                .parse::<f64>()
                .map_err(|_| self.err("malformed number"))?;
            return Ok(Json::Float(if negative { -x } else { x }));
        }
        if negative {
            // Integral negatives stay integers (exported traces carry
            // signed words, and they must re-import as written, not as
            // floats). `-0` normalizes to the unsigned zero.
            return match text.parse::<i64>() {
                Ok(0) => Ok(Json::Num(0)),
                Ok(n) => Ok(Json::Int(-n)),
                // `-9223372036854775808` has no positive i64 partner.
                Err(_) if text == "9223372036854775808" => Ok(Json::Int(i64::MIN)),
                Err(_) => Err(self.err("integer does not fit in i64")),
            };
        }
        text.parse::<u64>()
            .map(Json::Num)
            .map_err(|_| self.err("integer does not fit in u64"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "`\"`")?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad hex in \\u escape"))?;
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            s.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character in string"));
                    }
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[', "`[`")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{', "`{`")?;
        let mut pairs: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(self.err(&format!("duplicate key \"{key}\"")));
            }
            self.skip_ws();
            self.eat(b':', "`:`")?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_basic_shapes() {
        let doc = r#"{"a": 1, "b": [true, false, null], "c": {"nested": "s"}}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(
            v.get("b").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(
            v.get("c")
                .and_then(|c| c.get("nested"))
                .and_then(Json::as_str),
            Some("s")
        );
    }

    #[test]
    fn round_trips_through_pretty() {
        let doc = r#"{"name": "w5", "n": 4, "ops": [{"pid": 0, "v": 18446744073709551615}]}"#;
        let v = Json::parse(doc).unwrap();
        let again = Json::parse(&v.pretty()).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn escapes_round_trip() {
        let v = Json::Str("quote \" slash \\ newline \n tab \t nul \u{1}".to_string());
        let mut out = String::new();
        v.emit(&mut out, 0);
        assert_eq!(Json::parse(&out).unwrap(), v);
    }

    #[test]
    fn rejects_schema_foreign_numbers() {
        // Integral negatives parse as signed integers (exported traces
        // carry signed words); integer spec fields reject them via
        // `as_u64`.
        assert_eq!(Json::parse("-3").unwrap(), Json::Int(-3));
        assert_eq!(Json::parse("-3").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-3").unwrap().as_i64(), Some(-3));
        assert_eq!(Json::parse("-1.5e1").unwrap(), Json::Float(-15.0));
        assert!(Json::parse("-").is_err());
        assert!(Json::parse("-x").is_err());
        assert!(Json::parse("99999999999999999999").is_err());
        assert!(Json::parse("-99999999999999999999").is_err());
        assert!(Json::parse("1.").is_err());
        assert!(Json::parse("1e").is_err());
        assert_eq!(Json::parse("1.5").unwrap(), Json::Float(1.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        // Floats never satisfy integer accessors, so spec fields still
        // reject them.
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("1.5").unwrap().as_i64(), None);
    }

    #[test]
    fn negative_integers_round_trip_as_integers() {
        // The i64 edges and `-0` normalization.
        assert_eq!(Json::parse("-0").unwrap(), Json::Num(0));
        assert_eq!(
            Json::parse("-9223372036854775808").unwrap(),
            Json::Int(i64::MIN)
        );
        assert_eq!(
            Json::parse("-9223372036854775807").unwrap(),
            Json::Int(i64::MIN + 1)
        );
        // Emission is the exact literal, so a second parse agrees.
        for n in [-1i64, -63, -1_000_000, i64::MIN] {
            let v = Json::Int(n);
            assert_eq!(v.pretty().trim(), n.to_string());
            assert_eq!(Json::parse(&v.pretty()).unwrap(), v);
        }
    }

    #[test]
    fn rejects_duplicate_keys_and_garbage() {
        assert!(Json::parse(r#"{"a": 1, "a": 2}"#).is_err());
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("[1,]").is_err());
    }

    #[test]
    fn floats_emit_with_a_dot() {
        assert_eq!(Json::Float(2.0).pretty().trim(), "2.0");
        assert_eq!(Json::Float(2.5).pretty().trim(), "2.5");
    }
}
