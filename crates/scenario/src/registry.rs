//! The object registry: one table of every max-register, counter and
//! snapshot implementation in `ruo-core`, with constructors for both
//! *faces* — the real-atomics trait objects the thread harnesses drive
//! and the simulator step machines the executor / explorer drive — plus
//! capability metadata (progress class, capacity bounds, supported
//! process counts, § 4.5 root fast path).
//!
//! Every harness resolves implementations through [`find`] instead of
//! hand-listing constructors, so a new implementation registered here is
//! automatically picked up by the soak sweep, the throughput bench, the
//! equivalence tests and the `scenario` CLI. A source-scanning
//! completeness test fails the build if a `ruo-core` implementation is
//! *not* registered.

use std::fmt;
use std::sync::{Arc, OnceLock};

use ruo_core::counter::sim::{
    SimAacCounter, SimCasLoopCounter, SimCombiningCounter, SimCounter, SimFArrayCounter,
    SimShardedCounter, SimSnapshotCounter,
};
use ruo_core::counter::{
    AacCounter, ApproxCounter, CombiningCounter, FArrayCounter, FetchAddCounter, ShardedCounter,
    SimApproxCounter,
};
use ruo_core::maxreg::aac::MAX_CAPACITY;
use ruo_core::maxreg::sim::{
    SimAacMaxRegister, SimCasRetryMaxRegister, SimFArrayMaxRegister, SimMaxRegister,
    SimTreeMaxRegister,
};
use ruo_core::maxreg::{
    check_tree_size, AacMaxRegister, AacShape, ApproxMaxRegister, CapacityError,
    CasRetryMaxRegister, FArrayMaxRegister, LockMaxRegister, SimApproxMaxRegister, TreeMaxRegister,
    TreeSizeError, MAX_PROCESSES,
};
use ruo_core::reduction::CounterFromSnapshot;
use ruo_core::snapshot::sim::{SimDoubleCollectSnapshot, SimSnapshot};
use ruo_core::snapshot::{AfekSnapshot, DoubleCollectSnapshot, PathCopySnapshot};
use ruo_core::{Counter, MaxRegister, Snapshot};
use ruo_sim::Memory;

pub use ruo_core::accuracy::AccuracyClass;
pub use ruo_core::counter::CounterMode;

/// The three object families of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Family {
    /// Max registers (§ 3–4).
    MaxReg,
    /// Restricted-use counters (§ 5).
    Counter,
    /// Single-writer atomic snapshots (§ 5, Corollary 2).
    Snapshot,
}

impl Family {
    /// The schema name (`"maxreg"`, `"counter"`, `"snapshot"`).
    pub fn name(self) -> &'static str {
        match self {
            Family::MaxReg => "maxreg",
            Family::Counter => "counter",
            Family::Snapshot => "snapshot",
        }
    }

    /// Parses a schema name; inverse of [`Family::name`].
    pub fn parse(s: &str) -> Option<Family> {
        match s {
            "maxreg" => Some(Family::MaxReg),
            "counter" => Some(Family::Counter),
            "snapshot" => Some(Family::Snapshot),
            _ => None,
        }
    }

    /// All families, in schema order.
    pub fn all() -> [Family; 3] {
        [Family::MaxReg, Family::Counter, Family::Snapshot]
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An implementation's progress guarantee.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProgressClass {
    /// Every operation finishes in a bounded number of its own steps.
    WaitFree,
    /// Some operation always makes progress; individual operations can
    /// starve (CAS retry loops).
    LockFree,
    /// An operation running solo finishes; contended operations can all
    /// starve (double-collect scans).
    ObstructionFree,
    /// Uses a mutex; a crashed lock-holder blocks everyone (baseline
    /// only).
    Blocking,
}

impl ProgressClass {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ProgressClass::WaitFree => "wait-free",
            ProgressClass::LockFree => "lock-free",
            ProgressClass::ObstructionFree => "obstruction-free",
            ProgressClass::Blocking => "blocking",
        }
    }
}

/// Capability metadata for one registered implementation.
#[derive(Clone, Copy, Debug)]
pub struct Capabilities {
    /// Progress guarantee of the implementation's update/read pair.
    pub progress: ProgressClass,
    /// Whether construction takes a capacity bound (`M`-bounded AAC
    /// registers, restricted-use counters, path-copy snapshots) that
    /// operations must respect.
    pub bounded_capacity: bool,
    /// Largest supported process count, when the implementation bounds
    /// it (Algorithm A's eager arena).
    pub max_n: Option<usize>,
    /// Whether the simulator face supports the § 4.5 root-read fast
    /// path toggle.
    pub root_fast_path: bool,
    /// Whether the W4 throughput bench includes this implementation.
    pub benched: bool,
    /// For the f-array-derived counter family: which
    /// [`CounterMode`] this entry realizes (`Exact` per-increment
    /// propagation, `Combining` batches, `Sharded` stripes). `None` for
    /// implementations outside that mode knob.
    pub counter_mode: Option<CounterMode>,
    /// The accuracy guarantee of the entry's reads (ISSUE 9). `None`
    /// means exact — reads return the precise linearized value. `Some`
    /// entries honour [`BuildParams::accuracy_k`] at construction and
    /// must be verified with the `_k` checkers at that factor.
    pub accuracy: Option<AccuracyClass>,
}

/// Parameters every registry constructor receives.
#[derive(Clone, Copy, Debug)]
pub struct BuildParams {
    /// Number of processes that will share the object.
    pub n: usize,
    /// Capacity bound for bounded implementations: value bound for AAC
    /// max registers, increment bound for restricted-use counters,
    /// update bound for path-copy snapshots. Ignored by unbounded
    /// implementations.
    pub capacity: u64,
    /// Opt into the § 4.5 root-read fast path where supported.
    pub root_fast_path: bool,
    /// k-multiplicative accuracy factor for approximate implementations
    /// (`≥ 1`; `1` means exact behaviour). Ignored by exact
    /// implementations (`caps.accuracy == None`).
    pub accuracy_k: u64,
}

/// A constructed real-atomics object, behind the family trait.
pub enum RealObject {
    /// A real max register.
    MaxReg(Box<dyn MaxRegister>),
    /// A real counter.
    Counter(Box<dyn Counter>),
    /// A real snapshot.
    Snapshot(Box<dyn Snapshot>),
}

impl fmt::Debug for RealObject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RealObject::MaxReg(_) => f.write_str("RealObject::MaxReg"),
            RealObject::Counter(_) => f.write_str("RealObject::Counter"),
            RealObject::Snapshot(_) => f.write_str("RealObject::Snapshot"),
        }
    }
}

/// A constructed simulator object, behind the step-machine trait.
/// `Arc` because operation factories are moved into `OpSpec` closures.
#[derive(Clone)]
pub enum SimObject {
    /// A simulated max register.
    MaxReg(Arc<dyn SimMaxRegister>),
    /// A simulated counter.
    Counter(Arc<dyn SimCounter>),
    /// A simulated snapshot.
    Snapshot(Arc<dyn SimSnapshot>),
}

impl fmt::Debug for SimObject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimObject::MaxReg(_) => f.write_str("SimObject::MaxReg"),
            SimObject::Counter(_) => f.write_str("SimObject::Counter"),
            SimObject::Snapshot(_) => f.write_str("SimObject::Snapshot"),
        }
    }
}

/// Why a registry constructor refused to build.
#[derive(Clone, Debug)]
pub enum BuildError {
    /// No implementation with this id in the family.
    UnknownImpl {
        /// Requested family.
        family: Family,
        /// Requested id.
        id: String,
    },
    /// The implementation exists but not on the requested face.
    MissingFace {
        /// Requested family.
        family: Family,
        /// Requested id.
        id: String,
        /// `"real"` or `"sim"`.
        face: &'static str,
    },
    /// Degenerate process count for Algorithm A's tree arena.
    Tree(TreeSizeError),
    /// Capacity outside the AAC family's supported range.
    Capacity(CapacityError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnknownImpl { family, id } => {
                write!(f, "no `{family}` implementation with id \"{id}\"")
            }
            BuildError::MissingFace { family, id, face } => {
                write!(f, "`{family}/{id}` has no {face} face")
            }
            BuildError::Tree(e) => write!(f, "{e}"),
            BuildError::Capacity(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<TreeSizeError> for BuildError {
    fn from(e: TreeSizeError) -> Self {
        BuildError::Tree(e)
    }
}

impl From<CapacityError> for BuildError {
    fn from(e: CapacityError) -> Self {
        BuildError::Capacity(e)
    }
}

/// Validates an AAC-family capacity without materializing the register
/// (mirrors `AacMaxRegister::try_new`'s check).
fn check_aac_capacity(capacity: u64) -> Result<(), CapacityError> {
    if (1..=MAX_CAPACITY).contains(&capacity) {
        Ok(())
    } else {
        Err(CapacityError {
            capacity,
            max_capacity: MAX_CAPACITY,
            estimated_bytes: AacShape::estimated_bytes(capacity),
        })
    }
}

type RealCtor = fn(&BuildParams) -> Result<RealObject, BuildError>;
type SimCtor = fn(&mut Memory, &BuildParams) -> Result<SimObject, BuildError>;

/// One registered implementation.
#[derive(Debug)]
pub struct ImplEntry {
    /// Family the implementation belongs to.
    pub family: Family,
    /// Stable schema id (`"tree"`, `"aac"`, …) used in scenario specs.
    pub id: &'static str,
    /// Human-readable name for tables (`"Algorithm A"`).
    pub display: &'static str,
    /// Capability metadata.
    pub caps: Capabilities,
    /// Rust type implementing the real-atomics trait, for the
    /// registry-completeness test (`None` when there is no real face).
    pub real_type: Option<&'static str>,
    /// Rust type implementing the simulator trait (`None` when there is
    /// no sim face).
    pub sim_type: Option<&'static str>,
    real: Option<RealCtor>,
    sim: Option<SimCtor>,
}

impl ImplEntry {
    /// Whether the implementation has a real-atomics face.
    pub fn has_real(&self) -> bool {
        self.real.is_some()
    }

    /// Whether the implementation has a simulator face.
    pub fn has_sim(&self) -> bool {
        self.sim.is_some()
    }

    /// Constructs the real-atomics face.
    pub fn build_real(&self, params: &BuildParams) -> Result<RealObject, BuildError> {
        match self.real {
            Some(ctor) => ctor(params),
            None => Err(BuildError::MissingFace {
                family: self.family,
                id: self.id.to_string(),
                face: "real",
            }),
        }
    }

    /// Constructs the simulator face, allocating its cells in `mem`.
    pub fn build_sim(
        &self,
        mem: &mut Memory,
        params: &BuildParams,
    ) -> Result<SimObject, BuildError> {
        match self.sim {
            Some(ctor) => ctor(mem, params),
            None => Err(BuildError::MissingFace {
                family: self.family,
                id: self.id.to_string(),
                face: "sim",
            }),
        }
    }
}

/// The full registry, in stable display order (drives soak / throughput
/// / equivalence iteration order).
pub fn registry() -> &'static [ImplEntry] {
    static REGISTRY: OnceLock<Vec<ImplEntry>> = OnceLock::new();
    REGISTRY.get_or_init(build_registry)
}

/// Looks up one implementation by family and id.
pub fn find(family: Family, id: &str) -> Result<&'static ImplEntry, BuildError> {
    registry()
        .iter()
        .find(|e| e.family == family && e.id == id)
        .ok_or_else(|| BuildError::UnknownImpl {
            family,
            id: id.to_string(),
        })
}

/// All implementations of one family, in registry order.
pub fn family_impls(family: Family) -> impl Iterator<Item = &'static ImplEntry> {
    registry().iter().filter(move |e| e.family == family)
}

fn build_registry() -> Vec<ImplEntry> {
    vec![
        // ---- max registers ----
        ImplEntry {
            family: Family::MaxReg,
            id: "tree",
            display: "Algorithm A",
            caps: Capabilities {
                progress: ProgressClass::WaitFree,
                bounded_capacity: false,
                max_n: Some(MAX_PROCESSES),
                root_fast_path: true,
                benched: true,
                counter_mode: None,
                accuracy: None,
            },
            real_type: Some("TreeMaxRegister"),
            sim_type: Some("SimTreeMaxRegister"),
            real: Some(|p| Ok(RealObject::MaxReg(Box::new(TreeMaxRegister::try_new(p.n)?)))),
            sim: Some(|mem, p| {
                check_tree_size(p.n)?;
                let reg = if p.root_fast_path {
                    SimTreeMaxRegister::with_root_fast_path(mem, p.n)
                } else {
                    SimTreeMaxRegister::new(mem, p.n)
                };
                Ok(SimObject::MaxReg(Arc::new(reg)))
            }),
        },
        ImplEntry {
            family: Family::MaxReg,
            id: "tree_elim",
            display: "Algorithm A + elimination",
            caps: Capabilities {
                progress: ProgressClass::WaitFree,
                bounded_capacity: false,
                max_n: Some(MAX_PROCESSES),
                // Elimination subsumes the § 4.5 root check: both faces
                // always probe the root first, then scan per level.
                root_fast_path: true,
                benched: true,
                counter_mode: None,
                accuracy: None,
            },
            real_type: Some("TreeMaxRegister"),
            sim_type: Some("SimTreeMaxRegister"),
            real: Some(|p| {
                check_tree_size(p.n)?;
                Ok(RealObject::MaxReg(Box::new(
                    TreeMaxRegister::with_elimination(p.n),
                )))
            }),
            sim: Some(|mem, p| {
                check_tree_size(p.n)?;
                Ok(SimObject::MaxReg(Arc::new(
                    SimTreeMaxRegister::with_elimination(mem, p.n),
                )))
            }),
        },
        ImplEntry {
            family: Family::MaxReg,
            id: "aac",
            display: "AAC",
            caps: Capabilities {
                progress: ProgressClass::WaitFree,
                bounded_capacity: true,
                max_n: None,
                root_fast_path: false,
                benched: true,
                counter_mode: None,
                accuracy: None,
            },
            real_type: Some("AacMaxRegister"),
            sim_type: Some("SimAacMaxRegister"),
            real: Some(|p| {
                Ok(RealObject::MaxReg(Box::new(AacMaxRegister::try_new(
                    p.capacity,
                )?)))
            }),
            sim: Some(|mem, p| {
                check_aac_capacity(p.capacity)?;
                Ok(SimObject::MaxReg(Arc::new(SimAacMaxRegister::new(
                    mem, p.n, p.capacity,
                ))))
            }),
        },
        ImplEntry {
            family: Family::MaxReg,
            id: "aac_unbalanced",
            display: "AAC unbalanced",
            caps: Capabilities {
                progress: ProgressClass::WaitFree,
                bounded_capacity: true,
                max_n: None,
                root_fast_path: false,
                benched: true,
                counter_mode: None,
                accuracy: None,
            },
            real_type: Some("AacMaxRegister"),
            sim_type: Some("SimAacMaxRegister"),
            real: Some(|p| {
                Ok(RealObject::MaxReg(Box::new(
                    AacMaxRegister::try_new_unbalanced(p.capacity)?,
                )))
            }),
            sim: Some(|mem, p| {
                check_aac_capacity(p.capacity)?;
                Ok(SimObject::MaxReg(Arc::new(
                    SimAacMaxRegister::new_unbalanced(mem, p.n, p.capacity),
                )))
            }),
        },
        ImplEntry {
            family: Family::MaxReg,
            id: "farray",
            display: "f-array",
            caps: Capabilities {
                progress: ProgressClass::WaitFree,
                bounded_capacity: false,
                max_n: None,
                root_fast_path: false,
                benched: true,
                counter_mode: None,
                accuracy: None,
            },
            real_type: Some("FArrayMaxRegister"),
            sim_type: Some("SimFArrayMaxRegister"),
            real: Some(|p| Ok(RealObject::MaxReg(Box::new(FArrayMaxRegister::new(p.n))))),
            sim: Some(|mem, p| {
                Ok(SimObject::MaxReg(Arc::new(SimFArrayMaxRegister::new(
                    mem, p.n,
                ))))
            }),
        },
        ImplEntry {
            family: Family::MaxReg,
            id: "cas_cell",
            display: "CAS cell",
            caps: Capabilities {
                progress: ProgressClass::LockFree,
                bounded_capacity: false,
                max_n: None,
                root_fast_path: false,
                benched: true,
                counter_mode: None,
                accuracy: None,
            },
            real_type: Some("CasRetryMaxRegister"),
            sim_type: Some("SimCasRetryMaxRegister"),
            real: Some(|_| Ok(RealObject::MaxReg(Box::new(CasRetryMaxRegister::new())))),
            sim: Some(|mem, p| {
                Ok(SimObject::MaxReg(Arc::new(SimCasRetryMaxRegister::new(
                    mem, p.n,
                ))))
            }),
        },
        ImplEntry {
            family: Family::MaxReg,
            id: "approx",
            display: "k-accurate CAS cell (HKM)",
            caps: Capabilities {
                progress: ProgressClass::LockFree,
                bounded_capacity: false,
                max_n: None,
                root_fast_path: false,
                benched: false,
                counter_mode: None,
                accuracy: Some(AccuracyClass::KMultiplicative),
            },
            real_type: Some("ApproxMaxRegister"),
            sim_type: Some("SimApproxMaxRegister"),
            real: Some(|p| {
                Ok(RealObject::MaxReg(Box::new(ApproxMaxRegister::new(
                    p.accuracy_k.max(1),
                ))))
            }),
            sim: Some(|mem, p| {
                Ok(SimObject::MaxReg(Arc::new(SimApproxMaxRegister::new(
                    mem,
                    p.n,
                    p.accuracy_k.max(1),
                ))))
            }),
        },
        ImplEntry {
            family: Family::MaxReg,
            id: "mutex",
            display: "mutex",
            caps: Capabilities {
                progress: ProgressClass::Blocking,
                bounded_capacity: false,
                max_n: None,
                root_fast_path: false,
                benched: true,
                counter_mode: None,
                accuracy: None,
            },
            real_type: Some("LockMaxRegister"),
            sim_type: None,
            real: Some(|_| Ok(RealObject::MaxReg(Box::new(LockMaxRegister::new())))),
            sim: None,
        },
        // ---- counters ----
        ImplEntry {
            family: Family::Counter,
            id: "farray",
            display: "f-array",
            caps: Capabilities {
                progress: ProgressClass::WaitFree,
                bounded_capacity: false,
                max_n: None,
                root_fast_path: false,
                benched: true,
                counter_mode: Some(CounterMode::Exact),
                accuracy: None,
            },
            real_type: Some("FArrayCounter"),
            sim_type: Some("SimFArrayCounter"),
            real: Some(|p| Ok(RealObject::Counter(Box::new(FArrayCounter::new(p.n))))),
            sim: Some(|mem, p| {
                Ok(SimObject::Counter(Arc::new(SimFArrayCounter::new(
                    mem, p.n,
                ))))
            }),
        },
        ImplEntry {
            family: Family::Counter,
            id: "combining",
            display: "flat combining",
            caps: Capabilities {
                // Waiters spin on their publication slot until a
                // combiner services it; a crashed combiner strands them.
                progress: ProgressClass::Blocking,
                bounded_capacity: false,
                max_n: None,
                root_fast_path: false,
                benched: true,
                counter_mode: Some(CounterMode::Combining),
                accuracy: None,
            },
            real_type: Some("CombiningCounter"),
            // The sim face is the wait-free batch model (announce array
            // + arity-N double-CAS install), NOT a lock simulation: the
            // explorer's step cap cannot drive blocking waiters, but the
            // batch boundaries — the combining-specific behaviour — are
            // exactly what it verifies.
            sim_type: Some("SimCombiningCounter"),
            real: Some(|p| Ok(RealObject::Counter(Box::new(CombiningCounter::new(p.n))))),
            sim: Some(|mem, p| {
                Ok(SimObject::Counter(Arc::new(SimCombiningCounter::new(
                    mem, p.n,
                ))))
            }),
        },
        ImplEntry {
            family: Family::Counter,
            id: "sharded",
            display: "sharded stripes",
            caps: Capabilities {
                progress: ProgressClass::WaitFree,
                bounded_capacity: false,
                max_n: None,
                root_fast_path: false,
                benched: true,
                counter_mode: Some(CounterMode::Sharded),
                accuracy: None,
            },
            real_type: Some("ShardedCounter"),
            sim_type: Some("SimShardedCounter"),
            real: Some(|p| Ok(RealObject::Counter(Box::new(ShardedCounter::new(p.n))))),
            sim: Some(|mem, p| {
                Ok(SimObject::Counter(Arc::new(SimShardedCounter::new(
                    mem, p.n,
                ))))
            }),
        },
        ImplEntry {
            family: Family::Counter,
            id: "approx",
            display: "k-accurate stripes (HKM)",
            caps: Capabilities {
                progress: ProgressClass::WaitFree,
                bounded_capacity: false,
                max_n: None,
                root_fast_path: false,
                benched: false,
                counter_mode: None,
                accuracy: Some(AccuracyClass::KMultiplicative),
            },
            real_type: Some("ApproxCounter"),
            sim_type: Some("SimApproxCounter"),
            real: Some(|p| {
                Ok(RealObject::Counter(Box::new(ApproxCounter::new(
                    p.n,
                    p.accuracy_k.max(1),
                ))))
            }),
            sim: Some(|mem, p| {
                Ok(SimObject::Counter(Arc::new(SimApproxCounter::new(
                    mem,
                    p.n,
                    p.accuracy_k.max(1),
                ))))
            }),
        },
        ImplEntry {
            family: Family::Counter,
            id: "aac",
            display: "AAC",
            caps: Capabilities {
                progress: ProgressClass::WaitFree,
                bounded_capacity: true,
                max_n: None,
                root_fast_path: false,
                benched: true,
                counter_mode: None,
                accuracy: None,
            },
            real_type: Some("AacCounter"),
            sim_type: Some("SimAacCounter"),
            real: Some(|p| {
                // The increment bound M maps to an AAC register of
                // capacity M + 1; both must be in range.
                check_aac_capacity(p.capacity)?;
                check_aac_capacity(p.capacity + 1)?;
                Ok(RealObject::Counter(Box::new(AacCounter::new(
                    p.n, p.capacity,
                ))))
            }),
            sim: Some(|mem, p| {
                check_aac_capacity(p.capacity)?;
                check_aac_capacity(p.capacity + 1)?;
                Ok(SimObject::Counter(Arc::new(SimAacCounter::new(
                    mem, p.n, p.capacity,
                ))))
            }),
        },
        ImplEntry {
            family: Family::Counter,
            id: "fetch_add",
            display: "fetch&add",
            caps: Capabilities {
                progress: ProgressClass::WaitFree,
                bounded_capacity: false,
                max_n: None,
                root_fast_path: false,
                benched: true,
                counter_mode: None,
                accuracy: None,
            },
            real_type: Some("FetchAddCounter"),
            sim_type: None,
            real: Some(|_| Ok(RealObject::Counter(Box::new(FetchAddCounter::new())))),
            sim: None,
        },
        ImplEntry {
            family: Family::Counter,
            id: "cas_loop",
            display: "CAS loop",
            caps: Capabilities {
                progress: ProgressClass::LockFree,
                bounded_capacity: false,
                max_n: None,
                root_fast_path: false,
                benched: false,
                counter_mode: None,
                accuracy: None,
            },
            real_type: None,
            sim_type: Some("SimCasLoopCounter"),
            real: None,
            sim: Some(|mem, p| {
                Ok(SimObject::Counter(Arc::new(SimCasLoopCounter::new(
                    mem, p.n,
                ))))
            }),
        },
        ImplEntry {
            family: Family::Counter,
            id: "snapshot",
            display: "snapshot",
            caps: Capabilities {
                progress: ProgressClass::ObstructionFree,
                bounded_capacity: false,
                max_n: None,
                root_fast_path: false,
                benched: false,
                counter_mode: None,
                accuracy: None,
            },
            real_type: None,
            sim_type: Some("SimSnapshotCounter"),
            real: None,
            sim: Some(|mem, p| {
                Ok(SimObject::Counter(Arc::new(SimSnapshotCounter::new(
                    mem, p.n,
                ))))
            }),
        },
        ImplEntry {
            family: Family::Counter,
            id: "from_snapshot",
            display: "from double-collect snapshot",
            caps: Capabilities {
                progress: ProgressClass::ObstructionFree,
                bounded_capacity: false,
                max_n: None,
                root_fast_path: false,
                benched: false,
                counter_mode: None,
                accuracy: None,
            },
            real_type: Some("CounterFromSnapshot"),
            sim_type: None,
            real: Some(|p| {
                Ok(RealObject::Counter(Box::new(CounterFromSnapshot::new(
                    DoubleCollectSnapshot::new(p.n),
                ))))
            }),
            sim: None,
        },
        // ---- snapshots ----
        ImplEntry {
            family: Family::Snapshot,
            id: "double_collect",
            display: "double-collect",
            caps: Capabilities {
                progress: ProgressClass::ObstructionFree,
                bounded_capacity: false,
                max_n: None,
                root_fast_path: false,
                benched: true,
                counter_mode: None,
                accuracy: None,
            },
            real_type: Some("DoubleCollectSnapshot"),
            sim_type: Some("SimDoubleCollectSnapshot"),
            real: Some(|p| {
                Ok(RealObject::Snapshot(Box::new(DoubleCollectSnapshot::new(
                    p.n,
                ))))
            }),
            sim: Some(|mem, p| {
                Ok(SimObject::Snapshot(Arc::new(
                    SimDoubleCollectSnapshot::new(mem, p.n),
                )))
            }),
        },
        ImplEntry {
            family: Family::Snapshot,
            id: "path_copy",
            display: "path-copy",
            caps: Capabilities {
                progress: ProgressClass::LockFree,
                bounded_capacity: true,
                max_n: None,
                root_fast_path: false,
                benched: true,
                counter_mode: None,
                accuracy: None,
            },
            real_type: Some("PathCopySnapshot"),
            sim_type: None,
            real: Some(|p| {
                Ok(RealObject::Snapshot(Box::new(PathCopySnapshot::new(
                    p.n, p.capacity,
                ))))
            }),
            sim: None,
        },
        ImplEntry {
            family: Family::Snapshot,
            id: "afek",
            display: "Afek et al.",
            caps: Capabilities {
                progress: ProgressClass::WaitFree,
                bounded_capacity: false,
                max_n: None,
                root_fast_path: false,
                benched: true,
                counter_mode: None,
                accuracy: None,
            },
            real_type: Some("AfekSnapshot"),
            sim_type: None,
            real: Some(|p| Ok(RealObject::Snapshot(Box::new(AfekSnapshot::new(p.n))))),
            sim: None,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruo_sim::ProcessId;

    fn params(n: usize, capacity: u64) -> BuildParams {
        BuildParams {
            n,
            capacity,
            root_fast_path: false,
            accuracy_k: 1,
        }
    }

    #[test]
    fn ids_are_unique_within_a_family() {
        let entries = registry();
        for (i, a) in entries.iter().enumerate() {
            for b in &entries[i + 1..] {
                assert!(
                    !(a.family == b.family && a.id == b.id),
                    "duplicate id {}/{}",
                    a.family,
                    a.id
                );
            }
        }
    }

    #[test]
    fn every_entry_has_at_least_one_face() {
        for e in registry() {
            assert!(
                e.has_real() || e.has_sim(),
                "{}/{} has no face",
                e.family,
                e.id
            );
            assert_eq!(e.has_real(), e.real_type.is_some(), "{}/{}", e.family, e.id);
            assert_eq!(e.has_sim(), e.sim_type.is_some(), "{}/{}", e.family, e.id);
        }
    }

    #[test]
    fn every_real_face_builds_and_answers() {
        for e in registry() {
            if !e.has_real() {
                continue;
            }
            let obj = e
                .build_real(&params(3, 64))
                .unwrap_or_else(|err| panic!("{}/{}: {err}", e.family, e.id));
            match obj {
                RealObject::MaxReg(r) => {
                    r.write_max(ProcessId(0), 5);
                    assert_eq!(r.read_max(), 5, "{}/{}", e.family, e.id);
                }
                RealObject::Counter(c) => {
                    c.increment(ProcessId(0));
                    assert_eq!(c.read(), 1, "{}/{}", e.family, e.id);
                }
                RealObject::Snapshot(s) => {
                    s.update(ProcessId(1), 7);
                    assert_eq!(s.scan(), vec![0, 7, 0], "{}/{}", e.family, e.id);
                }
            }
        }
    }

    #[test]
    fn every_sim_face_builds_and_answers() {
        use ruo_sim::run_solo;
        for e in registry() {
            if !e.has_sim() {
                continue;
            }
            let mut mem = Memory::new();
            let obj = e
                .build_sim(&mut mem, &params(3, 64))
                .unwrap_or_else(|err| panic!("{}/{}: {err}", e.family, e.id));
            match obj {
                SimObject::MaxReg(r) => {
                    run_solo(&mut mem, ProcessId(0), r.write_max(ProcessId(0), 5));
                    let (v, _) = run_solo(&mut mem, ProcessId(1), r.read_max(ProcessId(1)));
                    assert_eq!(v, 5, "{}/{}", e.family, e.id);
                }
                SimObject::Counter(c) => {
                    run_solo(&mut mem, ProcessId(0), c.increment(ProcessId(0)));
                    let (v, _) = run_solo(&mut mem, ProcessId(1), c.read(ProcessId(1)));
                    assert_eq!(v, 1, "{}/{}", e.family, e.id);
                }
                SimObject::Snapshot(s) => {
                    run_solo(&mut mem, ProcessId(1), s.update(ProcessId(1), 7));
                    let (token, _) = run_solo(&mut mem, ProcessId(0), s.scan(ProcessId(0)));
                    assert_eq!(
                        s.take_scan_result(token),
                        vec![0, 7, 0],
                        "{}/{}",
                        e.family,
                        e.id
                    );
                }
            }
        }
    }

    #[test]
    fn approx_faces_honor_the_accuracy_factor() {
        // The two accuracy-capable entries must thread
        // `BuildParams::accuracy_k` into the object: at a coarse k a
        // run of updates may read back below the true value, but never
        // outside the k-envelope and never above the truth.
        let k = 8u64;
        let p = BuildParams {
            accuracy_k: k,
            ..params(2, 1 << 16)
        };
        let counter = find(Family::Counter, "approx").unwrap();
        assert_eq!(counter.caps.accuracy, Some(AccuracyClass::KMultiplicative));
        let RealObject::Counter(c) = counter.build_real(&p).unwrap() else {
            panic!("counter face");
        };
        for _ in 0..100 {
            c.increment(ProcessId(0));
        }
        let v = c.read();
        assert!(v < 100, "k=8 must not publish every increment");
        assert!(v * k >= 100, "drifted past k: {v}");

        let maxreg = find(Family::MaxReg, "approx").unwrap();
        assert_eq!(maxreg.caps.accuracy, Some(AccuracyClass::KMultiplicative));
        let RealObject::MaxReg(r) = maxreg.build_real(&p).unwrap() else {
            panic!("maxreg face");
        };
        r.write_max(ProcessId(0), 1000);
        let v = r.read_max();
        assert!(v <= 1000 && v * k >= 1000, "outside the k-envelope: {v}");
    }

    #[test]
    fn degenerate_builds_surface_structured_errors() {
        let tree = find(Family::MaxReg, "tree").unwrap();
        assert!(matches!(
            tree.build_real(&params(0, 0)),
            Err(BuildError::Tree(_))
        ));
        let aac = find(Family::MaxReg, "aac").unwrap();
        assert!(matches!(
            aac.build_real(&params(2, 0)),
            Err(BuildError::Capacity(_))
        ));
        let mut mem = Memory::new();
        assert!(matches!(
            aac.build_sim(&mut mem, &params(2, MAX_CAPACITY + 1)),
            Err(BuildError::Capacity(_))
        ));
        assert!(matches!(
            find(Family::MaxReg, "nope"),
            Err(BuildError::UnknownImpl { .. })
        ));
        let mutex = find(Family::MaxReg, "mutex").unwrap();
        assert!(matches!(
            mutex.build_sim(&mut mem, &params(2, 0)),
            Err(BuildError::MissingFace { face: "sim", .. })
        ));
    }
}
