//! Declarative scenario runner.
//!
//! ```text
//! scenario list                               # registry contents
//! scenario run [--quick] [--json] <files...>  # run specs, exit 1 on failure
//! ```
//!
//! `run` parses each spec, verifies the JSON codec round-trips to an
//! identical spec (exit 2 on codec or parse errors), dispatches to the
//! engine the spec names, and prints one verdict line per scenario.
//! Every run goes through the wall-clock watchdog: a spec's own
//! `watchdog_secs` wins, `--watchdog <secs>` supplies a default for
//! specs that don't set one, and a fired watchdog is an ordinary
//! failing report (nonzero exit), not a hung process.
//! With `--json` the verdict lines move to stderr and stdout carries a
//! single `ruo-scenario-run-v1` document embedding every full
//! [`ScenarioReport`] (counters, metrics, notes, and the `steps` block),
//! so downstream tooling parses one object instead of scraping lines.

use std::process::exit;

use ruo_scenario::{registry, run_with_watchdog, Family, Json, ScenarioReport, ScenarioSpec};

/// Schema tag of the combined `--json` document.
const RUN_SCHEMA: &str = "ruo-scenario-run-v1";

fn usage() -> ! {
    eprintln!("usage: scenario list");
    eprintln!("       scenario run [--quick] [--json] [--watchdog <secs>] <spec.json>...");
    exit(2);
}

fn list() {
    println!(
        "{:<10} {:<16} {:<28} {:<6} {:<6} {:<16} accuracy",
        "family", "impl", "display", "real", "sim", "progress"
    );
    for family in Family::all() {
        for entry in registry().iter().filter(|e| e.family == family) {
            println!(
                "{:<10} {:<16} {:<28} {:<6} {:<6} {:<16} {}",
                family.name(),
                entry.id,
                entry.display,
                if entry.has_real() { "yes" } else { "-" },
                if entry.has_sim() { "yes" } else { "-" },
                format!("{:?}", entry.caps.progress),
                entry.caps.accuracy.map_or("exact", |a| a.name()),
            );
        }
    }
}

fn load_spec(path: &str) -> Result<ScenarioSpec, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let spec = ScenarioSpec::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    // The codec round trip must be identity: serialize the parsed spec
    // and parse it back.
    let reparsed = ScenarioSpec::parse(&spec.to_json())
        .map_err(|e| format!("{path}: round-trip re-parse failed: {e}"))?;
    if reparsed != spec {
        return Err(format!(
            "{path}: spec -> JSON -> spec round trip is not identity"
        ));
    }
    Ok(spec)
}

/// The combined `--json` document: every spec file paired with its full
/// report, re-parsed through the crate codec so the output is guaranteed
/// well-formed as one object.
fn combined_json(quick: bool, results: &[(String, ScenarioReport)]) -> String {
    let failures = results.iter().filter(|(_, r)| !r.ok).count();
    let entries = results
        .iter()
        .map(|(path, report)| {
            let doc = Json::parse(&report.to_json()).expect("report JSON parses");
            Json::Obj(vec![
                ("file".into(), Json::Str(path.clone())),
                ("report".into(), doc),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("schema".into(), Json::Str(RUN_SCHEMA.into())),
        ("quick".into(), Json::Bool(quick)),
        ("failures".into(), Json::Num(failures as u64)),
        ("results".into(), Json::Arr(entries)),
    ])
    .pretty()
}

fn run_files(args: &[String]) -> i32 {
    let mut quick = false;
    let mut json = false;
    let mut default_watchdog: Option<u64> = None;
    let mut files = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--json" => json = true,
            "--watchdog" => match it.next().and_then(|s| s.parse().ok()) {
                Some(secs) => default_watchdog = Some(secs),
                None => usage(),
            },
            _ if a.starts_with("--") => usage(),
            _ => files.push(a.clone()),
        }
    }
    if files.is_empty() {
        usage();
    }
    let mut failures = 0;
    let mut results: Vec<(String, ScenarioReport)> = Vec::new();
    for path in &files {
        let mut spec = match load_spec(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {e}");
                exit(2);
            }
        };
        if spec.watchdog_secs.is_none() {
            spec.watchdog_secs = default_watchdog;
        }
        match run_with_watchdog(&spec, quick) {
            Ok(report) => {
                let verdict = if report.ok { "ok" } else { "FAIL" };
                let counters: Vec<String> = report
                    .counters
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect();
                let duration = report
                    .metric("duration_ms")
                    .map(|ms| format!(" ({ms:.0} ms)"))
                    .unwrap_or_default();
                let mut lines = vec![format!(
                    "{verdict:<5} {:<32} [{}/{} {}] {}{duration}",
                    spec.name,
                    spec.family,
                    spec.impl_id,
                    spec.engine.name(),
                    counters.join(" ")
                )];
                for note in &report.notes {
                    lines.push(format!("      note: {note}"));
                }
                for line in lines {
                    // In --json mode stdout is reserved for the document.
                    if json {
                        eprintln!("{line}");
                    } else {
                        println!("{line}");
                    }
                }
                if !report.ok {
                    failures += 1;
                }
                results.push((path.clone(), report));
            }
            Err(e) => {
                eprintln!("error: {path}: {e}");
                exit(2);
            }
        }
    }
    if json {
        print!("{}", combined_json(quick, &results));
    }
    if failures > 0 {
        eprintln!("\n{failures} scenario(s) failed");
        1
    } else {
        0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => list(),
        Some("run") => exit(run_files(&args[1..])),
        _ => usage(),
    }
}
