//! Declarative scenario runner.
//!
//! ```text
//! scenario list                               # registry contents
//! scenario run [--quick] [--json] <files...>  # run specs, exit 1 on failure
//! ```
//!
//! `run` parses each spec, verifies the JSON codec round-trips to an
//! identical spec (exit 2 on codec or parse errors), dispatches to the
//! engine the spec names, and prints one verdict line per scenario
//! (plus the full report with `--json`).

use std::process::exit;

use ruo_scenario::{registry, run, Family, ScenarioSpec};

fn usage() -> ! {
    eprintln!("usage: scenario list");
    eprintln!("       scenario run [--quick] [--json] <spec.json>...");
    exit(2);
}

fn list() {
    println!(
        "{:<10} {:<16} {:<28} {:<6} {:<6} progress",
        "family", "impl", "display", "real", "sim"
    );
    for family in Family::all() {
        for entry in registry().iter().filter(|e| e.family == family) {
            println!(
                "{:<10} {:<16} {:<28} {:<6} {:<6} {:?}",
                family.name(),
                entry.id,
                entry.display,
                if entry.has_real() { "yes" } else { "-" },
                if entry.has_sim() { "yes" } else { "-" },
                entry.caps.progress,
            );
        }
    }
}

fn load_spec(path: &str) -> Result<ScenarioSpec, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let spec = ScenarioSpec::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    // The codec round trip must be identity: serialize the parsed spec
    // and parse it back.
    let reparsed = ScenarioSpec::parse(&spec.to_json())
        .map_err(|e| format!("{path}: round-trip re-parse failed: {e}"))?;
    if reparsed != spec {
        return Err(format!(
            "{path}: spec -> JSON -> spec round trip is not identity"
        ));
    }
    Ok(spec)
}

fn run_files(args: &[String]) -> i32 {
    let mut quick = false;
    let mut json = false;
    let mut files = Vec::new();
    for a in args {
        match a.as_str() {
            "--quick" => quick = true,
            "--json" => json = true,
            _ if a.starts_with("--") => usage(),
            _ => files.push(a.clone()),
        }
    }
    if files.is_empty() {
        usage();
    }
    let mut failures = 0;
    for path in &files {
        let spec = match load_spec(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {e}");
                exit(2);
            }
        };
        match run(&spec, quick) {
            Ok(report) => {
                let verdict = if report.ok { "ok" } else { "FAIL" };
                let counters: Vec<String> = report
                    .counters
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect();
                println!(
                    "{verdict:<5} {:<32} [{}/{} {}] {}",
                    spec.name,
                    spec.family,
                    spec.impl_id,
                    spec.engine.name(),
                    counters.join(" ")
                );
                for note in &report.notes {
                    println!("      note: {note}");
                }
                if json {
                    print!("{}", report.to_json());
                }
                if !report.ok {
                    failures += 1;
                }
            }
            Err(e) => {
                eprintln!("error: {path}: {e}");
                exit(2);
            }
        }
    }
    if failures > 0 {
        eprintln!("\n{failures} scenario(s) failed");
        1
    } else {
        0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => list(),
        Some("run") => exit(run_files(&args[1..])),
        _ => usage(),
    }
}
