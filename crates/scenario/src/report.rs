//! The unified scenario report.
//!
//! All three engines emit the same `"ruo-scenario-report-v1"` shape: an
//! identity block echoing the spec, a verdict, ordered integer
//! `counters` (seeds run, schedules explored, violations, …), ordered
//! float `metrics` (median batch nanoseconds, ops/s, …) and free-form
//! `notes` (first violation detail, certification summary). Harnesses
//! layer their own presentation (tables, experiment JSON) on top of the
//! counters instead of re-deriving them.

use ruo_metrics::{KindStats, PrimCounts, SeriesSampler, StepStats};

use crate::json::Json;
use crate::registry::Family;
use crate::spec::{EngineKind, ScenarioSpec, SpecError};

/// Schema identifier emitted in every report.
pub const REPORT_SCHEMA: &str = "ruo-scenario-report-v1";

/// Sampled telemetry curves, embedded in the report when the spec's
/// `telemetry` section is present.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TelemetryBlock {
    /// Samples ever taken, including ones the ring evicted.
    pub samples: u64,
    /// `(scalar name, [(tick, value)…])` in ascending name order — the
    /// shape [`SeriesSampler::curves`] produces.
    pub curves: Vec<(String, Vec<(u64, u64)>)>,
}

impl TelemetryBlock {
    /// Captures a sampler's current state.
    pub fn from_sampler(sampler: &SeriesSampler) -> Self {
        TelemetryBlock {
            samples: sampler.taken(),
            curves: sampler.curves(),
        }
    }
}

/// What happened when an engine ran a scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioReport {
    /// Scenario name (from the spec).
    pub scenario: String,
    /// Object family (from the spec).
    pub family: Family,
    /// Implementation id (from the spec).
    pub impl_id: String,
    /// Engine that produced this report.
    pub engine: EngineKind,
    /// Whether the run was scaled down by `--quick`.
    pub quick: bool,
    /// The verdict: no checker violations, no certification failures,
    /// no truncated searches.
    pub ok: bool,
    /// The checker that actually decided this run's histories (the
    /// spec's `auto` resolved to a concrete checker) — `"fast"`,
    /// `"interval"` or `"exact"`. `None` for engines that verify
    /// nothing (the real engine certifies progress, not histories).
    pub checker: Option<String>,
    /// Ordered integer counters.
    pub counters: Vec<(String, u64)>,
    /// Ordered float metrics.
    pub metrics: Vec<(String, f64)>,
    /// Step statistics — present when the spec's `trace` section asked
    /// for them; the same shape from all three engines.
    pub steps: Option<StepStats>,
    /// Sampled telemetry curves — present when the spec's `telemetry`
    /// section asked for them (sim and real engines).
    pub telemetry: Option<TelemetryBlock>,
    /// Free-form notes (violation details, certification summaries).
    pub notes: Vec<String>,
}

impl ScenarioReport {
    /// An empty `ok` report carrying the spec's identity.
    pub fn new(spec: &ScenarioSpec, quick: bool) -> Self {
        ScenarioReport {
            scenario: spec.name.clone(),
            family: spec.family,
            impl_id: spec.impl_id.clone(),
            engine: spec.engine,
            quick,
            ok: true,
            checker: None,
            counters: Vec::new(),
            metrics: Vec::new(),
            steps: None,
            telemetry: None,
            notes: Vec::new(),
        }
    }

    /// Appends (or overwrites) an integer counter.
    pub fn set(&mut self, name: &str, value: u64) {
        if let Some(slot) = self.counters.iter_mut().find(|(k, _)| k == name) {
            slot.1 = value;
        } else {
            self.counters.push((name.to_string(), value));
        }
    }

    /// Appends (or overwrites) a float metric.
    pub fn set_metric(&mut self, name: &str, value: f64) {
        if let Some(slot) = self.metrics.iter_mut().find(|(k, _)| k == name) {
            slot.1 = value;
        } else {
            self.metrics.push((name.to_string(), value));
        }
    }

    /// Appends a note.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Reads a counter back.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// Reads a metric back.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// Serializes to the `"ruo-scenario-report-v1"` JSON document.
    pub fn to_json(&self) -> String {
        let mut o: Vec<(String, Json)> = vec![
            ("schema".into(), Json::Str(REPORT_SCHEMA.into())),
            ("scenario".into(), Json::Str(self.scenario.clone())),
            ("family".into(), Json::Str(self.family.name().into())),
            ("impl".into(), Json::Str(self.impl_id.clone())),
            ("engine".into(), Json::Str(self.engine.name().into())),
            ("quick".into(), Json::Bool(self.quick)),
            ("ok".into(), Json::Bool(self.ok)),
        ];
        if let Some(c) = &self.checker {
            o.push(("checker".into(), Json::Str(c.clone())));
        }
        o.extend([
            (
                "counters".into(),
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v)))
                        .collect(),
                ),
            ),
            (
                "metrics".into(),
                Json::Obj(
                    self.metrics
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Float(*v)))
                        .collect(),
                ),
            ),
        ]);
        if let Some(steps) = &self.steps {
            o.push(("steps".into(), steps_to_json(steps)));
        }
        if let Some(t) = &self.telemetry {
            o.push(("telemetry".into(), telemetry_to_json(t)));
        }
        o.push((
            "notes".into(),
            Json::Arr(self.notes.iter().map(|s| Json::Str(s.clone())).collect()),
        ));
        Json::Obj(o).pretty()
    }

    /// Parses a `"ruo-scenario-report-v1"` document back into a report
    /// (exact round trip with [`to_json`](Self::to_json) for the values
    /// the engines emit: finite, non-negative metrics).
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        let doc = Json::parse(text).map_err(|e| SpecError(e.to_string()))?;
        match doc.get("schema").and_then(Json::as_str) {
            Some(REPORT_SCHEMA) => {}
            Some(other) => return rerr(format!("unsupported report schema \"{other}\"")),
            None => return rerr("missing \"schema\""),
        }
        let family = match doc
            .get("family")
            .and_then(Json::as_str)
            .and_then(Family::parse)
        {
            Some(f) => f,
            None => return rerr("missing or invalid \"family\""),
        };
        let engine = match doc
            .get("engine")
            .and_then(Json::as_str)
            .and_then(EngineKind::parse)
        {
            Some(e) => e,
            None => return rerr("missing or invalid \"engine\""),
        };
        let req_str = |key: &str| -> Result<String, SpecError> {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| SpecError(format!("missing or non-string \"{key}\"")))
        };
        let req_bool = |key: &str| -> Result<bool, SpecError> {
            doc.get(key)
                .and_then(Json::as_bool)
                .ok_or_else(|| SpecError(format!("missing or non-bool \"{key}\"")))
        };
        let mut counters = Vec::new();
        for (k, v) in doc
            .get("counters")
            .and_then(Json::as_obj)
            .ok_or_else(|| SpecError("missing \"counters\" object".into()))?
        {
            let n = v
                .as_u64()
                .ok_or_else(|| SpecError(format!("counter \"{k}\" must be an integer")))?;
            counters.push((k.clone(), n));
        }
        let mut metrics = Vec::new();
        for (k, v) in doc
            .get("metrics")
            .and_then(Json::as_obj)
            .ok_or_else(|| SpecError("missing \"metrics\" object".into()))?
        {
            let x = v
                .as_f64()
                .ok_or_else(|| SpecError(format!("metric \"{k}\" must be a number")))?;
            metrics.push((k.clone(), x));
        }
        let steps = match doc.get("steps") {
            None => None,
            Some(v) => Some(steps_from_json(v)?),
        };
        let telemetry = match doc.get("telemetry") {
            None => None,
            Some(v) => Some(telemetry_from_json(v)?),
        };
        let mut notes = Vec::new();
        for v in doc
            .get("notes")
            .and_then(Json::as_arr)
            .ok_or_else(|| SpecError("missing \"notes\" array".into()))?
        {
            notes.push(
                v.as_str()
                    .ok_or_else(|| SpecError("notes must be strings".into()))?
                    .to_string(),
            );
        }
        Ok(ScenarioReport {
            scenario: req_str("scenario")?,
            family,
            impl_id: req_str("impl")?,
            engine,
            quick: req_bool("quick")?,
            ok: req_bool("ok")?,
            checker: doc
                .get("checker")
                .and_then(Json::as_str)
                .map(str::to_string),
            counters,
            metrics,
            steps,
            telemetry,
            notes,
        })
    }
}

fn rerr<T>(msg: impl Into<String>) -> Result<T, SpecError> {
    Err(SpecError(msg.into()))
}

/// Serializes a [`StepStats`] as the report's `steps` block:
/// `{"per_op": {<kind>: {"ops","total","max","min"}…},
///   "prims": {"reads","writes","cas_ok","cas_fail"}}`.
fn steps_to_json(s: &StepStats) -> Json {
    Json::Obj(vec![
        (
            "per_op".into(),
            Json::Obj(
                s.per_op()
                    .iter()
                    .map(|(kind, k)| {
                        (
                            kind.clone(),
                            Json::Obj(vec![
                                ("ops".into(), Json::Num(k.ops)),
                                ("total".into(), Json::Num(k.total)),
                                ("max".into(), Json::Num(k.max)),
                                ("min".into(), Json::Num(k.min)),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
        (
            "prims".into(),
            Json::Obj(vec![
                ("reads".into(), Json::Num(s.prims.reads)),
                ("writes".into(), Json::Num(s.prims.writes)),
                ("cas_ok".into(), Json::Num(s.prims.cas_ok)),
                ("cas_fail".into(), Json::Num(s.prims.cas_fail)),
            ]),
        ),
    ])
}

/// Serializes a [`TelemetryBlock`] as the report's `telemetry` block:
/// `{"samples": N, "curves": {<name>: [[tick, value]…]…}}`.
fn telemetry_to_json(t: &TelemetryBlock) -> Json {
    Json::Obj(vec![
        ("samples".into(), Json::Num(t.samples)),
        (
            "curves".into(),
            Json::Obj(
                t.curves
                    .iter()
                    .map(|(name, points)| {
                        (
                            name.clone(),
                            Json::Arr(
                                points
                                    .iter()
                                    .map(|&(tick, v)| {
                                        Json::Arr(vec![Json::Num(tick), Json::Num(v)])
                                    })
                                    .collect(),
                            ),
                        )
                    })
                    .collect(),
            ),
        ),
    ])
}

fn telemetry_from_json(v: &Json) -> Result<TelemetryBlock, SpecError> {
    let samples = v
        .get("samples")
        .and_then(Json::as_u64)
        .ok_or_else(|| SpecError("missing \"telemetry.samples\"".into()))?;
    let mut curves = Vec::new();
    for (name, arr) in v
        .get("curves")
        .and_then(Json::as_obj)
        .ok_or_else(|| SpecError("missing \"telemetry.curves\" object".into()))?
    {
        let mut points = Vec::new();
        for p in arr
            .as_arr()
            .ok_or_else(|| SpecError(format!("curve \"{name}\" must be an array")))?
        {
            let pair = p.as_arr().filter(|a| a.len() == 2).ok_or_else(|| {
                SpecError(format!("curve \"{name}\" points must be [tick, value]"))
            })?;
            let tick = pair[0]
                .as_u64()
                .ok_or_else(|| SpecError(format!("curve \"{name}\" tick must be an integer")))?;
            let value = pair[1]
                .as_u64()
                .ok_or_else(|| SpecError(format!("curve \"{name}\" value must be an integer")))?;
            points.push((tick, value));
        }
        curves.push((name.clone(), points));
    }
    Ok(TelemetryBlock { samples, curves })
}

fn steps_from_json(v: &Json) -> Result<StepStats, SpecError> {
    let num = |obj: &Json, key: &str| -> Result<u64, SpecError> {
        obj.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| SpecError(format!("steps field \"{key}\" must be an integer")))
    };
    let mut stats = StepStats::new();
    for (kind, k) in v
        .get("per_op")
        .and_then(Json::as_obj)
        .ok_or_else(|| SpecError("missing \"steps.per_op\" object".into()))?
    {
        stats.insert_kind(
            kind,
            KindStats {
                ops: num(k, "ops")?,
                total: num(k, "total")?,
                max: num(k, "max")?,
                min: num(k, "min")?,
            },
        );
    }
    let p = v
        .get("prims")
        .ok_or_else(|| SpecError("missing \"steps.prims\" object".into()))?;
    stats.record_prims(&PrimCounts {
        reads: num(p, "reads")?,
        writes: num(p, "writes")?,
        cas_ok: num(p, "cas_ok")?,
        cas_fail: num(p, "cas_fail")?,
    });
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_serialize_and_read_back() {
        let spec = ScenarioSpec::new("w6", Family::Counter, "farray", EngineKind::Sim, 4);
        let mut r = ScenarioReport::new(&spec, true);
        r.set("seeds", 100);
        r.set("violations", 0);
        r.set("seeds", 101); // overwrite
        r.set_metric("median_ns", 123.5);
        r.note("all clear");
        assert_eq!(r.counter("seeds"), Some(101));
        assert_eq!(r.metric("median_ns"), Some(123.5));
        let doc = Json::parse(&r.to_json()).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(REPORT_SCHEMA)
        );
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("seeds"))
                .and_then(Json::as_u64),
            Some(101)
        );
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn reports_round_trip_including_steps() {
        let spec = ScenarioSpec::new("w7", Family::MaxReg, "tree", EngineKind::Sim, 4);
        let mut r = ScenarioReport::new(&spec, false);
        r.ok = false;
        r.checker = Some("interval".into());
        r.set("seeds", 100);
        r.set("violations", 1);
        r.set_metric("seconds", 0.25);
        r.set_metric("ns_per_op", 117.0);
        r.note("violation at seed 3");
        let mut steps = StepStats::new();
        steps.record_op("write_max", 26);
        steps.record_op("write_max", 10);
        steps.record_op("read_max", 1);
        steps.record_prims(&PrimCounts {
            reads: 20,
            writes: 10,
            cas_ok: 6,
            cas_fail: 1,
        });
        r.steps = Some(steps);
        let parsed = ScenarioReport::parse(&r.to_json()).expect("report parses");
        assert_eq!(parsed, r);
        // And a steps-free report round-trips to steps: None.
        let bare = ScenarioReport::new(&spec, true);
        let parsed = ScenarioReport::parse(&bare.to_json()).unwrap();
        assert_eq!(parsed, bare);
        assert!(parsed.steps.is_none());
    }

    #[test]
    fn reports_round_trip_including_telemetry() {
        let spec = ScenarioSpec::new("w12", Family::Counter, "farray", EngineKind::Sim, 4);
        let mut r = ScenarioReport::new(&spec, false);
        r.set("seeds", 8);
        r.set_metric("duration_ms", 12.75);
        r.telemetry = Some(TelemetryBlock {
            samples: 10,
            curves: vec![
                ("served".into(), vec![(0, 1), (1, 3), (2, 9)]),
                ("shed".into(), vec![(0, 0), (1, 0), (2, 2)]),
            ],
        });
        let parsed = ScenarioReport::parse(&r.to_json()).expect("report parses");
        assert_eq!(parsed, r);
        // Empty curves survive too (capacity 1, nothing recorded).
        let mut empty = ScenarioReport::new(&spec, true);
        empty.telemetry = Some(TelemetryBlock {
            samples: 0,
            curves: Vec::new(),
        });
        assert_eq!(ScenarioReport::parse(&empty.to_json()).unwrap(), empty);
    }

    #[test]
    fn telemetry_block_captures_a_sampler() {
        use ruo_metrics::{MetricsRegistry, Watermark};
        use std::sync::Arc;

        let w = Arc::new(Watermark::new(2));
        let mut reg = MetricsRegistry::new();
        w.register_into(&mut reg, "peak", "units", "test watermark");
        let mut sampler = SeriesSampler::new(Arc::new(reg), 4);
        w.record(ruo_sim::ProcessId(0), 5);
        sampler.sample(0);
        w.record(ruo_sim::ProcessId(1), 9);
        sampler.sample(1);
        let block = TelemetryBlock::from_sampler(&sampler);
        assert_eq!(block.samples, 2);
        assert_eq!(block.curves, vec![("peak".into(), vec![(0, 5), (1, 9)])]);
    }
}
