//! The unified scenario report.
//!
//! All three engines emit the same `"ruo-scenario-report-v1"` shape: an
//! identity block echoing the spec, a verdict, ordered integer
//! `counters` (seeds run, schedules explored, violations, …), ordered
//! float `metrics` (median batch nanoseconds, ops/s, …) and free-form
//! `notes` (first violation detail, certification summary). Harnesses
//! layer their own presentation (tables, experiment JSON) on top of the
//! counters instead of re-deriving them.

use crate::json::Json;
use crate::registry::Family;
use crate::spec::{EngineKind, ScenarioSpec};

/// Schema identifier emitted in every report.
pub const REPORT_SCHEMA: &str = "ruo-scenario-report-v1";

/// What happened when an engine ran a scenario.
#[derive(Clone, Debug)]
pub struct ScenarioReport {
    /// Scenario name (from the spec).
    pub scenario: String,
    /// Object family (from the spec).
    pub family: Family,
    /// Implementation id (from the spec).
    pub impl_id: String,
    /// Engine that produced this report.
    pub engine: EngineKind,
    /// Whether the run was scaled down by `--quick`.
    pub quick: bool,
    /// The verdict: no checker violations, no certification failures,
    /// no truncated searches.
    pub ok: bool,
    /// Ordered integer counters.
    pub counters: Vec<(String, u64)>,
    /// Ordered float metrics.
    pub metrics: Vec<(String, f64)>,
    /// Free-form notes (violation details, certification summaries).
    pub notes: Vec<String>,
}

impl ScenarioReport {
    /// An empty `ok` report carrying the spec's identity.
    pub fn new(spec: &ScenarioSpec, quick: bool) -> Self {
        ScenarioReport {
            scenario: spec.name.clone(),
            family: spec.family,
            impl_id: spec.impl_id.clone(),
            engine: spec.engine,
            quick,
            ok: true,
            counters: Vec::new(),
            metrics: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends (or overwrites) an integer counter.
    pub fn set(&mut self, name: &str, value: u64) {
        if let Some(slot) = self.counters.iter_mut().find(|(k, _)| k == name) {
            slot.1 = value;
        } else {
            self.counters.push((name.to_string(), value));
        }
    }

    /// Appends (or overwrites) a float metric.
    pub fn set_metric(&mut self, name: &str, value: f64) {
        if let Some(slot) = self.metrics.iter_mut().find(|(k, _)| k == name) {
            slot.1 = value;
        } else {
            self.metrics.push((name.to_string(), value));
        }
    }

    /// Appends a note.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Reads a counter back.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// Reads a metric back.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// Serializes to the `"ruo-scenario-report-v1"` JSON document.
    pub fn to_json(&self) -> String {
        let o: Vec<(String, Json)> = vec![
            ("schema".into(), Json::Str(REPORT_SCHEMA.into())),
            ("scenario".into(), Json::Str(self.scenario.clone())),
            ("family".into(), Json::Str(self.family.name().into())),
            ("impl".into(), Json::Str(self.impl_id.clone())),
            ("engine".into(), Json::Str(self.engine.name().into())),
            ("quick".into(), Json::Bool(self.quick)),
            ("ok".into(), Json::Bool(self.ok)),
            (
                "counters".into(),
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v)))
                        .collect(),
                ),
            ),
            (
                "metrics".into(),
                Json::Obj(
                    self.metrics
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Float(*v)))
                        .collect(),
                ),
            ),
            (
                "notes".into(),
                Json::Arr(self.notes.iter().map(|s| Json::Str(s.clone())).collect()),
            ),
        ];
        Json::Obj(o).pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_serialize_and_read_back() {
        let spec = ScenarioSpec::new("w6", Family::Counter, "farray", EngineKind::Sim, 4);
        let mut r = ScenarioReport::new(&spec, true);
        r.set("seeds", 100);
        r.set("violations", 0);
        r.set("seeds", 101); // overwrite
        r.set_metric("median_ns", 123.5);
        r.note("all clear");
        assert_eq!(r.counter("seeds"), Some(101));
        assert_eq!(r.metric("median_ns"), Some(123.5));
        let doc = Json::parse(&r.to_json()).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(REPORT_SCHEMA)
        );
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("seeds"))
                .and_then(Json::as_u64),
            Some(101)
        );
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
    }
}
