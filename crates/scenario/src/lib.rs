//! Scenario engine: one declarative harness for every face of the
//! repository's read/update objects.
//!
//! The crate unifies what used to be four hand-rolled harnesses (soak,
//! throughput, exploration smoke, equivalence tests) behind three
//! pieces:
//!
//! * a **registry** ([`registry()`](registry())) of every max-register / counter /
//!   snapshot implementation, each entry carrying constructors for both
//!   faces — the real-atomics trait objects and the simulator
//!   step-machine factories — plus capability metadata (progress class,
//!   capacity bounds, process-count limits);
//! * a **declarative spec** ([`ScenarioSpec`]) naming a family,
//!   implementation, engine, process count, seeded operation mix,
//!   schedule policy, fault plan, checker and budgets, with a
//!   dependency-free JSON codec ([`json`]) whose round trip is
//!   identity;
//! * three **engines** ([`engine`]) consuming the same spec — scoped
//!   threads with latency histograms and progress certification
//!   ([`run_real`]), the adversarial step-machine executor with
//!   linearizability checking ([`run_sim`]), and the bounded model
//!   checker with sleep-set pruning and crash budgets ([`run_explore`])
//!   — all emitting one [`ScenarioReport`] shape.
//!
//! The `scenario` binary runs checked-in specs from `scenarios/*.json`;
//! the W4–W6 experiment harnesses and the integration tests are thin
//! layers over this crate.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod engine;
pub mod json;
pub mod registry;
pub mod report;
pub mod spec;

pub use engine::{
    build_sim_object, check_history, explore_parts, fault_plan_for_seed, measure_step_bound,
    resolve_checker, run, run_explore, run_real, run_sim, run_sim_seed, run_with_watchdog,
    EngineError, ExploreParts, SimSeedRun,
};
pub use json::{Json, JsonError};
pub use registry::{
    family_impls, find, registry, AccuracyClass, BuildError, BuildParams, Capabilities,
    CounterMode, Family, ImplEntry, ProgressClass, RealObject, SimObject,
};
pub use report::{ScenarioReport, TelemetryBlock, REPORT_SCHEMA};
pub use spec::{
    AccuracySpec, CheckerKind, CrashAt, EngineKind, ExploreSpec, FaultSpec, OpKind, OpMix,
    RealSpec, ScenarioOp, ScenarioSpec, SchedulePolicy, SpecError, TelemetrySpec, TraceSpec,
    SPEC_SCHEMA,
};
