//! The three engines that consume a [`ScenarioSpec`] and emit a
//! [`ScenarioReport`]:
//!
//! * [`run_real`] — OS threads hammering the real-atomics face
//!   (W4-style contended throughput), plus one instrumented batch that
//!   feeds a latency histogram and a [`ProgressCertifier`];
//! * [`run_sim`] — the step-machine executor over seeded adversarial
//!   schedules and fault plans, checked per family (W6-style soak);
//! * [`run_explore`] — the incremental bounded model checker over every
//!   interleaving (and crash placement) of a small scope (W5-style).
//!
//! [`run`] dispatches on the spec's engine. The per-seed and
//! scope-construction helpers ([`run_sim_seed`], [`explore_parts`]) are
//! public so integration tests can reuse the registry plumbing under
//! bespoke checkers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use ruo_metrics::{LatencyTracker, ProgressCertifier};
use ruo_sim::explore::{explore, ExploreConfig, ExploreOp};
use ruo_sim::lin::{check_counter, check_exact, check_max_register, check_snapshot, Violation};
use ruo_sim::spec::SeqSpec;
use ruo_sim::{
    run_solo, ExecOutcome, Executor, FaultPlan, History, Machine, Memory, OpDesc, OpSpec,
    ProcessId, RandomScheduler, RoundRobin, Scheduler, SplitMix64, WorkloadBuilder,
};

use crate::registry::{find, BuildError, BuildParams, Family, ImplEntry, RealObject, SimObject};
use crate::report::ScenarioReport;
use crate::spec::{
    CheckerKind, EngineKind, FaultSpec, OpKind, OpMix, ScenarioSpec, SchedulePolicy,
};

/// Why an engine refused to run a scenario.
#[derive(Clone, Debug)]
pub enum EngineError {
    /// The registry could not construct the implementation.
    Build(BuildError),
    /// The spec combines knobs the engines cannot honor (e.g. exploring
    /// snapshot scans, seeding a counter scope).
    Unsupported(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Build(e) => write!(f, "{e}"),
            EngineError::Unsupported(msg) => write!(f, "unsupported scenario: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<BuildError> for EngineError {
    fn from(e: BuildError) -> Self {
        EngineError::Build(e)
    }
}

/// Runs a scenario on the engine its spec names.
pub fn run(spec: &ScenarioSpec, quick: bool) -> Result<ScenarioReport, EngineError> {
    match spec.engine {
        EngineKind::Real => run_real(spec, quick),
        EngineKind::Sim => run_sim(spec, quick),
        EngineKind::Explore => run_explore(spec, quick),
    }
}

/// Checks a history against the spec's checker choice.
pub fn check_history(spec: &ScenarioSpec, history: &History) -> Result<(), Violation> {
    check_history_from(spec, history, 0)
}

fn check_history_from(
    spec: &ScenarioSpec,
    history: &History,
    initial: i64,
) -> Result<(), Violation> {
    match (spec.checker, spec.family) {
        (CheckerKind::Auto, Family::MaxReg) => check_max_register(history, initial),
        (CheckerKind::Auto, Family::Counter) => check_counter(history),
        (CheckerKind::Auto, Family::Snapshot) => check_snapshot(history, spec.n, 0),
        (CheckerKind::Exact, Family::MaxReg) => {
            check_exact(history, &SeqSpec::MaxRegister { initial })
        }
        (CheckerKind::Exact, Family::Counter) => check_exact(history, &SeqSpec::Counter),
        (CheckerKind::Exact, Family::Snapshot) => check_exact(
            history,
            &SeqSpec::Snapshot {
                n: spec.n,
                initial: 0,
            },
        ),
    }
}

// ---------------------------------------------------------------------
// Sim engine
// ---------------------------------------------------------------------

/// The capacity handed to bounded sim implementations when the spec
/// leaves it implicit: large enough for every value (`value_bound + 1`
/// for max registers) or every update (`n * ops_per_process + 1` for
/// counters and snapshots).
fn sim_capacity(spec: &ScenarioSpec) -> u64 {
    spec.capacity.unwrap_or(match spec.family {
        Family::MaxReg => spec.value_bound + 1,
        Family::Counter | Family::Snapshot => (spec.n as u64) * (spec.ops_per_process as u64) + 1,
    })
}

/// Largest value updates may write: the spec's `value_bound`, clamped
/// below a bounded implementation's capacity.
fn sim_value_bound(spec: &ScenarioSpec, entry: &ImplEntry) -> u64 {
    if entry.caps.bounded_capacity && spec.family == Family::MaxReg {
        spec.value_bound
            .min(sim_capacity(spec).saturating_sub(1))
            .max(1)
    } else {
        spec.value_bound
    }
}

/// Builds the spec's implementation on the simulator face, allocating
/// in a fresh [`Memory`].
pub fn build_sim_object(spec: &ScenarioSpec) -> Result<(Memory, SimObject), EngineError> {
    let entry = find(spec.family, &spec.impl_id)?;
    let mut mem = Memory::new();
    let obj = entry.build_sim(
        &mut mem,
        &BuildParams {
            n: spec.n,
            capacity: sim_capacity(spec),
            root_fast_path: spec.root_fast_path,
        },
    )?;
    Ok((mem, obj))
}

/// The fault plan the sim engine uses for one seeded run.
pub fn fault_plan_for_seed(spec: &ScenarioSpec, run_seed: u64) -> FaultPlan {
    match &spec.faults {
        None => FaultPlan::none(),
        Some(FaultSpec::Random { crashes, max_after }) => {
            FaultPlan::random_crashes(run_seed, spec.n, *crashes, *max_after)
        }
        Some(FaultSpec::Explicit { crashes }) => {
            let mut plan = FaultPlan::new();
            for c in crashes {
                plan = plan.crash(ProcessId(c.pid), c.after);
            }
            plan
        }
    }
}

/// The seeded per-process operation sequences for one run, per the
/// spec's mix.
pub fn sim_workload(
    obj: &SimObject,
    spec: &ScenarioSpec,
    run_seed: u64,
) -> Result<WorkloadBuilder, EngineError> {
    let entry = find(spec.family, &spec.impl_id)?;
    let bound = sim_value_bound(spec, entry);
    let n = spec.n;
    let mut rng = SplitMix64::new(spec.seed ^ run_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut w = WorkloadBuilder::new(n);
    for p in 0..n {
        for i in 0..spec.ops_per_process {
            let pid = ProcessId(p);
            let is_read = match spec.mix {
                OpMix::Alternate => i % 2 != 0,
                OpMix::Random => rng.gen_below(100) < spec.read_pct as u64,
            };
            let value = match spec.mix {
                // The legacy deterministic soak value streams; see
                // `OpMix::Alternate`.
                OpMix::Alternate => match spec.family {
                    Family::MaxReg => {
                        run_seed.wrapping_mul(31).wrapping_add((i * n + p) as u64) % bound + 1
                    }
                    Family::Counter => 0,
                    Family::Snapshot => p as u64 * 1000 + run_seed % 500 + i as u64 + 1,
                },
                OpMix::Random => 1 + rng.gen_below(bound),
            };
            w.op(pid, sim_op(obj, pid, is_read, value));
        }
    }
    Ok(w)
}

/// One operation of the workload, as the executor's `OpSpec`.
fn sim_op(obj: &SimObject, pid: ProcessId, is_read: bool, value: u64) -> OpSpec {
    match obj {
        SimObject::MaxReg(reg) => {
            let reg = Arc::clone(reg);
            if is_read {
                OpSpec::value(OpDesc::ReadMax, move || reg.read_max(pid))
            } else {
                OpSpec::update(OpDesc::WriteMax(value as i64), move || {
                    reg.write_max(pid, value)
                })
            }
        }
        SimObject::Counter(c) => {
            let c = Arc::clone(c);
            if is_read {
                OpSpec::value(OpDesc::CounterRead, move || c.read(pid))
            } else {
                OpSpec::update(OpDesc::CounterIncrement, move || c.increment(pid))
            }
        }
        SimObject::Snapshot(s) => {
            if is_read {
                let s1 = Arc::clone(s);
                let s2 = Arc::clone(s);
                OpSpec::vector(
                    OpDesc::Scan,
                    move || s1.scan(pid),
                    move |token| {
                        s2.take_scan_result(token)
                            .into_iter()
                            .map(|v| v as i64)
                            .collect()
                    },
                )
            } else {
                let s = Arc::clone(s);
                OpSpec::update(OpDesc::Update(value as i64), move || s.update(pid, value))
            }
        }
    }
}

fn make_executor(spec: &ScenarioSpec) -> Executor {
    match spec.step_budget {
        Some(budget) => Executor::with_step_budget(budget),
        None => Executor::new(),
    }
}

fn make_scheduler(spec: &ScenarioSpec, run_seed: u64) -> Box<dyn Scheduler> {
    match spec.schedule {
        SchedulePolicy::Random => Box::new(RandomScheduler::new(run_seed)),
        SchedulePolicy::RoundRobin => Box::new(RoundRobin::new()),
    }
}

/// One seeded sim run: outcome, checker verdict and the soak pass
/// criterion (drained — all done, or legitimately crash-pending — and
/// linearizable under the completion rule).
#[derive(Debug)]
pub struct SimSeedRun {
    /// The executor's outcome (history, completion, crashes).
    pub outcome: ExecOutcome,
    /// The checker's verdict on the history.
    pub violation: Option<Violation>,
    /// Whether the run drained: every op completed, or a crash
    /// legitimately left work pending.
    pub drained: bool,
}

impl SimSeedRun {
    /// The soak pass criterion.
    pub fn passed(&self) -> bool {
        self.drained && self.violation.is_none()
    }
}

/// Runs one seeded schedule of the spec's workload under `plan`.
///
/// This is the single per-seed driver behind [`run_sim`]; integration
/// tests use it directly to sweep bespoke fault plans.
pub fn run_sim_seed(
    spec: &ScenarioSpec,
    run_seed: u64,
    plan: &FaultPlan,
) -> Result<SimSeedRun, EngineError> {
    let (mut mem, obj) = build_sim_object(spec)?;
    let w = sim_workload(&obj, spec, run_seed)?;
    let mut sched = make_scheduler(spec, run_seed);
    let outcome = make_executor(spec).run_with_faults(&mut mem, w, sched.as_mut(), plan);
    let drained = outcome.all_done || !outcome.crashed.is_empty();
    let violation = check_history(spec, &outcome.history).err();
    Ok(SimSeedRun {
        outcome,
        violation,
        drained,
    })
}

/// Measures the implementation's wait-free step bound for this workload
/// shape from one crash-free round-robin run (schedule-independent for
/// the wait-free families; the soak watchdog's bound).
pub fn measure_step_bound(spec: &ScenarioSpec) -> Result<u64, EngineError> {
    let (mut mem, obj) = build_sim_object(spec)?;
    let w = sim_workload(&obj, spec, spec.seed)?;
    let outcome = make_executor(spec).run_with_faults(
        &mut mem,
        w,
        &mut RoundRobin::new(),
        &FaultPlan::none(),
    );
    Ok(outcome
        .history
        .completed()
        .map(|op| op.steps as u64)
        .max()
        .unwrap_or(0))
}

/// Sweeps `seeds` adversarial schedules (spec'd fault plan applied per
/// seed), checking every history; `--quick` divides the sweep by 20.
pub fn run_sim(spec: &ScenarioSpec, quick: bool) -> Result<ScenarioReport, EngineError> {
    let seeds = if quick {
        (spec.seeds / 20).max(1)
    } else {
        spec.seeds
    };
    let certifier = if spec.certify {
        Some(ProgressCertifier::new(spec.n, measure_step_bound(spec)?))
    } else {
        None
    };
    let mut report = ScenarioReport::new(spec, quick);
    let mut ok_runs = 0u64;
    let mut crashed_runs = 0u64;
    let mut pending_ops = 0u64;
    let mut first_violation: Option<String> = None;
    for k in 0..seeds {
        let run_seed = spec.seed.wrapping_add(k);
        let plan = fault_plan_for_seed(spec, run_seed);
        let run = run_sim_seed(spec, run_seed, &plan)?;
        if let Some(cert) = &certifier {
            cert.record_outcome(&run.outcome);
        }
        if !run.outcome.crashed.is_empty() {
            crashed_runs += 1;
        }
        pending_ops += run.outcome.history.pending().count() as u64;
        if run.passed() {
            ok_runs += 1;
        } else if first_violation.is_none() {
            first_violation = Some(match &run.violation {
                Some(v) => format!("seed {run_seed}: {v}"),
                None => format!("seed {run_seed}: workload did not drain"),
            });
        }
    }
    report.set("seeds", seeds);
    report.set("ok_runs", ok_runs);
    report.set("violations", seeds - ok_runs);
    report.set("crashed_runs", crashed_runs);
    report.set("pending_ops", pending_ops);
    report.ok = ok_runs == seeds;
    if let Some(detail) = first_violation {
        report.note(detail);
    }
    if let Some(cert) = &certifier {
        match cert.certify() {
            Ok(p) => {
                report.set("cert_ok", 1);
                report.set("cert_completed", p.completed);
                report.set("cert_worst_steps", p.worst_steps);
                report.set("cert_bound", p.bound);
                report.set("cert_crashed_pending", p.crashed_pending);
            }
            Err(v) => {
                report.set("cert_ok", 0);
                report.ok = false;
                report.note(format!("progress certification failed: {v}"));
            }
        }
    }
    Ok(report)
}

// ---------------------------------------------------------------------
// Real engine
// ---------------------------------------------------------------------

/// Latency histogram boundaries for the instrumented batch, in
/// nanoseconds (log-spaced, 100 ns – 100 ms).
const LATENCY_BOUNDARIES_NS: &[u64] = &[
    100,
    250,
    500,
    1_000,
    2_500,
    5_000,
    10_000,
    25_000,
    50_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
];

struct RealParams {
    threads: usize,
    ops: u64,
    samples: usize,
    read_pct: u64,
    value_bound: u64,
}

fn real_params(spec: &ScenarioSpec, quick: bool) -> RealParams {
    let (threads, ops, samples) = match &spec.real {
        Some(r) => (r.threads, r.ops_per_thread, r.samples),
        None => (spec.n, 20_000, 7),
    };
    RealParams {
        threads,
        ops: if quick { (ops / 20).max(1) } else { ops },
        samples: if quick { samples.min(3) } else { samples },
        read_pct: spec.read_pct as u64,
        value_bound: spec.value_bound.max(1),
    }
}

fn real_capacity(spec: &ScenarioSpec, p: &RealParams) -> u64 {
    spec.capacity.unwrap_or(match spec.family {
        // Writers draw values below `value_bound`, so it doubles as the
        // AAC capacity (the historical W4 convention).
        Family::MaxReg => p.value_bound,
        Family::Counter | Family::Snapshot => p.ops * p.threads as u64 + 1,
    })
}

/// One contended batch over a fresh object; mirrors the historical W4
/// harness loops exactly (per-thread `SplitMix64::new(0x9e37 + t)`
/// streams, XOR sink against dead-code elimination). When `instruments`
/// is set, every operation is additionally timed into the latency
/// tracker and counted by the certifier — instrumented batches are
/// never the timed ones.
fn real_batch(
    obj: &RealObject,
    p: &RealParams,
    sink: &AtomicU64,
    instruments: Option<(&LatencyTracker, &ProgressCertifier)>,
) {
    std::thread::scope(|s| {
        for t in 0..p.threads {
            s.spawn(move || {
                let mut rng = SplitMix64::new(0x9e37 + t as u64);
                let mut acc = 0u64;
                let pid = ProcessId(t);
                for i in 0..p.ops {
                    let started = instruments.map(|_| Instant::now());
                    if rng.gen_below(100) < p.read_pct {
                        acc ^= match obj {
                            RealObject::MaxReg(r) => r.read_max(),
                            RealObject::Counter(c) => c.read(),
                            RealObject::Snapshot(sn) => sn.scan().iter().sum::<u64>(),
                        };
                    } else {
                        match obj {
                            RealObject::MaxReg(r) => r.write_max(pid, rng.gen_below(p.value_bound)),
                            RealObject::Counter(c) => c.increment(pid),
                            RealObject::Snapshot(sn) => sn.update(pid, i + 1),
                        }
                    }
                    if let (Some(start), Some((lat, cert))) = (started, instruments) {
                        lat.observe(pid, start.elapsed().as_nanos() as u64);
                        cert.record_completion(pid, 1);
                    }
                }
                sink.fetch_xor(acc, Ordering::Relaxed);
            });
        }
    });
}

/// Runs the contended-throughput batch (fresh object per batch, one
/// warm-up, median of `samples` timed runs), then one instrumented
/// batch for the latency histogram and progress certificate.
pub fn run_real(spec: &ScenarioSpec, quick: bool) -> Result<ScenarioReport, EngineError> {
    let entry = find(spec.family, &spec.impl_id)?;
    let p = real_params(spec, quick);
    let params = BuildParams {
        n: p.threads,
        capacity: real_capacity(spec, &p),
        root_fast_path: spec.root_fast_path,
    };
    let sink = AtomicU64::new(0);
    let mut times: Vec<f64> = Vec::with_capacity(p.samples);
    for sample in 0..=p.samples {
        let obj = entry.build_real(&params)?;
        let start = Instant::now();
        real_batch(&obj, &p, &sink, None);
        if sample > 0 {
            // Sample 0 is the warm-up.
            times.push(start.elapsed().as_nanos() as f64);
        }
    }
    times.sort_by(|a, b| a.total_cmp(b));
    let median_ns = times[times.len() / 2];

    let tracker = LatencyTracker::new(p.threads, LATENCY_BOUNDARIES_NS);
    let certifier = ProgressCertifier::new(p.threads, 1);
    let obj = entry.build_real(&params)?;
    real_batch(&obj, &p, &sink, Some((&tracker, &certifier)));
    let latency = tracker.report();

    let total_ops = p.ops * p.threads as u64;
    let mut report = ScenarioReport::new(spec, quick);
    report.set("threads", p.threads as u64);
    report.set("ops_per_thread", p.ops);
    report.set("total_ops", total_ops);
    report.set("samples", p.samples as u64);
    report.set("latency_peak_ns", latency.peak);
    if let Some(p50) = latency.p50 {
        report.set("latency_p50_ns", p50);
    }
    if let Some(p99) = latency.p99 {
        report.set("latency_p99_ns", p99);
    }
    report.set_metric("median_ns", median_ns);
    report.set_metric("ns_per_op", median_ns / total_ops as f64);
    report.set_metric("mops_per_s", total_ops as f64 / median_ns * 1e3);
    match certifier.certify() {
        Ok(cert) => {
            report.set("cert_ok", 1);
            report.set("cert_completed", cert.completed);
        }
        Err(v) => {
            report.set("cert_ok", 0);
            report.ok = false;
            report.note(format!("progress certification failed: {v}"));
        }
    }
    // Fold the sink into a counter so the XOR accumulators stay
    // observable (and the optimizer keeps the reads).
    report.set("sink", sink.load(Ordering::Relaxed));
    Ok(report)
}

// ---------------------------------------------------------------------
// Explore engine
// ---------------------------------------------------------------------

/// A scenario's exploration scope, ready for [`ruo_sim::explore`]: the
/// setup closure (fresh memory + machines per schedule), the op
/// descriptors, and the checker's initial value.
pub struct ExploreParts {
    /// Builds a fresh memory and machine vector for one schedule.
    pub setup: Box<dyn Fn() -> (Memory, Vec<Machine>)>,
    /// One descriptor per machine.
    pub ops: Vec<ExploreOp>,
    /// The checker's initial object value (the seed update, if any).
    pub initial: i64,
}

impl std::fmt::Debug for ExploreParts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExploreParts")
            .field("ops", &self.ops)
            .field("initial", &self.initial)
            .finish()
    }
}

/// Builds the exploration scope a spec describes.
///
/// Snapshot scopes are unsupported (scan results are vectors, which the
/// explorer's single-word op results cannot carry), as are seed updates
/// on counters (the counter checker has no initial-value parameter).
pub fn explore_parts(spec: &ScenarioSpec) -> Result<ExploreParts, EngineError> {
    let entry = find(spec.family, &spec.impl_id)?;
    if !entry.has_sim() {
        // Surface the standard error shape.
        return Err(entry
            .build_sim(
                &mut Memory::new(),
                &BuildParams {
                    n: spec.n,
                    capacity: sim_capacity(spec),
                    root_fast_path: spec.root_fast_path,
                },
            )
            .err()
            .map(EngineError::Build)
            .unwrap_or_else(|| EngineError::Unsupported("impl has no sim face".into())));
    }
    let espec = spec.explore.as_ref().ok_or_else(|| {
        EngineError::Unsupported("engine \"explore\" requires an explore section".into())
    })?;
    if spec.family == Family::Snapshot {
        return Err(EngineError::Unsupported(
            "snapshot scopes cannot be explored: scans return vectors, \
             and the explorer carries single-word results only"
                .into(),
        ));
    }
    if espec.seed_update.is_some() && spec.family != Family::MaxReg {
        return Err(EngineError::Unsupported(
            "seed_update is only meaningful for max registers \
             (the counter checker has no initial-value parameter)"
                .into(),
        ));
    }
    // Validate construction once, eagerly, so bad capacities error here
    // rather than panicking inside the search.
    build_sim_object(spec)?;
    let scope_spec = spec.clone();
    let scope = espec.clone();
    let setup: Box<dyn Fn() -> (Memory, Vec<Machine>)> = Box::new(move || {
        let (mut mem, obj) = build_sim_object(&scope_spec).expect("validated above");
        if let Some(seed_v) = scope.seed_update {
            if let SimObject::MaxReg(reg) = &obj {
                run_solo(&mut mem, ProcessId(0), reg.write_max(ProcessId(0), seed_v));
            }
        }
        let machines = scope
            .ops
            .iter()
            .map(|op| {
                let pid = ProcessId(op.pid);
                match (&obj, op.kind) {
                    (SimObject::MaxReg(r), OpKind::Update) => r.write_max(pid, op.value),
                    (SimObject::MaxReg(r), OpKind::Read) => r.read_max(pid),
                    (SimObject::Counter(c), OpKind::Update) => c.increment(pid),
                    (SimObject::Counter(c), OpKind::Read) => c.read(pid),
                    (SimObject::Snapshot(_), _) => unreachable!("rejected above"),
                }
            })
            .collect();
        (mem, machines)
    });
    let ops = espec
        .ops
        .iter()
        .map(|op| ExploreOp {
            pid: ProcessId(op.pid),
            desc: match (spec.family, op.kind) {
                (Family::MaxReg, OpKind::Update) => OpDesc::WriteMax(op.value as i64),
                (Family::MaxReg, OpKind::Read) => OpDesc::ReadMax,
                (Family::Counter, OpKind::Update) => OpDesc::CounterIncrement,
                (Family::Counter, OpKind::Read) => OpDesc::CounterRead,
                (Family::Snapshot, _) => unreachable!("rejected above"),
            },
            returns_value: op.kind == OpKind::Read,
        })
        .collect();
    Ok(ExploreParts {
        setup,
        ops,
        initial: espec.seed_update.map_or(0, |v| v as i64),
    })
}

/// Explores every schedule (and crash placement, per the budget) of the
/// scope, checking each history. `quick` is accepted for interface
/// symmetry but ignored: schedule counts are the verdict, so scaling
/// them down would change what the scenario asserts.
pub fn run_explore(spec: &ScenarioSpec, quick: bool) -> Result<ScenarioReport, EngineError> {
    let parts = explore_parts(spec)?;
    let espec = spec.explore.as_ref().expect("explore_parts checked");
    let cfg = ExploreConfig {
        max_schedules: espec.max_schedules,
        prune: espec.prune,
        max_crashes: espec.max_crashes,
    };
    let initial = parts.initial;
    let exact = spec.checker == CheckerKind::Exact;
    let family = spec.family;
    let n = spec.n;
    let mut check = |h: &History| -> bool {
        match (exact, family) {
            (false, Family::MaxReg) => check_max_register(h, initial).is_ok(),
            (false, Family::Counter) => check_counter(h).is_ok(),
            (true, Family::MaxReg) => check_exact(h, &SeqSpec::MaxRegister { initial }).is_ok(),
            (true, Family::Counter) => check_exact(h, &SeqSpec::Counter).is_ok(),
            (_, Family::Snapshot) => {
                let _ = n;
                unreachable!("rejected by explore_parts")
            }
        }
    };
    let start = Instant::now();
    let summary = explore(&*parts.setup, &parts.ops, &mut check, cfg);
    let seconds = start.elapsed().as_secs_f64();

    let mut report = ScenarioReport::new(spec, quick);
    report.set("schedules", summary.schedules as u64);
    report.set("truncated", summary.truncated as u64);
    report.set("violation", summary.violation.is_some() as u64);
    report.set("pruned_branches", summary.stats.pruned_branches as u64);
    report.set("executed_steps", summary.stats.executed_steps);
    report.set("replay_steps_saved", summary.stats.replay_steps_saved);
    report.set("peak_depth", summary.stats.peak_depth as u64);
    report.set("crash_branches", summary.stats.crash_branches as u64);
    report.set_metric("seconds", seconds);
    report.ok = summary.violation.is_none() && !summary.truncated;
    if let Some(pids) = &summary.violation {
        report.note(format!(
            "violating schedule found (pids {:?}, crashed {:?})",
            pids, summary.violation_crashed
        ));
    }
    if summary.truncated {
        report.note(format!(
            "search truncated at {} schedules",
            summary.schedules
        ));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CrashAt, ExploreSpec, ScenarioOp};

    #[test]
    fn sim_engine_sweeps_cleanly_and_certifies() {
        let mut spec = ScenarioSpec::new("t", Family::MaxReg, "tree", EngineKind::Sim, 4);
        spec.seeds = 20;
        spec.mix = OpMix::Alternate;
        spec.certify = true;
        spec.faults = Some(FaultSpec::Random {
            crashes: 1,
            max_after: 40,
        });
        let r = run_sim(&spec, false).unwrap();
        assert!(r.ok, "notes: {:?}", r.notes);
        assert_eq!(r.counter("seeds"), Some(20));
        assert_eq!(r.counter("violations"), Some(0));
        assert_eq!(r.counter("cert_ok"), Some(1));
        assert!(r.counter("crashed_runs").unwrap() > 0);
    }

    #[test]
    fn sim_engine_handles_every_sim_face() {
        for entry in crate::registry::registry() {
            if !entry.has_sim() {
                continue;
            }
            let mut spec = ScenarioSpec::new("t", entry.family, entry.id, EngineKind::Sim, 3);
            spec.seeds = 5;
            spec.ops_per_process = 4;
            spec.step_budget = Some(500_000);
            spec.capacity = entry.caps.bounded_capacity.then_some(64);
            spec.value_bound = 50;
            let r = run_sim(&spec, false)
                .unwrap_or_else(|e| panic!("{}/{}: {e}", entry.family, entry.id));
            assert!(r.ok, "{}/{}: {:?}", entry.family, entry.id, r.notes);
        }
    }

    #[test]
    fn explicit_crash_plans_leave_pending_work() {
        let mut spec = ScenarioSpec::new("t", Family::Counter, "farray", EngineKind::Sim, 3);
        spec.seeds = 10;
        spec.mix = OpMix::Alternate;
        spec.faults = Some(FaultSpec::Explicit {
            crashes: vec![CrashAt { pid: 1, after: 3 }],
        });
        let r = run_sim(&spec, false).unwrap();
        assert!(r.ok, "notes: {:?}", r.notes);
        assert_eq!(r.counter("crashed_runs"), Some(10));
    }

    #[test]
    fn explore_engine_checks_a_small_scope() {
        let mut spec = ScenarioSpec::new("t", Family::MaxReg, "tree", EngineKind::Explore, 2);
        spec.explore = Some(ExploreSpec {
            seed_update: Some(1),
            ops: vec![
                ScenarioOp {
                    pid: 0,
                    kind: OpKind::Update,
                    value: 2,
                },
                ScenarioOp {
                    pid: 1,
                    kind: OpKind::Read,
                    value: 0,
                },
            ],
            max_schedules: 100_000,
            prune: true,
            max_crashes: 1,
        });
        let r = run_explore(&spec, false).unwrap();
        assert!(r.ok, "notes: {:?}", r.notes);
        assert!(r.counter("schedules").unwrap() > 1);
        assert!(r.counter("crash_branches").unwrap() > 0);
    }

    #[test]
    fn explore_engine_rejects_snapshot_scopes() {
        let mut spec = ScenarioSpec::new(
            "t",
            Family::Snapshot,
            "double_collect",
            EngineKind::Explore,
            2,
        );
        spec.explore = Some(ExploreSpec {
            seed_update: None,
            ops: vec![ScenarioOp {
                pid: 0,
                kind: OpKind::Update,
                value: 1,
            }],
            max_schedules: 10,
            prune: true,
            max_crashes: 0,
        });
        assert!(matches!(
            run_explore(&spec, false),
            Err(EngineError::Unsupported(_))
        ));
    }

    #[test]
    fn real_engine_reports_throughput_latency_and_certificate() {
        let mut spec = ScenarioSpec::new("t", Family::Counter, "farray", EngineKind::Real, 2);
        spec.real = Some(crate::spec::RealSpec {
            threads: 2,
            ops_per_thread: 200,
            samples: 1,
        });
        let r = run_real(&spec, false).unwrap();
        assert!(r.ok, "notes: {:?}", r.notes);
        assert_eq!(r.counter("total_ops"), Some(400));
        assert_eq!(r.counter("cert_completed"), Some(400));
        assert!(r.metric("mops_per_s").unwrap() > 0.0);
        assert!(r.counter("latency_peak_ns").unwrap() > 0);
    }
}
