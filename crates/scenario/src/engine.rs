//! The three engines that consume a [`ScenarioSpec`] and emit a
//! [`ScenarioReport`]:
//!
//! * [`run_real`] — OS threads hammering the real-atomics face
//!   (W4-style contended throughput), plus one instrumented batch that
//!   feeds a latency histogram and a [`ProgressCertifier`];
//! * [`run_sim`] — the step-machine executor over seeded adversarial
//!   schedules and fault plans, checked per family (W6-style soak);
//! * [`run_explore`] — the incremental bounded model checker over every
//!   interleaving (and crash placement) of a small scope (W5-style).
//!
//! [`run`] dispatches on the spec's engine. The per-seed and
//! scope-construction helpers ([`run_sim_seed`], [`explore_parts`]) are
//! public so integration tests can reuse the registry plumbing under
//! bespoke checkers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use ruo_metrics::{
    trace_execution, LatencyTracker, LowWatermark, MetricDesc, MetricKind, MetricsRegistry,
    PrimCounts, ProgressCertifier, SeriesSampler, StepStats, StepTrace, Watermark,
};
use ruo_sim::explore::{explore, explore_parallel, ExploreConfig, ExploreOp};
use ruo_sim::lin::{
    check_counter_k, check_exact_k, check_interval_k, check_max_register_k, check_snapshot,
    Violation,
};
use ruo_sim::spec::SeqSpec;
use ruo_sim::stepcount::CountingMem;
use ruo_sim::{
    run_solo, ExecOutcome, Executor, FaultPlan, History, Machine, Memory, OpDesc, OpOutput,
    OpRecord, OpSpec, ProcessId, RandomScheduler, RoundRobin, Scheduler, SplitMix64,
    WorkloadBuilder,
};

use crate::registry::{find, BuildError, BuildParams, Family, ImplEntry, RealObject, SimObject};
use crate::report::{ScenarioReport, TelemetryBlock};
use crate::spec::{
    CheckerKind, EngineKind, FaultSpec, OpKind, OpMix, ScenarioSpec, SchedulePolicy, TelemetrySpec,
    TraceSpec,
};

/// Why an engine refused to run a scenario.
#[derive(Clone, Debug)]
pub enum EngineError {
    /// The registry could not construct the implementation.
    Build(BuildError),
    /// The spec combines knobs the engines cannot honor (e.g. exploring
    /// snapshot scans, seeding a counter scope).
    Unsupported(String),
    /// A requested trace export could not be written.
    Trace(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Build(e) => write!(f, "{e}"),
            EngineError::Unsupported(msg) => write!(f, "unsupported scenario: {msg}"),
            EngineError::Trace(msg) => write!(f, "trace export failed: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<BuildError> for EngineError {
    fn from(e: BuildError) -> Self {
        EngineError::Build(e)
    }
}

/// Runs a scenario on the engine its spec names.
pub fn run(spec: &ScenarioSpec, quick: bool) -> Result<ScenarioReport, EngineError> {
    match spec.engine {
        EngineKind::Real => run_real(spec, quick),
        EngineKind::Sim => run_sim(spec, quick),
        EngineKind::Explore => run_explore(spec, quick),
    }
}

/// Runs a scenario under its wall-clock watchdog.
///
/// With `watchdog_secs` unset this is exactly [`run`]. Otherwise the
/// engine runs on a helper thread and the caller waits at most that
/// many seconds for the report: a run that blows the budget (a livelock
/// in an implementation under test, a pathological schedule, an
/// explosion the step budget failed to contain) comes back as a
/// *failing* [`ScenarioReport`] with a `watchdog_fired` counter and a
/// structured note, instead of hanging the harness forever.
///
/// The engines have no cancellation points, so an overrunning run's
/// thread is abandoned (detached) — acceptable for a CLI/CI harness
/// whose process exits soon after, which is the only place a watchdog
/// verdict should be acted on.
pub fn run_with_watchdog(spec: &ScenarioSpec, quick: bool) -> Result<ScenarioReport, EngineError> {
    let Some(secs) = spec.watchdog_secs else {
        return run(spec, quick);
    };
    let (tx, rx) = std::sync::mpsc::channel();
    let owned = spec.clone();
    let handle = std::thread::Builder::new()
        .name(format!("scenario-{}", spec.name))
        .spawn(move || {
            let _ = tx.send(run(&owned, quick));
        })
        .expect("spawn scenario watchdog thread");
    match rx.recv_timeout(std::time::Duration::from_secs(secs)) {
        Ok(result) => {
            let _ = handle.join();
            result
        }
        Err(_) => {
            let mut report = ScenarioReport::new(spec, quick);
            report.ok = false;
            report.set("watchdog_secs", secs);
            report.set("watchdog_fired", 1);
            report.note(format!(
                "watchdog: no report within {secs}s — run abandoned as stuck"
            ));
            Ok(report)
        }
    }
}

/// The checker that actually decides this spec's histories: `auto`
/// resolves to the WGL interval checker for sim and real histories
/// (exact verdicts at any size) and to the family's fast checker for
/// the explore engine (millions of tiny histories, where the fast
/// checkers' linear scans win). Explicit choices pass through, so a
/// spec can still pin `fast`, `interval` or `exact`. Reports record
/// the resolved name in their `checker` field.
pub fn resolve_checker(spec: &ScenarioSpec) -> CheckerKind {
    match (spec.checker, spec.engine) {
        (CheckerKind::Auto, EngineKind::Explore) => CheckerKind::Fast,
        (CheckerKind::Auto, _) => CheckerKind::Interval,
        (explicit, _) => explicit,
    }
}

/// Checks a history against the spec's checker choice.
pub fn check_history(spec: &ScenarioSpec, history: &History) -> Result<(), Violation> {
    check_history_from(spec, history, 0)
}

fn check_history_from(
    spec: &ScenarioSpec,
    history: &History,
    initial: i64,
) -> Result<(), Violation> {
    let seq = || match spec.family {
        Family::MaxReg => SeqSpec::MaxRegister { initial },
        Family::Counter => SeqSpec::Counter,
        Family::Snapshot => SeqSpec::Snapshot {
            n: spec.n,
            initial: 0,
        },
    };
    let k = spec.accuracy_k();
    match (resolve_checker(spec), spec.family) {
        (CheckerKind::Auto, _) => unreachable!("resolve_checker never returns Auto"),
        (CheckerKind::Fast, Family::MaxReg) => check_max_register_k(history, initial, k),
        (CheckerKind::Fast, Family::Counter) => check_counter_k(history, k),
        (CheckerKind::Fast, Family::Snapshot) => check_snapshot(history, spec.n, 0),
        (CheckerKind::Interval, _) => check_interval_k(history, &seq(), k),
        (CheckerKind::Exact, _) => check_exact_k(history, &seq(), k),
    }
}

// ---------------------------------------------------------------------
// Trace plumbing shared by the engines
// ---------------------------------------------------------------------

/// Whether the spec's trace section asks for the `steps` report block.
fn wants_steps(spec: &ScenarioSpec) -> bool {
    spec.trace.as_ref().is_some_and(|t| t.steps)
}

/// Whether the spec's trace section asks for any event-level export.
fn wants_export(spec: &ScenarioSpec) -> bool {
    spec.trace
        .as_ref()
        .is_some_and(|t| t.jsonl.is_some() || t.chrome.is_some())
}

/// Writes `contents` to `path`, creating parent directories.
fn write_trace_file(path: &str, contents: &str) -> Result<(), EngineError> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| EngineError::Trace(format!("creating {}: {e}", parent.display())))?;
        }
    }
    std::fs::write(path, contents).map_err(|e| EngineError::Trace(format!("writing {path}: {e}")))
}

/// Exports a [`StepTrace`] to the paths the trace section names, noting
/// each written file in the report.
fn export_trace(
    tspec: &TraceSpec,
    trace: &StepTrace,
    report: &mut ScenarioReport,
) -> Result<(), EngineError> {
    if let Some(path) = &tspec.jsonl {
        write_trace_file(path, &trace.to_jsonl())?;
        report.note(format!("trace jsonl: {path}"));
    }
    if let Some(path) = &tspec.chrome {
        write_trace_file(path, &trace.to_chrome_trace())?;
        report.note(format!("trace chrome: {path}"));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Telemetry sampling shared by the sim and real engines
// ---------------------------------------------------------------------

/// Sweep-progress scalars the sim engine registers and samples once per
/// `every` seeds (the seed index is the sampler tick, so sampled sim
/// runs stay deterministic — no wall clock anywhere near the ring).
struct SimTelemetry {
    sampler: SeriesSampler,
    every: u64,
    ok_runs: Arc<AtomicU64>,
    crashed_runs: Arc<AtomicU64>,
    checked_ops: Arc<AtomicU64>,
    largest_history: Arc<Watermark>,
}

impl SimTelemetry {
    fn new(t: &TelemetrySpec) -> Self {
        let ok_runs = Arc::new(AtomicU64::new(0));
        let crashed_runs = Arc::new(AtomicU64::new(0));
        let checked_ops = Arc::new(AtomicU64::new(0));
        let largest_history = Arc::new(Watermark::new(1));
        let mut reg = MetricsRegistry::new();
        let r = Arc::clone(&ok_runs);
        reg.register(
            MetricDesc::new(
                "ok_runs",
                MetricKind::Counter,
                "runs",
                "seeded runs that drained and linearized",
            ),
            move || r.load(Ordering::Relaxed),
        );
        let r = Arc::clone(&crashed_runs);
        reg.register(
            MetricDesc::new(
                "crashed_runs",
                MetricKind::Counter,
                "runs",
                "seeded runs whose fault plan crashed a process",
            ),
            move || r.load(Ordering::Relaxed),
        );
        let r = Arc::clone(&checked_ops);
        reg.register(
            MetricDesc::new(
                "checked_ops",
                MetricKind::Counter,
                "ops",
                "operations fed through the checker so far",
            ),
            move || r.load(Ordering::Relaxed),
        );
        largest_history.register_into(
            &mut reg,
            "largest_history",
            "ops",
            "largest single history checked so far",
        );
        SimTelemetry {
            sampler: SeriesSampler::new(Arc::new(reg), t.capacity),
            every: t.every,
            ok_runs,
            crashed_runs,
            checked_ops,
            largest_history,
        }
    }

    /// Publishes the sweep's running totals and samples the registry if
    /// seed index `k` lands on the cadence.
    fn record_seed(&mut self, k: u64, ok: u64, crashed: u64, checked: u64, largest: u64) {
        self.ok_runs.store(ok, Ordering::Relaxed);
        self.crashed_runs.store(crashed, Ordering::Relaxed);
        self.checked_ops.store(checked, Ordering::Relaxed);
        self.largest_history.record(ProcessId(0), largest);
        if k.is_multiple_of(self.every) {
            self.sampler.sample(k);
        }
    }
}

/// Batch-progress scalars the real engine registers and samples once
/// per `every` timed batches (the batch index is the sampler tick).
struct RealTelemetry {
    sampler: SeriesSampler,
    every: u64,
    batches: Arc<AtomicU64>,
    ops_done: Arc<AtomicU64>,
    batch_best: Arc<LowWatermark>,
    batch_worst: Arc<Watermark>,
}

impl RealTelemetry {
    fn new(t: &TelemetrySpec) -> Self {
        let batches = Arc::new(AtomicU64::new(0));
        let ops_done = Arc::new(AtomicU64::new(0));
        let batch_best = Arc::new(LowWatermark::new(1));
        let batch_worst = Arc::new(Watermark::new(1));
        let mut reg = MetricsRegistry::new();
        let r = Arc::clone(&batches);
        reg.register(
            MetricDesc::new(
                "batches",
                MetricKind::Counter,
                "batches",
                "timed contended batches completed",
            ),
            move || r.load(Ordering::Relaxed),
        );
        let r = Arc::clone(&ops_done);
        reg.register(
            MetricDesc::new(
                "ops_done",
                MetricKind::Counter,
                "ops",
                "operations completed across timed batches",
            ),
            move || r.load(Ordering::Relaxed),
        );
        batch_best.register_into(
            &mut reg,
            "batch_best_ns",
            "ns",
            "fastest timed batch so far",
        );
        batch_worst.register_into(
            &mut reg,
            "batch_worst_ns",
            "ns",
            "slowest timed batch so far",
        );
        RealTelemetry {
            sampler: SeriesSampler::new(Arc::new(reg), t.capacity),
            every: t.every,
            batches,
            ops_done,
            batch_best,
            batch_worst,
        }
    }

    /// Publishes one timed batch's outcome and samples the registry if
    /// batch index `idx` lands on the cadence.
    fn record_batch(&mut self, idx: u64, batch_ops: u64, batch_ns: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.ops_done.fetch_add(batch_ops, Ordering::Relaxed);
        self.batch_best.record(ProcessId(0), batch_ns);
        self.batch_worst.record(ProcessId(0), batch_ns);
        if idx.is_multiple_of(self.every) {
            self.sampler.sample(idx);
        }
    }
}

// ---------------------------------------------------------------------
// Sim engine
// ---------------------------------------------------------------------

/// The capacity handed to bounded sim implementations when the spec
/// leaves it implicit: large enough for every value (`value_bound + 1`
/// for max registers) or every update (`n * ops_per_process + 1` for
/// counters and snapshots).
fn sim_capacity(spec: &ScenarioSpec) -> u64 {
    spec.capacity.unwrap_or(match spec.family {
        Family::MaxReg => spec.value_bound + 1,
        Family::Counter | Family::Snapshot => (spec.n as u64) * (spec.ops_per_process as u64) + 1,
    })
}

/// Largest value updates may write: the spec's `value_bound`, clamped
/// below a bounded implementation's capacity.
fn sim_value_bound(spec: &ScenarioSpec, entry: &ImplEntry) -> u64 {
    if entry.caps.bounded_capacity && spec.family == Family::MaxReg {
        spec.value_bound
            .min(sim_capacity(spec).saturating_sub(1))
            .max(1)
    } else {
        spec.value_bound
    }
}

/// Rejects accuracy factors the implementation cannot honor: `k > 1`
/// on an exact face would make the relaxed checkers certify behaviour
/// the implementation never promised, so only entries advertising an
/// accuracy capability may run with a relaxed envelope. Snapshot scans
/// return vectors, which the `_k` checkers never relax — a `k > 1`
/// snapshot spec is a contradiction and is rejected up front.
fn validate_accuracy(spec: &ScenarioSpec, entry: &ImplEntry) -> Result<(), EngineError> {
    let k = spec.accuracy_k();
    if k > 1 && entry.caps.accuracy.is_none() {
        return Err(EngineError::Unsupported(format!(
            "accuracy.k = {k} on exact implementation {}/{} (no accuracy capability)",
            spec.family.name(),
            spec.impl_id
        )));
    }
    if k > 1 && spec.family == Family::Snapshot {
        return Err(EngineError::Unsupported(
            "accuracy.k > 1 is not defined for snapshot scans".into(),
        ));
    }
    Ok(())
}

/// Builds the spec's implementation on the simulator face, allocating
/// in a fresh [`Memory`].
pub fn build_sim_object(spec: &ScenarioSpec) -> Result<(Memory, SimObject), EngineError> {
    let entry = find(spec.family, &spec.impl_id)?;
    validate_accuracy(spec, entry)?;
    let mut mem = Memory::new();
    let obj = entry.build_sim(
        &mut mem,
        &BuildParams {
            n: spec.n,
            capacity: sim_capacity(spec),
            root_fast_path: spec.root_fast_path,
            accuracy_k: spec.accuracy_k(),
        },
    )?;
    Ok((mem, obj))
}

/// The fault plan the sim engine uses for one seeded run.
pub fn fault_plan_for_seed(spec: &ScenarioSpec, run_seed: u64) -> FaultPlan {
    match &spec.faults {
        None => FaultPlan::none(),
        Some(FaultSpec::Random { crashes, max_after }) => {
            FaultPlan::random_crashes(run_seed, spec.n, *crashes, *max_after)
        }
        Some(FaultSpec::Explicit { crashes }) => {
            let mut plan = FaultPlan::new();
            for c in crashes {
                plan = plan.crash(ProcessId(c.pid), c.after);
            }
            plan
        }
    }
}

/// The seeded per-process operation sequences for one run, per the
/// spec's mix.
pub fn sim_workload(
    obj: &SimObject,
    spec: &ScenarioSpec,
    run_seed: u64,
) -> Result<WorkloadBuilder, EngineError> {
    let entry = find(spec.family, &spec.impl_id)?;
    let bound = sim_value_bound(spec, entry);
    let n = spec.n;
    let mut rng = SplitMix64::new(spec.seed ^ run_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut w = WorkloadBuilder::new(n);
    for p in 0..n {
        for i in 0..spec.ops_per_process {
            let pid = ProcessId(p);
            let is_read = match spec.mix {
                OpMix::Alternate => i % 2 != 0,
                OpMix::Random => rng.gen_below(100) < spec.read_pct as u64,
            };
            let value = match spec.mix {
                // The legacy deterministic soak value streams; see
                // `OpMix::Alternate`.
                OpMix::Alternate => match spec.family {
                    Family::MaxReg => {
                        run_seed.wrapping_mul(31).wrapping_add((i * n + p) as u64) % bound + 1
                    }
                    Family::Counter => 0,
                    Family::Snapshot => p as u64 * 1000 + run_seed % 500 + i as u64 + 1,
                },
                OpMix::Random => 1 + rng.gen_below(bound),
            };
            w.op(pid, sim_op(obj, pid, is_read, value));
        }
    }
    Ok(w)
}

/// One operation of the workload, as the executor's `OpSpec`.
fn sim_op(obj: &SimObject, pid: ProcessId, is_read: bool, value: u64) -> OpSpec {
    match obj {
        SimObject::MaxReg(reg) => {
            let reg = Arc::clone(reg);
            if is_read {
                OpSpec::value(OpDesc::ReadMax, move || reg.read_max(pid))
            } else {
                OpSpec::update(OpDesc::WriteMax(value as i64), move || {
                    reg.write_max(pid, value)
                })
            }
        }
        SimObject::Counter(c) => {
            let c = Arc::clone(c);
            if is_read {
                OpSpec::value(OpDesc::CounterRead, move || c.read(pid))
            } else {
                OpSpec::update(OpDesc::CounterIncrement, move || c.increment(pid))
            }
        }
        SimObject::Snapshot(s) => {
            if is_read {
                let s1 = Arc::clone(s);
                let s2 = Arc::clone(s);
                OpSpec::vector(
                    OpDesc::Scan,
                    move || s1.scan(pid),
                    move |token| {
                        s2.take_scan_result(token)
                            .into_iter()
                            .map(|v| v as i64)
                            .collect()
                    },
                )
            } else {
                let s = Arc::clone(s);
                OpSpec::update(OpDesc::Update(value as i64), move || s.update(pid, value))
            }
        }
    }
}

fn make_executor(spec: &ScenarioSpec) -> Executor {
    match spec.step_budget {
        Some(budget) => Executor::with_step_budget(budget),
        None => Executor::new(),
    }
}

fn make_scheduler(spec: &ScenarioSpec, run_seed: u64) -> Box<dyn Scheduler> {
    match spec.schedule {
        SchedulePolicy::Random => Box::new(RandomScheduler::new(run_seed)),
        SchedulePolicy::RoundRobin => Box::new(RoundRobin::new()),
    }
}

/// One seeded sim run: outcome, checker verdict and the soak pass
/// criterion (drained — all done, or legitimately crash-pending — and
/// linearizable under the completion rule).
#[derive(Debug)]
pub struct SimSeedRun {
    /// The executor's outcome (history, completion, crashes).
    pub outcome: ExecOutcome,
    /// The final shared memory, with its full event log — the raw
    /// material for step attribution ([`ruo_metrics::trace_execution`]).
    pub memory: Memory,
    /// The checker's verdict on the history.
    pub violation: Option<Violation>,
    /// Whether the run drained: every op completed, or a crash
    /// legitimately left work pending.
    pub drained: bool,
}

impl SimSeedRun {
    /// The soak pass criterion.
    pub fn passed(&self) -> bool {
        self.drained && self.violation.is_none()
    }
}

/// Runs one seeded schedule of the spec's workload under `plan`.
///
/// This is the single per-seed driver behind [`run_sim`]; integration
/// tests use it directly to sweep bespoke fault plans.
pub fn run_sim_seed(
    spec: &ScenarioSpec,
    run_seed: u64,
    plan: &FaultPlan,
) -> Result<SimSeedRun, EngineError> {
    let (mut mem, obj) = build_sim_object(spec)?;
    let w = sim_workload(&obj, spec, run_seed)?;
    let mut sched = make_scheduler(spec, run_seed);
    let outcome = make_executor(spec).run_with_faults(&mut mem, w, sched.as_mut(), plan);
    let drained = outcome.all_done || !outcome.crashed.is_empty();
    let violation = check_history(spec, &outcome.history).err();
    Ok(SimSeedRun {
        outcome,
        memory: mem,
        violation,
        drained,
    })
}

/// Measures the implementation's wait-free step bound for this workload
/// shape from one crash-free round-robin run (schedule-independent for
/// the wait-free families; the soak watchdog's bound).
pub fn measure_step_bound(spec: &ScenarioSpec) -> Result<u64, EngineError> {
    let (mut mem, obj) = build_sim_object(spec)?;
    let w = sim_workload(&obj, spec, spec.seed)?;
    let outcome = make_executor(spec).run_with_faults(
        &mut mem,
        w,
        &mut RoundRobin::new(),
        &FaultPlan::none(),
    );
    Ok(outcome
        .history
        .completed()
        .map(|op| op.steps as u64)
        .max()
        .unwrap_or(0))
}

/// Sweeps `seeds` adversarial schedules (spec'd fault plan applied per
/// seed), checking every history; `--quick` divides the sweep by 20.
///
/// With a `telemetry` section, sweep-progress scalars (`ok_runs`,
/// `crashed_runs`, `checked_ops`, `largest_history`) are registered in
/// a [`MetricsRegistry`] and sampled every `every` seeds into the
/// report's `telemetry` block — the seed index is the sampler tick, so
/// the curves are deterministic.
pub fn run_sim(spec: &ScenarioSpec, quick: bool) -> Result<ScenarioReport, EngineError> {
    let started = Instant::now();
    let seeds = if quick {
        (spec.seeds / 20).max(1)
    } else {
        spec.seeds
    };
    let certifier = if spec.certify {
        Some(ProgressCertifier::new(spec.n, measure_step_bound(spec)?))
    } else {
        None
    };
    let mut report = ScenarioReport::new(spec, quick);
    report.checker = Some(resolve_checker(spec).name().into());
    if let Some(a) = &spec.accuracy {
        report.set("accuracy_k", a.k);
    }
    let mut ok_runs = 0u64;
    let mut crashed_runs = 0u64;
    let mut pending_ops = 0u64;
    let mut checked_ops = 0u64;
    let mut largest_history = 0u64;
    let mut first_violation: Option<String> = None;
    let mut steps = wants_steps(spec).then(StepStats::new);
    let mut first_trace: Option<StepTrace> = None;
    let mut telem = spec.telemetry.as_ref().map(SimTelemetry::new);
    for k in 0..seeds {
        let run_seed = spec.seed.wrapping_add(k);
        let plan = fault_plan_for_seed(spec, run_seed);
        let run = run_sim_seed(spec, run_seed, &plan)?;
        if let Some(acc) = &mut steps {
            acc.record_history(&run.outcome.history);
            acc.record_events(run.memory.log());
        }
        if first_trace.is_none() && wants_export(spec) {
            first_trace = Some(trace_execution(run.memory.log(), &run.outcome.history));
        }
        if let Some(cert) = &certifier {
            cert.record_outcome(&run.outcome);
        }
        if !run.outcome.crashed.is_empty() {
            crashed_runs += 1;
        }
        pending_ops += run.outcome.history.pending().count() as u64;
        let hist_ops = run.outcome.history.ops().len() as u64;
        checked_ops += hist_ops;
        largest_history = largest_history.max(hist_ops);
        if run.passed() {
            ok_runs += 1;
        } else if first_violation.is_none() {
            first_violation = Some(match &run.violation {
                Some(v) => format!("seed {run_seed}: {v}"),
                None => format!("seed {run_seed}: workload did not drain"),
            });
        }
        if let Some(t) = &mut telem {
            t.record_seed(k, ok_runs, crashed_runs, checked_ops, largest_history);
        }
    }
    report.set("seeds", seeds);
    report.set("ok_runs", ok_runs);
    report.set("violations", seeds - ok_runs);
    report.set("crashed_runs", crashed_runs);
    report.set("pending_ops", pending_ops);
    report.set("checked_ops", checked_ops);
    report.set("largest_history", largest_history);
    report.steps = steps;
    report.telemetry = telem.map(|t| TelemetryBlock::from_sampler(&t.sampler));
    if let (Some(tspec), Some(trace)) = (&spec.trace, &first_trace) {
        export_trace(tspec, trace, &mut report)?;
    }
    report.ok = ok_runs == seeds;
    if let Some(detail) = first_violation {
        report.note(detail);
    }
    if let Some(cert) = &certifier {
        match cert.certify() {
            Ok(p) => {
                report.set("cert_ok", 1);
                report.set("cert_completed", p.completed);
                report.set("cert_worst_steps", p.worst_steps);
                report.set("cert_bound", p.bound);
                report.set("cert_crashed_pending", p.crashed_pending);
            }
            Err(v) => {
                report.set("cert_ok", 0);
                report.ok = false;
                report.note(format!("progress certification failed: {v}"));
            }
        }
    }
    report.set_metric("duration_ms", started.elapsed().as_secs_f64() * 1e3);
    Ok(report)
}

// ---------------------------------------------------------------------
// Real engine
// ---------------------------------------------------------------------

/// Latency histogram boundaries for the instrumented batch, in
/// nanoseconds (log-spaced, 100 ns – 100 ms).
const LATENCY_BOUNDARIES_NS: &[u64] = &[
    100,
    250,
    500,
    1_000,
    2_500,
    5_000,
    10_000,
    25_000,
    50_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
];

struct RealParams {
    threads: usize,
    ops: u64,
    samples: usize,
    read_pct: u64,
    value_bound: u64,
}

fn real_params(spec: &ScenarioSpec, quick: bool) -> RealParams {
    let (threads, ops, samples) = match &spec.real {
        Some(r) => (r.threads, r.ops_per_thread, r.samples),
        None => (spec.n, 20_000, 7),
    };
    RealParams {
        threads,
        ops: if quick { (ops / 20).max(1) } else { ops },
        samples: if quick { samples.min(3) } else { samples },
        read_pct: spec.read_pct as u64,
        value_bound: spec.value_bound.max(1),
    }
}

fn real_capacity(spec: &ScenarioSpec, p: &RealParams) -> u64 {
    spec.capacity.unwrap_or(match spec.family {
        // Writers draw values below `value_bound`, so it doubles as the
        // AAC capacity (the historical W4 convention).
        Family::MaxReg => p.value_bound,
        Family::Counter | Family::Snapshot => p.ops * p.threads as u64 + 1,
    })
}

/// The stable kind name for one real-world operation — the same names
/// [`ruo_metrics::op_kind`] assigns sim-world descriptors, so both
/// worlds' `steps` blocks key identically.
fn real_op_kind(obj: &RealObject, is_read: bool) -> &'static str {
    match (obj, is_read) {
        (RealObject::MaxReg(_), true) => "read_max",
        (RealObject::MaxReg(_), false) => "write_max",
        (RealObject::Counter(_), true) => "counter_read",
        (RealObject::Counter(_), false) => "counter_increment",
        (RealObject::Snapshot(_), true) => "scan",
        (RealObject::Snapshot(_), false) => "update",
    }
}

/// One contended batch over a fresh object; mirrors the historical W4
/// harness loops exactly (per-thread `SplitMix64::new(0x9e37 + t)`
/// streams, XOR sink against dead-code elimination). When `instruments`
/// is set, every operation is additionally timed into the latency
/// tracker and counted by the certifier — instrumented batches are
/// never the timed ones. When `steps` is set (and the
/// [`CountingMem`] layer is enabled), each thread tallies per-op
/// primitive counts locally and merges them into the shared aggregate at
/// batch end.
fn real_batch(
    obj: &RealObject,
    p: &RealParams,
    sink: &AtomicU64,
    instruments: Option<(&LatencyTracker, &ProgressCertifier)>,
    steps: Option<&Mutex<StepStats>>,
) {
    std::thread::scope(|s| {
        for t in 0..p.threads {
            s.spawn(move || {
                let mut rng = SplitMix64::new(0x9e37 + t as u64);
                let mut acc = 0u64;
                let pid = ProcessId(t);
                let mut local = steps.map(|_| StepStats::new());
                for i in 0..p.ops {
                    let started = instruments.map(|_| Instant::now());
                    if local.is_some() {
                        CountingMem::begin_op();
                    }
                    let is_read = rng.gen_below(100) < p.read_pct;
                    if is_read {
                        acc ^= match obj {
                            RealObject::MaxReg(r) => r.read_max(),
                            RealObject::Counter(c) => c.read(),
                            RealObject::Snapshot(sn) => sn.scan().iter().sum::<u64>(),
                        };
                    } else {
                        match obj {
                            RealObject::MaxReg(r) => r.write_max(pid, rng.gen_below(p.value_bound)),
                            RealObject::Counter(c) => c.increment(pid),
                            RealObject::Snapshot(sn) => sn.update(pid, i + 1),
                        }
                    }
                    if let Some(st) = &mut local {
                        let counts = PrimCounts::from(CountingMem::take_op_counts());
                        st.record_op(real_op_kind(obj, is_read), counts.total());
                        st.record_prims(&counts);
                    }
                    if let (Some(start), Some((lat, cert))) = (started, instruments) {
                        lat.observe(pid, start.elapsed().as_nanos() as u64);
                        cert.record_completion(pid, 1);
                    }
                }
                if let (Some(st), Some(shared)) = (local, steps) {
                    shared.lock().expect("steps poisoned").merge(&st);
                }
                sink.fetch_xor(acc, Ordering::Relaxed);
            });
        }
    });
}

/// Runs the contended-throughput batch (fresh object per batch, one
/// warm-up, median of `samples` timed runs), then one instrumented
/// batch for the latency histogram and progress certificate.
///
/// When the spec has a `trace` section, the counting layer
/// ([`CountingMem`], a process-wide switch) is enabled around the
/// instrumented batch only — the timed batches always run with counting
/// disabled, keeping throughput numbers comparable to untraced runs.
/// Event-level export (`jsonl`/`chrome`) is a sim/explore capability;
/// real threads record counts, not events.
///
/// With a `telemetry` section, batch-progress scalars (`batches`,
/// `ops_done`, `batch_best_ns`, `batch_worst_ns`) are sampled every
/// `every` timed batches into the report's `telemetry` block, ticked by
/// the batch index (the warm-up batch is not sampled).
pub fn run_real(spec: &ScenarioSpec, quick: bool) -> Result<ScenarioReport, EngineError> {
    let started = Instant::now();
    let entry = find(spec.family, &spec.impl_id)?;
    if wants_export(spec) {
        return Err(EngineError::Unsupported(
            "real threads record step counts, not events; \
             jsonl/chrome trace export requires the sim or explore engine"
                .into(),
        ));
    }
    validate_accuracy(spec, entry)?;
    let p = real_params(spec, quick);
    let params = BuildParams {
        n: p.threads,
        capacity: real_capacity(spec, &p),
        root_fast_path: spec.root_fast_path,
        accuracy_k: spec.accuracy_k(),
    };
    let sink = AtomicU64::new(0);
    let mut telem = spec.telemetry.as_ref().map(RealTelemetry::new);
    let mut times: Vec<f64> = Vec::with_capacity(p.samples);
    for sample in 0..=p.samples {
        let obj = entry.build_real(&params)?;
        let start = Instant::now();
        real_batch(&obj, &p, &sink, None, None);
        if sample > 0 {
            // Sample 0 is the warm-up.
            let elapsed_ns = start.elapsed().as_nanos();
            times.push(elapsed_ns as f64);
            if let Some(t) = &mut telem {
                t.record_batch(
                    (sample - 1) as u64,
                    p.ops * p.threads as u64,
                    elapsed_ns as u64,
                );
            }
        }
    }
    times.sort_by(|a, b| a.total_cmp(b));
    let median_ns = times[times.len() / 2];

    let tracker = LatencyTracker::new(p.threads, LATENCY_BOUNDARIES_NS);
    let certifier = ProgressCertifier::new(p.threads, 1);
    let obj = entry.build_real(&params)?;
    let steps = wants_steps(spec).then(|| Mutex::new(StepStats::new()));
    if steps.is_some() {
        CountingMem::enable();
    }
    real_batch(
        &obj,
        &p,
        &sink,
        Some((&tracker, &certifier)),
        steps.as_ref(),
    );
    if steps.is_some() {
        CountingMem::disable();
    }
    let latency = tracker.report();

    let total_ops = p.ops * p.threads as u64;
    let mut report = ScenarioReport::new(spec, quick);
    if let Some(a) = &spec.accuracy {
        report.set("accuracy_k", a.k);
    }
    report.set("threads", p.threads as u64);
    report.set("ops_per_thread", p.ops);
    report.set("total_ops", total_ops);
    report.set("samples", p.samples as u64);
    report.set("latency_peak_ns", latency.peak);
    if let Some(p50) = latency.p50 {
        report.set("latency_p50_ns", p50);
    }
    if let Some(p99) = latency.p99 {
        report.set("latency_p99_ns", p99);
    }
    report.set_metric("median_ns", median_ns);
    report.set_metric("ns_per_op", median_ns / total_ops as f64);
    report.set_metric("mops_per_s", total_ops as f64 / median_ns * 1e3);
    match certifier.certify() {
        Ok(cert) => {
            report.set("cert_ok", 1);
            report.set("cert_completed", cert.completed);
        }
        Err(v) => {
            report.set("cert_ok", 0);
            report.ok = false;
            report.note(format!("progress certification failed: {v}"));
        }
    }
    if let Some(shared) = steps {
        report.steps = Some(shared.into_inner().expect("steps poisoned"));
    }
    report.telemetry = telem.map(|t| TelemetryBlock::from_sampler(&t.sampler));
    // Fold the sink into a counter so the XOR accumulators stay
    // observable (and the optimizer keeps the reads).
    report.set("sink", sink.load(Ordering::Relaxed));
    report.set_metric("duration_ms", started.elapsed().as_secs_f64() * 1e3);
    Ok(report)
}

// ---------------------------------------------------------------------
// Explore engine
// ---------------------------------------------------------------------

/// A scenario's exploration scope, ready for [`ruo_sim::explore`]: the
/// setup closure (fresh memory + machines per schedule), the op
/// descriptors, and the checker's initial value.
pub struct ExploreParts {
    /// Builds a fresh memory and machine vector for one schedule
    /// (`Sync` so [`explore_parallel`] workers can each call it).
    pub setup: Box<dyn Fn() -> (Memory, Vec<Machine>) + Sync>,
    /// One descriptor per machine.
    pub ops: Vec<ExploreOp>,
    /// The checker's initial object value (the seed update, if any).
    pub initial: i64,
}

impl std::fmt::Debug for ExploreParts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExploreParts")
            .field("ops", &self.ops)
            .field("initial", &self.initial)
            .finish()
    }
}

/// Builds the exploration scope a spec describes.
///
/// Snapshot scopes are unsupported (scan results are vectors, which the
/// explorer's single-word op results cannot carry), as are seed updates
/// on counters (the counter checker has no initial-value parameter).
pub fn explore_parts(spec: &ScenarioSpec) -> Result<ExploreParts, EngineError> {
    let entry = find(spec.family, &spec.impl_id)?;
    if !entry.has_sim() {
        // Surface the standard error shape.
        return Err(entry
            .build_sim(
                &mut Memory::new(),
                &BuildParams {
                    n: spec.n,
                    capacity: sim_capacity(spec),
                    root_fast_path: spec.root_fast_path,
                    accuracy_k: spec.accuracy_k(),
                },
            )
            .err()
            .map(EngineError::Build)
            .unwrap_or_else(|| EngineError::Unsupported("impl has no sim face".into())));
    }
    let espec = spec.explore.as_ref().ok_or_else(|| {
        EngineError::Unsupported("engine \"explore\" requires an explore section".into())
    })?;
    if spec.family == Family::Snapshot {
        return Err(EngineError::Unsupported(
            "snapshot scopes cannot be explored: scans return vectors, \
             and the explorer carries single-word results only"
                .into(),
        ));
    }
    if espec.seed_update.is_some() && spec.family != Family::MaxReg {
        return Err(EngineError::Unsupported(
            "seed_update is only meaningful for max registers \
             (the counter checker has no initial-value parameter)"
                .into(),
        ));
    }
    // Validate construction once, eagerly, so bad capacities error here
    // rather than panicking inside the search.
    build_sim_object(spec)?;
    let scope_spec = spec.clone();
    let scope = espec.clone();
    let setup: Box<dyn Fn() -> (Memory, Vec<Machine>) + Sync> = Box::new(move || {
        let (mut mem, obj) = build_sim_object(&scope_spec).expect("validated above");
        if let Some(seed_v) = scope.seed_update {
            if let SimObject::MaxReg(reg) = &obj {
                run_solo(&mut mem, ProcessId(0), reg.write_max(ProcessId(0), seed_v));
            }
        }
        let machines = scope
            .ops
            .iter()
            .map(|op| {
                let pid = ProcessId(op.pid);
                match (&obj, op.kind) {
                    (SimObject::MaxReg(r), OpKind::Update) => r.write_max(pid, op.value),
                    (SimObject::MaxReg(r), OpKind::Read) => r.read_max(pid),
                    (SimObject::Counter(c), OpKind::Update) => c.increment(pid),
                    (SimObject::Counter(c), OpKind::Read) => c.read(pid),
                    (SimObject::Snapshot(_), _) => unreachable!("rejected above"),
                }
            })
            .collect();
        (mem, machines)
    });
    let ops = espec
        .ops
        .iter()
        .map(|op| ExploreOp {
            pid: ProcessId(op.pid),
            desc: match (spec.family, op.kind) {
                (Family::MaxReg, OpKind::Update) => OpDesc::WriteMax(op.value as i64),
                (Family::MaxReg, OpKind::Read) => OpDesc::ReadMax,
                (Family::Counter, OpKind::Update) => OpDesc::CounterIncrement,
                (Family::Counter, OpKind::Read) => OpDesc::CounterRead,
                (Family::Snapshot, _) => unreachable!("rejected above"),
            },
            returns_value: op.kind == OpKind::Read,
        })
        .collect();
    Ok(ExploreParts {
        setup,
        ops,
        initial: espec.seed_update.map_or(0, |v| v as i64),
    })
}

/// Runs the scope's machines to completion sequentially (each op solo,
/// in declaration order) against a fresh setup, attributing every event:
/// the *canonical schedule* exported when an explore scenario asks for a
/// trace. The setup's seed update (if any) appears as the first op.
fn explore_canonical_trace(parts: &ExploreParts, spec: &ScenarioSpec) -> StepTrace {
    let (mut mem, machines) = (parts.setup)();
    let mut history = History::new();
    let seed_steps = mem.log().len();
    if seed_steps > 0 {
        let v = spec
            .explore
            .as_ref()
            .and_then(|e| e.seed_update)
            .unwrap_or(0);
        history.push(OpRecord {
            pid: ProcessId(0),
            desc: OpDesc::WriteMax(v as i64),
            invoke: 0,
            response: Some(seed_steps),
            output: Some(OpOutput::Unit),
            steps: seed_steps,
        });
    }
    for (machine, op) in machines.into_iter().zip(&parts.ops) {
        let invoke = mem.log().len();
        let (result, steps) = run_solo(&mut mem, op.pid, machine);
        let response = mem.log().len().max(invoke + 1);
        history.push(OpRecord {
            pid: op.pid,
            desc: op.desc.clone(),
            invoke,
            response: Some(response),
            output: Some(if op.returns_value {
                OpOutput::Value(result)
            } else {
                OpOutput::Unit
            }),
            steps,
        });
    }
    trace_execution(mem.log(), &history)
}

/// Explores every schedule (and crash placement, per the budget) of the
/// scope, checking each history. `quick` is accepted for interface
/// symmetry but ignored: schedule counts are the verdict, so scaling
/// them down would change what the scenario asserts.
///
/// With a `trace` section, the `steps` block aggregates per-op step
/// counts over *every* explored schedule (the primitive breakdown comes
/// from the search's forward-execution tallies, so incremental replay
/// means `prims.total()` can undercut the per-op sums); `jsonl`/`chrome`
/// exports carry the canonical sequential schedule of the scope.
pub fn run_explore(spec: &ScenarioSpec, quick: bool) -> Result<ScenarioReport, EngineError> {
    let engine_started = Instant::now();
    if spec.telemetry.is_some() {
        return Err(EngineError::Unsupported(
            "telemetry sampling ticks along seeds (sim) or batches (real); \
             the explorer enumerates schedules and has no sampling clock"
                .into(),
        ));
    }
    let parts = explore_parts(spec)?;
    let espec = spec.explore.as_ref().expect("explore_parts checked");
    let cfg = ExploreConfig {
        max_schedules: espec.max_schedules,
        prune: espec.prune,
        max_crashes: espec.max_crashes,
    };
    let initial = parts.initial;
    let ckind = resolve_checker(spec);
    let family = spec.family;
    let k = spec.accuracy_k();
    let verdict = move |h: &History| -> bool {
        match (ckind, family) {
            (CheckerKind::Auto, _) => unreachable!("resolve_checker never returns Auto"),
            (CheckerKind::Fast, Family::MaxReg) => check_max_register_k(h, initial, k).is_ok(),
            (CheckerKind::Fast, Family::Counter) => check_counter_k(h, k).is_ok(),
            (CheckerKind::Interval, Family::MaxReg) => {
                check_interval_k(h, &SeqSpec::MaxRegister { initial }, k).is_ok()
            }
            (CheckerKind::Interval, Family::Counter) => {
                check_interval_k(h, &SeqSpec::Counter, k).is_ok()
            }
            (CheckerKind::Exact, Family::MaxReg) => {
                check_exact_k(h, &SeqSpec::MaxRegister { initial }, k).is_ok()
            }
            (CheckerKind::Exact, Family::Counter) => check_exact_k(h, &SeqSpec::Counter, k).is_ok(),
            (_, Family::Snapshot) => unreachable!("rejected by explore_parts"),
        }
    };
    let mut steps = wants_steps(spec).then(StepStats::new);
    let start = Instant::now();
    let summary = if espec.workers > 1 {
        // The parallel search needs a `Fn + Sync` checker; step
        // aggregation moves behind a mutex (uncontended relative to the
        // per-schedule search work).
        let shared_steps = steps.take().map(Mutex::new);
        let check = |h: &History| -> bool {
            if let Some(m) = &shared_steps {
                m.lock().expect("steps poisoned").record_history(h);
            }
            verdict(h)
        };
        let summary = explore_parallel(&*parts.setup, &parts.ops, &check, cfg, espec.workers);
        steps = shared_steps.map(|m| m.into_inner().expect("steps poisoned"));
        summary
    } else {
        let mut check = |h: &History| -> bool {
            if let Some(acc) = &mut steps {
                acc.record_history(h);
            }
            verdict(h)
        };
        explore(&*parts.setup, &parts.ops, &mut check, cfg)
    };
    let seconds = start.elapsed().as_secs_f64();

    let mut report = ScenarioReport::new(spec, quick);
    report.checker = Some(ckind.name().into());
    if let Some(a) = &spec.accuracy {
        report.set("accuracy_k", a.k);
    }
    report.set("schedules", summary.schedules as u64);
    report.set("workers", espec.workers as u64);
    report.set("truncated", summary.truncated as u64);
    report.set("violation", summary.violation.is_some() as u64);
    report.set("pruned_branches", summary.stats.pruned_branches as u64);
    report.set("executed_steps", summary.stats.executed_steps);
    report.set("replay_steps_saved", summary.stats.replay_steps_saved);
    report.set("peak_depth", summary.stats.peak_depth as u64);
    report.set("crash_branches", summary.stats.crash_branches as u64);
    report.set_metric("seconds", seconds);
    if let Some(mut acc) = steps {
        acc.record_prims(&PrimCounts {
            reads: summary.stats.reads,
            writes: summary.stats.writes,
            cas_ok: summary.stats.cas_ok,
            cas_fail: summary.stats.cas_fail,
        });
        report.steps = Some(acc);
    }
    if let Some(tspec) = &spec.trace {
        if wants_export(spec) {
            let trace = explore_canonical_trace(&parts, spec);
            export_trace(tspec, &trace, &mut report)?;
        }
    }
    report.ok = summary.violation.is_none() && !summary.truncated;
    if let Some(pids) = &summary.violation {
        report.note(format!(
            "violating schedule found (pids {:?}, crashed {:?})",
            pids, summary.violation_crashed
        ));
    }
    if summary.truncated {
        report.note(format!(
            "search truncated at {} schedules",
            summary.schedules
        ));
    }
    report.set_metric("duration_ms", engine_started.elapsed().as_secs_f64() * 1e3);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CrashAt, ExploreSpec, ScenarioOp};

    #[test]
    fn sim_engine_sweeps_cleanly_and_certifies() {
        let mut spec = ScenarioSpec::new("t", Family::MaxReg, "tree", EngineKind::Sim, 4);
        spec.seeds = 20;
        spec.mix = OpMix::Alternate;
        spec.certify = true;
        spec.faults = Some(FaultSpec::Random {
            crashes: 1,
            max_after: 40,
        });
        let r = run_sim(&spec, false).unwrap();
        assert!(r.ok, "notes: {:?}", r.notes);
        assert_eq!(r.checker.as_deref(), Some("interval"), "auto resolves");
        assert_eq!(r.counter("seeds"), Some(20));
        assert_eq!(r.counter("violations"), Some(0));
        assert_eq!(r.counter("cert_ok"), Some(1));
        assert!(r.counter("crashed_runs").unwrap() > 0);
    }

    #[test]
    fn sim_engine_handles_every_sim_face() {
        for entry in crate::registry::registry() {
            if !entry.has_sim() {
                continue;
            }
            let mut spec = ScenarioSpec::new("t", entry.family, entry.id, EngineKind::Sim, 3);
            spec.seeds = 5;
            spec.ops_per_process = 4;
            spec.step_budget = Some(500_000);
            spec.capacity = entry.caps.bounded_capacity.then_some(64);
            spec.value_bound = 50;
            let r = run_sim(&spec, false)
                .unwrap_or_else(|e| panic!("{}/{}: {e}", entry.family, entry.id));
            assert!(r.ok, "{}/{}: {:?}", entry.family, entry.id, r.notes);
        }
    }

    #[test]
    fn accuracy_k_runs_approx_faces_under_every_checker() {
        use crate::spec::AccuracySpec;
        for family in [Family::Counter, Family::MaxReg] {
            for checker in [CheckerKind::Fast, CheckerKind::Interval, CheckerKind::Exact] {
                let mut spec = ScenarioSpec::new("t", family, "approx", EngineKind::Sim, 3);
                spec.seeds = 5;
                spec.ops_per_process = 4;
                spec.checker = checker;
                spec.accuracy = Some(AccuracySpec { k: 4 });
                let r = run_sim(&spec, false)
                    .unwrap_or_else(|e| panic!("{family}/{}: {e}", checker.name()));
                assert!(r.ok, "{family}/{}: {:?}", checker.name(), r.notes);
                assert_eq!(r.counter("accuracy_k"), Some(4));
                assert_eq!(r.counter("violations"), Some(0));
            }
        }
    }

    #[test]
    fn accuracy_k_is_rejected_on_exact_implementations() {
        use crate::spec::AccuracySpec;
        // k > 1 on an exact face would have the relaxed checkers
        // certify a guarantee the object never made.
        let mut spec = ScenarioSpec::new("t", Family::Counter, "farray", EngineKind::Sim, 2);
        spec.accuracy = Some(AccuracySpec { k: 2 });
        assert!(matches!(
            run_sim(&spec, false),
            Err(EngineError::Unsupported(_))
        ));
        // …and k = 1 on an exact face is just an explicit spelling of
        // the default.
        spec.accuracy = Some(AccuracySpec { k: 1 });
        spec.seeds = 2;
        let r = run_sim(&spec, false).unwrap();
        assert!(r.ok, "notes: {:?}", r.notes);
        assert_eq!(r.counter("accuracy_k"), Some(1));
    }

    #[test]
    fn explicit_crash_plans_leave_pending_work() {
        let mut spec = ScenarioSpec::new("t", Family::Counter, "farray", EngineKind::Sim, 3);
        spec.seeds = 10;
        spec.mix = OpMix::Alternate;
        spec.faults = Some(FaultSpec::Explicit {
            crashes: vec![CrashAt { pid: 1, after: 3 }],
        });
        let r = run_sim(&spec, false).unwrap();
        assert!(r.ok, "notes: {:?}", r.notes);
        assert_eq!(r.counter("crashed_runs"), Some(10));
    }

    #[test]
    fn explore_engine_checks_a_small_scope() {
        let mut spec = ScenarioSpec::new("t", Family::MaxReg, "tree", EngineKind::Explore, 2);
        spec.explore = Some(ExploreSpec {
            seed_update: Some(1),
            ops: vec![
                ScenarioOp {
                    pid: 0,
                    kind: OpKind::Update,
                    value: 2,
                },
                ScenarioOp {
                    pid: 1,
                    kind: OpKind::Read,
                    value: 0,
                },
            ],
            max_schedules: 100_000,
            prune: true,
            max_crashes: 1,
            workers: 1,
        });
        let r = run_explore(&spec, false).unwrap();
        assert!(r.ok, "notes: {:?}", r.notes);
        assert_eq!(r.checker.as_deref(), Some("fast"));
        assert!(r.counter("schedules").unwrap() > 1);
        assert!(r.counter("crash_branches").unwrap() > 0);
        // The same scope searched by 4 workers visits the same node
        // set: every counter the report carries must match.
        spec.explore.as_mut().unwrap().workers = 4;
        let p = run_explore(&spec, false).unwrap();
        assert!(p.ok, "notes: {:?}", p.notes);
        for key in [
            "schedules",
            "pruned_branches",
            "executed_steps",
            "replay_steps_saved",
            "peak_depth",
            "crash_branches",
        ] {
            assert_eq!(p.counter(key), r.counter(key), "{key}");
        }
        assert_eq!(p.counter("workers"), Some(4));
    }

    #[test]
    fn explore_engine_rejects_snapshot_scopes() {
        let mut spec = ScenarioSpec::new(
            "t",
            Family::Snapshot,
            "double_collect",
            EngineKind::Explore,
            2,
        );
        spec.explore = Some(ExploreSpec {
            seed_update: None,
            ops: vec![ScenarioOp {
                pid: 0,
                kind: OpKind::Update,
                value: 1,
            }],
            max_schedules: 10,
            prune: true,
            max_crashes: 0,
            workers: 1,
        });
        assert!(matches!(
            run_explore(&spec, false),
            Err(EngineError::Unsupported(_))
        ));
    }

    /// Serializes tests that run the real engine with tracing: the
    /// counting layer is a process-wide switch, so two such tests
    /// interleaving would clip each other's tallies.
    fn counting_gate() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn tmp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir()
            .join(format!("ruo-trace-test-{}", std::process::id()))
            .join(name)
    }

    fn trace_to(jsonl: Option<&std::path::Path>, chrome: Option<&std::path::Path>) -> TraceSpec {
        TraceSpec {
            steps: true,
            jsonl: jsonl.map(|p| p.to_string_lossy().into_owned()),
            chrome: chrome.map(|p| p.to_string_lossy().into_owned()),
        }
    }

    #[test]
    fn sim_engine_reports_steps_and_exports_traces() {
        use crate::json::Json;
        let jsonl = tmp_path("sim.jsonl");
        let chrome = tmp_path("sim.chrome.json");
        let mut spec = ScenarioSpec::new("t", Family::MaxReg, "tree", EngineKind::Sim, 3);
        spec.seeds = 3;
        spec.ops_per_process = 4;
        spec.trace = Some(trace_to(Some(&jsonl), Some(&chrome)));
        let r = run_sim(&spec, false).unwrap();
        assert!(r.ok, "notes: {:?}", r.notes);
        let steps = r.steps.as_ref().expect("steps block");
        assert!(steps.max_steps("read_max").unwrap() >= 1);
        assert!(steps.max_steps("write_max").unwrap() > 1);
        // Sim attribution is exact: the primitive breakdown partitions
        // exactly the steps the per-kind aggregates account for.
        let per_op_total: u64 = steps.per_op().iter().map(|(_, k)| k.total).sum();
        assert_eq!(steps.prims.total(), per_op_total);
        // The JSONL stream declares its schema; the Chrome trace is
        // valid JSON in the trace_event object format.
        let head = std::fs::read_to_string(&jsonl).unwrap();
        assert!(head
            .lines()
            .next()
            .unwrap()
            .contains("\"schema\":\"ruo-trace-v1\""));
        let doc = Json::parse(&std::fs::read_to_string(&chrome).unwrap()).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert!(!events.is_empty());
        for ev in events {
            assert_eq!(ev.get("ph").and_then(Json::as_str), Some("X"));
            assert!(ev.get("ts").and_then(Json::as_u64).is_some());
            assert!(ev.get("dur").and_then(Json::as_u64).unwrap() >= 1);
            assert!(ev.get("tid").and_then(Json::as_u64).is_some());
        }
        std::fs::remove_dir_all(jsonl.parent().unwrap()).ok();
    }

    #[test]
    fn real_engine_reports_steps_through_the_counting_layer() {
        let _g = counting_gate();
        let mut spec = ScenarioSpec::new("t", Family::Counter, "farray", EngineKind::Real, 2);
        spec.real = Some(crate::spec::RealSpec {
            threads: 2,
            ops_per_thread: 100,
            samples: 1,
        });
        spec.trace = Some(TraceSpec::default());
        let r = run_real(&spec, false).unwrap();
        assert!(r.ok, "notes: {:?}", r.notes);
        let steps = r.steps.as_ref().expect("steps block");
        let ops: u64 = steps.per_op().iter().map(|(_, k)| k.ops).sum();
        assert_eq!(ops, 200, "every op of the instrumented batch counted");
        assert!(steps.max_steps("counter_increment").unwrap() >= 1);
        let per_op_total: u64 = steps.per_op().iter().map(|(_, k)| k.total).sum();
        assert_eq!(steps.prims.total(), per_op_total);
        // Event-level export is a sim/explore capability.
        spec.trace = Some(TraceSpec {
            steps: true,
            jsonl: Some("unused.jsonl".into()),
            chrome: None,
        });
        assert!(matches!(
            run_real(&spec, false),
            Err(EngineError::Unsupported(_))
        ));
    }

    #[test]
    fn explore_engine_aggregates_steps_and_exports_canonical_trace() {
        use crate::json::Json;
        let chrome = tmp_path("explore.chrome.json");
        let mut spec = ScenarioSpec::new("t", Family::MaxReg, "tree", EngineKind::Explore, 2);
        spec.explore = Some(ExploreSpec {
            seed_update: Some(1),
            ops: vec![
                ScenarioOp {
                    pid: 0,
                    kind: OpKind::Update,
                    value: 2,
                },
                ScenarioOp {
                    pid: 1,
                    kind: OpKind::Read,
                    value: 0,
                },
            ],
            max_schedules: 100_000,
            prune: true,
            max_crashes: 0,
            workers: 1,
        });
        spec.trace = Some(trace_to(None, Some(&chrome)));
        let r = run_explore(&spec, false).unwrap();
        assert!(r.ok, "notes: {:?}", r.notes);
        let steps = r.steps.as_ref().expect("steps block");
        // Aggregated over every explored schedule, not just one.
        let ops: u64 = steps.per_op().iter().map(|(_, k)| k.ops).sum();
        assert!(ops > 2, "aggregate spans schedules, got {ops} ops");
        assert!(steps.max_steps("write_max").is_some());
        assert!(steps.prims.total() > 0);
        let doc = Json::parse(&std::fs::read_to_string(&chrome).unwrap()).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        // Canonical schedule: seed write + the two scope ops, plus one
        // slice per attributed primitive event.
        assert!(events.len() > 3);
        std::fs::remove_dir_all(chrome.parent().unwrap()).ok();
    }

    #[test]
    fn every_engine_emits_the_same_steps_shape() {
        let _g = counting_gate();
        let mut sim = ScenarioSpec::new("t", Family::MaxReg, "tree", EngineKind::Sim, 2);
        sim.seeds = 2;
        sim.ops_per_process = 2;
        sim.trace = Some(TraceSpec::default());
        let mut real = ScenarioSpec::new("t", Family::MaxReg, "cas_cell", EngineKind::Real, 2);
        real.real = Some(crate::spec::RealSpec {
            threads: 2,
            ops_per_thread: 50,
            samples: 1,
        });
        real.trace = Some(TraceSpec::default());
        let mut explore = ScenarioSpec::new("t", Family::MaxReg, "tree", EngineKind::Explore, 2);
        explore.explore = Some(ExploreSpec {
            seed_update: None,
            ops: vec![
                ScenarioOp {
                    pid: 0,
                    kind: OpKind::Update,
                    value: 1,
                },
                ScenarioOp {
                    pid: 1,
                    kind: OpKind::Read,
                    value: 0,
                },
            ],
            max_schedules: 10_000,
            prune: true,
            max_crashes: 0,
            workers: 2,
        });
        explore.trace = Some(TraceSpec::default());
        for (spec, label) in [(sim, "sim"), (real, "real"), (explore, "explore")] {
            let r = run(&spec, false).unwrap_or_else(|e| panic!("{label}: {e}"));
            let steps = r
                .steps
                .as_ref()
                .unwrap_or_else(|| panic!("{label}: no steps"));
            assert!(!steps.is_empty(), "{label}: empty steps");
            assert!(
                steps.max_steps("write_max").is_some(),
                "{label}: write_max missing"
            );
            // One serialized shape for all three engines, parseable back.
            let parsed = crate::report::ScenarioReport::parse(&r.to_json())
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            assert_eq!(parsed, r, "{label}: steps block must round-trip");
        }
    }

    #[test]
    fn sim_engine_samples_telemetry_along_the_seed_sweep() {
        let mut spec = ScenarioSpec::new("t", Family::Counter, "farray", EngineKind::Sim, 3);
        spec.seeds = 6;
        spec.ops_per_process = 4;
        spec.telemetry = Some(crate::spec::TelemetrySpec {
            capacity: 8,
            every: 2,
        });
        let r = run_sim(&spec, false).unwrap();
        assert!(r.ok, "notes: {:?}", r.notes);
        let t = r.telemetry.as_ref().expect("telemetry block");
        // Seeds 0, 2, 4 land on the every-2 cadence.
        assert_eq!(t.samples, 3);
        let ok_curve = t
            .curves
            .iter()
            .find(|(n, _)| n == "ok_runs")
            .map(|(_, c)| c.clone())
            .expect("ok_runs curve");
        assert_eq!(
            ok_curve.iter().map(|(tick, _)| *tick).collect::<Vec<_>>(),
            vec![0, 2, 4]
        );
        // The sweep passes, so the counter climbs one per seed.
        assert_eq!(
            ok_curve.iter().map(|(_, v)| *v).collect::<Vec<_>>(),
            vec![1, 3, 5]
        );
        assert!(t.curves.iter().any(|(n, _)| n == "largest_history"));
        assert!(r.metric("duration_ms").unwrap() >= 0.0);
        // The block round-trips through the report codec.
        let parsed = crate::report::ScenarioReport::parse(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn real_engine_samples_telemetry_per_timed_batch() {
        let mut spec = ScenarioSpec::new("t", Family::Counter, "farray", EngineKind::Real, 2);
        spec.real = Some(crate::spec::RealSpec {
            threads: 2,
            ops_per_thread: 50,
            samples: 4,
        });
        spec.telemetry = Some(crate::spec::TelemetrySpec {
            capacity: 2,
            every: 1,
        });
        let r = run_real(&spec, false).unwrap();
        assert!(r.ok, "notes: {:?}", r.notes);
        let t = r.telemetry.as_ref().expect("telemetry block");
        // Four timed batches sampled; the ring keeps the last two.
        assert_eq!(t.samples, 4);
        let batches = t
            .curves
            .iter()
            .find(|(n, _)| n == "batches")
            .map(|(_, c)| c.clone())
            .expect("batches curve");
        assert_eq!(batches, vec![(2, 3), (3, 4)]);
        let ops = t
            .curves
            .iter()
            .find(|(n, _)| n == "ops_done")
            .map(|(_, c)| c.clone())
            .expect("ops_done curve");
        assert_eq!(ops.last().unwrap().1, 400, "4 batches x 2 threads x 50");
        assert!(t.curves.iter().any(|(n, _)| n == "batch_best_ns"));
        assert!(r.metric("duration_ms").unwrap() > 0.0);
    }

    #[test]
    fn explore_engine_rejects_telemetry_and_reports_duration() {
        let mut spec = ScenarioSpec::new("t", Family::MaxReg, "tree", EngineKind::Explore, 2);
        spec.explore = Some(ExploreSpec {
            seed_update: None,
            ops: vec![
                ScenarioOp {
                    pid: 0,
                    kind: OpKind::Update,
                    value: 1,
                },
                ScenarioOp {
                    pid: 1,
                    kind: OpKind::Read,
                    value: 0,
                },
            ],
            max_schedules: 10_000,
            prune: true,
            max_crashes: 0,
            workers: 1,
        });
        spec.telemetry = Some(crate::spec::TelemetrySpec::default());
        assert!(matches!(
            run_explore(&spec, false),
            Err(EngineError::Unsupported(_))
        ));
        spec.telemetry = None;
        let r = run_explore(&spec, false).unwrap();
        assert!(r.ok, "notes: {:?}", r.notes);
        assert!(r.telemetry.is_none());
        assert!(r.metric("duration_ms").unwrap() >= 0.0);
    }

    #[test]
    fn every_engine_reports_wall_clock_duration() {
        let mut sim = ScenarioSpec::new("t", Family::Counter, "farray", EngineKind::Sim, 2);
        sim.seeds = 2;
        let r = run_sim(&sim, false).unwrap();
        assert!(r.metric("duration_ms").is_some(), "sim duration");
        let mut real = ScenarioSpec::new("t", Family::Counter, "farray", EngineKind::Real, 2);
        real.real = Some(crate::spec::RealSpec {
            threads: 2,
            ops_per_thread: 20,
            samples: 1,
        });
        let r = run_real(&real, false).unwrap();
        assert!(r.metric("duration_ms").is_some(), "real duration");
    }

    #[test]
    fn real_engine_reports_throughput_latency_and_certificate() {
        let mut spec = ScenarioSpec::new("t", Family::Counter, "farray", EngineKind::Real, 2);
        spec.real = Some(crate::spec::RealSpec {
            threads: 2,
            ops_per_thread: 200,
            samples: 1,
        });
        let r = run_real(&spec, false).unwrap();
        assert!(r.ok, "notes: {:?}", r.notes);
        assert_eq!(r.counter("total_ops"), Some(400));
        assert_eq!(r.counter("cert_completed"), Some(400));
        assert!(r.metric("mops_per_s").unwrap() > 0.0);
        assert!(r.counter("latency_peak_ns").unwrap() > 0);
    }
}
