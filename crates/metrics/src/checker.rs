//! Gauges for linearizability-checking runs.

use std::fmt;
use std::sync::Arc;

use ruo_core::farray::{FArray, Sum};
use ruo_sim::{ProcessId, Word};

use crate::{MetricDesc, MetricKind, MetricsRegistry, Watermark};

/// Aggregated counters for a fleet of history-checker calls.
///
/// Soak and scenario sweeps verify thousands of histories per run; each
/// worker reports every decided history here, so a progress printer or
/// CI harness can read exact totals in `O(1)` off the f-array roots.
/// The watermark records the largest history any checker decided — the
/// direct evidence that large histories are being *decided* rather
/// than silently downgraded to a spot-check.
///
/// ```
/// use ruo_metrics::CheckerGauges;
/// use ruo_sim::ProcessId;
///
/// let gauges = CheckerGauges::new(2);
/// gauges.record(ProcessId(0), 10_000, true);
/// gauges.record(ProcessId(1), 32, false);
/// assert_eq!(gauges.histories(), 2);
/// assert_eq!(gauges.violations(), 1);
/// assert_eq!(gauges.largest_history(), 10_000);
/// ```
pub struct CheckerGauges {
    histories: FArray<Sum>,
    operations: FArray<Sum>,
    violations: FArray<Sum>,
    largest: Watermark,
}

impl fmt::Debug for CheckerGauges {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CheckerGauges")
            .field("histories", &self.histories())
            .field("operations", &self.operations())
            .field("violations", &self.violations())
            .field("largest_history", &self.largest_history())
            .finish()
    }
}

impl CheckerGauges {
    /// Creates gauges shared by `n` checker identities.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        CheckerGauges {
            histories: FArray::new(n),
            operations: FArray::new(n),
            violations: FArray::new(n),
            largest: Watermark::new(n),
        }
    }

    /// Folds one decided history into the totals: its operation count
    /// and whether the checker reported it linearizable. Wait-free:
    /// three single-writer slot updates plus one max-register write.
    pub fn record(&self, pid: ProcessId, ops: usize, ok: bool) {
        self.histories.update_with(pid, |cur| cur + 1);
        self.operations
            .update_with(pid, |cur| cur + Word::try_from(ops).unwrap_or(Word::MAX));
        if !ok {
            self.violations.update_with(pid, |cur| cur + 1);
        }
        self.largest.record(pid, ops as u64);
    }

    /// Folds a whole sweep's totals in one call — the same add-by-`k`
    /// idiom as [`crate::ExploreGauges::record`], for harnesses that
    /// see per-sweep counters rather than individual histories.
    /// `largest` is the operation count of the sweep's biggest history.
    pub fn record_sweep(
        &self,
        pid: ProcessId,
        histories: u64,
        operations: u64,
        violations: u64,
        largest: u64,
    ) {
        let w = |v: u64| Word::try_from(v).unwrap_or(Word::MAX);
        self.histories.update_with(pid, |cur| cur + w(histories));
        self.operations.update_with(pid, |cur| cur + w(operations));
        self.violations.update_with(pid, |cur| cur + w(violations));
        self.largest.record(pid, largest);
    }

    /// Total histories decided across all recorded calls.
    pub fn histories(&self) -> u64 {
        self.histories.read() as u64
    }

    /// Total operations across every decided history.
    pub fn operations(&self) -> u64 {
        self.operations.read() as u64
    }

    /// Histories the checker rejected.
    pub fn violations(&self) -> u64 {
        self.violations.read() as u64
    }

    /// Operation count of the largest history any checker decided.
    pub fn largest_history(&self) -> u64 {
        self.largest.get()
    }

    /// Registers every gauge under `prefix` — one `O(1)` root read per
    /// scalar.
    pub fn register_telemetry(self: &Arc<Self>, registry: &mut MetricsRegistry, prefix: &str) {
        type Row = (
            &'static str,
            fn(&CheckerGauges) -> &FArray<Sum>,
            &'static str,
            &'static str,
        );
        let counters: [Row; 3] = [
            (
                "histories",
                |g| &g.histories,
                "histories",
                "histories decided by the checker fleet",
            ),
            (
                "operations",
                |g| &g.operations,
                "operations",
                "operations across every decided history",
            ),
            (
                "violations",
                |g| &g.violations,
                "histories",
                "histories the checker rejected",
            ),
        ];
        for (name, field, unit, help) in counters {
            let g = Arc::clone(self);
            registry.register(
                MetricDesc::new(&format!("{prefix}{name}"), MetricKind::Counter, unit, help),
                move || field(&g).read() as u64,
            );
        }
        let g = Arc::clone(self);
        registry.register(
            MetricDesc::new(
                &format!("{prefix}largest_history"),
                MetricKind::Watermark,
                "operations",
                "operation count of the largest history decided",
            ),
            move || g.largest.get(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn totals_sum_and_largest_takes_the_max() {
        let g = CheckerGauges::new(2);
        g.record(ProcessId(0), 32, true);
        g.record(ProcessId(0), 64, false);
        g.record(ProcessId(1), 10_000, true);
        assert_eq!(g.histories(), 3);
        assert_eq!(g.operations(), 32 + 64 + 10_000);
        assert_eq!(g.violations(), 1);
        assert_eq!(g.largest_history(), 10_000);
    }

    #[test]
    fn sweep_records_fold_batch_totals() {
        let g = CheckerGauges::new(2);
        g.record_sweep(ProcessId(0), 2000, 64_000, 0, 32);
        g.record_sweep(ProcessId(1), 1, 10_000, 1, 10_000);
        assert_eq!(g.histories(), 2001);
        assert_eq!(g.operations(), 74_000);
        assert_eq!(g.violations(), 1);
        assert_eq!(g.largest_history(), 10_000);
    }

    #[test]
    fn fresh_gauges_read_zero() {
        let g = CheckerGauges::new(1);
        assert_eq!(g.histories(), 0);
        assert_eq!(g.operations(), 0);
        assert_eq!(g.violations(), 0);
        assert_eq!(g.largest_history(), 0);
    }

    #[test]
    fn concurrent_records_never_lose_counts() {
        let n = 4;
        let runs = 200;
        let g = Arc::new(CheckerGauges::new(n));
        std::thread::scope(|s| {
            for t in 0..n {
                let g = Arc::clone(&g);
                s.spawn(move || {
                    for i in 0..runs {
                        // Every fifth record is a violation.
                        g.record(ProcessId(t), 8 * (t + 1), i % 5 != 0);
                    }
                });
            }
        });
        let runs = runs as u64;
        let n = n as u64;
        assert_eq!(g.histories(), runs * n);
        assert_eq!(g.operations(), (8 + 16 + 24 + 32) * runs);
        assert_eq!(g.violations(), runs / 5 * n);
        assert_eq!(g.largest_history(), 8 * n);
    }
}
