//! A fixed-capacity time-series ring over registry snapshots.
//!
//! A [`SeriesSampler`] turns point-in-time [`TelemetrySnapshot`]s into
//! inspectable curves: call [`SeriesSampler::sample`] periodically and
//! read any scalar's history back with [`SeriesSampler::curve`]. The
//! tick source is *injected by the caller* — a seed index in the
//! simulator, a batch index in the real-thread harness, a logical
//! server tick in serve — so sampled runs stay deterministic: no
//! `Instant`, no wall clock, no hidden nondeterminism in sim.
//!
//! The ring holds the most recent `capacity` samples; older ones are
//! evicted. Sampling cost is one registry snapshot (wait-free, `O(1)`
//! loads per registered scalar) plus one ring slot write.
//!
//! ```
//! use ruo_metrics::{MetricsRegistry, SeriesSampler, Watermark};
//! use ruo_sim::ProcessId;
//! use std::sync::Arc;
//!
//! let depth = Arc::new(Watermark::new(2));
//! let mut reg = MetricsRegistry::new();
//! depth.register_into(&mut reg, "queue_depth_peak", "connections", "deepest queue");
//! let mut sampler = SeriesSampler::new(Arc::new(reg), 8);
//!
//! depth.record(ProcessId(0), 3);
//! sampler.sample(0);
//! depth.record(ProcessId(1), 9);
//! sampler.sample(1);
//!
//! assert_eq!(sampler.curve("queue_depth_peak"), vec![(0, 3), (1, 9)]);
//! ```

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use crate::{MetricsRegistry, TelemetrySnapshot};

/// A bounded ring of `(tick, snapshot)` samples over one registry.
///
/// Not shared: one sampler belongs to one sampling loop (`&mut self`);
/// the *registry* underneath is what concurrent recorders share.
pub struct SeriesSampler {
    registry: Arc<MetricsRegistry>,
    capacity: usize,
    samples: VecDeque<(u64, TelemetrySnapshot)>,
    /// Total samples ever taken (≥ `samples.len()` once the ring wraps).
    taken: u64,
}

impl fmt::Debug for SeriesSampler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SeriesSampler")
            .field("capacity", &self.capacity)
            .field("held", &self.samples.len())
            .field("taken", &self.taken)
            .finish()
    }
}

impl SeriesSampler {
    /// Creates a sampler holding at most `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(registry: Arc<MetricsRegistry>, capacity: usize) -> Self {
        assert!(capacity > 0, "sampler capacity must be positive");
        SeriesSampler {
            registry,
            capacity,
            samples: VecDeque::with_capacity(capacity),
            taken: 0,
        }
    }

    /// Takes one registry snapshot stamped with the caller's `tick`,
    /// evicting the oldest sample if the ring is full. Ticks must be
    /// non-decreasing (the caller owns the clock).
    ///
    /// # Panics
    ///
    /// Panics if `tick` is smaller than the last sampled tick.
    pub fn sample(&mut self, tick: u64) {
        if let Some((last, _)) = self.samples.back() {
            assert!(*last <= tick, "ticks must be non-decreasing");
        }
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
        }
        self.samples.push_back((tick, self.registry.snapshot()));
        self.taken += 1;
    }

    /// Maximum samples held.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Samples currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether nothing has been sampled yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total samples ever taken, including evicted ones.
    pub fn taken(&self) -> u64 {
        self.taken
    }

    /// The most recent sample.
    pub fn latest(&self) -> Option<&(u64, TelemetrySnapshot)> {
        self.samples.back()
    }

    /// One scalar's history as `(tick, value)` points, oldest first.
    /// Empty if the name is not registered (or nothing sampled).
    pub fn curve(&self, name: &str) -> Vec<(u64, u64)> {
        self.samples
            .iter()
            .filter_map(|(tick, snap)| snap.get(name).map(|v| (*tick, v)))
            .collect()
    }

    /// Every scalar's history at once: `(name, curve)` in ascending
    /// name order — the shape scenario reports embed.
    pub fn curves(&self) -> Vec<(String, Vec<(u64, u64)>)> {
        let Some((_, first)) = self.samples.front() else {
            return Vec::new();
        };
        first
            .entries()
            .iter()
            .map(|e| (e.desc.name.clone(), self.curve(&e.desc.name)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HealthEvent, HealthGauges};
    use ruo_sim::ProcessId;

    fn setup() -> (Arc<HealthGauges>, SeriesSampler) {
        let g = Arc::new(HealthGauges::new(2));
        let mut reg = MetricsRegistry::new();
        g.register_telemetry(&mut reg, "");
        (g, SeriesSampler::new(Arc::new(reg), 4))
    }

    #[test]
    fn curves_follow_the_recorded_values() {
        let (g, mut s) = setup();
        for tick in 0..3u64 {
            g.bump(ProcessId(0), HealthEvent::Served);
            g.record_queue_depth(ProcessId(1), tick * 2);
            s.sample(tick);
        }
        assert_eq!(s.curve("served"), vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(s.curve("queue_depth_peak"), vec![(0, 0), (1, 2), (2, 4)]);
        assert_eq!(s.curve("unknown"), vec![]);
    }

    #[test]
    fn ring_evicts_the_oldest_sample() {
        let (g, mut s) = setup();
        for tick in 0..6u64 {
            g.bump(ProcessId(0), HealthEvent::Admitted);
            s.sample(tick * 10);
        }
        assert_eq!(s.len(), 4);
        assert_eq!(s.taken(), 6);
        // Oldest two (ticks 0, 10) evicted.
        assert_eq!(
            s.curve("admitted"),
            vec![(20, 3), (30, 4), (40, 5), (50, 6)]
        );
        assert_eq!(s.latest().unwrap().0, 50);
    }

    #[test]
    fn curves_cover_every_registered_scalar() {
        let (g, mut s) = setup();
        assert!(s.curves().is_empty());
        g.bump(ProcessId(0), HealthEvent::Shed);
        s.sample(7);
        let all = s.curves();
        assert_eq!(all.len(), 12);
        // Ascending name order, one point per curve.
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(all.iter().all(|(_, c)| c.len() == 1));
        let shed = all.iter().find(|(n, _)| n == "shed").unwrap();
        assert_eq!(shed.1, vec![(7, 1)]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn regressing_ticks_panic() {
        let (_g, mut s) = setup();
        s.sample(5);
        s.sample(4);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let _ = SeriesSampler::new(Arc::new(MetricsRegistry::new()), 0);
    }
}
