//! # ruo-metrics — concurrent metrics on restricted-use objects
//!
//! The practical payoff of the PODC'14 tradeoffs: metrics are written
//! rarely-per-event but read on *every* status query, dashboard refresh
//! and health check — exactly the read-heavy regime where Algorithm A's
//! `O(1)` reads and the f-array's `O(1)` aggregate reads earn their
//! keep.
//!
//! * [`Watermark`] — high-water mark with one-atomic-load reads
//!   (Algorithm A under the hood).
//! * [`LowWatermark`] — the dual: minimum ever recorded.
//! * [`ProgressGauge`] — exact completed-of-total progress, wait-free.
//! * [`Histogram`] — fixed-boundary latency/size histogram with
//!   wait-free recording and quantile estimates.
//! * [`LatencyTracker`] — histogram + peak + best in one `observe`.
//! * [`ExploreGauges`] — totals for bounded model-checking runs
//!   (schedules, pruned branches, replay savings, peak DFS depth).
//! * [`CheckerGauges`] — totals for linearizability-checker calls
//!   (histories decided, operations, violations, largest history).
//! * [`ProgressCertifier`] — per-process progress counters + a livelock
//!   watchdog certifying wait-free step bounds under crashes.
//! * [`ShardGauges`] — per-stripe counts, imbalance, and hottest stripe
//!   for the sharded counter mode.
//! * [`HealthGauges`] — server health: admission/shed/degraded/dedup
//!   totals plus queue-depth and in-flight watermarks.
//! * [`BackoffPolicy`] — deterministic exponential retry backoff with
//!   seeded jitter.
//! * [`trace`] (`ruo_trace`) — per-operation step tracing: exact
//!   attribution of shared-memory events to operations, aggregate
//!   [`StepStats`], and JSONL / Chrome `trace_event` export.
//!
//! Every type is shared by a fixed set of `N` recorder identities
//! ([`ruo_sim::ProcessId`], one per thread), which is what makes the
//! underlying single-writer structures wait-free without stronger
//! primitives than `read`/`write`/`CAS`.
//!
//! ```
//! use ruo_metrics::{Histogram, Watermark};
//! use ruo_sim::ProcessId;
//!
//! let latency_high = Watermark::new(4);
//! let latencies = Histogram::new(4, &[1, 10, 100, 1_000]);
//! // worker 2 observed a 42µs request:
//! latency_high.record(ProcessId(2), 42);
//! latencies.record(ProcessId(2), 42);
//!
//! assert_eq!(latency_high.get(), 42); // one atomic load
//! assert_eq!(latencies.snapshot().total(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod backoff;
mod checker;
mod explore;
mod gauge;
mod health;
mod histogram;
mod latency;
mod progress;
mod registry;
mod series;
mod shard;
pub mod trace;
mod watermark;

pub use backoff::BackoffPolicy;
pub use checker::CheckerGauges;
pub use explore::ExploreGauges;
pub use gauge::ProgressGauge;
pub use health::{HealthEvent, HealthGauges, HealthSnapshot};
pub use histogram::{Histogram, HistogramSnapshot};
pub use latency::{LatencyReport, LatencyTracker};
pub use progress::{ProgressCertifier, ProgressReport, ProgressViolation};
pub use registry::{
    valid_metric_token, MetricDesc, MetricKind, MetricsRegistry, TelemetryEntry, TelemetryError,
    TelemetrySnapshot, TELEM_SCHEMA,
};
pub use series::SeriesSampler;
pub use shard::ShardGauges;
pub use trace::{
    json_escape, op_kind, trace_execution, KindStats, PrimCounts, StepStats, StepTrace, TraceEvent,
    TracedOp,
};
pub use watermark::{LowWatermark, Watermark};
