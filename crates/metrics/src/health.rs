//! Health gauges for a request-serving worker pool.

use std::fmt;
use std::sync::Arc;

use ruo_core::farray::{FArray, Sum};
use ruo_sim::{ProcessId, Word};

use crate::{MetricDesc, MetricKind, MetricsRegistry, Watermark};

/// Clamps a counter delta into a [`Word`] slot delta.
fn to_delta(v: u64) -> Word {
    Word::try_from(v).unwrap_or(Word::MAX)
}

/// One countable server event. See [`HealthGauges::bump`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum HealthEvent {
    /// A connection was admitted past the load-shedding gate.
    Admitted,
    /// A connection was refused because the pending queue was full.
    Shed,
    /// One request was served to completion (any response).
    Served,
    /// A read was answered from the degraded tier instead of the exact
    /// object.
    DegradedRead,
    /// A request was rejected because it aged past its deadline while
    /// queued.
    DeadlineMiss,
    /// A retried idempotent update hit the dedup window and was *not*
    /// re-applied.
    DedupHit,
    /// A request line failed to parse.
    ParseError,
    /// A socket read/write failed mid-connection.
    IoError,
    /// The chaos layer injected a fault into a stream.
    ChaosInjected,
}

/// Wait-free health counters for a server: per-event totals on
/// [`FArray<Sum>`] slots (exact `O(1)` aggregate reads) plus queue-depth
/// and in-flight [`Watermark`]s — the load-shedding gate reads the same
/// numbers the `metrics` endpoint reports.
///
/// Shared by `n` recorder identities (one per worker thread, plus one
/// for the acceptor). Mirrors [`crate::ExploreGauges`].
///
/// ```
/// use ruo_metrics::{HealthEvent, HealthGauges};
/// use ruo_sim::ProcessId;
///
/// let g = HealthGauges::new(3);
/// g.bump(ProcessId(2), HealthEvent::Admitted);
/// g.record_queue_depth(ProcessId(2), 5);
/// assert_eq!(g.snapshot().admitted, 1);
/// assert_eq!(g.snapshot().queue_depth_peak, 5);
/// ```
pub struct HealthGauges {
    admitted: FArray<Sum>,
    shed: FArray<Sum>,
    served: FArray<Sum>,
    degraded_reads: FArray<Sum>,
    deadline_misses: FArray<Sum>,
    dedup_hits: FArray<Sum>,
    parse_errors: FArray<Sum>,
    io_errors: FArray<Sum>,
    chaos_injected: FArray<Sum>,
    queue_depth_peak: Watermark,
    inflight_peak: Watermark,
    degraded_error_permille_peak: Watermark,
}

impl fmt::Debug for HealthGauges {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HealthGauges")
            .field("snapshot", &self.snapshot())
            .finish()
    }
}

impl HealthGauges {
    /// Creates gauges shared by `n` recorder identities.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        HealthGauges {
            admitted: FArray::new(n),
            shed: FArray::new(n),
            served: FArray::new(n),
            degraded_reads: FArray::new(n),
            deadline_misses: FArray::new(n),
            dedup_hits: FArray::new(n),
            parse_errors: FArray::new(n),
            io_errors: FArray::new(n),
            chaos_injected: FArray::new(n),
            queue_depth_peak: Watermark::new(n),
            inflight_peak: Watermark::new(n),
            degraded_error_permille_peak: Watermark::new(n),
        }
    }

    /// Counts one event for recorder `pid`. Wait-free: one single-writer
    /// slot update plus the `O(log N)` f-array climb.
    pub fn bump(&self, pid: ProcessId, event: HealthEvent) {
        let slot = match event {
            HealthEvent::Admitted => &self.admitted,
            HealthEvent::Shed => &self.shed,
            HealthEvent::Served => &self.served,
            HealthEvent::DegradedRead => &self.degraded_reads,
            HealthEvent::DeadlineMiss => &self.deadline_misses,
            HealthEvent::DedupHit => &self.dedup_hits,
            HealthEvent::ParseError => &self.parse_errors,
            HealthEvent::IoError => &self.io_errors,
            HealthEvent::ChaosInjected => &self.chaos_injected,
        };
        slot.update_with(pid, |cur| cur + to_delta(1));
    }

    /// Raises the pending-queue depth watermark.
    pub fn record_queue_depth(&self, pid: ProcessId, depth: u64) {
        self.queue_depth_peak.record(pid, depth);
    }

    /// Raises the in-flight-request watermark.
    pub fn record_inflight(&self, pid: ProcessId, inflight: u64) {
        self.inflight_peak.record(pid, inflight);
    }

    /// Raises the degraded-read error watermark: the *observed* relative
    /// error of one degraded answer, in permille (`(exact - served) *
    /// 1000 / exact`). Operators read the realized accuracy here, not
    /// just the configured factor `k` (a k = 4 tier that never drifts
    /// past 12 ‰ is very different from one pinned at 750 ‰).
    pub fn record_degraded_error(&self, pid: ProcessId, permille: u64) {
        self.degraded_error_permille_peak.record(pid, permille);
    }

    /// Registers every gauge under `prefix` (the serve layer uses the
    /// empty prefix, preserving the historical wire names). Each
    /// registered scalar reads one f-array root or one max-register
    /// root — `O(1)` loads per scalar, never a full [`Self::snapshot`].
    pub fn register_telemetry(self: &Arc<Self>, registry: &mut MetricsRegistry, prefix: &str) {
        type CounterRow = (
            &'static str,
            fn(&HealthGauges) -> &FArray<Sum>,
            &'static str,
        );
        let counters: [CounterRow; 9] = [
            (
                "admitted",
                |g| &g.admitted,
                "connections admitted past the load-shedding gate",
            ),
            (
                "shed",
                |g| &g.shed,
                "connections refused because the pending queue was full",
            ),
            ("served", |g| &g.served, "requests served to completion"),
            (
                "degraded_reads",
                |g| &g.degraded_reads,
                "reads answered from the degraded tier",
            ),
            (
                "deadline_misses",
                |g| &g.deadline_misses,
                "requests rejected after aging past their queue deadline",
            ),
            (
                "dedup_hits",
                |g| &g.dedup_hits,
                "replayed idempotent updates absorbed by the dedup window",
            ),
            (
                "parse_errors",
                |g| &g.parse_errors,
                "request lines that failed to parse",
            ),
            (
                "io_errors",
                |g| &g.io_errors,
                "mid-connection socket errors",
            ),
            (
                "chaos_injected",
                |g| &g.chaos_injected,
                "faults injected by the chaos layer",
            ),
        ];
        for (name, field, help) in counters {
            let g = Arc::clone(self);
            registry.register(
                MetricDesc::new(
                    &format!("{prefix}{name}"),
                    MetricKind::Counter,
                    "events",
                    help,
                ),
                move || field(&g).read() as u64,
            );
        }
        type PeakRow = (
            &'static str,
            fn(&HealthGauges) -> &Watermark,
            &'static str,
            &'static str,
        );
        let peaks: [PeakRow; 3] = [
            (
                "queue_depth_peak",
                |g| &g.queue_depth_peak,
                "connections",
                "deepest pending-connection queue observed",
            ),
            (
                "inflight_peak",
                |g| &g.inflight_peak,
                "requests",
                "most concurrently in-flight requests observed",
            ),
            (
                "degraded_error_permille_peak",
                |g| &g.degraded_error_permille_peak,
                "permille",
                "worst observed degraded-read relative error",
            ),
        ];
        for (name, field, unit, help) in peaks {
            let g = Arc::clone(self);
            registry.register(
                MetricDesc::new(
                    &format!("{prefix}{name}"),
                    MetricKind::Watermark,
                    unit,
                    help,
                ),
                move || field(&g).get(),
            );
        }
    }

    /// Exact totals at one instant (each counter is one `O(1)` root
    /// read; the two peaks are one atomic load each).
    pub fn snapshot(&self) -> HealthSnapshot {
        HealthSnapshot {
            admitted: self.admitted.read() as u64,
            shed: self.shed.read() as u64,
            served: self.served.read() as u64,
            degraded_reads: self.degraded_reads.read() as u64,
            deadline_misses: self.deadline_misses.read() as u64,
            dedup_hits: self.dedup_hits.read() as u64,
            parse_errors: self.parse_errors.read() as u64,
            io_errors: self.io_errors.read() as u64,
            chaos_injected: self.chaos_injected.read() as u64,
            queue_depth_peak: self.queue_depth_peak.get(),
            inflight_peak: self.inflight_peak.get(),
            degraded_error_permille_peak: self.degraded_error_permille_peak.get(),
        }
    }
}

/// Point-in-time totals from [`HealthGauges::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HealthSnapshot {
    /// Connections admitted past the gate.
    pub admitted: u64,
    /// Connections refused at the gate.
    pub shed: u64,
    /// Requests served to completion.
    pub served: u64,
    /// Reads answered from the degraded tier.
    pub degraded_reads: u64,
    /// Requests rejected after aging past their deadline in the queue.
    pub deadline_misses: u64,
    /// Replayed idempotent updates absorbed by the dedup window.
    pub dedup_hits: u64,
    /// Unparseable request lines.
    pub parse_errors: u64,
    /// Mid-connection socket errors.
    pub io_errors: u64,
    /// Faults injected by the chaos layer.
    pub chaos_injected: u64,
    /// Deepest pending-connection queue observed.
    pub queue_depth_peak: u64,
    /// Most concurrently in-flight requests observed.
    pub inflight_peak: u64,
    /// Worst observed degraded-read relative error, in permille.
    pub degraded_error_permille_peak: u64,
}

impl HealthSnapshot {
    /// `name=value` pairs in a fixed order — the wire shape of the
    /// server's `metrics` response.
    pub fn to_pairs(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("admitted", self.admitted),
            ("shed", self.shed),
            ("served", self.served),
            ("degraded_reads", self.degraded_reads),
            ("deadline_misses", self.deadline_misses),
            ("dedup_hits", self.dedup_hits),
            ("parse_errors", self.parse_errors),
            ("io_errors", self.io_errors),
            ("chaos_injected", self.chaos_injected),
            ("queue_depth_peak", self.queue_depth_peak),
            ("inflight_peak", self.inflight_peak),
            (
                "degraded_error_permille_peak",
                self.degraded_error_permille_peak,
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn events_land_in_their_own_counter() {
        let g = HealthGauges::new(2);
        g.bump(ProcessId(0), HealthEvent::Admitted);
        g.bump(ProcessId(0), HealthEvent::Shed);
        g.bump(ProcessId(1), HealthEvent::Shed);
        g.bump(ProcessId(1), HealthEvent::DedupHit);
        let s = g.snapshot();
        assert_eq!(s.admitted, 1);
        assert_eq!(s.shed, 2);
        assert_eq!(s.dedup_hits, 1);
        assert_eq!(s.served, 0);
    }

    #[test]
    fn peaks_take_the_max_across_recorders() {
        let g = HealthGauges::new(3);
        g.record_queue_depth(ProcessId(0), 4);
        g.record_queue_depth(ProcessId(2), 9);
        g.record_queue_depth(ProcessId(1), 2);
        g.record_inflight(ProcessId(1), 3);
        let s = g.snapshot();
        assert_eq!(s.queue_depth_peak, 9);
        assert_eq!(s.inflight_peak, 3);
    }

    #[test]
    fn pairs_cover_every_field_in_order() {
        let s = HealthSnapshot {
            admitted: 1,
            shed: 2,
            served: 3,
            degraded_reads: 4,
            deadline_misses: 5,
            dedup_hits: 6,
            parse_errors: 7,
            io_errors: 8,
            chaos_injected: 9,
            queue_depth_peak: 10,
            inflight_peak: 11,
            degraded_error_permille_peak: 12,
        };
        let pairs = s.to_pairs();
        assert_eq!(pairs.len(), 12);
        assert_eq!(pairs[0], ("admitted", 1));
        assert_eq!(pairs[11], ("degraded_error_permille_peak", 12));
        let vals: Vec<u64> = pairs.iter().map(|&(_, v)| v).collect();
        assert_eq!(vals, (1..=12).collect::<Vec<u64>>());
    }

    #[test]
    fn concurrent_bumps_never_lose_counts() {
        let n = 4;
        let per = 200u64;
        let g = Arc::new(HealthGauges::new(n));
        std::thread::scope(|s| {
            for t in 0..n {
                let g = Arc::clone(&g);
                s.spawn(move || {
                    for i in 0..per {
                        g.bump(ProcessId(t), HealthEvent::Served);
                        g.record_inflight(ProcessId(t), i);
                    }
                });
            }
        });
        let s = g.snapshot();
        assert_eq!(s.served, per * n as u64);
        assert_eq!(s.inflight_peak, per - 1);
    }
}
