//! Progress certification: per-process progress counters plus a
//! livelock watchdog.
//!
//! The paper's wait-free algorithms promise more than linearizability:
//! every operation completes within a *step bound* no matter what the
//! other processes do — including crashing mid-operation. A
//! [`ProgressCertifier`] turns that promise into a checkable verdict:
//! record every operation's fate (completed in `k` steps, starved, or
//! pending because its process crashed) and [`certify`] that the bound
//! held and nobody starved. Obstruction-free implementations (CAS-retry
//! loops, double-collect scans) are expected to *fail* certification
//! under adversarial schedules — that failure is the detection the soak
//! harness and thread tests rely on.
//!
//! [`certify`]: ProgressCertifier::certify

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use ruo_core::farray::{FArray, Sum};
use ruo_sim::{ExecOutcome, ProcessId, Word};

use crate::{MetricDesc, MetricKind, MetricsRegistry, Watermark};

/// Per-process progress counters with a step-bound watchdog.
///
/// All recording paths are wait-free: each is a single-writer f-array
/// slot update (`O(log N)`) or an Algorithm A max-register write, so the
/// certifier never perturbs the progress properties it measures.
///
/// ```
/// use ruo_metrics::ProgressCertifier;
/// use ruo_sim::ProcessId;
///
/// // Wait-free object with a 10-step bound; one peer crashed mid-op.
/// let cert = ProgressCertifier::new(2, 10);
/// cert.record_completion(ProcessId(0), 7);
/// cert.record_crashed_pending(ProcessId(1));
/// let report = cert.certify().expect("within bound, nobody starved");
/// assert_eq!(report.completed, 1);
/// assert_eq!(report.crashed_pending, 1);
/// assert_eq!(report.worst_steps, 7);
/// ```
pub struct ProgressCertifier {
    /// Claimed per-operation step bound being certified.
    bound: u64,
    /// Completed operations per process.
    completed: FArray<Sum>,
    /// Operations that failed to complete although their process was
    /// never crashed — starvation/livelock evidence.
    starved: FArray<Sum>,
    /// Operations left pending by a crash of their own process —
    /// expected under the fault model, never a violation.
    crashed_pending: FArray<Sum>,
    /// Most steps any completed operation took.
    worst_steps: Watermark,
}

impl fmt::Debug for ProgressCertifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProgressCertifier")
            .field("bound", &self.bound)
            .field("completed", &self.completed())
            .field("starved", &self.starved())
            .field("crashed_pending", &self.crashed_pending())
            .field("worst_steps", &self.worst_steps())
            .finish()
    }
}

/// A clean certification: what the watchdog observed while the bound
/// held and nobody starved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProgressReport {
    /// Operations that completed.
    pub completed: u64,
    /// Most steps any completed operation took (`<=` the bound).
    pub worst_steps: u64,
    /// The certified per-operation step bound.
    pub bound: u64,
    /// Operations left pending by their own process's crash (expected).
    pub crashed_pending: u64,
}

/// Why certification failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProgressViolation {
    /// A process that never crashed failed to complete an operation:
    /// starvation (for a wait-free object, a bug; for an
    /// obstruction-free one, the adversarial schedule working as the
    /// paper says it can).
    Starvation {
        /// Number of starved operations.
        count: u64,
    },
    /// A completed operation exceeded the claimed step bound.
    StepBoundExceeded {
        /// Most steps any completed operation took.
        worst: u64,
        /// The claimed bound.
        bound: u64,
    },
}

impl fmt::Display for ProgressViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgressViolation::Starvation { count } => {
                write!(
                    f,
                    "{count} operation(s) starved without their process crashing"
                )
            }
            ProgressViolation::StepBoundExceeded { worst, bound } => {
                write!(
                    f,
                    "an operation took {worst} steps, exceeding the {bound}-step bound"
                )
            }
        }
    }
}

impl Error for ProgressViolation {}

impl ProgressCertifier {
    /// Creates a certifier for `n` process identities claiming a
    /// per-operation step bound of `bound`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, bound: u64) -> Self {
        ProgressCertifier {
            bound,
            completed: FArray::new(n),
            starved: FArray::new(n),
            crashed_pending: FArray::new(n),
            worst_steps: Watermark::new(n),
        }
    }

    /// Records an operation by `pid` that completed in `steps`
    /// shared-memory steps.
    pub fn record_completion(&self, pid: ProcessId, steps: u64) {
        self.completed.update_with(pid, |c| c + 1);
        self.worst_steps.record(pid, steps);
    }

    /// Records an operation by `pid` that failed to complete although
    /// `pid` never crashed — starvation evidence.
    pub fn record_starved(&self, pid: ProcessId) {
        self.starved.update_with(pid, |c| c + 1);
    }

    /// Records an operation left pending because `pid` itself crashed —
    /// expected under the fault model, never a violation.
    pub fn record_crashed_pending(&self, pid: ProcessId) {
        self.crashed_pending.update_with(pid, |c| c + 1);
    }

    /// Folds a simulator outcome into the counters: completed operations
    /// record their step counts; pending operations count as
    /// crash-pending when [`ExecOutcome::crashed`] names their process
    /// and as starved otherwise (the process was schedulable to the end
    /// and still did not finish).
    pub fn record_outcome(&self, outcome: &ExecOutcome) {
        for op in outcome.history.ops() {
            if op.is_complete() {
                self.record_completion(op.pid, op.steps as u64);
            } else if outcome.crashed.contains(&op.pid) {
                self.record_crashed_pending(op.pid);
            } else {
                self.record_starved(op.pid);
            }
        }
    }

    /// Total completed operations (one `O(1)` root read).
    pub fn completed(&self) -> u64 {
        clamp(self.completed.read())
    }

    /// Total starved operations.
    pub fn starved(&self) -> u64 {
        clamp(self.starved.read())
    }

    /// Total operations left pending by their own process's crash.
    pub fn crashed_pending(&self) -> u64 {
        clamp(self.crashed_pending.read())
    }

    /// Most steps any completed operation took (one atomic load).
    pub fn worst_steps(&self) -> u64 {
        self.worst_steps.get()
    }

    /// The claimed per-operation step bound.
    pub fn bound(&self) -> u64 {
        self.bound
    }

    /// Registers every gauge under `prefix` — one `O(1)` root read per
    /// scalar (the step bound itself is a constant gauge).
    pub fn register_telemetry(self: &Arc<Self>, registry: &mut MetricsRegistry, prefix: &str) {
        type Row = (
            &'static str,
            fn(&ProgressCertifier) -> &FArray<Sum>,
            &'static str,
        );
        let counters: [Row; 3] = [
            ("completed", |c| &c.completed, "operations that completed"),
            (
                "starved",
                |c| &c.starved,
                "operations starved without their process crashing",
            ),
            (
                "crashed_pending",
                |c| &c.crashed_pending,
                "operations left pending by their own crash",
            ),
        ];
        for (name, field, help) in counters {
            let c = Arc::clone(self);
            registry.register(
                MetricDesc::new(
                    &format!("{prefix}{name}"),
                    MetricKind::Counter,
                    "operations",
                    help,
                ),
                move || clamp(field(&c).read()),
            );
        }
        let c = Arc::clone(self);
        registry.register(
            MetricDesc::new(
                &format!("{prefix}worst_steps"),
                MetricKind::Watermark,
                "steps",
                "most steps any completed operation took",
            ),
            move || c.worst_steps.get(),
        );
        let bound = self.bound;
        registry.register(
            MetricDesc::new(
                &format!("{prefix}bound"),
                MetricKind::Gauge,
                "steps",
                "claimed per-operation step bound",
            ),
            move || bound,
        );
    }

    /// The livelock watchdog's verdict: every completed operation stayed
    /// within the step bound and no non-crashed process starved.
    /// Crash-pending operations never fail certification — surviving
    /// them is exactly what wait-freedom promises.
    ///
    /// # Errors
    ///
    /// [`ProgressViolation::Starvation`] if any operation starved,
    /// otherwise [`ProgressViolation::StepBoundExceeded`] if a completed
    /// operation overran the bound.
    pub fn certify(&self) -> Result<ProgressReport, ProgressViolation> {
        let starved = self.starved();
        if starved > 0 {
            return Err(ProgressViolation::Starvation { count: starved });
        }
        let worst = self.worst_steps();
        if worst > self.bound {
            return Err(ProgressViolation::StepBoundExceeded {
                worst,
                bound: self.bound,
            });
        }
        Ok(ProgressReport {
            completed: self.completed(),
            worst_steps: worst,
            bound: self.bound,
            crashed_pending: self.crashed_pending(),
        })
    }
}

/// f-array slots are [`Word`]s; these counters only ever increment.
fn clamp(v: Word) -> u64 {
    u64::try_from(v).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn clean_run_certifies() {
        let cert = ProgressCertifier::new(3, 20);
        cert.record_completion(ProcessId(0), 12);
        cert.record_completion(ProcessId(1), 20); // exactly at the bound
        cert.record_crashed_pending(ProcessId(2));
        let report = cert.certify().expect("bound held");
        assert_eq!(report.completed, 2);
        assert_eq!(report.worst_steps, 20);
        assert_eq!(report.crashed_pending, 1);
    }

    #[test]
    fn starvation_fails_certification() {
        let cert = ProgressCertifier::new(2, 100);
        cert.record_completion(ProcessId(0), 5);
        cert.record_starved(ProcessId(1));
        let err = cert.certify().unwrap_err();
        assert_eq!(err, ProgressViolation::Starvation { count: 1 });
        assert!(err.to_string().contains("starved"));
    }

    #[test]
    fn step_bound_overrun_fails_certification() {
        let cert = ProgressCertifier::new(1, 10);
        cert.record_completion(ProcessId(0), 11);
        let err = cert.certify().unwrap_err();
        assert_eq!(
            err,
            ProgressViolation::StepBoundExceeded {
                worst: 11,
                bound: 10
            }
        );
        assert!(err.to_string().contains("11"));
    }

    #[test]
    fn starvation_is_reported_before_bound_overrun() {
        let cert = ProgressCertifier::new(2, 10);
        cert.record_completion(ProcessId(0), 99);
        cert.record_starved(ProcessId(1));
        assert!(matches!(
            cert.certify(),
            Err(ProgressViolation::Starvation { count: 1 })
        ));
    }

    #[test]
    fn crash_pending_alone_never_fails() {
        let cert = ProgressCertifier::new(4, 1);
        for p in 0..4 {
            cert.record_crashed_pending(ProcessId(p));
        }
        let report = cert.certify().expect("crashes are not violations");
        assert_eq!(report.crashed_pending, 4);
        assert_eq!(report.completed, 0);
    }

    #[test]
    fn concurrent_recording_is_exact() {
        let n = 4;
        let per = 250u64;
        let cert = Arc::new(ProgressCertifier::new(n, 64));
        std::thread::scope(|s| {
            for t in 0..n {
                let cert = Arc::clone(&cert);
                s.spawn(move || {
                    for i in 0..per {
                        cert.record_completion(ProcessId(t), (i % 64) + 1);
                    }
                });
            }
        });
        let report = cert.certify().expect("all within bound");
        assert_eq!(report.completed, n as u64 * per);
        assert_eq!(report.worst_steps, 64);
    }
}
