//! Per-stripe visibility for sharded counters.

use std::fmt;
use std::sync::Arc;

use ruo_core::counter::ShardedCounter;
use ruo_core::Counter;
use ruo_sim::ProcessId;

use crate::{MetricDesc, MetricKind, MetricsRegistry};

/// Per-stripe gauges over a shared [`ShardedCounter`]: total, per-stripe
/// counts, imbalance, and the hottest stripe.
///
/// The sharded counter trades the f-array's `O(1)` read for an `O(1)`
/// increment (Theorem 1 says one of the two must pay); these gauges make
/// the resulting *distribution* observable, which the exact counters
/// collapse by design. A skewed distribution is the signal that the
/// sharded mode's `O(N)` reads are collecting mostly-idle stripes — i.e.
/// that the workload did not need striping in the first place.
///
/// ```
/// use std::sync::Arc;
/// use ruo_core::counter::ShardedCounter;
/// use ruo_core::Counter;
/// use ruo_metrics::ShardGauges;
/// use ruo_sim::ProcessId;
///
/// let counter = Arc::new(ShardedCounter::new(4));
/// let gauges = ShardGauges::new(Arc::clone(&counter));
/// counter.increment(ProcessId(1));
/// counter.increment(ProcessId(1));
/// counter.increment(ProcessId(3));
/// assert_eq!(gauges.total(), 3);
/// assert_eq!(gauges.per_stripe(), vec![0, 2, 0, 1]);
/// assert_eq!(gauges.hottest(), (ProcessId(1), 2));
/// ```
pub struct ShardGauges {
    counter: Arc<ShardedCounter>,
}

impl fmt::Debug for ShardGauges {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardGauges")
            .field("per_stripe", &self.per_stripe())
            .finish()
    }
}

impl ShardGauges {
    /// Wraps a shared sharded counter; the gauges observe the same
    /// stripes the workload increments.
    pub fn new(counter: Arc<ShardedCounter>) -> Self {
        ShardGauges { counter }
    }

    /// One count per stripe, in process order (one collect pass).
    pub fn per_stripe(&self) -> Vec<u64> {
        self.counter.stripe_counts()
    }

    /// Sum over all stripes — the counter's own linearizable read.
    pub fn total(&self) -> u64 {
        self.counter.read()
    }

    /// The stripe with the most increments and its count (ties go to
    /// the lowest process id).
    pub fn hottest(&self) -> (ProcessId, u64) {
        let counts = self.per_stripe();
        let (i, &c) = counts
            .iter()
            .enumerate()
            .max_by(|(ai, ac), (bi, bc)| ac.cmp(bc).then(bi.cmp(ai)))
            .expect("sharded counters have at least one stripe");
        (ProcessId(i), c)
    }

    /// Registers `<prefix>total` (the counter's linearizable sum) and
    /// `<prefix>stripes` (constant). The total is the registry's one
    /// documented non-`O(1)` scalar: the sharded counter traded its
    /// `O(1)` read away for an `O(1)` increment (Theorem 1), so reading
    /// it collects every stripe.
    pub fn register_telemetry(&self, registry: &mut MetricsRegistry, prefix: &str) {
        let counter = Arc::clone(&self.counter);
        registry.register(
            MetricDesc::new(
                &format!("{prefix}total"),
                MetricKind::Counter,
                "increments",
                "sharded counter total (O(stripes) collect per read)",
            ),
            move || counter.read(),
        );
        let stripes = self.per_stripe().len() as u64;
        registry.register(
            MetricDesc::new(
                &format!("{prefix}stripes"),
                MetricKind::Gauge,
                "stripes",
                "number of per-process stripes",
            ),
            move || stripes,
        );
    }

    /// Hottest-stripe count divided by the mean stripe count, in
    /// `[1.0, N]`; `1.0` means perfectly balanced. Returns `1.0` while
    /// the counter is still zero.
    pub fn imbalance(&self) -> f64 {
        let counts = self.per_stripe();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let max = *counts.iter().max().expect("at least one stripe");
        max as f64 * counts.len() as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_counter_reads_as_balanced() {
        let g = ShardGauges::new(Arc::new(ShardedCounter::new(3)));
        assert_eq!(g.total(), 0);
        assert_eq!(g.per_stripe(), vec![0, 0, 0]);
        assert_eq!(g.imbalance(), 1.0);
        assert_eq!(g.hottest(), (ProcessId(0), 0));
    }

    #[test]
    fn imbalance_reflects_skew() {
        let c = Arc::new(ShardedCounter::new(4));
        let g = ShardGauges::new(Arc::clone(&c));
        for _ in 0..8 {
            c.increment(ProcessId(2));
        }
        // All traffic on one of four stripes: imbalance = 4.0.
        assert_eq!(g.imbalance(), 4.0);
        assert_eq!(g.hottest(), (ProcessId(2), 8));
        for p in [0, 1, 3] {
            for _ in 0..8 {
                c.increment(ProcessId(p));
            }
        }
        assert_eq!(g.imbalance(), 1.0);
        assert_eq!(g.total(), 32);
    }

    #[test]
    fn gauges_track_concurrent_increments() {
        let n = 4;
        let per = 2_000u64;
        let c = Arc::new(ShardedCounter::new(n));
        let g = ShardGauges::new(Arc::clone(&c));
        std::thread::scope(|s| {
            for t in 0..n {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..per {
                        c.increment(ProcessId(t));
                    }
                });
            }
        });
        assert_eq!(g.total(), n as u64 * per);
        assert_eq!(g.per_stripe(), vec![per; n]);
        assert_eq!(g.imbalance(), 1.0);
    }
}
