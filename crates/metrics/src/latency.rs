//! A composite latency tracker: histogram + both watermarks in one
//! `observe` call.

use std::fmt;
use std::sync::Arc;

use ruo_sim::ProcessId;

use crate::{
    Histogram, HistogramSnapshot, LowWatermark, MetricDesc, MetricKind, MetricsRegistry, Watermark,
};

/// Tracks a latency-like quantity end to end: distribution (histogram
/// with quantile estimates), the all-time peak, and the all-time best —
/// the three numbers every service dashboard wants, recorded with one
/// wait-free call.
///
/// ```
/// use ruo_metrics::LatencyTracker;
/// use ruo_sim::ProcessId;
///
/// let lat = LatencyTracker::new(4, &[1, 10, 100, 1_000]);
/// lat.observe(ProcessId(0), 7);
/// lat.observe(ProcessId(1), 340);
/// let report = lat.report();
/// assert_eq!(report.peak, 340);
/// assert_eq!(report.best, Some(7));
/// assert_eq!(report.histogram.total(), 2);
/// assert_eq!(report.p99, Some(1_000)); // bucket upper bound
/// ```
pub struct LatencyTracker {
    histogram: Histogram,
    peak: Watermark,
    best: LowWatermark,
}

impl fmt::Debug for LatencyTracker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LatencyTracker")
            .field("peak", &self.peak.get())
            .field("best", &self.best.get())
            .field("total", &self.histogram.snapshot().total())
            .finish()
    }
}

/// A point-in-time report from a [`LatencyTracker`].
#[derive(Clone, Debug)]
pub struct LatencyReport {
    /// Bucketed distribution.
    pub histogram: HistogramSnapshot,
    /// Largest value ever observed (`0` if none).
    pub peak: u64,
    /// Smallest value ever observed.
    pub best: Option<u64>,
    /// Median upper bound (bucket boundary), if determined.
    pub p50: Option<u64>,
    /// 99th-percentile upper bound (bucket boundary), if determined.
    pub p99: Option<u64>,
}

impl LatencyTracker {
    /// Creates a tracker for `n` recorder identities with the given
    /// histogram boundaries (see [`Histogram::new`]).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Histogram::new`].
    pub fn new(n: usize, boundaries: &[u64]) -> Self {
        LatencyTracker {
            histogram: Histogram::new(n, boundaries),
            peak: Watermark::new(n),
            best: LowWatermark::new(n),
        }
    }

    /// Records one observation into all three metrics — wait-free,
    /// `O(log N + log v)` total.
    pub fn observe(&self, pid: ProcessId, value: u64) {
        self.histogram.record(pid, value);
        self.peak.record(pid, value);
        self.best.record(pid, value);
    }

    /// Registers `<prefix>peak`, `<prefix>best`, and one scalar per
    /// histogram bucket (`<prefix>hist_le_*` / `_gt_*`) — one `O(1)`
    /// root read per scalar.
    pub fn register_telemetry(
        self: &Arc<Self>,
        registry: &mut MetricsRegistry,
        prefix: &str,
        unit: &str,
    ) {
        let t = Arc::clone(self);
        registry.register(
            MetricDesc::new(
                &format!("{prefix}peak"),
                MetricKind::Watermark,
                unit,
                "largest value observed",
            ),
            move || t.peak.get(),
        );
        let t = Arc::clone(self);
        registry.register(
            MetricDesc::new(
                &format!("{prefix}best"),
                MetricKind::LowWatermark,
                unit,
                "smallest value observed",
            ),
            move || t.best.get().unwrap_or(u64::MAX),
        );
        // Per-bucket counts: route through the histogram's own
        // registration by sharing the tracker (the closures borrow the
        // same histogram through the tracker Arc).
        let boundaries = self.histogram.boundaries().to_vec();
        for (i, &b) in boundaries.iter().enumerate() {
            let t = Arc::clone(self);
            registry.register(
                MetricDesc::new(
                    &format!("{prefix}hist_le_{b}"),
                    MetricKind::Counter,
                    unit,
                    &format!("observations in bucket le {b}"),
                ),
                move || t.histogram.bucket_count(i),
            );
        }
        let last = *boundaries.last().expect("at least one boundary");
        let overflow = boundaries.len();
        let t = Arc::clone(self);
        registry.register(
            MetricDesc::new(
                &format!("{prefix}hist_gt_{last}"),
                MetricKind::Counter,
                unit,
                &format!("observations in overflow bucket gt {last}"),
            ),
            move || t.histogram.bucket_count(overflow),
        );
    }

    /// Reads everything (a handful of atomic loads).
    pub fn report(&self) -> LatencyReport {
        let histogram = self.histogram.snapshot();
        let p50 = if histogram.total() > 0 {
            histogram.quantile_upper_bound(0.5)
        } else {
            None
        };
        let p99 = if histogram.total() > 0 {
            histogram.quantile_upper_bound(0.99)
        } else {
            None
        };
        LatencyReport {
            peak: self.peak.get(),
            best: self.best.get(),
            p50,
            p99,
            histogram,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn empty_tracker_reports_nothing() {
        let lat = LatencyTracker::new(2, &[10, 100]);
        let r = lat.report();
        assert_eq!(r.peak, 0);
        assert_eq!(r.best, None);
        assert_eq!(r.p50, None);
        assert_eq!(r.p99, None);
        assert_eq!(r.histogram.total(), 0);
    }

    #[test]
    fn report_is_internally_consistent() {
        let lat = LatencyTracker::new(2, &[10, 100, 1000]);
        for v in [5u64, 8, 12, 90, 400, 999] {
            lat.observe(ProcessId(0), v);
        }
        let r = lat.report();
        assert_eq!(r.peak, 999);
        assert_eq!(r.best, Some(5));
        assert_eq!(r.histogram.total(), 6);
        // peak/best bracket every quantile bound.
        assert!(r.p50.unwrap() >= r.best.unwrap());
        assert!(r.p99.unwrap() >= r.p50.unwrap());
    }

    #[test]
    fn single_observation_pins_every_field() {
        let lat = LatencyTracker::new(2, &[10, 100]);
        lat.observe(ProcessId(1), 42);
        let r = lat.report();
        assert_eq!(r.peak, 42);
        assert_eq!(r.best, Some(42));
        assert_eq!(r.histogram.total(), 1);
        // With one sample, every quantile is that sample's bucket bound.
        assert_eq!(r.p50, Some(100));
        assert_eq!(r.p99, Some(100));
    }

    #[test]
    fn shard_reports_merge_into_one_distribution() {
        let fast = LatencyTracker::new(2, &[10, 100]);
        let slow = LatencyTracker::new(2, &[10, 100]);
        for _ in 0..9 {
            fast.observe(ProcessId(0), 3);
        }
        slow.observe(ProcessId(1), 50);
        let mut rollup = fast.report().histogram;
        rollup.merge(&slow.report().histogram);
        assert_eq!(rollup.total(), 10);
        assert_eq!(rollup.bucket_counts(), &[9, 1, 0]);
        assert_eq!(rollup.quantile_upper_bound(0.9), Some(10));
        assert_eq!(rollup.quantile_upper_bound(1.0), Some(100));
    }

    #[test]
    fn concurrent_observation_is_exact() {
        let lat = Arc::new(LatencyTracker::new(4, &[100, 1000]));
        std::thread::scope(|s| {
            for t in 0..4usize {
                let lat = Arc::clone(&lat);
                s.spawn(move || {
                    for i in 1..=500u64 {
                        lat.observe(ProcessId(t), i);
                    }
                });
            }
        });
        let r = lat.report();
        assert_eq!(r.histogram.total(), 2000);
        assert_eq!(r.peak, 500);
        assert_eq!(r.best, Some(1));
        assert_eq!(r.histogram.bucket_counts(), &[4 * 100, 4 * 400, 0]);
    }
}
