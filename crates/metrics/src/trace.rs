//! `ruo_trace` — per-operation step tracing and trace export.
//!
//! The paper's complexity measure is *steps*: shared-memory events
//! charged to the operation that issued them. This module turns raw
//! executions into that measure, in both execution worlds:
//!
//! * **Sim world** — [`trace_execution`] attributes every
//!   [`Event`] of an [`EventLog`] to the operation that
//!   was in flight when it was issued, reconstructing a full
//!   [`StepTrace`] (per-op step counts, CAS success/failure split,
//!   propagation depth) from the log and [`History`] alone.
//! * **Threaded world** — the
//!   [`stepcount`](ruo_sim::stepcount) counting layer tallies primitive
//!   events per thread; [`PrimCounts`] adopts those tallies via
//!   `From<OpCounts>` so both worlds aggregate into one
//!   [`StepStats`] shape.
//!
//! On top sit two exporters: [`StepTrace::to_jsonl`] (a line-oriented
//! `ruo-trace-v1` stream for machine consumption) and
//! [`StepTrace::to_chrome_trace`] (Chrome `trace_event` JSON, so a
//! schedule from the explorer or a crash replay opens directly in
//! `chrome://tracing` / Perfetto with one track per process).

use std::collections::BTreeSet;
use std::fmt::Write as _;

use ruo_sim::history::{History, OpDesc};
use ruo_sim::stepcount::OpCounts;
use ruo_sim::{Event, EventLog};

/// Stable machine-readable name for an operation kind, used as the
/// per-kind key in [`StepStats`] and in exported traces.
pub fn op_kind(desc: &OpDesc) -> &'static str {
    match desc {
        OpDesc::WriteMax(_) => "write_max",
        OpDesc::ReadMax => "read_max",
        OpDesc::CounterIncrement => "counter_increment",
        OpDesc::CounterRead => "counter_read",
        OpDesc::Update(_) => "update",
        OpDesc::Scan => "scan",
    }
}

/// Primitive-event tallies: how many of an operation's (or execution's)
/// steps were reads, writes, successful CASes and failed CASes.
///
/// The four tallies partition the steps, so
/// [`total`](PrimCounts::total) *is* the step count.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PrimCounts {
    /// `read` primitives.
    pub reads: u64,
    /// `write` primitives.
    pub writes: u64,
    /// CAS primitives that succeeded (installed their value).
    pub cas_ok: u64,
    /// CAS primitives that failed (value had moved).
    pub cas_fail: u64,
}

impl PrimCounts {
    /// An all-zero tally.
    pub const fn new() -> Self {
        PrimCounts {
            reads: 0,
            writes: 0,
            cas_ok: 0,
            cas_fail: 0,
        }
    }

    /// Total primitive events — the step count.
    pub fn total(&self) -> u64 {
        self.reads + self.writes + self.cas_ok + self.cas_fail
    }

    /// Adds another tally into this one.
    pub fn add(&mut self, other: &PrimCounts) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.cas_ok += other.cas_ok;
        self.cas_fail += other.cas_fail;
    }

    /// Classifies one sim event into the matching tally.
    pub fn add_event(&mut self, ev: &Event) {
        if ev.prim.is_read() {
            self.reads += 1;
        } else if ev.prim.is_write() {
            self.writes += 1;
        } else if ev.resp == 1 {
            self.cas_ok += 1;
        } else {
            self.cas_fail += 1;
        }
    }
}

impl From<OpCounts> for PrimCounts {
    /// Adopts a threaded-world tally from the
    /// [`stepcount`](ruo_sim::stepcount) counting layer.
    fn from(c: OpCounts) -> Self {
        PrimCounts {
            reads: c.reads,
            writes: c.writes,
            cas_ok: c.cas_ok,
            cas_fail: c.cas_fail,
        }
    }
}

/// Aggregate step statistics for one operation kind.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KindStats {
    /// Number of operations observed.
    pub ops: u64,
    /// Total steps across all of them.
    pub total: u64,
    /// Worst-case (maximum) steps of a single operation.
    pub max: u64,
    /// Best-case (minimum) steps of a single operation.
    pub min: u64,
}

impl KindStats {
    /// Mean steps per operation (`0.0` when no ops were recorded).
    pub fn mean(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.total as f64 / self.ops as f64
        }
    }
}

/// Per-operation-kind step statistics plus a primitive-event breakdown —
/// the one `steps` shape all three scenario engines report.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StepStats {
    kinds: Vec<(String, KindStats)>,
    /// Primitive-event breakdown over everything recorded.
    pub prims: PrimCounts,
}

impl StepStats {
    /// An empty aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty() && self.prims == PrimCounts::new()
    }

    /// Per-kind statistics, sorted by kind name.
    pub fn per_op(&self) -> &[(String, KindStats)] {
        &self.kinds
    }

    fn entry(&mut self, kind: &str) -> &mut KindStats {
        match self.kinds.binary_search_by(|(k, _)| k.as_str().cmp(kind)) {
            Ok(i) => &mut self.kinds[i].1,
            Err(i) => {
                self.kinds
                    .insert(i, (kind.to_string(), KindStats::default()));
                &mut self.kinds[i].1
            }
        }
    }

    /// Installs (replacing any existing entry) the aggregate for one
    /// kind — used by report decoders reconstructing a `StepStats`.
    pub fn insert_kind(&mut self, kind: &str, stats: KindStats) {
        *self.entry(kind) = stats;
    }

    /// Records one operation of `kind` that took `steps` steps.
    pub fn record_op(&mut self, kind: &str, steps: u64) {
        let s = self.entry(kind);
        if s.ops == 0 {
            s.max = steps;
            s.min = steps;
        } else {
            s.max = s.max.max(steps);
            s.min = s.min.min(steps);
        }
        s.ops += 1;
        s.total += steps;
    }

    /// Records a per-operation primitive tally (also folded into
    /// [`prims`](StepStats::prims)).
    pub fn record_prims(&mut self, counts: &PrimCounts) {
        self.prims.add(counts);
    }

    /// Records every operation of a sim-world history (steps only — feed
    /// the matching [`EventLog`] to [`record_events`](Self::record_events)
    /// for the primitive breakdown).
    pub fn record_history(&mut self, history: &History) {
        for op in history {
            self.record_op(op_kind(&op.desc), op.steps as u64);
        }
    }

    /// Folds an event log into the primitive-event breakdown.
    pub fn record_events(&mut self, log: &EventLog) {
        for ev in log {
            self.prims.add_event(ev);
        }
    }

    /// Merges another aggregate into this one.
    pub fn merge(&mut self, other: &StepStats) {
        for (kind, s) in &other.kinds {
            let e = self.entry(kind);
            if e.ops == 0 {
                *e = *s;
            } else if s.ops > 0 {
                e.ops += s.ops;
                e.total += s.total;
                e.max = e.max.max(s.max);
                e.min = e.min.min(s.min);
            }
        }
        self.prims.add(&other.prims);
    }

    /// Worst-case steps observed for `kind`, if any op of that kind ran.
    pub fn max_steps(&self, kind: &str) -> Option<u64> {
        self.kinds
            .binary_search_by(|(k, _)| k.as_str().cmp(kind))
            .ok()
            .map(|i| self.kinds[i].1.max)
    }
}

/// One shared-memory event attributed to an operation in a [`StepTrace`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global position in the execution.
    pub seq: usize,
    /// `"read"`, `"write"`, `"cas_ok"` or `"cas_fail"`.
    pub kind: &'static str,
    /// The base object accessed.
    pub obj: u64,
    /// Object value immediately before the event.
    pub prev: i64,
    /// Response returned to the process.
    pub resp: i64,
}

impl TraceEvent {
    fn classify(ev: &Event) -> &'static str {
        if ev.prim.is_read() {
            "read"
        } else if ev.prim.is_write() {
            "write"
        } else if ev.resp == 1 {
            "cas_ok"
        } else {
            "cas_fail"
        }
    }

    fn from_event(ev: &Event) -> Self {
        TraceEvent {
            seq: ev.seq,
            kind: Self::classify(ev),
            obj: ev.obj().index() as u64,
            prev: ev.prev,
            resp: ev.resp,
        }
    }
}

/// One operation of a traced execution, with its attributed events.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TracedOp {
    /// Issuing process.
    pub pid: usize,
    /// Machine-readable kind (see [`op_kind`]).
    pub kind: &'static str,
    /// Human-readable label, e.g. `WriteMax(5)`.
    pub label: String,
    /// Global event tick of invocation.
    pub invoke: usize,
    /// Global event tick of response (`None` while pending — a crash or
    /// truncated schedule left the op in flight).
    pub response: Option<usize>,
    /// Steps (shared-memory events) the op issued.
    pub steps: u64,
    /// Primitive breakdown of those steps.
    pub prims: PrimCounts,
    /// Number of *distinct* base objects touched — for tree-structured
    /// objects this is the propagation depth of the operation.
    pub depth: usize,
    /// The attributed events, in execution order.
    pub events: Vec<TraceEvent>,
}

/// A fully attributed execution: every op with its events, exportable as
/// JSONL or Chrome `trace_event` JSON.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StepTrace {
    /// Traced operations, in invocation order.
    pub ops: Vec<TracedOp>,
}

/// Attributes every event of `log` to the operation that issued it.
///
/// Attribution is exact, not heuristic: a process executes its
/// operations sequentially, so partitioning its events (in log order)
/// into consecutive runs of [`OpRecord::steps`](ruo_sim::OpRecord)
/// events — ops taken in invocation order — reproduces exactly which op
/// issued which event, including zero-step ops (which get an empty run).
pub fn trace_execution(log: &EventLog, history: &History) -> StepTrace {
    // Per-pid cursor into that process's events.
    let mut by_pid: std::collections::BTreeMap<usize, Vec<&Event>> = Default::default();
    for ev in log {
        by_pid.entry(ev.pid.index()).or_default().push(ev);
    }
    let mut cursor: std::collections::BTreeMap<usize, usize> = Default::default();
    let mut ops = Vec::with_capacity(history.len());
    for op in history {
        let pid = op.pid.index();
        let evs = by_pid.get(&pid).map(|v| v.as_slice()).unwrap_or(&[]);
        let start = cursor.entry(pid).or_insert(0);
        let end = (*start + op.steps).min(evs.len());
        let slice = &evs[*start..end];
        *start = end;
        let mut prims = PrimCounts::new();
        let mut objects = BTreeSet::new();
        let events: Vec<TraceEvent> = slice
            .iter()
            .map(|ev| {
                objects.insert(ev.obj());
                let te = TraceEvent::from_event(ev);
                match te.kind {
                    "read" => prims.reads += 1,
                    "write" => prims.writes += 1,
                    "cas_ok" => prims.cas_ok += 1,
                    _ => prims.cas_fail += 1,
                }
                te
            })
            .collect();
        ops.push(TracedOp {
            pid,
            kind: op_kind(&op.desc),
            label: op.desc.to_string(),
            invoke: op.invoke,
            response: op.response,
            steps: op.steps as u64,
            prims,
            depth: objects.len(),
            events,
        });
    }
    StepTrace { ops }
}

/// Escapes a string for embedding in a JSON string literal: quotes,
/// backslashes, and control characters become their `\`-escapes.
/// Shared by the JSONL / Chrome `trace_event` exporters here and the
/// serve span exporter.
pub fn json_escape(s: &str) -> String {
    esc(s)
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl StepTrace {
    /// Aggregates the trace into [`StepStats`].
    pub fn stats(&self) -> StepStats {
        let mut stats = StepStats::new();
        for op in &self.ops {
            stats.record_op(op.kind, op.steps);
            stats.record_prims(&op.prims);
        }
        stats
    }

    /// Serializes the trace as a `ruo-trace-v1` JSONL stream: one header
    /// line, then one line per op, then one line per attributed event.
    pub fn to_jsonl(&self) -> String {
        let events: usize = self.ops.iter().map(|o| o.events.len()).sum();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"schema\":\"ruo-trace-v1\",\"ops\":{},\"events\":{}}}",
            self.ops.len(),
            events
        );
        for (id, op) in self.ops.iter().enumerate() {
            let _ = write!(
                out,
                "{{\"type\":\"op\",\"id\":{},\"pid\":{},\"op\":\"{}\",\"label\":\"{}\",\"invoke\":{}",
                id,
                op.pid,
                op.kind,
                esc(&op.label),
                op.invoke
            );
            if let Some(r) = op.response {
                let _ = write!(out, ",\"response\":{r}");
            }
            let _ = writeln!(
                out,
                ",\"steps\":{},\"reads\":{},\"writes\":{},\"cas_ok\":{},\"cas_fail\":{},\"objects\":{}}}",
                op.steps, op.prims.reads, op.prims.writes, op.prims.cas_ok, op.prims.cas_fail, op.depth
            );
        }
        for (id, op) in self.ops.iter().enumerate() {
            for ev in &op.events {
                let _ = writeln!(
                    out,
                    "{{\"type\":\"event\",\"op\":{},\"seq\":{},\"pid\":{},\"kind\":\"{}\",\"obj\":{},\"prev\":{},\"resp\":{}}}",
                    id, ev.seq, op.pid, ev.kind, ev.obj, ev.prev, ev.resp
                );
            }
        }
        out
    }

    /// Serializes the trace as Chrome `trace_event` JSON (the
    /// "JSON object format"): complete (`"ph":"X"`) events with one
    /// track (`tid`) per process, timestamps in execution ticks. Opens
    /// directly in `chrome://tracing` or Perfetto.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let push = |s: String, out: &mut String, first: &mut bool| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push_str(&s);
        };
        for op in &self.ops {
            // Pending ops stretch to their last attributed event (or one
            // tick) and are flagged in args.
            let (end, pending) = match op.response {
                Some(r) => (r, false),
                None => (
                    op.events.last().map(|e| e.seq + 1).unwrap_or(op.invoke + 1),
                    true,
                ),
            };
            let dur = end.saturating_sub(op.invoke).max(1);
            push(
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{},\"args\":{{\"steps\":{},\"reads\":{},\"writes\":{},\"cas_ok\":{},\"cas_fail\":{},\"objects\":{},\"pending\":{}}}}}",
                    esc(&op.label),
                    op.kind,
                    op.invoke,
                    dur,
                    op.pid,
                    op.steps,
                    op.prims.reads,
                    op.prims.writes,
                    op.prims.cas_ok,
                    op.prims.cas_fail,
                    op.depth,
                    pending
                ),
                &mut out,
                &mut first,
            );
            for ev in &op.events {
                push(
                    format!(
                        "{{\"name\":\"{} obj{}\",\"cat\":\"prim\",\"ph\":\"X\",\"ts\":{},\"dur\":1,\"pid\":0,\"tid\":{},\"args\":{{\"obj\":{},\"prev\":{},\"resp\":{}}}}}",
                        ev.kind, ev.obj, ev.seq, op.pid, ev.obj, ev.prev, ev.resp
                    ),
                    &mut out,
                    &mut first,
                );
            }
        }
        out.push_str("]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruo_sim::{cas, done, read, write, Machine, Memory, OpOutput, OpRecord, ProcessId, Word};

    fn run_to_completion(
        mem: &mut Memory,
        pid: ProcessId,
        mut m: Machine,
        history: &mut History,
        desc: OpDesc,
    ) {
        let invoke = mem.log().len();
        while !m.is_done() {
            let prim = m.enabled().expect("machine running");
            let resp = mem.apply(pid, prim);
            m.feed(resp);
        }
        let response = mem.log().len().max(invoke + 1);
        history.push(OpRecord {
            pid,
            desc,
            invoke,
            response: Some(response),
            output: m.result().map(OpOutput::Value),
            steps: response - invoke,
        });
    }

    fn sample() -> (Memory, History) {
        let mut mem = Memory::new();
        let cell = mem.alloc(0);
        let mut history = History::new();
        // p0: read cell, CAS 0 -> 7 (succeeds).
        run_to_completion(
            &mut mem,
            ProcessId(0),
            Machine::new(read(cell, move |v: Word| cas(cell, v, 7, done))),
            &mut history,
            OpDesc::WriteMax(7),
        );
        // p1: CAS 0 -> 9 (fails — cell is 7), then write 9.
        run_to_completion(
            &mut mem,
            ProcessId(1),
            Machine::new(cas(cell, 0, 9, move |_| write(cell, 9, move || done(9)))),
            &mut history,
            OpDesc::WriteMax(9),
        );
        // p0: one read.
        run_to_completion(
            &mut mem,
            ProcessId(0),
            Machine::new(read(cell, done)),
            &mut history,
            OpDesc::ReadMax,
        );
        (mem, history)
    }

    #[test]
    fn attribution_partitions_each_process_exactly() {
        let (mem, history) = sample();
        let trace = trace_execution(mem.log(), &history);
        assert_eq!(trace.ops.len(), 3);
        let total: usize = trace.ops.iter().map(|o| o.events.len()).sum();
        assert_eq!(total, mem.log().len());
        // First op: read + successful CAS.
        assert_eq!(trace.ops[0].prims.reads, 1);
        assert_eq!(trace.ops[0].prims.cas_ok, 1);
        // Second op: failed CAS + write.
        assert_eq!(trace.ops[1].prims.cas_fail, 1);
        assert_eq!(trace.ops[1].prims.writes, 1);
        // Third op: one read, same pid as the first — the cursor must
        // have advanced past op 0's events.
        assert_eq!(trace.ops[2].prims.reads, 1);
        assert_eq!(trace.ops[2].events[0].prev, 9);
        // Events attributed to an op belong to its process.
        for op in &trace.ops {
            assert!(op
                .events
                .iter()
                .all(|e| { mem.log().events()[e.seq].pid.index() == op.pid }));
        }
    }

    #[test]
    fn stats_aggregate_matches_trace() {
        let (mem, history) = sample();
        let trace = trace_execution(mem.log(), &history);
        let stats = trace.stats();
        assert_eq!(stats.max_steps("write_max"), Some(2));
        assert_eq!(stats.max_steps("read_max"), Some(1));
        assert_eq!(stats.prims.total(), mem.log().len() as u64);
        let wm = &stats.per_op()[stats
            .per_op()
            .iter()
            .position(|(k, _)| k == "write_max")
            .unwrap()]
        .1;
        assert_eq!(wm.ops, 2);
        assert_eq!(wm.total, 4);
        assert_eq!(wm.min, 2);
    }

    #[test]
    fn merge_combines_min_max_and_prims() {
        let mut a = StepStats::new();
        a.record_op("read_max", 1);
        a.record_op("write_max", 10);
        a.record_prims(&PrimCounts {
            reads: 5,
            writes: 3,
            cas_ok: 2,
            cas_fail: 1,
        });
        let mut b = StepStats::new();
        b.record_op("write_max", 4);
        b.record_op("scan", 7);
        b.record_prims(&PrimCounts {
            reads: 1,
            writes: 0,
            cas_ok: 0,
            cas_fail: 0,
        });
        a.merge(&b);
        assert_eq!(a.max_steps("write_max"), Some(10));
        let wm = a.per_op().iter().find(|(k, _)| k == "write_max").unwrap().1;
        assert_eq!(wm.min, 4);
        assert_eq!(wm.ops, 2);
        assert_eq!(a.prims.reads, 6);
        assert_eq!(a.max_steps("scan"), Some(7));
        assert_eq!(a.max_steps("update"), None);
    }

    #[test]
    fn kinds_stay_sorted_and_mean_is_exact() {
        let mut s = StepStats::new();
        s.record_op("scan", 3);
        s.record_op("read_max", 1);
        s.record_op("counter_read", 1);
        s.record_op("scan", 5);
        let keys: Vec<&str> = s.per_op().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["counter_read", "read_max", "scan"]);
        let scan = s.per_op().iter().find(|(k, _)| k == "scan").unwrap().1;
        assert_eq!(scan.mean(), 4.0);
        assert_eq!(KindStats::default().mean(), 0.0);
    }

    #[test]
    fn op_counts_adopt_into_prim_counts() {
        let c = OpCounts {
            reads: 2,
            writes: 3,
            cas_ok: 4,
            cas_fail: 5,
        };
        let p = PrimCounts::from(c);
        assert_eq!(p.total(), 14);
        assert_eq!(p.cas_fail, 5);
    }

    #[test]
    fn jsonl_carries_header_ops_and_events() {
        let (mem, history) = sample();
        let trace = trace_execution(mem.log(), &history);
        let jsonl = trace.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 1 + 3 + mem.log().len());
        assert!(lines[0].contains("\"schema\":\"ruo-trace-v1\""));
        assert!(lines[0].contains("\"ops\":3"));
        assert!(lines[1].contains("\"type\":\"op\""));
        assert!(lines[1].contains("\"label\":\"WriteMax(7)\""));
        assert!(lines[4].contains("\"type\":\"event\""));
        // Every line is a self-contained JSON object.
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
    }

    #[test]
    fn chrome_trace_has_one_slice_per_op_and_event() {
        let (mem, history) = sample();
        let trace = trace_execution(mem.log(), &history);
        let chrome = trace.to_chrome_trace();
        assert!(chrome.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert_eq!(chrome.matches("\"ph\":\"X\"").count(), 3 + mem.log().len());
        assert_eq!(chrome.matches("\"cat\":\"prim\"").count(), mem.log().len());
        assert!(chrome.contains("\"pending\":false"));
    }

    #[test]
    fn pending_op_stretches_to_its_last_event() {
        let mut mem = Memory::new();
        let cell = mem.alloc(0);
        let pid = ProcessId(3);
        // Two steps issued, never completed.
        let mut m = Machine::new(read(cell, move |v: Word| {
            write(cell, v + 1, move || done(0))
        }));
        for _ in 0..2 {
            let prim = m.enabled().unwrap();
            let resp = mem.apply(pid, prim);
            m.feed(resp);
        }
        let mut history = History::new();
        history.push(OpRecord {
            pid,
            desc: OpDesc::CounterIncrement,
            invoke: 0,
            response: None,
            output: None,
            steps: 2,
        });
        let trace = trace_execution(mem.log(), &history);
        assert_eq!(trace.ops[0].events.len(), 2);
        let chrome = trace.to_chrome_trace();
        assert!(chrome.contains("\"pending\":true"));
        let jsonl = trace.to_jsonl();
        assert!(!jsonl.lines().next().unwrap().contains("\"response\""));
    }
}
