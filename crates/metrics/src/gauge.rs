//! Exact progress tracking.

use std::fmt;
use std::sync::Arc;

use ruo_core::counter::FArrayCounter;
use ruo_core::Counter;
use ruo_sim::ProcessId;

use crate::{MetricDesc, MetricKind, MetricsRegistry};

/// Exact completed-of-total progress: `complete` is a wait-free
/// `O(log N)` increment (f-array counter), reading progress is one
/// atomic load.
///
/// Unlike sampling-based progress bars, the count is *exact* at every
/// instant: it never over-reports (an increment is counted only once)
/// and a read never misses an increment that finished before it began —
/// the counter is linearizable.
///
/// ```
/// use ruo_metrics::ProgressGauge;
/// use ruo_sim::ProcessId;
///
/// let progress = ProgressGauge::new(4, 1_000);
/// progress.complete(ProcessId(2));
/// progress.complete(ProcessId(0));
/// assert_eq!(progress.done(), 2);
/// assert_eq!(progress.remaining(), 998);
/// assert!((progress.fraction() - 0.002).abs() < 1e-9);
/// ```
pub struct ProgressGauge {
    counter: FArrayCounter,
    total: u64,
}

impl fmt::Debug for ProgressGauge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProgressGauge")
            .field("done", &self.done())
            .field("total", &self.total)
            .finish()
    }
}

impl ProgressGauge {
    /// Creates a gauge for `total` units of work shared by `n` worker
    /// identities.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `total == 0`.
    pub fn new(n: usize, total: u64) -> Self {
        assert!(total > 0, "total work must be positive");
        ProgressGauge {
            counter: FArrayCounter::new(n),
            total,
        }
    }

    /// Records one completed unit of work.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if more units complete than `total` — an
    /// accounting bug in the caller.
    pub fn complete(&self, pid: ProcessId) {
        self.counter.increment(pid);
        debug_assert!(
            self.counter.read() <= self.total,
            "more completions than total work"
        );
    }

    /// Completed units (one atomic load).
    pub fn done(&self) -> u64 {
        self.counter.read()
    }

    /// Units still outstanding (saturating).
    pub fn remaining(&self) -> u64 {
        self.total.saturating_sub(self.done())
    }

    /// Total units of work.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Completed fraction in `[0, 1]`.
    pub fn fraction(&self) -> f64 {
        (self.done() as f64 / self.total as f64).min(1.0)
    }

    /// Whether every unit has completed.
    pub fn is_complete(&self) -> bool {
        self.done() >= self.total
    }

    /// Registers `<prefix>done` (counter) and `<prefix>total` (constant
    /// gauge) — one `O(1)` root read per scalar.
    pub fn register_telemetry(self: &Arc<Self>, registry: &mut MetricsRegistry, prefix: &str) {
        let g = Arc::clone(self);
        registry.register(
            MetricDesc::new(
                &format!("{prefix}done"),
                MetricKind::Counter,
                "units",
                "completed units of work",
            ),
            move || g.done(),
        );
        let total = self.total;
        registry.register(
            MetricDesc::new(
                &format!("{prefix}total"),
                MetricKind::Gauge,
                "units",
                "total units of work",
            ),
            move || total,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn tracks_progress_exactly() {
        let g = ProgressGauge::new(2, 10);
        assert_eq!(g.done(), 0);
        assert_eq!(g.remaining(), 10);
        assert!(!g.is_complete());
        for _ in 0..10 {
            g.complete(ProcessId(0));
        }
        assert!(g.is_complete());
        assert_eq!(g.fraction(), 1.0);
        assert_eq!(g.remaining(), 0);
    }

    #[test]
    fn fraction_is_monotone_under_concurrency() {
        let n = 4;
        let per = 500u64;
        let g = Arc::new(ProgressGauge::new(n, n as u64 * per));
        std::thread::scope(|s| {
            let monitor = {
                let g = Arc::clone(&g);
                s.spawn(move || {
                    let mut last = 0.0;
                    while !g.is_complete() {
                        let f = g.fraction();
                        assert!(f >= last, "progress went backwards: {last} -> {f}");
                        last = f;
                    }
                })
            };
            for t in 0..n {
                let g = Arc::clone(&g);
                s.spawn(move || {
                    for _ in 0..per {
                        g.complete(ProcessId(t));
                    }
                });
            }
            monitor.join().unwrap();
        });
        assert_eq!(g.done(), n as u64 * per);
    }

    #[test]
    #[should_panic(expected = "total work must be positive")]
    fn zero_total_is_rejected() {
        let _ = ProgressGauge::new(1, 0);
    }
}
